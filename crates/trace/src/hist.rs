//! Log-bucketed latency histograms.
//!
//! 256 buckets: four sub-buckets per power-of-two octave of the
//! recorded `u64` value, covering the full 64-bit range with ≤ 12.5 %
//! relative bucket width. `count`, `sum`, and `max` are tracked
//! exactly; quantiles come from bucket midpoints, so a reported p99 is
//! within one sub-bucket (≤ 12.5 %) of the true order statistic —
//! plenty for latency work, and recording stays a handful of relaxed
//! atomic RMWs with no locks and no allocation.
//!
//! A histogram stores raw integer units (typically nanoseconds) and
//! carries a display `scale` (e.g. `1e-9` for seconds) applied only at
//! summary time, so the hot path never touches floating point when fed
//! via [`Histogram::observe`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Total buckets: 16 octaves × 4 would be too coarse; 64 octaves × 4
/// sub-buckets covers every representable `u64`.
pub const N_BUCKETS: usize = 256;

/// Index of the sub-bucket holding `value` (values are clamped to ≥ 1).
///
/// For `value` with highest set bit `e`, the two bits below it pick one
/// of four sub-buckets: `idx = 4e + ((value >> (e-2)) & 3)`. Monotone
/// in `value`, and `u64::MAX` maps to the last bucket (255).
fn bucket_of(value: u64) -> usize {
    let n = value.max(1);
    let e = 63 - n.leading_zeros() as usize;
    let frac = ((n >> e.saturating_sub(2)) & 3) as usize;
    e * 4 + frac
}

/// Midpoint of bucket `idx` in raw units, used as the quantile
/// representative.
fn representative(idx: usize) -> f64 {
    let e = idx / 4;
    let frac = (idx % 4) as f64;
    if e < 2 {
        // Octaves 0 and 1 hold exact small integers (1, 2, 3): the
        // "fraction" bits are the value itself.
        frac.max(1.0)
    } else {
        let width = (1u64 << (e - 2)) as f64;
        (1u64 << e) as f64 + frac * width + width / 2.0
    }
}

/// Summary statistics extracted from a histogram, in display units.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Exact sum of observations (display units).
    pub sum: f64,
    /// Median (bucket-midpoint estimate).
    pub p50: f64,
    /// 95th percentile (bucket-midpoint estimate).
    pub p95: f64,
    /// 99th percentile (bucket-midpoint estimate).
    pub p99: f64,
    /// Exact maximum observation (display units).
    pub max: f64,
}

impl HistSummary {
    /// Mean observation, 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Lock-free log-bucketed histogram. All mutation is relaxed atomic
/// RMW: buckets are independent monotone counters whose exact
/// interleaving never matters — a snapshot is allowed to be a few
/// in-flight observations behind.
#[derive(Debug)]
pub struct Histogram {
    scale: f64,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_units: AtomicU64,
    max_units: AtomicU64,
}

impl Histogram {
    /// New histogram whose display value = raw unit × `scale` (use
    /// `1e-9` when recording nanoseconds and reporting seconds, `1.0`
    /// for dimensionless counts).
    #[must_use]
    pub fn new(scale: f64) -> Histogram {
        Histogram {
            scale,
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_units: AtomicU64::new(0),
            max_units: AtomicU64::new(0),
        }
    }

    /// Display units per raw unit.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Record one observation in raw units (e.g. nanoseconds).
    pub fn observe(&self, units: u64) {
        self.buckets[bucket_of(units)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_units.fetch_add(units, Ordering::Relaxed);
        self.max_units.fetch_max(units, Ordering::Relaxed);
    }

    /// Record one observation in display units: converted by `scale`,
    /// clamped to the `u64` range (negative values record as 0).
    pub fn observe_value(&self, value: f64) {
        let units = value / self.scale;
        let units = if units.is_nan() || units <= 0.0 {
            0
        } else if units >= u64::MAX as f64 {
            u64::MAX
        } else {
            units.round() as u64
        };
        self.observe(units);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Summarise into count/sum/p50/p95/p99/max in display units.
    ///
    /// Reads are relaxed: each bucket is monotone, so the worst case
    /// under concurrent writers is a summary lagging a few
    /// observations, never a torn value.
    #[must_use]
    pub fn summary(&self) -> HistSummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Derive the total from the bucket reads themselves so the
        // quantile ranks are consistent with the walked counts even if
        // writers raced the `count` field.
        let total: u64 = counts.iter().sum();
        let quantile = |q: f64| -> f64 {
            if total == 0 {
                return 0.0;
            }
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut cum = 0u64;
            for (idx, &c) in counts.iter().enumerate() {
                cum += c;
                if cum >= rank {
                    return representative(idx) * self.scale;
                }
            }
            representative(N_BUCKETS - 1) * self.scale
        };
        HistSummary {
            count: total,
            sum: self.sum_units.load(Ordering::Relaxed) as f64 * self.scale,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
            max: self.max_units.load(Ordering::Relaxed) as f64 * self.scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        for v in 1u64..4096 {
            let idx = bucket_of(v);
            assert!(idx >= prev, "bucket_of must be monotone at {v}");
            assert!(idx < N_BUCKETS);
            prev = idx;
        }
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_of(0), bucket_of(1));
    }

    #[test]
    fn representative_lies_in_its_bucket() {
        for v in [1u64, 2, 3, 5, 17, 100, 1000, 1 << 20, 1 << 40] {
            let idx = bucket_of(v);
            let rep = representative(idx);
            // The midpoint is within 12.5 % of any member of the bucket.
            assert!(
                (rep - v as f64).abs() <= (v as f64) * 0.125 + 1.0,
                "rep {rep} too far from {v}"
            );
        }
    }

    #[test]
    fn exact_fields_are_exact() {
        let h = Histogram::new(1.0);
        for v in [5u64, 10, 15, 1000] {
            h.observe(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1030.0);
        assert_eq!(s.max, 1000.0);
        assert!((s.mean() - 257.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_bucket_accurate() {
        let h = Histogram::new(1.0);
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.summary();
        assert!(
            (s.p50 - 500.0).abs() <= 500.0 * 0.125 + 1.0,
            "p50 {}",
            s.p50
        );
        assert!(
            (s.p95 - 950.0).abs() <= 950.0 * 0.125 + 1.0,
            "p95 {}",
            s.p95
        );
        assert!(
            (s.p99 - 990.0).abs() <= 990.0 * 0.125 + 1.0,
            "p99 {}",
            s.p99
        );
        assert_eq!(s.max, 1000.0);
    }

    #[test]
    fn scale_converts_display_units() {
        let h = Histogram::new(1e-9);
        h.observe(1_500_000); // 1.5 ms in ns
        let s = h.summary();
        assert!((s.sum - 1.5e-3).abs() < 1e-12);
        assert!((s.max - 1.5e-3).abs() < 1e-12);
        assert!(s.p50 > 1.3e-3 && s.p50 < 1.7e-3);
        // Round-trip through display units.
        h.observe_value(2.0e-3);
        assert_eq!(h.count(), 2);
        assert!((h.summary().max - 2.0e-3).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_observations_clamp_to_zero() {
        let h = Histogram::new(1.0);
        h.observe_value(-5.0);
        h.observe_value(f64::NAN);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 0.0);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let h = Histogram::new(1.0);
        assert_eq!(h.summary(), HistSummary::default());
    }
}
