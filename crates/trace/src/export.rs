//! Snapshot exporters: Prometheus-style text exposition and
//! `shim::json` trees.
//!
//! Both exporters consume a [`MetricsSnapshot`], so an export never
//! holds the registry lock and never blocks recorders. Histograms are
//! rendered in Prometheus *summary* form (`quantile` labels plus
//! `_sum` / `_count`), with the exact maximum exposed as
//! `quantile="1"`.

use crate::hist::HistSummary;
use crate::metrics::{MetricValue, MetricsSnapshot};
use clgemm_shim::json::Json;

/// Split `name{labels}` into the base name and the label body (without
/// braces). `None` body when the name is unlabeled.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

/// `base{existing,quantile="q"}` — splice a quantile label into a
/// possibly already-labeled series name.
fn with_quantile(base: &str, labels: Option<&str>, q: &str) -> String {
    match labels {
        Some(l) if !l.is_empty() => format!("{base}{{{l},quantile=\"{q}\"}}"),
        _ => format!("{base}{{quantile=\"{q}\"}}"),
    }
}

/// `base_suffix{existing}` — append a suffix to the base name keeping
/// any labels.
fn with_suffix(base: &str, labels: Option<&str>, suffix: &str) -> String {
    match labels {
        Some(l) if !l.is_empty() => format!("{base}{suffix}{{{l}}}"),
        _ => format!("{base}{suffix}"),
    }
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

fn hist_json(s: &HistSummary) -> Json {
    Json::obj(vec![
        ("count", Json::Num(s.count as f64)),
        ("sum", Json::Num(s.sum)),
        ("mean", Json::Num(s.mean())),
        ("p50", Json::Num(s.p50)),
        ("p95", Json::Num(s.p95)),
        ("p99", Json::Num(s.p99)),
        ("max", Json::Num(s.max)),
    ])
}

impl MetricsSnapshot {
    /// Prometheus-style text exposition.
    ///
    /// Counters and gauges emit one `# TYPE` line per base name and one
    /// sample per series; histograms emit summary quantiles
    /// (0.5/0.95/0.99/1) plus `_sum` and `_count`. Entries are
    /// name-sorted, so output is deterministic.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_typed: Option<String> = None;
        for (name, value) in &self.entries {
            let (base, labels) = split_labels(name);
            let kind = match value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Hist(_) => "summary",
            };
            if last_typed.as_deref() != Some(base) {
                out.push_str("# TYPE ");
                out.push_str(base);
                out.push(' ');
                out.push_str(kind);
                out.push('\n');
                last_typed = Some(base.to_string());
            }
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(name);
                    out.push(' ');
                    out.push_str(&fmt_num(*v as f64));
                    out.push('\n');
                }
                MetricValue::Gauge(v) => {
                    out.push_str(name);
                    out.push(' ');
                    out.push_str(&fmt_num(*v));
                    out.push('\n');
                }
                MetricValue::Hist(s) => {
                    for (q, v) in [
                        ("0.5", s.p50),
                        ("0.95", s.p95),
                        ("0.99", s.p99),
                        ("1", s.max),
                    ] {
                        out.push_str(&with_quantile(base, labels, q));
                        out.push(' ');
                        out.push_str(&fmt_num(v));
                        out.push('\n');
                    }
                    out.push_str(&with_suffix(base, labels, "_sum"));
                    out.push(' ');
                    out.push_str(&fmt_num(s.sum));
                    out.push('\n');
                    out.push_str(&with_suffix(base, labels, "_count"));
                    out.push(' ');
                    out.push_str(&fmt_num(s.count as f64));
                    out.push('\n');
                }
            }
        }
        out
    }

    /// JSON tree: `{"counters": {..}, "gauges": {..}, "histograms":
    /// {name: {count, sum, mean, p50, p95, p99, max}}}`, each section
    /// name-sorted. Consumed by `crates/report`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    counters.push((name.clone(), Json::Num(*v as f64)));
                }
                MetricValue::Gauge(v) => gauges.push((name.clone(), Json::Num(*v))),
                MetricValue::Hist(s) => hists.push((name.clone(), hist_json(s))),
            }
        }
        Json::obj(vec![
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("histograms", Json::Obj(hists)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use crate::metrics::Registry;

    fn sample() -> Registry {
        let r = Registry::new();
        r.counter("req_total").add(10);
        r.counter_labeled("req_total", &[("dev", "gpu0")]).add(7);
        r.gauge("load").set(0.75);
        let h = r.histogram("wait_seconds", 1e-9);
        for ns in [1_000u64, 2_000, 4_000, 1_000_000] {
            h.observe(ns);
        }
        r
    }

    #[test]
    fn prometheus_exposition_has_types_series_and_quantiles() {
        let text = sample().snapshot().to_prometheus();
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("\nreq_total 10\n") || text.starts_with("req_total 10"));
        assert!(text.contains("req_total{dev=\"gpu0\"} 7"));
        assert!(text.contains("# TYPE load gauge"));
        assert!(text.contains("load 0.75"));
        assert!(text.contains("# TYPE wait_seconds summary"));
        assert!(text.contains("wait_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("wait_seconds{quantile=\"1\"} 0.001"));
        assert!(text.contains("wait_seconds_count 4"));
        // One TYPE line per base name even with labeled series.
        assert_eq!(text.matches("# TYPE req_total").count(), 1);
    }

    #[test]
    fn labeled_histograms_splice_quantiles() {
        let r = Registry::new();
        r.histogram_labeled("lat_seconds", &[("dev", "cpu")], 1e-9)
            .observe(500);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("lat_seconds{dev=\"cpu\",quantile=\"0.99\"}"));
        assert!(text.contains("lat_seconds_sum{dev=\"cpu\"}"));
        assert!(text.contains("lat_seconds_count{dev=\"cpu\"} 1"));
    }

    #[test]
    fn json_round_trips_through_the_shim_parser() {
        let json = sample().snapshot().to_json();
        let text = json.to_string_pretty();
        let parsed = clgemm_shim::json::Json::parse(&text).expect("exporter emits valid JSON");
        assert_eq!(
            parsed
                .field("counters")
                .unwrap()
                .field("req_total")
                .unwrap()
                .as_f64(),
            Some(10.0)
        );
        let hist = parsed
            .field("histograms")
            .unwrap()
            .field("wait_seconds")
            .unwrap();
        assert_eq!(hist.field("count").unwrap().as_f64(), Some(4.0));
        assert!(hist.field("p99").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(
            parsed
                .field("gauges")
                .unwrap()
                .field("load")
                .unwrap()
                .as_f64(),
            Some(0.75)
        );
    }
}
