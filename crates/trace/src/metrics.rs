//! The metrics registry: named counters, gauges, and histograms.
//!
//! Registration (`counter` / `gauge` / `histogram`) is get-or-create
//! under a mutex and returns an `Arc` handle; instrumentation sites
//! resolve their handles once (typically into a `OnceLock`-cached
//! struct) so the hot path is a single relaxed atomic RMW with no map
//! lookup. Labeled variants mangle the labels into the name in
//! Prometheus form (`name{key="value"}`), keeping the registry a flat
//! ordered map that exports deterministically.
//!
//! [`Registry::global`] is the process-wide registry every instrumented
//! layer records into; [`Registry::new`] gives an isolated instance for
//! tests that must not observe each other's traffic.

use crate::hist::{HistSummary, Histogram};
use clgemm_shim::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter. Relaxed: counters are independent
    /// monotone sums; no other memory is published through them.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point gauge.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
    touched: AtomicBool,
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
            touched: AtomicBool::new(false),
        }
    }
}

impl Gauge {
    /// Set the gauge. Relaxed: a gauge is a self-contained `f64`
    /// published as one atomic word; readers need no ordering with any
    /// other location.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
        self.touched.store(true, Ordering::Relaxed);
    }

    /// Add `delta` to the gauge (atomic compare-exchange loop).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.touched.store(true, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn exercised(&self) -> bool {
        self.touched.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Hist(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Hist(_) => "histogram",
        }
    }

    fn exercised(&self) -> bool {
        match self {
            Metric::Counter(c) => c.get() > 0,
            Metric::Gauge(g) => g.exercised(),
            Metric::Hist(h) => h.count() > 0,
        }
    }
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Monotone counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary.
    Hist(HistSummary),
}

/// A point-in-time copy of every registered metric, name-sorted.
/// Exporters live in [`crate::export`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in ascending name order.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Look up a metric by exact name (including any `{labels}`).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter total by name, `None` if absent or not a counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name, `None` if absent or not a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram summary by name, `None` if absent or not a histogram.
    #[must_use]
    pub fn hist(&self, name: &str) -> Option<HistSummary> {
        match self.get(name)? {
            MetricValue::Hist(s) => Some(*s),
            _ => None,
        }
    }
}

/// A named collection of metrics. Cloning shares the underlying map.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

/// Render `name{k1="v1",k2="v2"}` for labeled registration.
#[must_use]
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

impl Registry {
    /// Fresh, empty, isolated registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry all instrumented layers record into.
    #[must_use]
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.inner.lock().expect("metrics registry poisoned")
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.lock();
        let m = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
        match m {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Get or register the counter `name{labels}`.
    ///
    /// # Panics
    /// If the mangled name is already registered as a different kind.
    #[must_use]
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.counter(&labeled(name, labels))
    }

    /// Get or register the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.lock();
        let m = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
        match m {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Get or register the gauge `name{labels}`.
    ///
    /// # Panics
    /// If the mangled name is already registered as a different kind.
    #[must_use]
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.gauge(&labeled(name, labels))
    }

    /// Get or register the histogram `name` with display `scale`
    /// (ignored if the histogram already exists).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    #[must_use]
    pub fn histogram(&self, name: &str, scale: f64) -> Arc<Histogram> {
        let mut map = self.lock();
        let m = map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Hist(Arc::new(Histogram::new(scale))));
        match m {
            Metric::Hist(h) => Arc::clone(h),
            other => panic!("metric `{name}` already registered as a {}", other.kind()),
        }
    }

    /// Get or register the histogram `name{labels}`.
    ///
    /// # Panics
    /// If the mangled name is already registered as a different kind.
    #[must_use]
    pub fn histogram_labeled(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        scale: f64,
    ) -> Arc<Histogram> {
        self.histogram(&labeled(name, labels), scale)
    }

    /// Point-in-time copy of every registered metric.
    ///
    /// One lock acquisition copies the handle list; the values are then
    /// read without the lock (each metric is internally atomic), so a
    /// snapshot never blocks recorders.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let handles: Vec<(String, Metric)> = self
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let entries = handles
            .into_iter()
            .map(|(name, m)| {
                let value = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Hist(h) => MetricValue::Hist(h.summary()),
                };
                (name, value)
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Names of registered metrics that have never been exercised
    /// (counter never incremented, gauge never set, histogram never
    /// observed) — the CI dead-metric lint.
    #[must_use]
    pub fn dead_metrics(&self) -> Vec<String> {
        self.lock()
            .iter()
            .filter(|(_, m)| !m.exercised())
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

/// Convenience: snapshot of [`Registry::global`] as JSON (see
/// [`MetricsSnapshot::to_json`]).
#[must_use]
pub fn global_json() -> Json {
    Registry::global().snapshot().to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let r = Registry::new();
        let c = r.counter("c_total");
        c.inc();
        c.add(4);
        let g = r.gauge("g");
        g.set(2.5);
        g.add(0.5);
        let h = r.histogram("h_seconds", 1e-9);
        h.observe(1_000);
        let snap = r.snapshot();
        assert_eq!(snap.counter("c_total"), Some(5));
        assert_eq!(snap.gauge("g"), Some(3.0));
        let hs = snap.hist("h_seconds").unwrap();
        assert_eq!(hs.count, 1);
        assert!((hs.max - 1e-6).abs() < 1e-12);
        assert!(snap.get("missing").is_none());
    }

    #[test]
    fn handles_are_shared_not_duplicated() {
        let r = Registry::new();
        r.counter("shared").inc();
        r.counter("shared").inc();
        assert_eq!(r.snapshot().counter("shared"), Some(2));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn labeled_names_mangle_in_prometheus_form() {
        assert_eq!(labeled("x_total", &[]), "x_total");
        assert_eq!(
            labeled("x_total", &[("dev", "gpu0"), ("kind", "nn")]),
            "x_total{dev=\"gpu0\",kind=\"nn\"}"
        );
        let r = Registry::new();
        r.counter_labeled("x_total", &[("dev", "gpu0")]).add(3);
        assert_eq!(r.snapshot().counter("x_total{dev=\"gpu0\"}"), Some(3));
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("dual");
        let _ = r.gauge("dual");
    }

    #[test]
    fn dead_metric_lint_reports_untouched_metrics() {
        let r = Registry::new();
        let _ = r.counter("live_total");
        let _ = r.counter("dead_total");
        let _ = r.gauge("dead_gauge");
        let _ = r.histogram("dead_hist", 1.0);
        r.counter("live_total").inc();
        let mut dead = r.dead_metrics();
        dead.sort();
        assert_eq!(dead, vec!["dead_gauge", "dead_hist", "dead_total"]);
        // A gauge set to its default value still counts as exercised.
        r.gauge("dead_gauge").set(0.0);
        r.histogram("dead_hist", 1.0).observe(0);
        assert_eq!(r.dead_metrics(), vec!["dead_total"]);
    }

    #[test]
    fn registries_are_isolated_but_clones_share() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("only_a").inc();
        assert!(b.snapshot().get("only_a").is_none());
        let a2 = a.clone();
        a2.counter("only_a").inc();
        assert_eq!(a.snapshot().counter("only_a"), Some(2));
    }
}
