//! In-tree tracing + metrics for the clgemm workspace.
//!
//! The workspace's telemetry used to be fragmented: `ServerStats`
//! atomics in the serving layer, per-run phase timings on `GemmRun`,
//! `DynStats` in the clc VM — three bespoke formats, no spans, no
//! latency distributions, no shared export. This crate unifies them
//! behind two primitives, both allocation-free on the hot path and
//! built only on `std` (extending the `clgemm-shim` no-external-crates
//! convention):
//!
//! * **Spans** ([`ring`]) — `let _g = span!("pack_a");` records a named
//!   interval into a per-thread lock-free ring buffer when tracing is
//!   enabled. When disabled (the default) a span costs one relaxed
//!   atomic load; with the `off` cargo feature the check is
//!   `const false` and the whole call site folds away.
//! * **Metrics** ([`metrics`]) — a [`Registry`] of named counters,
//!   gauges, and log-bucketed latency [`Histogram`]s with
//!   p50/p95/p99/max extraction. Handles are `Arc`s resolved once and
//!   cached at the instrumentation site, so recording is a single
//!   atomic RMW. Metrics are always on: they are cheap enough that the
//!   enable flag only gates spans.
//!
//! Two exporters ([`export`]) serialise a [`MetricsSnapshot`]:
//! Prometheus-style text exposition and a `shim::json` tree consumed by
//! `crates/report`.
//!
//! Time is measured in nanoseconds since a process-wide epoch
//! ([`now_ns`]), so timestamps from different threads order correctly.

pub mod export;
pub mod hist;
pub mod metrics;
pub mod ring;

pub use hist::{HistSummary, Histogram};
pub use metrics::{Counter, Gauge, MetricValue, MetricsSnapshot, Registry};
pub use ring::{Event, SpanGuard};

#[cfg(not(feature = "off"))]
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

#[cfg(not(feature = "off"))]
static ENABLED: AtomicBool = AtomicBool::new(false);

/// `true` when span recording is on.
///
/// Relaxed load: the flag is an independent on/off switch; span
/// correctness never depends on *when* a flip becomes visible to a
/// thread, only that it eventually does.
#[cfg(not(feature = "off"))]
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// With the `off` feature the flag is compile-time `false`, so every
/// `span!` / `event!` call site is dead code the optimiser removes.
#[cfg(feature = "off")]
#[inline]
#[must_use]
pub const fn enabled() -> bool {
    false
}

/// Turn span recording on or off at runtime. A no-op under the `off`
/// feature.
pub fn set_enabled(on: bool) {
    #[cfg(not(feature = "off"))]
    ENABLED.store(on, Ordering::Relaxed);
    #[cfg(feature = "off")]
    let _ = on;
}

/// Enable span recording when `CLGEMM_TRACE=1` is set in the
/// environment. Call once near process start (idempotent).
pub fn init_from_env() {
    if std::env::var("CLGEMM_TRACE")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        set_enabled(true);
    }
}

/// Nanoseconds since the first call in this process (the trace epoch).
///
/// Monotonic and shared across threads, so events recorded on
/// different threads can be ordered and nested against each other.
#[must_use]
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Record a span covering the rest of the enclosing scope.
///
/// ```
/// # use clgemm_trace::span;
/// clgemm_trace::set_enabled(true);
/// {
///     let _g = span!("pack_a");
///     // ... work ...
/// } // span ends here
/// let _tagged = span!("request.execute", 42); // optional u64 tag
/// ```
///
/// The guard is inert (no timestamp taken, nothing recorded) when
/// tracing is disabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::ring::SpanGuard::begin($name, 0)
    };
    ($name:expr, $tag:expr) => {
        $crate::ring::SpanGuard::begin($name, $tag)
    };
}

/// Record an instantaneous event (a zero-duration span) with an
/// optional u64 tag. No-op when tracing is disabled.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::ring::record_instant($name, 0)
    };
    ($name:expr, $tag:expr) => {
        $crate::ring::record_instant($name, $tag)
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn now_ns_is_monotone() {
        let a = super::now_ns();
        let b = super::now_ns();
        assert!(b >= a);
    }

    #[test]
    fn enable_flag_round_trips() {
        super::set_enabled(true);
        #[cfg(not(feature = "off"))]
        assert!(super::enabled());
        #[cfg(feature = "off")]
        assert!(!super::enabled());
        super::set_enabled(false);
        assert!(!super::enabled());
    }
}
