//! Per-thread lock-free span rings.
//!
//! Each thread that records a span owns a fixed-capacity ring of
//! seqlock-style slots. Writers never block and never allocate after
//! the ring exists; when the ring wraps, the oldest events are
//! overwritten and counted in [`dropped_events`]. Readers
//! ([`all_events`] / [`events_since`]) walk every registered ring and
//! discard slots that a concurrent writer is mutating, so a snapshot
//! taken mid-flight contains only fully written events.
//!
//! Every word of a slot is an `AtomicU64`, so the seqlock validation
//! protocol is data-race-free by construction: a torn read is
//! *detected* (sequence mismatch) rather than undefined behaviour.
//! Event names are `&'static str`, stored as (pointer, length) words —
//! reconstruction is safe because only `'static` strings ever enter
//! the ring, so a validated (pointer, length) pair always denotes a
//! live string.

use crate::now_ns;
use std::cell::{Cell, OnceCell};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Events kept per thread before the ring wraps.
pub const RING_CAPACITY: usize = 8192;

/// Payload words per slot: name pointer, name length, tag, start,
/// duration, packed thread/depth.
const WORDS: usize = 6;

/// One recorded span (or instantaneous event, when `dur_ns == 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Static name from the `span!` / `event!` call site.
    pub name: &'static str,
    /// Caller-supplied correlation tag (e.g. a request id); 0 if unused.
    pub tag: u64,
    /// Start time, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds; 0 for instantaneous events.
    pub dur_ns: u64,
    /// Id of the recording thread (dense, assigned at first record).
    pub thread: u32,
    /// Nesting depth of live guards on the recording thread when this
    /// span started (0 = outermost).
    pub depth: u32,
}

impl Event {
    /// End time, nanoseconds since the trace epoch.
    #[must_use]
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }

    /// `true` when `other`'s interval lies entirely within this one.
    #[must_use]
    pub fn contains(&self, other: &Event) -> bool {
        self.start_ns <= other.start_ns && other.end_ns() <= self.end_ns()
    }
}

struct Slot {
    /// Seqlock sequence for slot generation `g` (0-based): `2*g + 1`
    /// while the writer is filling the slot, `2*g + 2` once the
    /// payload is complete. Readers accept only even values that match
    /// the generation they expect.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A single thread's ring. Only its owner thread writes; any thread
/// may read concurrently via the registry.
pub struct SpanRing {
    thread: u32,
    /// Number of events ever pushed; `head % capacity` is the next slot.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl SpanRing {
    fn new(thread: u32) -> SpanRing {
        SpanRing {
            thread,
            head: AtomicU64::new(0),
            slots: (0..RING_CAPACITY).map(|_| Slot::new()).collect(),
        }
    }

    fn push(&self, name: &'static str, tag: u64, start_ns: u64, dur_ns: u64, depth: u32) {
        let idx = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(idx % cap) as usize];
        let generation = idx / cap;
        // Odd sequence marks the slot in-flight; the release fence
        // keeps the payload stores from drifting ahead of it.
        slot.seq.store(2 * generation + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.words[0].store(name.as_ptr() as u64, Ordering::Relaxed);
        slot.words[1].store(name.len() as u64, Ordering::Relaxed);
        slot.words[2].store(tag, Ordering::Relaxed);
        slot.words[3].store(start_ns, Ordering::Relaxed);
        slot.words[4].store(dur_ns, Ordering::Relaxed);
        slot.words[5].store(
            (u64::from(self.thread) << 32) | u64::from(depth),
            Ordering::Relaxed,
        );
        // Even sequence publishes the payload; Release orders the
        // payload stores before it.
        slot.seq.store(2 * generation + 2, Ordering::Release);
        self.head.store(idx + 1, Ordering::Release);
    }

    fn collect_into(&self, out: &mut Vec<Event>, since_ns: u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let first = head.saturating_sub(cap);
        for idx in first..head {
            let slot = &self.slots[(idx % cap) as usize];
            let want = 2 * (idx / cap) + 2;
            if slot.seq.load(Ordering::Acquire) != want {
                continue; // in-flight or already overwritten
            }
            let w: [u64; WORDS] = std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            // Order the payload loads before the validating re-read.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != want {
                continue; // writer lapped us mid-read
            }
            if w[3] < since_ns {
                continue;
            }
            // Safety: (ptr, len) were stored from a `&'static str` and
            // validated unchanged by the sequence re-check, so they
            // denote a live, immutable, UTF-8 string.
            let name = unsafe {
                std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                    w[0] as *const u8,
                    w[1] as usize,
                ))
            };
            out.push(Event {
                name,
                tag: w[2],
                start_ns: w[3],
                dur_ns: w[4],
                thread: (w[5] >> 32) as u32,
                depth: w[5] as u32,
            });
        }
    }

    /// Events pushed beyond capacity (oldest overwritten).
    fn dropped(&self) -> u64 {
        self.head
            .load(Ordering::Acquire)
            .saturating_sub(self.slots.len() as u64)
    }
}

fn rings() -> &'static Mutex<Vec<Arc<SpanRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<SpanRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static MY_RING: OnceCell<Arc<SpanRing>> = const { OnceCell::new() };
    /// Live `SpanGuard`s on this thread; children record depth > parents.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn with_ring(f: impl FnOnce(&SpanRing)) {
    MY_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let mut all = rings().lock().expect("span ring registry poisoned");
            let ring = Arc::new(SpanRing::new(all.len() as u32));
            all.push(Arc::clone(&ring));
            ring
        });
        f(ring);
    });
}

/// Snapshot of every completed event currently held in any thread's
/// ring, sorted by start time (ties broken by depth so parents sort
/// before their children).
#[must_use]
pub fn all_events() -> Vec<Event> {
    events_since(0)
}

/// Like [`all_events`], restricted to events starting at or after
/// `since_ns` (a [`now_ns`] timestamp) — lets tests scope assertions
/// to their own window of the shared rings.
#[must_use]
pub fn events_since(since_ns: u64) -> Vec<Event> {
    let all: Vec<Arc<SpanRing>> = rings().lock().expect("span ring registry poisoned").clone();
    let mut out = Vec::new();
    for ring in &all {
        ring.collect_into(&mut out, since_ns);
    }
    out.sort_by_key(|e| (e.start_ns, e.depth, e.thread));
    out
}

/// Total events overwritten by ring wrap-around across all threads.
#[must_use]
pub fn dropped_events() -> u64 {
    rings()
        .lock()
        .expect("span ring registry poisoned")
        .iter()
        .map(|r| r.dropped())
        .sum()
}

/// Record a fully formed span retroactively (e.g. a queue wait whose
/// start was timestamped on another thread). No-op when tracing is
/// disabled.
pub fn record(name: &'static str, tag: u64, start_ns: u64, dur_ns: u64) {
    if !crate::enabled() {
        return;
    }
    let depth = DEPTH.with(Cell::get);
    with_ring(|r| r.push(name, tag, start_ns, dur_ns, depth));
}

/// Record an instantaneous event. Prefer the [`crate::event!`] macro.
pub fn record_instant(name: &'static str, tag: u64) {
    if !crate::enabled() {
        return;
    }
    let depth = DEPTH.with(Cell::get);
    with_ring(|r| r.push(name, tag, now_ns(), 0, depth));
}

/// RAII guard recording a span from construction to drop. Construct
/// via the [`crate::span!`] macro. Inert when tracing is disabled at
/// construction time: no timestamp is taken and drop records nothing.
#[must_use = "a span guard records its span when dropped; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    name: &'static str,
    tag: u64,
    start_ns: u64,
    armed: bool,
}

impl SpanGuard {
    /// Start a span. Checks the global enable flag first, so the
    /// disabled cost is one relaxed atomic load.
    #[inline]
    pub fn begin(name: &'static str, tag: u64) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard {
                name,
                tag: 0,
                start_ns: 0,
                armed: false,
            };
        }
        DEPTH.with(|d| d.set(d.get() + 1));
        SpanGuard {
            name,
            tag,
            start_ns: now_ns(),
            armed: true,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // The span's own depth is the guard count *excluding* itself.
        let depth = DEPTH.with(|d| {
            let v = d.get().saturating_sub(1);
            d.set(v);
            v
        });
        let dur = now_ns().saturating_sub(self.start_ns);
        with_ring(|r| r.push(self.name, self.tag, self.start_ns, dur, depth));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(feature = "off", ignore = "span recording compiled out")]
    fn spans_nest_and_report_depth() {
        crate::set_enabled(true);
        let t0 = now_ns();
        {
            let _outer = crate::span!("test.ring.outer", 7);
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _inner = crate::span!("test.ring.inner", 7);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        crate::set_enabled(false);
        let events = events_since(t0);
        let outer = events
            .iter()
            .find(|e| e.name == "test.ring.outer")
            .expect("outer span recorded");
        let inner = events
            .iter()
            .find(|e| e.name == "test.ring.inner")
            .expect("inner span recorded");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.tag, 7);
        assert!(outer.contains(inner), "inner must nest inside outer");
        assert_eq!(outer.thread, inner.thread);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        crate::set_enabled(false);
        let t0 = now_ns();
        {
            let _g = crate::span!("test.ring.disabled");
            crate::event!("test.ring.disabled.event");
        }
        assert!(events_since(t0)
            .iter()
            .all(|e| !e.name.starts_with("test.ring.disabled")));
    }

    #[test]
    #[cfg_attr(feature = "off", ignore = "span recording compiled out")]
    fn retro_record_and_instant_events() {
        crate::set_enabled(true);
        let t0 = now_ns();
        record("test.ring.retro", 9, t0, 123);
        crate::event!("test.ring.instant", 9);
        crate::set_enabled(false);
        let events = events_since(t0);
        let retro = events
            .iter()
            .find(|e| e.name == "test.ring.retro")
            .expect("retro span recorded");
        assert_eq!((retro.tag, retro.start_ns, retro.dur_ns), (9, t0, 123));
        let inst = events
            .iter()
            .find(|e| e.name == "test.ring.instant")
            .expect("instant event recorded");
        assert_eq!(inst.dur_ns, 0);
    }

    #[test]
    #[cfg_attr(feature = "off", ignore = "span recording compiled out")]
    fn ring_wraps_and_counts_drops() {
        crate::set_enabled(true);
        let t0 = now_ns();
        let before = dropped_events();
        for _ in 0..(RING_CAPACITY + 100) {
            crate::event!("test.ring.wrap");
        }
        crate::set_enabled(false);
        assert!(dropped_events() >= before + 100);
        // The ring still yields a full window of valid events.
        let wrapped: Vec<_> = events_since(t0)
            .into_iter()
            .filter(|e| e.name == "test.ring.wrap")
            .collect();
        assert!(!wrapped.is_empty());
        assert!(wrapped.len() <= RING_CAPACITY);
    }
}
