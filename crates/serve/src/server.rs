//! The GEMM server: admission → fair queue → batcher → cache →
//! scheduler → execution, with idempotent coalescing on the side.

use crate::batch::{coalesce, Batch, BatchKey};
use crate::batched::{BatchedPayload, BatchedRequest, BatchedResponse};
use crate::cache::{CacheKey, KernelCache, Provenance};
use crate::inflight::{content_key, CachedC, CachedResult, ContentKey, ResultCache};
use crate::queue::FairQueue;
use crate::request::{
    GemmPayload, GemmRequest, GemmResponse, Outcome, PendingRequest, Priority, RequestId,
    ShapeBucket,
};
use crate::scheduler::Scheduler;
use crate::stats::{ServerStats, StatsSnapshot};
use clgemm::batched::{BatchRun, DIRECT_BATCH_MAX};
use clgemm::params::{small_test_params, KernelParams};
use clgemm::predict::predict_best;
use clgemm::profile::launch_profile;
use clgemm::repo::KernelRepo;
use clgemm::routine::{GemmOptions, GemmRun, TunedGemm};
use clgemm::tuner::{tune, Measurement, SearchOpts, SearchSpace};
use clgemm::tuning_db::{DbKey, TuningDb, DB_ENV};
use clgemm_blas::layout::round_up;
use clgemm_blas::scalar::Precision;
use clgemm_blas::workspace::{BatchWorkspace, Workspace};
use clgemm_blas::{BatchError, GemmBatch, GemmType};
use clgemm_device::{estimate_seconds, DeviceSpec};
use clgemm_sim::DeviceWorker;
use clgemm_trace::Registry;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Instant;

/// Tunables of the serving loop.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bound of the submission queue; pushes beyond it are rejected.
    pub queue_capacity: usize,
    /// Largest grouped launch the batcher will form.
    pub max_batch: usize,
    /// Kernel-cache entries across all `(device, precision, bucket)`.
    pub cache_capacity: usize,
    /// On a cache+repo miss, run a (smoke-sized) tuning search for the
    /// device instead of falling straight back to the paper's winners.
    /// Only consulted when the predictor did not already serve the miss
    /// (see [`ServeConfig::predict`]) — the synchronous search is the
    /// legacy cold-start path.
    pub tune_misses: bool,
    /// Serve cache misses from the analytical predictor
    /// (`clgemm::predict`) instantly, with no synchronous search.
    /// Defaults to [`clgemm::predict::predict_enabled`], i.e. on unless
    /// `CLGEMM_PREDICT=off`.
    pub predict: bool,
    /// Refine predictor cold starts with a budgeted background tuning
    /// search on a separate thread; results are absorbed at the start
    /// of later drains (and committed to the tuning database).
    pub background_refine: bool,
    /// Path of the persistent tuning database; `None` falls back to
    /// the `CLGEMM_TUNING_DB` environment variable, and an in-memory
    /// database when that is unset too.
    pub tuning_db: Option<PathBuf>,
    /// Registry the server's histograms and gauges are registered in;
    /// `None` uses the process-global registry (what production wants —
    /// one snapshot covers every layer). Tests pass an isolated
    /// `Registry::new()` so concurrent tests do not observe each
    /// other's traffic.
    pub registry: Option<Registry>,
    /// Queue-fill fraction above which the load-shedding policy starts
    /// rejecting `Priority::Low` submissions outright, preserving the
    /// remaining headroom for interactive work.
    pub high_watermark: f64,
    /// Most requests one [`GemmServer::drain`] pulls off the fair queue
    /// (`usize::MAX` empties it). A finite quota makes each drain a
    /// bounded service round, so overload turns into queueing — and
    /// then shedding — instead of one unboundedly long drain.
    pub drain_quota: usize,
    /// Fair-queueing weights per tenant name; tenants not listed weigh
    /// 1. Weights divide device *work* (request flops), not counts.
    pub tenant_weights: Vec<(String, u32)>,
    /// Coalesce content-identical requests: duplicates in one drain
    /// share a single execution, and repeats of recently served inputs
    /// are answered from the result cache.
    pub coalesce_idempotent: bool,
    /// Entries in the bounded LRU result cache backing coalescing.
    pub result_cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 256,
            max_batch: 8,
            cache_capacity: 32,
            tune_misses: false,
            predict: clgemm::predict::predict_enabled(),
            background_refine: true,
            tuning_db: std::env::var_os(DB_ENV).map(PathBuf::from),
            registry: None,
            high_watermark: 0.75,
            drain_quota: usize::MAX,
            tenant_weights: Vec::new(),
            coalesce_idempotent: true,
            result_cache_capacity: 32,
        }
    }
}

/// Why a submission bounced.
#[derive(Debug)]
pub enum RejectReason {
    /// Backpressure: the bounded queue (or the tenant's weighted share
    /// of it) is full. The request is handed back (boxed, to keep the
    /// `Err` variant small) so the caller can retry, shed or block.
    QueueFull(Box<GemmRequest>),
    /// Admission control projected completion past the deadline: even
    /// if accepted right now, the request would finish `lateness`
    /// seconds too late given the queued backlog. Shedding at submit
    /// costs the caller nothing but the projection; the old behaviour
    /// queued the request and shed it after it had already waited.
    DeadlineUnmeetable {
        req: Box<GemmRequest>,
        /// Projected seconds past the deadline.
        lateness: f64,
    },
    /// Load shedding: the queue is over the high watermark and the
    /// request is `Priority::Low` — bulk work is shed first so the
    /// remaining headroom serves interactive traffic.
    Overloaded(Box<GemmRequest>),
}

/// Bits of an `f64` in an `AtomicU64` — the submit path is lock-free,
/// so the admission state must be readable without a mutex.
fn f64_load(a: &AtomicU64) -> f64 {
    f64::from_bits(a.load(Ordering::Relaxed))
}

fn f64_store(a: &AtomicU64, v: f64) {
    a.store(v.to_bits(), Ordering::Relaxed);
}

/// CAS-add `delta`, clamping the result at zero (credits may race with
/// charges; the backlog must never go negative).
fn f64_add_clamped(a: &AtomicU64, delta: f64) {
    let mut cur = a.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + delta).max(0.0);
        match a.compare_exchange_weak(cur, next.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Admission control state: enough of the serving picture, readable
/// lock-free from any submitter thread, to project a new request's
/// completion time before accepting it.
///
/// The projection is deliberately simple:
/// `earliest-free device clock + (queued backlog + this request) /
/// workers`. It uses a single fleet-wide seconds-per-flop estimate (an
/// EWMA the drain thread feeds from modelled batch costs, seeded from
/// the device cost model so it is never cold) — admission needs the
/// right order of magnitude, not the scheduler's per-device precision;
/// the in-batch guard still catches the residual error.
#[derive(Debug)]
struct Admission {
    /// EWMA of modelled seconds per flop across recent batches (f64
    /// bits).
    secs_per_flop: AtomicU64,
    /// Modelled seconds of admitted-but-not-yet-drained work (f64
    /// bits). Charged at submit, credited when the drain picks the
    /// request up.
    backlog_seconds: AtomicU64,
    /// Earliest `busy_until` across device workers, published by the
    /// drain thread (f64 bits).
    min_busy: AtomicU64,
    n_workers: usize,
}

impl Admission {
    /// EWMA weight of each new seconds-per-flop observation.
    const ALPHA: f64 = 0.3;

    fn new(seed_secs_per_flop: f64, n_workers: usize) -> Admission {
        Admission {
            secs_per_flop: AtomicU64::new(seed_secs_per_flop.to_bits()),
            backlog_seconds: AtomicU64::new(0.0_f64.to_bits()),
            min_busy: AtomicU64::new(0.0_f64.to_bits()),
            n_workers: n_workers.max(1),
        }
    }

    /// Modelled seconds one request of `flops` work will cost.
    fn estimate_seconds(&self, flops: f64) -> f64 {
        flops * f64_load(&self.secs_per_flop)
    }

    /// Virtual time at which a request costing `est` seconds, admitted
    /// now, is projected to complete.
    fn projected_end(&self, est: f64) -> f64 {
        f64_load(&self.min_busy) + (f64_load(&self.backlog_seconds) + est) / self.n_workers as f64
    }

    /// Charge an admitted request's modelled cost to the backlog.
    fn charge(&self, est: f64) {
        f64_add_clamped(&self.backlog_seconds, est);
    }

    /// Credit a drained request's cost back out of the backlog.
    fn credit(&self, est: f64) {
        f64_add_clamped(&self.backlog_seconds, -est);
    }

    /// Fold an observed seconds-per-flop sample into the EWMA (drain
    /// thread only, but raced safely against submit-side reads).
    fn observe_secs_per_flop(&self, sample: f64) {
        if !sample.is_finite() || sample <= 0.0 {
            return;
        }
        let cur = f64_load(&self.secs_per_flop);
        f64_store(&self.secs_per_flop, cur + Self::ALPHA * (sample - cur));
    }

    /// Publish the earliest-free device clock (drain thread only).
    fn publish_min_busy(&self, v: f64) {
        if v.is_finite() {
            f64_store(&self.min_busy, v);
        }
    }
}

#[derive(Debug)]
struct Shared {
    queue: FairQueue,
    stats: ServerStats,
    admission: Admission,
    high_watermark: f64,
    next_id: AtomicU64,
}

impl Shared {
    fn submit(&self, req: GemmRequest) -> Result<RequestId, RejectReason> {
        // --- admission control: shed before queueing, not after -------
        let est = self.admission.estimate_seconds(req.payload.flops(req.ty));
        if let Some(deadline) = req.deadline {
            let slack = deadline - self.admission.projected_end(est);
            // Signed: positive slack → slack histogram, negative →
            // lateness histogram (how late the shed request would be).
            self.stats.observe_deadline_slack(slack);
            if slack < 0.0 {
                self.stats
                    .rejected_deadline_admit
                    .fetch_add(1, Ordering::Relaxed);
                self.stats.note_shed(&req.tenant, "deadline");
                return Err(RejectReason::DeadlineUnmeetable {
                    req: Box::new(req),
                    lateness: -slack,
                });
            }
        }
        // High-watermark policy: past the watermark, bulk work is shed
        // outright so the remaining queue headroom serves urgent work.
        let fill = self.queue.len() as f64 / self.queue.capacity() as f64;
        if req.priority == Priority::Low && fill >= self.high_watermark {
            self.stats.shed_low_priority.fetch_add(1, Ordering::Relaxed);
            self.stats.note_shed(&req.tenant, "low_priority");
            return Err(RejectReason::Overloaded(Box::new(req)));
        }

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let tenant = req.tenant.clone();
        let pending = PendingRequest {
            id,
            enqueued_ns: clgemm_trace::now_ns(),
            admit_cost: est,
            req,
        };
        match self.queue.try_push(pending) {
            Ok(()) => {
                self.stats.enqueued.fetch_add(1, Ordering::Relaxed);
                self.admission.charge(est);
                self.stats.note_admitted(&tenant);
                clgemm_trace::event!("serve.request.enqueue", id);
                Ok(id)
            }
            Err(pending) => {
                self.stats
                    .rejected_queue_full
                    .fetch_add(1, Ordering::Relaxed);
                self.stats.note_shed(&tenant, "queue_full");
                Err(RejectReason::QueueFull(Box::new(pending.req)))
            }
        }
    }
}

/// One bucket's refinement order: re-derive the predictor-served
/// parameters with a real (budgeted) search.
#[derive(Debug)]
struct RefineJob {
    spec: DeviceSpec,
    precision: Precision,
    bucket: ShapeBucket,
    /// The predictor's forecast, carried through so the absorbed result
    /// can report predicted-vs-tuned accuracy.
    predicted_gflops: f64,
}

/// A finished refinement, ready to be absorbed into cache + database.
#[derive(Debug)]
struct RefineOutcome {
    device: String,
    fingerprint: String,
    precision: Precision,
    bucket: ShapeBucket,
    best: Measurement,
    predicted_gflops: f64,
    seconds: f64,
}

/// The background refiner: one worker thread running budgeted smoke
/// searches (with predictor pruning) off the serving path. Dropping it
/// closes the job channel and joins the worker.
#[derive(Debug)]
struct Refiner {
    jobs: Option<mpsc::Sender<RefineJob>>,
    results: mpsc::Receiver<RefineOutcome>,
    pending: usize,
    cancel: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Refiner {
    fn spawn() -> Refiner {
        let (jobs_tx, jobs_rx) = mpsc::channel::<RefineJob>();
        let (results_tx, results_rx) = mpsc::channel();
        let cancel = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let cancelled = Arc::clone(&cancel);
        let handle = thread::spawn(move || {
            for job in jobs_rx {
                // A dropped server only waits for the job in flight;
                // everything still queued is skipped, not searched.
                if cancelled.load(Ordering::Relaxed) {
                    continue;
                }
                let t0 = Instant::now();
                let space = SearchSpace::smoke(&job.spec);
                let opts = SearchOpts {
                    top_k: 4,
                    max_sweep_points: 4,
                    verify_winner: false,
                    predictor_prune: true,
                    ..Default::default()
                };
                let result = tune(&job.spec, job.precision, &space, &opts);
                let sent = results_tx.send(RefineOutcome {
                    device: job.spec.code_name.clone(),
                    fingerprint: job.spec.fingerprint(),
                    precision: job.precision,
                    bucket: job.bucket,
                    best: result.best,
                    predicted_gflops: job.predicted_gflops,
                    seconds: t0.elapsed().as_secs_f64(),
                });
                if sent.is_err() {
                    break; // server gone; no one left to absorb
                }
            }
        });
        Refiner {
            jobs: Some(jobs_tx),
            results: results_rx,
            pending: 0,
            cancel,
            handle: Some(handle),
        }
    }

    fn enqueue(&mut self, job: RefineJob) {
        if let Some(tx) = &self.jobs {
            if tx.send(job).is_ok() {
                self.pending += 1;
            }
        }
    }

    /// Everything finished so far, without blocking.
    fn try_drain(&mut self) -> Vec<RefineOutcome> {
        let mut out = Vec::new();
        while let Ok(o) = self.results.try_recv() {
            self.pending -= 1;
            out.push(o);
        }
        out
    }

    /// Block until every enqueued job has finished.
    fn wait(&mut self) -> Vec<RefineOutcome> {
        let mut out = Vec::new();
        while self.pending > 0 {
            match self.results.recv() {
                Ok(o) => {
                    self.pending -= 1;
                    out.push(o);
                }
                Err(_) => break, // worker died; pending jobs are lost
            }
        }
        out
    }
}

impl Drop for Refiner {
    fn drop(&mut self) {
        self.cancel.store(true, Ordering::Relaxed);
        self.jobs.take(); // close the channel so the worker's loop ends
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// A cloneable submission handle usable from any thread while the
/// server drains on another.
#[derive(Debug, Clone)]
pub struct Submitter {
    shared: Arc<Shared>,
}

impl Submitter {
    /// Enqueue a request; rejected with the request handed back when
    /// the queue is full.
    pub fn submit(&self, req: GemmRequest) -> Result<RequestId, RejectReason> {
        self.shared.submit(req)
    }
}

/// A batching, multi-device GEMM server over simulated devices.
#[derive(Debug)]
pub struct GemmServer {
    cfg: ServeConfig,
    shared: Arc<Shared>,
    scheduler: Scheduler,
    cache: KernelCache,
    repo: KernelRepo,
    /// Persistent tuning results keyed by (device fingerprint, shape
    /// bucket, gemm type, storage type); refinements commit here so a
    /// restarted server warms from disk instead of re-predicting.
    db: TuningDb,
    refiner: Option<Refiner>,
    /// Content-addressed results of recently completed requests — the
    /// cross-drain half of idempotent coalescing.
    result_cache: ResultCache,
    next_batch: u64,
    responses: Vec<GemmResponse>,
    /// One grow-only staging workspace per device worker: repeated
    /// traffic in the same shape bucket performs zero staging
    /// allocations after warm-up (the routine bench gates this).
    workspaces: Vec<Workspace>,
    /// One batched workspace (shared slab + per-thread worker pools)
    /// per device worker, for strided-batched bypass calls — same
    /// zero-steady-state-allocation contract as `workspaces`.
    batch_workspaces: Vec<BatchWorkspace>,
}

impl GemmServer {
    /// A server over one worker per device, with an empty kernel repo.
    ///
    /// # Panics
    /// Panics if `devices` is empty or a capacity is zero.
    #[must_use]
    pub fn new(devices: Vec<DeviceSpec>, cfg: ServeConfig) -> GemmServer {
        GemmServer::with_repo(devices, cfg, KernelRepo::new())
    }

    /// A server whose cache misses consult pre-tuned results in `repo`.
    #[must_use]
    pub fn with_repo(devices: Vec<DeviceSpec>, cfg: ServeConfig, repo: KernelRepo) -> GemmServer {
        let registry = cfg
            .registry
            .clone()
            .unwrap_or_else(|| Registry::global().clone());
        let shared = Arc::new(Shared {
            queue: FairQueue::new(
                cfg.queue_capacity,
                cfg.tenant_weights
                    .iter()
                    .map(|(t, w)| (t.clone(), *w))
                    .collect(),
            ),
            stats: ServerStats::new(registry),
            admission: Admission::new(seed_secs_per_flop(&repo, &devices), devices.len()),
            high_watermark: cfg.high_watermark,
            next_id: AtomicU64::new(0),
        });
        let workspaces = vec![Workspace::new(); devices.len()];
        let batch_workspaces = (0..devices.len()).map(|_| BatchWorkspace::new()).collect();
        // A database the server cannot open (version from the future,
        // unreadable path) must not stop serving: degrade to in-memory.
        let db = match &cfg.tuning_db {
            Some(path) => TuningDb::open(path).unwrap_or_else(|_| TuningDb::in_memory()),
            None => TuningDb::from_env(),
        };
        let refiner = cfg.background_refine.then(Refiner::spawn);
        GemmServer {
            scheduler: Scheduler::new(devices),
            cache: KernelCache::new(cfg.cache_capacity),
            repo,
            db,
            refiner,
            result_cache: ResultCache::new(cfg.result_cache_capacity),
            cfg,
            shared,
            next_batch: 0,
            responses: Vec::new(),
            workspaces,
            batch_workspaces,
        }
    }

    /// Enqueue a request on the calling thread.
    pub fn submit(&self, req: GemmRequest) -> Result<RequestId, RejectReason> {
        self.shared.submit(req)
    }

    /// A handle other threads can submit through.
    #[must_use]
    pub fn submitter(&self) -> Submitter {
        Submitter {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The device workers (virtual clocks, event logs).
    #[must_use]
    pub fn workers(&self) -> &[DeviceWorker] {
        self.scheduler.workers()
    }

    /// The kernel repository backing the cache.
    #[must_use]
    pub fn repo(&self) -> &KernelRepo {
        &self.repo
    }

    /// The persistent tuning database backing cold starts.
    #[must_use]
    pub fn tuning_db(&self) -> &TuningDb {
        &self.db
    }

    /// Absorb finished background refinements without blocking:
    /// upgrade their cache entries to [`Provenance::Refined`], commit
    /// them to the tuning database, and record their stats. Called
    /// automatically at the start of every [`GemmServer::drain`] and
    /// [`GemmServer::run_batched`]. Returns how many were absorbed.
    pub fn absorb_refines(&mut self) -> usize {
        let outcomes = match &mut self.refiner {
            Some(r) => r.try_drain(),
            None => Vec::new(),
        };
        self.apply_refines(outcomes)
    }

    /// Block until every in-flight background refinement has finished,
    /// then absorb them all (tests and orderly shutdown).
    pub fn wait_refines(&mut self) -> usize {
        let outcomes = match &mut self.refiner {
            Some(r) => r.wait(),
            None => Vec::new(),
        };
        self.apply_refines(outcomes)
    }

    fn apply_refines(&mut self, outcomes: Vec<RefineOutcome>) -> usize {
        let n = outcomes.len();
        for o in outcomes {
            let ckey = CacheKey {
                device: o.device.clone(),
                precision: o.precision,
                bucket: o.bucket,
            };
            self.cache.insert(ckey, o.best.params, Provenance::Refined);
            // Commit failures (read-only disk, in-memory db) only cost
            // persistence across restarts, never serving.
            let _ = self.db.commit(
                DbKey {
                    fingerprint: o.fingerprint,
                    m: o.bucket.m,
                    n: o.bucket.n,
                    k: o.bucket.k,
                    gemm: SERVE_GEMM_KEY.to_string(),
                    storage: o.precision.to_string(),
                },
                o.best.clone(),
            );
            self.shared
                .stats
                .note_refine(&o.device, o.seconds, o.predicted_gflops, o.best.gflops);
        }
        n
    }

    /// Mirror the kernel cache's counters into the serving stats.
    fn sync_cache_stats(&self) {
        let (hits, misses, evictions) = self.cache.counters();
        self.shared.stats.cache_hits.store(hits, Ordering::Relaxed);
        self.shared
            .stats
            .cache_misses
            .store(misses, Ordering::Relaxed);
        self.shared
            .stats
            .cache_evictions
            .store(evictions, Ordering::Relaxed);
        let by = self.cache.provenance_hits();
        for (slot, count) in self.shared.stats.hits_by_provenance.iter().zip(by) {
            slot.store(count, Ordering::Relaxed);
        }
    }

    /// A coherent copy of the serving counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Total staging-buffer growth events across all workers. A
    /// steady-state workload (repeated shape buckets) must leave this
    /// constant between drains — the bench smoke gate asserts it.
    #[must_use]
    pub fn workspace_grows(&self) -> u64 {
        self.workspaces.iter().map(Workspace::grows).sum()
    }

    /// Total bytes of staging storage currently held across workers.
    #[must_use]
    pub fn workspace_bytes(&self) -> usize {
        self.workspaces.iter().map(Workspace::held_bytes).sum()
    }

    /// Growth events across the strided-batched workspaces. Repeated
    /// same-shape batched calls must leave this constant (the batched
    /// bench smoke gate asserts it).
    #[must_use]
    pub fn batched_workspace_grows(&self) -> u64 {
        self.batch_workspaces
            .iter()
            .map(BatchWorkspace::grows)
            .sum()
    }

    /// Serve one strided-batched GEMM through the bypass path: cost the
    /// whole slab on every device with the batched performance model,
    /// place it on the least-loaded worker, execute it in one routine
    /// call, and charge the modelled seconds to that worker's virtual
    /// queue. The kernel cache is consulted (and populated) exactly as
    /// for queued requests, so batched and per-request traffic in the
    /// same shape bucket share one tuned parameter set.
    ///
    /// # Errors
    /// Returns the routine layer's [`BatchError`] when the descriptor
    /// and slab lengths disagree; the payload is consumed either way.
    pub fn run_batched(&mut self, req: BatchedRequest) -> Result<BatchedResponse, BatchError> {
        let _span = clgemm_trace::span!("serve.batched.execute");
        self.absorb_refines();
        let desc = req.desc;
        let precision = req.payload.precision();
        let key = BatchKey {
            precision,
            bucket: ShapeBucket::of(desc.m.max(1), desc.n.max(1), desc.k.max(1)),
        };
        let n_workers = self.scheduler.workers().len();
        let row: Vec<f64> = (0..n_workers)
            .map(|w| {
                let spec = self.scheduler.workers()[w].spec();
                batched_cost(spec, &desc, precision, self.resolve_quiet(spec, key))
            })
            .collect();
        let placement = self.scheduler.place(&[row]).pop().expect("one batch");
        let worker = placement.worker;
        let spec = self.scheduler.workers()[worker].spec().clone();
        let ckey = CacheKey {
            device: spec.code_name.clone(),
            precision,
            bucket: key.bucket,
        };
        let params = match self.cache.get(&ckey) {
            Some((p, _)) => p,
            None => {
                let (p, provenance) = self.resolve_miss(&spec, key);
                self.cache.insert(ckey, p, provenance);
                p
            }
        };
        let tuned = tuned_for(&spec, precision, params);

        let wall_start = Instant::now();
        let mut payload = req.payload;
        let run = execute_batched(
            &tuned,
            &desc,
            &mut payload,
            &mut self.batch_workspaces[worker],
        )?;
        let wall = wall_start.elapsed().as_secs_f64();

        let mut done_at = self.scheduler.workers()[worker].busy_until();
        if run.total > 0.0 {
            let w = self.scheduler.worker_mut(worker);
            w.submit(&format!("strided:{precision}:{desc}"), run.total);
            done_at = w.busy_until();
        }
        self.publish_admission_clock();
        self.shared
            .stats
            .record_batched(&spec.code_name, desc.batch as u64, run.total, wall);
        self.sync_cache_stats();
        Ok(BatchedResponse {
            device: spec.code_name.clone(),
            params,
            desc,
            payload,
            run,
            done_at,
        })
    }

    /// Served responses accumulated so far (completed *and* rejected),
    /// in execution order.
    pub fn take_responses(&mut self) -> Vec<GemmResponse> {
        std::mem::take(&mut self.responses)
    }

    /// Process queued requests (up to the configured drain quota) in
    /// weighted-fair order: credit the admission backlog, answer
    /// repeats from the result cache, deduplicate identical in-flight
    /// requests, then batch, place and execute the representatives and
    /// fan their results out. Returns the number of requests answered
    /// in this drain (executed, coalesced, or cached).
    pub fn drain(&mut self) -> usize {
        let _drain_span = clgemm_trace::span!("serve.drain");
        self.absorb_refines();
        let pending = self.shared.queue.drain_fair(self.cfg.drain_quota);
        if pending.is_empty() {
            return 0;
        }
        // The drained work is no longer queued backlog.
        for p in &pending {
            self.shared.admission.credit(p.admit_cost);
        }

        // --- idempotent coalescing --------------------------------------
        // One leader per content key executes; duplicates ("followers")
        // park here and receive the leader's result. Repeats of inputs
        // served in an earlier drain are answered from the result cache
        // without queueing any work at all.
        let mut leaders: Vec<PendingRequest> = Vec::new();
        let mut leader_at: HashMap<ContentKey, usize> = HashMap::new();
        let mut leader_key: HashMap<RequestId, ContentKey> = HashMap::new();
        let mut followers: HashMap<ContentKey, Vec<PendingRequest>> = HashMap::new();
        let mut answered = 0usize;
        for p in pending {
            if !self.cfg.coalesce_idempotent {
                leaders.push(p);
                continue;
            }
            let key = content_key(&p.req);
            if let Some(cached) = self.result_cache.get(&key) {
                let cached = cached.clone();
                self.answer_from_cache(p, &cached);
                answered += 1;
                continue;
            }
            match leader_at.get(&key) {
                Some(&i) => {
                    // The member with the most permissive deadline
                    // leads: if the guard sheds the leader, every
                    // follower (tighter or equal deadline) would have
                    // been shed too, so fanning the outcome out stays
                    // truthful.
                    if more_permissive(p.req.deadline, leaders[i].req.deadline) {
                        let old = std::mem::replace(&mut leaders[i], p);
                        leader_key.remove(&old.id);
                        leader_key.insert(leaders[i].id, key);
                        followers.entry(key).or_default().push(old);
                    } else {
                        followers.entry(key).or_default().push(p);
                    }
                }
                None => {
                    leader_at.insert(key, leaders.len());
                    leader_key.insert(p.id, key);
                    leaders.push(p);
                }
            }
        }
        if leaders.is_empty() {
            self.publish_admission_clock();
            return answered;
        }

        let batches = {
            let _g = clgemm_trace::span!("serve.batch");
            coalesce(leaders, self.cfg.max_batch, self.next_batch)
        };
        self.next_batch += batches.len() as u64;

        let _sched_span = clgemm_trace::span!("serve.schedule");
        // --- cost every batch on every device (no cache-stat churn) ----
        let n_workers = self.scheduler.workers().len();
        let mut costs: Vec<Vec<f64>> = Vec::with_capacity(batches.len());
        for batch in &batches {
            let row = (0..n_workers)
                .map(|w| {
                    let spec = self.scheduler.workers()[w].spec();
                    let params = self.resolve_quiet(spec, batch.key);
                    batch_cost(spec, batch, params)
                })
                .collect();
            costs.push(row);
        }

        // --- least-loaded placement + work stealing ---------------------
        let placements = self.scheduler.place(&costs);
        drop(_sched_span);

        // --- execute, batch by batch, then fan results out --------------
        let mut modelled_seconds = 0.0;
        let mut modelled_flops = 0.0;
        for (batch, placement) in batches.into_iter().zip(placements) {
            if placement.stolen {
                self.shared.stats.steals.fetch_add(1, Ordering::Relaxed);
            }
            let first_new = self.responses.len();
            answered += self.run_batch(batch, placement.worker);
            // Fan this batch's results out to parked duplicates, feed
            // the admission EWMA, and remember results for future
            // repeats. Indices, not iterators: fan-out appends.
            for i in first_new..self.responses.len() {
                let r = &self.responses[i];
                if r.outcome == Outcome::Completed {
                    modelled_seconds += r.run.total;
                    modelled_flops += r.payload.flops(r.ty);
                }
                let Some(key) = leader_key.get(&r.id).copied() else {
                    continue;
                };
                if r.outcome == Outcome::Completed {
                    self.result_cache.insert(
                        key,
                        CachedResult {
                            device: r.device.clone(),
                            params: r.params,
                            run: r.run,
                            done_at: r.done_at,
                            batch: r.batch,
                            c: CachedC::capture(&r.payload),
                        },
                    );
                }
                if let Some(parked) = followers.remove(&key) {
                    answered += self.fan_out(i, parked);
                }
            }
        }
        if modelled_flops > 0.0 {
            self.shared
                .admission
                .observe_secs_per_flop(modelled_seconds / modelled_flops);
        }
        self.publish_admission_clock();

        // Mirror the cache's own counters into the serving stats.
        self.sync_cache_stats();
        answered
    }

    /// Publish the earliest-free device clock so submit-side admission
    /// projections start from where the fleet actually is.
    fn publish_admission_clock(&self) {
        let min_busy = self
            .scheduler
            .workers()
            .iter()
            .map(DeviceWorker::busy_until)
            .fold(f64::INFINITY, f64::min);
        self.shared.admission.publish_min_busy(min_busy);
    }

    /// Answer one request straight from the result cache: same device,
    /// parameters, and result bits as the original execution.
    fn answer_from_cache(&mut self, p: PendingRequest, cached: &CachedResult) {
        let PendingRequest {
            id,
            enqueued_ns,
            mut req,
            ..
        } = p;
        let wait_ns = clgemm_trace::now_ns().saturating_sub(enqueued_ns);
        self.shared.stats.observe_queue_wait(wait_ns as f64 * 1e-9);
        self.shared
            .stats
            .note_tenant_completed(&req.tenant, wait_ns as f64 * 1e-9);
        self.shared.stats.record_coalesced(&cached.device, 1);
        cached.c.write_into(&mut req.payload);
        clgemm_trace::event!("serve.request.coalesce_hit", id);
        self.responses.push(GemmResponse {
            id,
            batch: cached.batch,
            device: cached.device.clone(),
            params: cached.params,
            ty: req.ty,
            payload: req.payload,
            run: cached.run,
            done_at: cached.done_at,
            outcome: Outcome::Completed,
        });
    }

    /// Fan a leader's response (at `leader_idx` in `self.responses`)
    /// out to its parked duplicates. Returns how many were answered
    /// (completed followers; a shed leader sheds its followers too —
    /// it had the loosest deadline, so they would all have missed).
    fn fan_out(&mut self, leader_idx: usize, parked: Vec<PendingRequest>) -> usize {
        let (batch, device, params, run, done_at, outcome, result) = {
            let leader = &self.responses[leader_idx];
            (
                leader.batch,
                leader.device.clone(),
                leader.params,
                leader.run,
                leader.done_at,
                leader.outcome,
                (leader.outcome == Outcome::Completed).then(|| CachedC::capture(&leader.payload)),
            )
        };
        let mut answered = 0usize;
        for f in parked {
            let PendingRequest {
                id,
                enqueued_ns,
                mut req,
                ..
            } = f;
            let wait_ns = clgemm_trace::now_ns().saturating_sub(enqueued_ns);
            self.shared.stats.observe_queue_wait(wait_ns as f64 * 1e-9);
            if let Some(result) = &result {
                // Bit-identical: the leader's C is copied, not
                // recomputed, so duplicates can never diverge.
                result.write_into(&mut req.payload);
                self.shared
                    .stats
                    .note_tenant_completed(&req.tenant, wait_ns as f64 * 1e-9);
                self.shared.stats.record_coalesced(&device, 1);
                answered += 1;
            } else {
                self.shared
                    .stats
                    .rejected_deadline_late
                    .fetch_add(1, Ordering::Relaxed);
            }
            clgemm_trace::event!("serve.request.coalesce_fanout", id);
            self.responses.push(GemmResponse {
                id,
                batch,
                device: device.clone(),
                params,
                ty: req.ty,
                payload: req.payload,
                run,
                done_at,
                outcome,
            });
        }
        answered
    }

    /// Execute one batch on one worker; returns completed requests.
    fn run_batch(&mut self, batch: Batch, worker: usize) -> usize {
        let _batch_span = clgemm_trace::span!("serve.batch.execute", batch.id);
        let spec = self.scheduler.workers()[worker].spec().clone();
        let key = batch.key;
        let ckey = CacheKey {
            device: spec.code_name.clone(),
            precision: key.precision,
            bucket: key.bucket,
        };
        let params = match self.cache.get(&ckey) {
            Some((p, _)) => p,
            None => {
                let (p, provenance) = self.resolve_miss(&spec, key);
                self.cache.insert(ckey, p, provenance);
                p
            }
        };
        let tuned = tuned_for(&spec, key.precision, params);

        // Last-resort deadline guard. Admission already projected (and
        // shed on) the deadline at submit; this check re-projects with
        // what admission could not know — the actual batch this request
        // landed in and the actual device clock — and sheds the
        // residual misses. (A shed member only shortens the batch, so
        // survivors can only finish earlier than projected — never
        // later.)
        let start = self.scheduler.workers()[worker].busy_until();
        let projected_end = start + batch_cost(&spec, &batch, params);

        let wall_start = Instant::now();
        let mut total_seconds = 0.0;
        let mut served: Vec<GemmResponse> = Vec::with_capacity(batch.requests.len());
        for pending in batch.requests {
            let PendingRequest {
                id,
                enqueued_ns,
                mut req,
                ..
            } = pending;
            let dp = key.precision == Precision::F64;
            let (m, n, k) = req.payload.dims(req.ty);
            // The request's queue wait ends now, when its batch starts
            // on a device queue. Recorded retroactively so the span
            // covers the interval the submitter actually waited.
            let wait_ns = clgemm_trace::now_ns().saturating_sub(enqueued_ns);
            self.shared.stats.observe_queue_wait(wait_ns as f64 * 1e-9);
            clgemm_trace::ring::record("serve.request.queue_wait", id, enqueued_ns, wait_ns);
            if req.deadline.is_some_and(|d| d < projected_end) {
                // How late the request would actually have been —
                // admission's signed slack was already recorded at
                // submit; only the guard's lateness is news here.
                self.shared
                    .stats
                    .observe_deadline_slack(req.deadline.expect("checked") - projected_end);
                self.shared
                    .stats
                    .rejected_deadline_late
                    .fetch_add(1, Ordering::Relaxed);
                served.push(GemmResponse {
                    id,
                    batch: batch.id,
                    device: spec.code_name.clone(),
                    params,
                    ty: req.ty,
                    run: tuned.predict(dp, req.ty, m.max(1), n.max(1), k.max(1)),
                    done_at: start,
                    outcome: Outcome::MissedDeadline,
                    payload: req.payload,
                });
                continue;
            }
            let run = {
                let _g = clgemm_trace::span!("serve.request.execute", id);
                execute(
                    &tuned,
                    req.ty,
                    &mut req.payload,
                    &mut self.workspaces[worker],
                )
            };
            total_seconds += run.total;
            self.shared
                .stats
                .note_tenant_completed(&req.tenant, wait_ns as f64 * 1e-9);
            clgemm_trace::event!("serve.request.complete", id);
            served.push(GemmResponse {
                id,
                batch: batch.id,
                device: spec.code_name.clone(),
                params,
                ty: req.ty,
                run,
                done_at: 0.0, // patched below once the batch end is known
                outcome: Outcome::Completed,
                payload: req.payload,
            });
        }

        let completed = served
            .iter()
            .filter(|r| r.outcome == Outcome::Completed)
            .count();
        // Substitutions the clamp used to hide: completed requests whose
        // host register tile differed from the tuned blocking.
        let tile_subs = served
            .iter()
            .filter(|r| {
                r.outcome == Outcome::Completed && r.run.tile.is_some_and(|d| d.substituted())
            })
            .count();
        if completed > 0 {
            let name = format!("batch{}:{}{}", batch.id, key.precision, key.bucket);
            let w = self.scheduler.worker_mut(worker);
            w.submit(&name, total_seconds);
            let done_at = w.busy_until();
            for r in &mut served {
                if r.outcome == Outcome::Completed {
                    r.done_at = done_at;
                }
            }
            // `completed` is folded into `record_batch` (under the
            // per-device lock) so snapshots see the two consistently.
            self.shared.stats.record_batch(
                &spec.code_name,
                completed as u64,
                total_seconds,
                wall_start.elapsed().as_secs_f64(),
                tile_subs as u64,
            );
        }
        self.responses.extend(served);
        completed
    }

    /// Parameters a batch *would* use on a device, without touching
    /// cache order, counters, or the tuner (used for placement costs).
    fn resolve_quiet(&self, spec: &DeviceSpec, key: BatchKey) -> KernelParams {
        let ckey = CacheKey {
            device: spec.code_name.clone(),
            precision: key.precision,
            bucket: key.bucket,
        };
        if let Some(p) = self.cache.peek(&ckey) {
            return *p;
        }
        fallback_params(&self.repo, spec, key)
    }

    /// Miss path, in resolution order: the persistent tuning database
    /// (a restarted server warms from disk), then the analytical
    /// predictor (instant, zero search, refined in the background),
    /// then the legacy chain — synchronous tuning when configured,
    /// repo, the paper's winners, the conservative test kernel.
    fn resolve_miss(&mut self, spec: &DeviceSpec, key: BatchKey) -> (KernelParams, Provenance) {
        let dbkey = serve_db_key(spec, key);
        match self.db.get(&dbkey) {
            Some(m) if launchable(spec, m.params, key) => {
                self.shared.stats.note_db_hit();
                return (m.params, Provenance::Persisted);
            }
            Some(_) => self.shared.stats.note_db_stale(),
            None => self.shared.stats.note_db_miss(),
        }
        if self.cfg.predict {
            if let Some(pred) = predict_best(spec, key.precision) {
                if launchable(spec, pred.params, key) {
                    self.shared.stats.note_predict_cold_start();
                    if let Some(refiner) = &mut self.refiner {
                        refiner.enqueue(RefineJob {
                            spec: spec.clone(),
                            precision: key.precision,
                            bucket: key.bucket,
                            predicted_gflops: pred.gflops,
                        });
                    }
                    return (pred.params, Provenance::Predicted);
                }
            }
        }
        if self.cfg.tune_misses && self.repo.get(&spec.code_name, key.precision).is_none() {
            let space = SearchSpace::smoke(spec);
            let opts = SearchOpts {
                top_k: 4,
                max_sweep_points: 4,
                verify_winner: false,
                ..Default::default()
            };
            let best = self
                .repo
                .get_or_tune(spec, key.precision, &space, &opts)
                .best
                .clone();
            if launchable(spec, best.params, key) {
                // A synchronous search is a refinement too: persist it
                // so the next process start skips straight to it.
                let params = best.params;
                let _ = self.db.commit(dbkey, best);
                return (params, Provenance::Refined);
            }
        }
        (
            fallback_params(&self.repo, spec, key),
            Provenance::Persisted,
        )
    }
}

/// Is deadline `a` at least as easy to meet as deadline `b`?
/// (`None` = no deadline = infinitely permissive.)
fn more_permissive(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (None, Some(_)) => true,
        (Some(a), Some(b)) => a > b,
        (_, None) => false,
    }
}

/// Seed the admission controller's seconds-per-flop estimate from the
/// device cost model: the best (smallest) modelled rate across the
/// fleet for a reference 128³ double-precision GEMM. An optimistic
/// seed under-sheds on the first drain and the EWMA corrects within a
/// few batches — the safe failure mode (the pessimistic direction
/// would shed meetable requests while cold).
fn seed_secs_per_flop(repo: &KernelRepo, devices: &[DeviceSpec]) -> f64 {
    let reference = 128usize;
    let key = BatchKey {
        precision: Precision::F64,
        bucket: ShapeBucket::of(reference, reference, reference),
    };
    let flops = 2.0 * (reference as f64).powi(3);
    devices
        .iter()
        .map(|spec| {
            let params = fallback_params(repo, spec, key);
            let tuned = tuned_for(spec, Precision::F64, params);
            tuned
                .predict(true, GemmType::NN, reference, reference, reference)
                .total
                / flops
        })
        .filter(|s| s.is_finite() && *s > 0.0)
        .fold(f64::INFINITY, f64::min)
        .min(1e-6) // ceiling: never seed slower than 1 MFlop/s
}

/// GEMM-type slot of the serving layer's database keys: the cache is
/// bucketed by shape alone (all four GEMM types share one entry), so
/// the persisted key uses a wildcard rather than a specific type.
const SERVE_GEMM_KEY: &str = "*";

/// The tuning-database key for one (device, precision, bucket) slot.
fn serve_db_key(spec: &DeviceSpec, key: BatchKey) -> DbKey {
    DbKey {
        fingerprint: spec.fingerprint(),
        m: key.bucket.m,
        n: key.bucket.n,
        k: key.bucket.k,
        gemm: SERVE_GEMM_KEY.to_string(),
        storage: key.precision.to_string(),
    }
}

/// Repo → paper Table II → small test kernel, first launchable wins.
fn fallback_params(repo: &KernelRepo, spec: &DeviceSpec, key: BatchKey) -> KernelParams {
    let chain = [
        repo.get(&spec.code_name, key.precision)
            .map(|r| r.best.params),
        paper_winner(spec, key.precision),
        Some(small_test_params(key.precision)),
    ];
    for p in chain.into_iter().flatten() {
        if launchable(spec, p, key) {
            return p;
        }
    }
    small_test_params(key.precision)
}

/// The paper's Table II winner for this device/precision, if the device
/// is one of the paper's six.
fn paper_winner(spec: &DeviceSpec, precision: Precision) -> Option<KernelParams> {
    clgemm::paper_params::all_winners()
        .into_iter()
        .find(|e| e.params.precision == precision && e.device.spec().code_name == spec.code_name)
        .map(|e| e.params)
}

/// Can `params` launch a bucket-sized problem on this device at all?
fn launchable(spec: &DeviceSpec, params: KernelParams, key: BatchKey) -> bool {
    let m = round_up(key.bucket.m, params.mwg);
    let n = round_up(key.bucket.n, params.nwg);
    let k = round_up(key.bucket.k, params.k_multiple());
    let prof = launch_profile(&params, spec, m, n, k);
    estimate_seconds(spec, &prof).is_some()
}

/// Modelled cost of running every member of `batch` with `params` on
/// `spec` (infinite when the kernel cannot launch there).
fn batch_cost(spec: &DeviceSpec, batch: &Batch, params: KernelParams) -> f64 {
    let tuned = tuned_for(spec, batch.key.precision, params);
    let dp = batch.key.precision == Precision::F64;
    batch
        .requests
        .iter()
        .map(|p| {
            let (m, n, k) = p.req.payload.dims(p.req.ty);
            tuned
                .predict(dp, p.req.ty, m.max(1), n.max(1), k.max(1))
                .total
        })
        .sum()
}

/// Modelled cost of one strided-batched call with `params` on `spec`:
/// the direct model below the crossover edge, the packed model above
/// it (infinite when the kernel cannot launch there).
fn batched_cost(
    spec: &DeviceSpec,
    desc: &GemmBatch,
    precision: Precision,
    params: KernelParams,
) -> f64 {
    let tuned = tuned_for(spec, precision, params);
    if desc.m.max(desc.n).max(desc.k) <= DIRECT_BATCH_MAX {
        // The direct model depends only on the accumulation precision,
        // so costing with the widened type is exact for f16/bf16 too.
        match precision {
            Precision::F64 => tuned.predict_batch_direct::<f64>(desc),
            Precision::F32 => tuned.predict_batch_direct::<f32>(desc),
        }
    } else {
        tuned.predict_batch(precision == Precision::F64, desc)
    }
}

/// Run the strided batch in place through the routine layer's batched
/// entry point, staging through the worker's reusable batch workspace.
fn execute_batched(
    tuned: &TunedGemm,
    desc: &GemmBatch,
    payload: &mut BatchedPayload,
    ws: &mut BatchWorkspace,
) -> Result<BatchRun, BatchError> {
    match payload {
        BatchedPayload::F64 {
            alpha,
            a,
            b,
            beta,
            c,
        } => tuned.gemm_batch(desc, *alpha, a, b, *beta, c, ws),
        BatchedPayload::F32 {
            alpha,
            a,
            b,
            beta,
            c,
        } => tuned.gemm_batch(desc, *alpha, a, b, *beta, c, ws),
        BatchedPayload::F16 {
            alpha,
            a,
            b,
            beta,
            c,
        } => tuned.gemm_batch(desc, *alpha, a, b, *beta, c, ws),
        BatchedPayload::Bf16 {
            alpha,
            a,
            b,
            beta,
            c,
        } => tuned.gemm_batch(desc, *alpha, a, b, *beta, c, ws),
    }
}

/// Bundle one precision's params with a conservative kernel for the
/// other precision (a `TunedGemm` always carries both).
fn tuned_for(spec: &DeviceSpec, precision: Precision, params: KernelParams) -> TunedGemm {
    match precision {
        Precision::F64 => TunedGemm::new(spec.clone(), params, small_test_params(Precision::F32)),
        Precision::F32 => TunedGemm::new(spec.clone(), small_test_params(Precision::F64), params),
    }
}

/// Run the request's GEMM in place through the routine layer, staging
/// through the worker's reusable workspace.
fn execute(
    tuned: &TunedGemm,
    ty: GemmType,
    payload: &mut GemmPayload,
    ws: &mut Workspace,
) -> GemmRun {
    let opts = GemmOptions::default();
    match payload {
        GemmPayload::F64 {
            alpha,
            a,
            b,
            beta,
            c,
        } => tuned.gemm_with(ty, *alpha, a, b, *beta, c, ws, &opts),
        GemmPayload::F32 {
            alpha,
            a,
            b,
            beta,
            c,
        } => tuned.gemm_with(ty, *alpha, a, b, *beta, c, ws, &opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;
    use clgemm_blas::matrix::{Matrix, StorageOrder};
    use clgemm_device::DeviceId;

    fn request(n: usize, seed: u64) -> GemmRequest {
        GemmRequest::new(
            GemmType::NN,
            GemmPayload::F64 {
                alpha: 1.0,
                a: Matrix::test_pattern(n, n, StorageOrder::ColMajor, seed),
                b: Matrix::test_pattern(n, n, StorageOrder::ColMajor, seed + 1),
                beta: 0.5,
                c: Matrix::test_pattern(n, n, StorageOrder::ColMajor, seed + 2),
            },
        )
    }

    fn two_device_server(cfg: ServeConfig) -> GemmServer {
        GemmServer::new(vec![DeviceId::Tahiti.spec(), DeviceId::Cayman.spec()], cfg)
    }

    #[test]
    fn backpressure_rejects_when_the_queue_is_full() {
        let server = two_device_server(ServeConfig {
            queue_capacity: 2,
            ..Default::default()
        });
        assert!(server.submit(request(32, 1)).is_ok());
        assert!(server.submit(request(32, 2)).is_ok());
        match server.submit(request(32, 3)) {
            Err(RejectReason::QueueFull(req)) => {
                // The rejected request comes back intact.
                assert_eq!(req.payload.dims(GemmType::NN), (32, 32, 32));
            }
            _ => panic!("third submit must bounce with QueueFull"),
        }
        assert_eq!(server.stats().rejected_queue_full, 1);
        assert_eq!(server.stats().enqueued, 2);
    }

    #[test]
    fn drain_serves_everything_and_counts_cache_hits() {
        let mut server = two_device_server(ServeConfig::default());
        for seed in 0..6 {
            server.submit(request(48, seed * 10)).unwrap();
        }
        assert_eq!(server.drain(), 6);
        let stats = server.stats();
        assert_eq!(stats.completed, 6);
        assert!(stats.batches >= 1);
        assert!(stats.max_batch > 1, "same-bucket requests must coalesce");
        // 6 same-bucket requests on at most 2 devices: at most 2 misses.
        assert!(stats.cache_misses <= 2);
        let responses = server.take_responses();
        assert_eq!(responses.len(), 6);
        assert!(responses.iter().all(|r| r.outcome == Outcome::Completed));
        assert!(responses
            .iter()
            .all(|r| r.run.total > 0.0 && r.done_at > 0.0));
    }

    #[test]
    fn second_drain_of_same_bucket_hits_the_cache() {
        let mut server = two_device_server(ServeConfig::default());
        server.submit(request(64, 1)).unwrap();
        server.drain();
        let misses_before = server.stats().cache_misses;
        server.submit(request(80, 2)).unwrap(); // same 128-bucket? no: 64 vs 128
        server.submit(request(64, 3)).unwrap();
        server.drain();
        let stats = server.stats();
        assert!(
            stats.cache_hits >= 1,
            "repeat bucket on the same device must hit"
        );
        assert!(stats.cache_misses >= misses_before);
    }

    #[test]
    fn deadlines_in_the_past_are_shed_at_admission() {
        let mut server = two_device_server(ServeConfig::default());
        // A deadline of 0.0 can never be met: projected completion is
        // strictly positive, so admission sheds it at submit.
        match server.submit(request(48, 1).with_deadline(0.0)) {
            Err(RejectReason::DeadlineUnmeetable { req, lateness }) => {
                assert!(lateness > 0.0, "lateness must be the positive magnitude");
                // The shed request comes back with C untouched.
                match &req.payload {
                    GemmPayload::F64 { c, .. } => {
                        let expect = Matrix::test_pattern(48, 48, StorageOrder::ColMajor, 3);
                        assert_eq!(c, &expect);
                    }
                    GemmPayload::F32 { .. } => panic!("wrong precision"),
                }
            }
            _ => panic!("an unmeetable deadline must be rejected at admission"),
        }
        server.submit(request(48, 2)).unwrap();
        assert_eq!(server.drain(), 1);
        let stats = server.stats();
        assert_eq!(stats.rejected_deadline_admit, 1);
        assert_eq!(stats.rejected_deadline_late, 0);
        assert_eq!(stats.completed, 1);
        assert_eq!(
            stats.deadline_lateness.count, 1,
            "the shed request's lateness lands in the lateness histogram"
        );
        assert_eq!(stats.enqueued, 1, "shed requests are never enqueued");
    }

    #[test]
    fn the_batch_guard_sheds_deadlines_missed_after_admission() {
        let mut server = two_device_server(ServeConfig::default());
        // Make admission maximally optimistic (zero cost estimate) so a
        // tiny positive deadline is admitted — then the in-batch guard,
        // which sees the real modelled completion time, must catch it.
        f64_store(&server.shared.admission.secs_per_flop, 0.0);
        server.submit(request(48, 1).with_deadline(1e-12)).unwrap();
        server.submit(request(48, 2)).unwrap();
        assert_eq!(server.drain(), 1);
        let stats = server.stats();
        assert_eq!(stats.rejected_deadline_admit, 0);
        assert_eq!(stats.rejected_deadline_late, 1);
        assert_eq!(stats.completed, 1);
        let responses = server.take_responses();
        let shed = responses
            .iter()
            .find(|r| r.outcome == Outcome::MissedDeadline)
            .unwrap();
        // The shed request's C is untouched.
        match &shed.payload {
            GemmPayload::F64 { c, .. } => {
                let expect = Matrix::test_pattern(48, 48, StorageOrder::ColMajor, 3);
                assert_eq!(c, &expect);
            }
            GemmPayload::F32 { .. } => panic!("wrong precision"),
        }
    }

    #[test]
    fn low_priority_is_shed_past_the_high_watermark() {
        let server = two_device_server(ServeConfig {
            queue_capacity: 4,
            high_watermark: 0.5,
            ..Default::default()
        });
        server.submit(request(32, 1)).unwrap();
        server.submit(request(32, 2)).unwrap();
        // Fill is at the watermark: bulk work sheds, urgent work lands.
        let shed = server.submit(request(32, 3).with_priority(Priority::Low));
        assert!(matches!(shed, Err(RejectReason::Overloaded(_))));
        server.submit(request(32, 4)).unwrap();
        let stats = server.stats();
        assert_eq!(stats.shed_low_priority, 1);
        assert_eq!(stats.enqueued, 3);
    }

    #[test]
    fn identical_concurrent_requests_share_one_execution() {
        let mut server = two_device_server(ServeConfig::default());
        server.submit(request(48, 7)).unwrap();
        server.submit(request(48, 7)).unwrap(); // bit-identical duplicate
        server.submit(request(48, 8)).unwrap(); // same bucket, different bits
        assert_eq!(server.drain(), 3);
        let stats = server.stats();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.coalesce_hits, 1, "the duplicate must coalesce");
        let responses = server.take_responses();
        assert!(responses.iter().all(|r| r.outcome == Outcome::Completed));
        let dupes: Vec<_> = responses.iter().filter(|r| r.id <= 1).collect();
        assert_eq!(dupes.len(), 2);
        let bits = |r: &GemmResponse| match &r.payload {
            GemmPayload::F64 { c, .. } => {
                c.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            }
            GemmPayload::F32 { .. } => panic!("wrong precision"),
        };
        assert_eq!(
            bits(dupes[0]),
            bits(dupes[1]),
            "coalesced duplicates must be bit-identical"
        );
        assert_eq!(dupes[0].device, dupes[1].device);
        assert_eq!(dupes[0].params, dupes[1].params);
    }

    #[test]
    fn repeats_across_drains_hit_the_result_cache() {
        let mut server = two_device_server(ServeConfig::default());
        server.submit(request(48, 7)).unwrap();
        server.drain();
        let first = server.take_responses().pop().unwrap();
        server.submit(request(48, 7)).unwrap();
        assert_eq!(server.drain(), 1);
        let stats = server.stats();
        assert_eq!(stats.coalesce_hits, 1, "the repeat must replay");
        assert_eq!(stats.completed, 2);
        let replay = server.take_responses().pop().unwrap();
        // Same device, parameters, and result bits as the original.
        assert_eq!(replay.device, first.device);
        assert_eq!(replay.params, first.params);
        match (&first.payload, &replay.payload) {
            (GemmPayload::F64 { c: a, .. }, GemmPayload::F64 { c: b, .. }) => {
                assert_eq!(a, b, "a replayed result must be bit-identical");
            }
            _ => panic!("wrong precision"),
        }
    }

    #[test]
    fn coalescing_can_be_disabled() {
        let mut server = two_device_server(ServeConfig {
            coalesce_idempotent: false,
            ..Default::default()
        });
        server.submit(request(48, 7)).unwrap();
        server.submit(request(48, 7)).unwrap();
        assert_eq!(server.drain(), 2);
        let stats = server.stats();
        assert_eq!(stats.coalesce_hits, 0);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn tenants_are_accounted_separately() {
        let mut server = two_device_server(ServeConfig {
            tenant_weights: vec![("bulk".into(), 4)],
            ..Default::default()
        });
        server.submit(request(48, 1).with_tenant("inter")).unwrap();
        server.submit(request(48, 2).with_tenant("bulk")).unwrap();
        server.drain();
        let stats = server.stats();
        let inter = &stats.per_tenant["inter"];
        assert_eq!((inter.admitted, inter.completed, inter.shed), (1, 1, 0));
        let bulk = &stats.per_tenant["bulk"];
        assert_eq!((bulk.admitted, bulk.completed), (1, 1));
    }

    #[test]
    fn multiple_buckets_spread_across_devices() {
        let mut server = two_device_server(ServeConfig::default());
        for i in 0..4 {
            server.submit(request(40, i)).unwrap(); // bucket 64³
            server.submit(request(100, i + 50)).unwrap(); // bucket 128³
        }
        assert_eq!(server.drain(), 8);
        let stats = server.stats();
        assert_eq!(
            stats.devices_used(),
            2,
            "two buckets must use both devices:\n{stats}"
        );
    }

    #[test]
    fn priorities_schedule_high_before_low() {
        let mut server = two_device_server(ServeConfig::default());
        server
            .submit(request(32, 1).with_priority(Priority::Low))
            .unwrap();
        server
            .submit(request(200, 2).with_priority(Priority::High))
            .unwrap();
        server.drain();
        let responses = server.take_responses();
        // Execution order follows batch order: the high-priority bucket
        // was formed (and run) first.
        assert_eq!(responses[0].id, 1);
        assert_eq!(responses[1].id, 0);
    }

    #[test]
    fn steady_state_drains_stop_growing_workspaces() {
        let mut server = two_device_server(ServeConfig::default());
        // Warm-up: least-loaded placement alternates workers between
        // drains, so two rounds size every worker's staging buffers.
        for round in 0..2 {
            for seed in 0..4 {
                server.submit(request(48, round * 10 + seed)).unwrap();
            }
            server.drain();
        }
        let grows = server.workspace_grows();
        assert!(grows > 0, "warm-up must allocate staging buffers");
        assert!(server.workspace_bytes() > 0);
        // Steady state: same shape bucket, repeatedly. No new growth.
        for round in 0..3 {
            for seed in 0..4 {
                server.submit(request(48, 100 + round * 10 + seed)).unwrap();
            }
            server.drain();
        }
        assert_eq!(
            server.workspace_grows(),
            grows,
            "steady-state serving must not reallocate staging buffers"
        );
    }

    #[test]
    fn tile_substitutions_are_counted_against_the_responses() {
        let mut server = two_device_server(ServeConfig::default());
        for seed in 0..4 {
            server.submit(request(48, seed)).unwrap();
        }
        server.drain();
        let responses = server.take_responses();
        let completed: Vec<_> = responses
            .iter()
            .filter(|r| r.outcome == Outcome::Completed)
            .collect();
        assert!(!completed.is_empty());
        // Every completed request reports its tile decision; the server
        // counter is exactly the substituted ones (whatever the host's
        // SIMD width makes of the tuned blocking).
        assert!(completed.iter().all(|r| r.run.tile.is_some()));
        let expected = completed
            .iter()
            .filter(|r| r.run.tile.is_some_and(|d| d.substituted()))
            .count() as u64;
        let stats = server.stats();
        assert_eq!(stats.tile_substitutions, expected);
        let per_device: u64 = stats
            .per_device
            .values()
            .map(|d| d.tile_substitutions)
            .sum();
        assert_eq!(per_device, expected);
    }

    #[test]
    fn strided_batched_calls_bypass_the_queue() {
        let mut server = two_device_server(ServeConfig {
            registry: Some(Registry::new()),
            ..Default::default()
        });
        let desc = GemmBatch::packed(GemmType::NN, 8, 32, 32, 32);
        let len = 8 * 32 * 32;
        let a: Vec<f32> = (0..len).map(|i| (i % 7) as f32 * 0.5 - 1.0).collect();
        let b: Vec<f32> = (0..len).map(|i| (i % 5) as f32 * 0.25 - 0.5).collect();
        let c = vec![0.5f32; len];
        let req = BatchedRequest::new(
            desc,
            BatchedPayload::F32 {
                alpha: 1.0,
                a,
                b,
                beta: 0.0,
                c,
            },
        );
        let resp = server.run_batched(req).unwrap();
        assert_eq!(resp.run.path, clgemm::batched::BatchPath::Direct);
        assert_eq!(resp.run.batch, 8);
        assert!(resp.run.total > 0.0 && resp.done_at > 0.0);
        match &resp.payload {
            BatchedPayload::F32 { c, .. } => {
                assert!(c.iter().any(|&v| v != 0.5), "C must be written in place");
            }
            _ => panic!("payload type must round-trip"),
        }
        let stats = server.stats();
        assert_eq!(stats.batched_calls, 1);
        assert_eq!(stats.batched_entries, 8);
        assert_eq!(stats.enqueued, 0, "bypass calls never touch the queue");
        assert_eq!(
            stats
                .per_device
                .values()
                .filter(|d| d.batched_entries > 0)
                .count(),
            1
        );
    }

    #[test]
    fn repeated_batched_calls_reach_workspace_steady_state() {
        let mut server = two_device_server(ServeConfig {
            registry: Some(Registry::new()),
            ..Default::default()
        });
        // Past the direct crossover in one dimension: the packed path
        // runs and must stage through the per-worker batch workspace.
        let desc = GemmBatch::packed(GemmType::NN, 2, 288, 24, 24);
        let mk = |seed: usize, n: usize| -> Vec<f64> {
            (0..n)
                .map(|i| ((i + seed) % 9) as f64 * 0.5 - 2.0)
                .collect()
        };
        let req = || {
            BatchedRequest::new(
                desc,
                BatchedPayload::F64 {
                    alpha: 1.0,
                    a: mk(1, 2 * 288 * 24),
                    b: mk(2, 2 * 24 * 24),
                    beta: 0.5,
                    c: mk(3, 2 * 288 * 24),
                },
            )
        };
        let resp = server.run_batched(req()).unwrap();
        assert_eq!(resp.run.path, clgemm::batched::BatchPath::Packed);
        // Least-loaded placement may alternate devices; warm both.
        server.run_batched(req()).unwrap();
        let grows = server.batched_workspace_grows();
        assert!(grows > 0, "the packed path must allocate staging");
        for _ in 0..3 {
            server.run_batched(req()).unwrap();
        }
        assert_eq!(
            server.batched_workspace_grows(),
            grows,
            "steady-state batched serving must not reallocate"
        );
        // Both batched calls and queued requests share the stats view.
        let stats = server.stats();
        assert_eq!(stats.batched_calls, 5);
        assert_eq!(stats.batched_entries, 10);
        assert!(stats.batched_size.max >= 2.0);
    }

    #[test]
    fn tune_misses_populates_the_repo() {
        // The legacy synchronous path: predictor off, so a miss falls
        // through to the on-demand search.
        let mut server = GemmServer::new(
            vec![DeviceId::Tahiti.spec()],
            ServeConfig {
                tune_misses: true,
                predict: false,
                background_refine: false,
                tuning_db: None,
                ..Default::default()
            },
        );
        assert!(server.repo().is_empty());
        server.submit(request(64, 1)).unwrap();
        server.drain();
        assert_eq!(
            server.repo().len(),
            1,
            "the miss must have tuned and cached"
        );
        assert!(server.repo().get("Tahiti", Precision::F64).is_some());
        // The synchronous result was persisted to the (in-memory) db
        // and the entry is tagged as search-refined.
        assert_eq!(server.tuning_db().len(), 1);
        server.submit(request(64, 2)).unwrap();
        server.drain();
        assert_eq!(server.stats().hits_with(Provenance::Refined), 1);
    }

    /// A per-test tuning-database path under the system temp dir.
    fn db_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push("clgemm-serve-db-tests");
        std::fs::create_dir_all(&p).expect("temp dir");
        p.push(format!("{name}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn predicted_cold_start_skips_the_synchronous_tuner() {
        let mut server = GemmServer::new(
            vec![DeviceId::Tahiti.spec()],
            ServeConfig {
                tune_misses: true,
                predict: true,
                background_refine: false,
                tuning_db: None,
                registry: Some(Registry::new()),
                ..Default::default()
            },
        );
        server.submit(request(64, 1)).unwrap();
        assert_eq!(server.drain(), 1);
        assert!(
            server.repo().is_empty(),
            "the predictor must preempt the synchronous tuner"
        );
        let stats = server.stats();
        assert_eq!(stats.predict_cold_starts, 1);
        assert_eq!(stats.db_misses, 1);
        // A repeat in the same bucket hits the predicted entry.
        server.submit(request(64, 2)).unwrap();
        server.drain();
        assert_eq!(server.stats().hits_with(Provenance::Predicted), 1);
    }

    #[test]
    fn background_refines_upgrade_the_cache_and_persist_across_restart() {
        let path = db_path("refine");
        let cfg = ServeConfig {
            predict: true,
            background_refine: true,
            tuning_db: Some(path.clone()),
            registry: Some(Registry::new()),
            ..Default::default()
        };
        let mut server = GemmServer::new(vec![DeviceId::Tahiti.spec()], cfg.clone());
        server.submit(request(64, 1)).unwrap();
        server.drain();
        assert_eq!(server.stats().predict_cold_starts, 1);
        assert_eq!(server.wait_refines(), 1, "one refinement was enqueued");
        assert_eq!(server.stats().refines, 1);
        assert_eq!(server.tuning_db().len(), 1, "the refinement is committed");
        // The refined parameters now serve the bucket.
        server.submit(request(64, 2)).unwrap();
        server.drain();
        assert_eq!(server.stats().hits_with(Provenance::Refined), 1);
        drop(server);

        // Restart: a fresh server on the same path warms from disk —
        // no search, no prediction, just the persisted winner.
        let mut restarted = GemmServer::new(
            vec![DeviceId::Tahiti.spec()],
            ServeConfig {
                registry: Some(Registry::new()),
                ..cfg
            },
        );
        restarted.submit(request(64, 3)).unwrap();
        assert_eq!(restarted.drain(), 1);
        let stats = restarted.stats();
        assert_eq!(stats.db_hits, 1, "restart must warm from the database");
        assert_eq!(stats.predict_cold_starts, 0);
        restarted.submit(request(64, 4)).unwrap();
        restarted.drain();
        assert_eq!(restarted.stats().hits_with(Provenance::Persisted), 1);
        let _ = std::fs::remove_file(&path);
    }

    /// Valid parameters whose LDS footprint exceeds every built-in
    /// device's local memory — committable, loadable, never launchable.
    fn unlaunchable_params() -> KernelParams {
        use clgemm::params::{Algorithm, StrideMode};
        use clgemm_blas::layout::BlockLayout;
        let p = KernelParams {
            mwg: 128,
            nwg: 128,
            kwg: 64,
            mdimc: 16,
            ndimc: 16,
            kwi: 2,
            mdima: 16,
            ndimb: 16,
            vw: 2,
            stride_m: StrideMode::Unit,
            stride_n: StrideMode::Unit,
            local_a: true,
            local_b: true,
            layout_a: BlockLayout::Cbl,
            layout_b: BlockLayout::Cbl,
            algorithm: Algorithm::Ba,
            precision: Precision::F64,
        };
        p.validate().expect("poison params are structurally valid");
        p
    }

    #[test]
    fn stale_db_entries_fall_through_to_the_predictor() {
        let path = db_path("stale");
        let spec = DeviceId::Tahiti.spec();
        {
            let mut db = TuningDb::open(&path).expect("fresh db");
            let key = serve_db_key(
                &spec,
                BatchKey {
                    precision: Precision::F64,
                    bucket: ShapeBucket::of(64, 64, 64),
                },
            );
            db.commit(
                key,
                Measurement {
                    params: unlaunchable_params(),
                    n: 64,
                    gflops: 1.0,
                },
            )
            .expect("poison entry commits");
        }
        let mut server = GemmServer::new(
            vec![spec],
            ServeConfig {
                predict: true,
                background_refine: false,
                tuning_db: Some(path.clone()),
                registry: Some(Registry::new()),
                ..Default::default()
            },
        );
        server.submit(request(64, 1)).unwrap();
        assert_eq!(server.drain(), 1, "stale entry must not block serving");
        let stats = server.stats();
        assert_eq!(stats.db_stale, 1);
        assert_eq!(stats.db_hits, 0);
        assert_eq!(stats.predict_cold_starts, 1);
        let _ = std::fs::remove_file(&path);
    }
}
