//! Coalescing requests into grouped launches.
//!
//! Requests whose `(precision, shape bucket)` match run through the
//! same cached kernel, so the server groups them into one launch on one
//! device queue — the serving-stack analogue of kernel-dispatch
//! amortisation. Batches are ordered by the best priority they contain,
//! then by arrival.

use crate::request::{GemmRequest, PendingRequest, Priority, ShapeBucket};
use clgemm_blas::scalar::Precision;
use std::collections::HashMap;

/// What a batch shares: one precision, one shape bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchKey {
    pub precision: Precision,
    pub bucket: ShapeBucket,
}

impl BatchKey {
    /// The key a request batches under.
    #[must_use]
    pub fn of(req: &GemmRequest) -> BatchKey {
        BatchKey {
            precision: req.payload.precision(),
            bucket: req.bucket(),
        }
    }
}

/// A grouped launch: same-key requests that will run back to back on
/// one device queue.
#[derive(Debug)]
pub struct Batch {
    pub id: u64,
    pub key: BatchKey,
    pub requests: Vec<PendingRequest>,
}

impl Batch {
    /// Number of requests in the group.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` for an empty group (never produced by [`coalesce`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The best (lowest-rank) priority in the group.
    #[must_use]
    pub fn priority(&self) -> Priority {
        self.requests
            .iter()
            .map(|p| p.req.priority)
            .min_by_key(|p| p.rank())
            .unwrap_or_default()
    }
}

/// Group pending requests into batches of at most `max_batch`.
///
/// Grouping is by [`BatchKey`]; requests keep arrival order within a
/// group, and groups are emitted best-priority-first (ties broken by
/// the earliest request they contain) so urgent work schedules ahead
/// of bulk work. `first_id` numbers the produced batches.
#[must_use]
pub fn coalesce(pending: Vec<PendingRequest>, max_batch: usize, first_id: u64) -> Vec<Batch> {
    assert!(max_batch > 0, "max_batch must be positive");
    // Stable grouping: a Vec of groups in first-seen order keeps batch
    // numbering deterministic; a HashMap indexes into it so each
    // request finds its group in O(1) instead of scanning every group
    // (the old linear scan was quadratic on the saturation bench's
    // thousands-deep drains).
    let mut groups: Vec<(BatchKey, Vec<PendingRequest>)> = Vec::new();
    let mut index: HashMap<BatchKey, usize> = HashMap::new();
    for pending_req in pending {
        let key = BatchKey::of(&pending_req.req);
        match index.get(&key) {
            Some(&i) => groups[i].1.push(pending_req),
            None => {
                index.insert(key, groups.len());
                groups.push((key, vec![pending_req]));
            }
        }
    }
    // Urgent groups first; earliest arrival breaks ties.
    groups.sort_by_key(|(_, members)| {
        let best = members
            .iter()
            .map(|p| p.req.priority.rank())
            .min()
            .unwrap_or(u8::MAX);
        let first = members.iter().map(|p| p.id).min().unwrap_or(u64::MAX);
        (best, first)
    });

    let mut batches = Vec::new();
    let mut next_id = first_id;
    for (key, members) in groups {
        let mut members = members.into_iter().peekable();
        while members.peek().is_some() {
            let chunk: Vec<_> = members.by_ref().take(max_batch).collect();
            batches.push(Batch {
                id: next_id,
                key,
                requests: chunk,
            });
            next_id += 1;
        }
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::GemmPayload;
    use clgemm_blas::matrix::{Matrix, StorageOrder};
    use clgemm_blas::GemmType;

    fn req(n: usize, priority: Priority) -> GemmRequest {
        GemmRequest::new(
            GemmType::NN,
            GemmPayload::F64 {
                alpha: 1.0,
                a: Matrix::zeros(n, n, StorageOrder::ColMajor),
                b: Matrix::zeros(n, n, StorageOrder::ColMajor),
                beta: 0.0,
                c: Matrix::zeros(n, n, StorageOrder::ColMajor),
            },
        )
        .with_priority(priority)
    }

    fn pending(id: u64, req: GemmRequest) -> PendingRequest {
        PendingRequest {
            id,
            enqueued_ns: 0,
            admit_cost: 0.0,
            req,
        }
    }

    #[test]
    fn same_bucket_requests_coalesce() {
        let pending = vec![
            pending(0, req(100, Priority::Normal)),
            pending(1, req(200, Priority::Normal)),
            pending(2, req(120, Priority::Normal)), // same bucket as 100
        ];
        let batches = coalesce(pending, 8, 0);
        assert_eq!(batches.len(), 2);
        let sizes: Vec<usize> = batches.iter().map(Batch::len).collect();
        assert_eq!(sizes, vec![2, 1]);
        assert_eq!(batches[0].requests[0].id, 0);
        assert_eq!(batches[0].requests[1].id, 2);
        assert_eq!(batches[0].id, 0);
        assert_eq!(batches[1].id, 1);
    }

    #[test]
    fn max_batch_splits_large_groups() {
        let pending: Vec<_> = (0..7u64)
            .map(|i| pending(i, req(64, Priority::Normal)))
            .collect();
        let batches = coalesce(pending, 3, 5);
        let sizes: Vec<usize> = batches.iter().map(Batch::len).collect();
        assert_eq!(sizes, vec![3, 3, 1]);
        assert_eq!(
            batches.iter().map(|b| b.id).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
    }

    #[test]
    fn high_priority_groups_come_first() {
        let pending = vec![
            pending(0, req(64, Priority::Low)),
            pending(1, req(256, Priority::High)),
            pending(2, req(64, Priority::Low)),
        ];
        let batches = coalesce(pending, 8, 0);
        assert_eq!(batches[0].key.bucket.m, 256);
        assert_eq!(batches[0].priority(), Priority::High);
        assert_eq!(batches[1].len(), 2);
    }

    #[test]
    fn precisions_never_share_a_batch() {
        let f32_req = GemmRequest::new(
            GemmType::NN,
            GemmPayload::F32 {
                alpha: 1.0,
                a: Matrix::zeros(64, 64, StorageOrder::ColMajor),
                b: Matrix::zeros(64, 64, StorageOrder::ColMajor),
                beta: 0.0,
                c: Matrix::zeros(64, 64, StorageOrder::ColMajor),
            },
        );
        let pending = vec![pending(0, req(64, Priority::Normal)), pending(1, f32_req)];
        let batches = coalesce(pending, 8, 0);
        assert_eq!(batches.len(), 2, "F32 and F64 must not coalesce");
    }
}
