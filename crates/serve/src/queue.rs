//! Bounded submission queues with backpressure.
//!
//! [`BoundedQueue`] is the original single-lane MPMC queue
//! (`Mutex<VecDeque>` + `Condvar` — deliberately boring). The important
//! property is the *bound*: a server that buffers without limit turns
//! overload into latency collapse; a bounded queue turns it into prompt
//! rejection at submit time instead.
//!
//! [`FairQueue`] is what the server drains from since the serve-at-
//! scale work: one lane per tenant, each bounded to a weighted share of
//! the total capacity, drained by deficit round-robin (DRR) over the
//! requests' arithmetic cost. Under overload every backlogged tenant
//! receives device time proportional to its weight, and a bulk tenant
//! can neither starve the drain (DRR) nor squat the whole queue
//! (weighted lane caps).

use crate::request::{PendingRequest, TenantId};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A bounded FIFO usable from any number of threads through `&self`.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            not_empty: Condvar::new(),
        }
    }

    /// Maximum number of queued items.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").len()
    }

    /// `true` when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue, or hand the item back if the queue is full
    /// (backpressure: the caller decides whether to retry, shed or
    /// block).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut q = self.inner.lock().expect("queue poisoned");
        if q.len() >= self.capacity {
            return Err(item);
        }
        q.push_back(item);
        drop(q);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue without blocking.
    pub fn try_pop(&self) -> Option<T> {
        self.inner.lock().expect("queue poisoned").pop_front()
    }

    /// Dequeue, waiting up to `timeout` for an item to arrive.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut q = self.inner.lock().expect("queue poisoned");
        if let Some(item) = q.pop_front() {
            return Some(item);
        }
        let (mut q, _) = self
            .not_empty
            .wait_timeout_while(q, timeout, |q| q.is_empty())
            .expect("queue poisoned");
        q.pop_front()
    }

    /// Drain everything currently queued, preserving FIFO order.
    pub fn drain_all(&self) -> Vec<T> {
        self.inner
            .lock()
            .expect("queue poisoned")
            .drain(..)
            .collect()
    }
}

/// One tenant's lane in the fair queue.
#[derive(Debug)]
struct Lane {
    tenant: TenantId,
    weight: u32,
    /// DRR deficit counter, in flop units. Reset when the lane empties.
    deficit: f64,
    items: VecDeque<PendingRequest>,
}

#[derive(Debug)]
struct FairInner {
    lanes: Vec<Lane>,
    len: usize,
    /// DRR cursor: which lane the next drain round starts at, so
    /// service alternates fairly across drains too.
    cursor: usize,
    /// Largest single-request cost seen, used as the DRR quantum base:
    /// a quantum ≥ the largest cost guarantees every backlogged lane is
    /// served at least once per round (no starvation).
    max_cost: f64,
}

/// A bounded per-tenant fair queue drained by weighted deficit
/// round-robin.
///
/// Capacity is shared: each tenant's lane is bounded to
/// `capacity · weight / Σ weights-of-present-tenants` (at least 1), so
/// a tenant flooding the server bounces off its own share while other
/// tenants keep enqueueing. Configured tenants count as present from
/// construction — a bulk tenant that shows up first cannot squat the
/// shares of tenants the server was told to expect. The drain
/// interleaves lanes by DRR with the
/// request's arithmetic cost (`2mnk` flops) as the packet size and
/// `weight × max_cost` as the quantum — weights therefore divide device
/// *work*, not request counts, and mixed request sizes stay fair.
#[derive(Debug)]
pub struct FairQueue {
    inner: Mutex<FairInner>,
    capacity: usize,
    /// Configured weights; tenants not listed get weight 1.
    weights: Vec<(TenantId, u32)>,
}

/// The DRR cost of one request, in flops.
fn drr_cost(p: &PendingRequest) -> f64 {
    p.req.payload.flops(p.req.ty).max(1.0)
}

impl FairQueue {
    /// A queue holding at most `capacity` requests across all tenants.
    /// `weights` assigns fair-share weights per tenant name (absent
    /// tenants weigh 1; zero weights are clamped to 1).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, weights: Vec<(TenantId, u32)>) -> FairQueue {
        assert!(capacity > 0, "queue capacity must be positive");
        // Configured tenants get their lane up front so their weighted
        // share is reserved before they ever submit.
        let lanes = weights
            .iter()
            .map(|(t, w)| Lane {
                tenant: t.clone(),
                weight: (*w).max(1),
                deficit: 0.0,
                items: VecDeque::new(),
            })
            .collect();
        FairQueue {
            inner: Mutex::new(FairInner {
                lanes,
                len: 0,
                cursor: 0,
                max_cost: 0.0,
            }),
            capacity,
            weights,
        }
    }

    /// Maximum number of queued requests across all lanes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently queued across all lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").len
    }

    /// `true` when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured weight of a tenant (1 when unlisted).
    #[must_use]
    pub fn weight_of(&self, tenant: &str) -> u32 {
        self.weights
            .iter()
            .find(|(t, _)| t == tenant)
            .map_or(1, |(_, w)| (*w).max(1))
    }

    /// Enqueue into the submitter's tenant lane, or hand the request
    /// back (boxed — it carries whole matrices) when the queue or the
    /// tenant's weighted share of it is full — the caller decides
    /// whether to retry, shed or block.
    pub fn try_push(&self, item: PendingRequest) -> Result<(), Box<PendingRequest>> {
        let mut q = self.inner.lock().expect("queue poisoned");
        if q.len >= self.capacity {
            return Err(Box::new(item));
        }
        let weight = self.weight_of(&item.req.tenant);
        let lane = match q.lanes.iter().position(|l| l.tenant == item.req.tenant) {
            Some(i) => i,
            None => {
                q.lanes.push(Lane {
                    tenant: item.req.tenant.clone(),
                    weight,
                    deficit: 0.0,
                    items: VecDeque::new(),
                });
                q.lanes.len() - 1
            }
        };
        // Weighted share of the capacity over the tenants present.
        let total_weight: u64 = q.lanes.iter().map(|l| u64::from(l.weight.max(1))).sum();
        let share = (self.capacity as u64 * u64::from(weight) / total_weight.max(1)).max(1);
        if q.lanes[lane].items.len() as u64 >= share {
            return Err(Box::new(item));
        }
        q.max_cost = q.max_cost.max(drr_cost(&item));
        q.lanes[lane].items.push_back(item);
        q.len += 1;
        Ok(())
    }

    /// Drain up to `quota` requests in deficit-round-robin order.
    ///
    /// Each round credits every backlogged lane `weight × quantum`
    /// (quantum = the largest request cost seen, so every lane advances
    /// every round) and pops requests while the lane's deficit covers
    /// their cost. With `quota == usize::MAX` this empties the queue in
    /// fair interleaved order; with a finite quota the remainder stays
    /// queued for the next drain, cursor preserved.
    pub fn drain_fair(&self, quota: usize) -> Vec<PendingRequest> {
        let mut q = self.inner.lock().expect("queue poisoned");
        let mut out = Vec::new();
        if q.len == 0 || quota == 0 {
            return out;
        }
        let quantum = q.max_cost.max(1.0);
        let n_lanes = q.lanes.len();
        loop {
            let mut popped_this_round = false;
            for step in 0..n_lanes {
                let i = (q.cursor + step) % n_lanes;
                if q.lanes[i].items.is_empty() {
                    q.lanes[i].deficit = 0.0;
                    continue;
                }
                q.lanes[i].deficit += f64::from(q.lanes[i].weight.max(1)) * quantum;
                while let Some(front) = q.lanes[i].items.front() {
                    let cost = drr_cost(front);
                    if cost > q.lanes[i].deficit || out.len() >= quota {
                        break;
                    }
                    q.lanes[i].deficit -= cost;
                    out.push(q.lanes[i].items.pop_front().expect("front checked"));
                    q.len -= 1;
                    popped_this_round = true;
                }
                if q.lanes[i].items.is_empty() {
                    q.lanes[i].deficit = 0.0;
                }
                if out.len() >= quota {
                    q.cursor = (i + 1) % n_lanes;
                    return out;
                }
            }
            if q.len == 0 || !popped_this_round {
                break;
            }
        }
        out
    }

    /// Drain everything queued in fair order (full-drain semantics the
    /// pre-fair-queue server had, minus the head-of-line monopoly).
    pub fn drain_all(&self) -> Vec<PendingRequest> {
        self.drain_fair(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_accepts_after_pop() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "third push must bounce");
        assert_eq!(q.try_pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.drain_all(), vec![2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn mpmc_under_contention_loses_nothing() {
        let q = Arc::new(BoundedQueue::new(1024));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let mut item = p * 100 + i;
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(back) => item = back,
                            }
                        }
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        let mut got: Vec<i32> = std::iter::from_fn(|| q.try_pop()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn pop_timeout_sees_a_late_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.try_push(7).unwrap();
        });
        assert_eq!(q.pop_timeout(Duration::from_secs(5)), Some(7));
        h.join().unwrap();
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
    }

    // ---- FairQueue ----------------------------------------------------

    use crate::request::{GemmPayload, GemmRequest};
    use clgemm_blas::matrix::{Matrix, StorageOrder};
    use clgemm_blas::GemmType;

    fn pending(id: u64, tenant: &str, n: usize) -> PendingRequest {
        PendingRequest {
            id,
            enqueued_ns: 0,
            admit_cost: 0.0,
            req: GemmRequest::new(
                GemmType::NN,
                GemmPayload::F64 {
                    alpha: 1.0,
                    a: Matrix::zeros(n, n, StorageOrder::ColMajor),
                    b: Matrix::zeros(n, n, StorageOrder::ColMajor),
                    beta: 0.0,
                    c: Matrix::zeros(n, n, StorageOrder::ColMajor),
                },
            )
            .with_tenant(tenant),
        }
    }

    #[test]
    fn single_tenant_drains_fifo() {
        let q = FairQueue::new(8, Vec::new());
        for id in 0..5 {
            q.try_push(pending(id, "default", 32)).unwrap();
        }
        let ids: Vec<u64> = q.drain_all().iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn drr_splits_equal_cost_work_by_weight() {
        let q = FairQueue::new(64, vec![("bulk".into(), 4)]);
        for id in 0..8 {
            q.try_push(pending(id, "inter", 32)).unwrap();
            q.try_push(pending(100 + id, "bulk", 32)).unwrap();
        }
        // Quota 10, equal costs: each DRR round serves 1 inter + 4 bulk.
        let out = q.drain_fair(10);
        assert_eq!(out.len(), 10);
        let bulk = out.iter().filter(|p| p.req.tenant == "bulk").count();
        let inter = out.len() - bulk;
        assert_eq!((inter, bulk), (2, 8), "1:4 weights → 1:4 service");
        assert_eq!(q.len(), 6, "remainder stays queued");
    }

    #[test]
    fn weights_divide_work_not_request_counts() {
        // Same weight, but tenant "big" sends 64³ requests (8× the
        // flops of 32³): DRR must serve ~8 small per big, not 1:1.
        let q = FairQueue::new(64, Vec::new());
        for id in 0..16 {
            q.try_push(pending(id, "small", 32)).unwrap();
        }
        for id in 0..4 {
            q.try_push(pending(100 + id, "big", 64)).unwrap();
        }
        let out = q.drain_fair(9);
        let small = out.iter().filter(|p| p.req.tenant == "small").count();
        let big = out.len() - small;
        assert_eq!((small, big), (8, 1), "one 64³ ≙ eight 32³ in cost");
    }

    #[test]
    fn lane_caps_stop_one_tenant_squatting_the_queue() {
        let q = FairQueue::new(8, vec![("inter".into(), 1), ("bulk".into(), 1)]);
        // Bulk floods first, but its share is capacity/2 = 4.
        let mut accepted = 0;
        for id in 0..8 {
            if q.try_push(pending(id, "bulk", 32)).is_ok() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4, "bulk bounces off its weighted share");
        // The interactive tenant still has its whole share available.
        for id in 100..104 {
            q.try_push(pending(id, "inter", 32)).unwrap();
        }
        assert!(q.try_push(pending(104, "inter", 32)).is_err());
    }

    #[test]
    fn cursor_rotates_service_across_drains() {
        let q = FairQueue::new(16, Vec::new());
        q.try_push(pending(0, "a", 32)).unwrap();
        q.try_push(pending(1, "b", 32)).unwrap();
        // Quota 1: the first drain serves lane a, the second must start
        // from the cursor and serve lane b — not restart at a.
        assert_eq!(q.drain_fair(1)[0].req.tenant, "a");
        q.try_push(pending(2, "a", 32)).unwrap();
        assert_eq!(q.drain_fair(1)[0].req.tenant, "b");
    }

    #[test]
    fn unknown_tenants_get_a_lane_with_weight_one() {
        let q = FairQueue::new(16, vec![("vip".into(), 3)]);
        assert_eq!(q.weight_of("vip"), 3);
        assert_eq!(q.weight_of("stranger"), 1);
        q.try_push(pending(0, "stranger", 32)).unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.drain_all().len(), 1);
    }
}
