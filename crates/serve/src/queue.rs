//! A bounded multi-producer multi-consumer queue with backpressure.
//!
//! `Mutex<VecDeque>` + `Condvar` — deliberately boring. The important
//! property is the *bound*: a server that buffers without limit turns
//! overload into latency collapse; this queue turns it into prompt
//! rejection at submit time instead.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A bounded FIFO usable from any number of threads through `&self`.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
            not_empty: Condvar::new(),
        }
    }

    /// Maximum number of queued items.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").len()
    }

    /// `true` when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue, or hand the item back if the queue is full
    /// (backpressure: the caller decides whether to retry, shed or
    /// block).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut q = self.inner.lock().expect("queue poisoned");
        if q.len() >= self.capacity {
            return Err(item);
        }
        q.push_back(item);
        drop(q);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue without blocking.
    pub fn try_pop(&self) -> Option<T> {
        self.inner.lock().expect("queue poisoned").pop_front()
    }

    /// Dequeue, waiting up to `timeout` for an item to arrive.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut q = self.inner.lock().expect("queue poisoned");
        if let Some(item) = q.pop_front() {
            return Some(item);
        }
        let (mut q, _) = self
            .not_empty
            .wait_timeout_while(q, timeout, |q| q.is_empty())
            .expect("queue poisoned");
        q.pop_front()
    }

    /// Drain everything currently queued, preserving FIFO order.
    pub fn drain_all(&self) -> Vec<T> {
        self.inner
            .lock()
            .expect("queue poisoned")
            .drain(..)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_accepts_after_pop() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "third push must bounce");
        assert_eq!(q.try_pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.drain_all(), vec![2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn mpmc_under_contention_loses_nothing() {
        let q = Arc::new(BoundedQueue::new(1024));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let mut item = p * 100 + i;
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(back) => item = back,
                            }
                        }
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        let mut got: Vec<i32> = std::iter::from_fn(|| q.try_pop()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn pop_timeout_sees_a_late_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.try_push(7).unwrap();
        });
        assert_eq!(q.pop_timeout(Duration::from_secs(5)), Some(7));
        h.join().unwrap();
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
    }
}
