//! Serving counters, latency distributions, and model-drift tracking.
//!
//! Scalar totals are atomics so any number of submitter threads can
//! bump them through `&self`; latency-shaped quantities (queue wait,
//! batch size, deadline slack, modelled-vs-wall drift) are
//! `clgemm-trace` histograms registered in the server's [`Registry`],
//! so one registry snapshot exports them next to the routine, tuner,
//! and VM metrics in both Prometheus text and JSON form.
//!
//! # Snapshot coherence
//!
//! [`ServerStats::snapshot`] must not observe a batch "half recorded"
//! (e.g. `batches` bumped but its device row still missing). To that
//! end every *batch-scoped* total — `completed`, `batches`,
//! `batched_requests`, `max_batch`, `tile_substitutions` — is updated
//! inside [`ServerStats::record_batch`] **while holding the per-device
//! lock**, and `snapshot` reads everything under one acquisition of
//! the same lock. The lock, not the per-field `Ordering::Relaxed`,
//! provides the cross-field happens-before: within a critical section
//! each atomic is just a convenient interior-mutable integer.
//!
//! The remaining counters (`enqueued`, `rejected_queue_full`) are
//! bumped by submitter threads that never take the lock; each is an
//! independent monotone total through which no other memory is
//! published, so `Relaxed` is sufficient for them individually and a
//! snapshot may run slightly ahead/behind the submit stream — the only
//! permitted incoherence, and it is called out on the fields below.

use crate::cache::Provenance;
use clgemm_trace::{Counter, HistSummary, Histogram, Registry};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Live counters; read a coherent copy via [`ServerStats::snapshot`].
#[derive(Debug)]
pub struct ServerStats {
    /// Accepted submissions. Submit-side: bumped outside the per-device
    /// lock (Relaxed, monotone, independent), so it may lead the
    /// batch-scoped totals in a snapshot taken mid-drain.
    pub enqueued: AtomicU64,
    /// Requests served to completion. Batch-scoped: only written inside
    /// [`ServerStats::record_batch`] under the per-device lock, so a
    /// snapshot always sees it equal to the per-device `requests` sum.
    pub completed: AtomicU64,
    /// Grouped launches issued. Batch-scoped (see `completed`).
    pub batches: AtomicU64,
    /// Requests that shared a batch with at least one other request.
    /// Batch-scoped (see `completed`).
    pub batched_requests: AtomicU64,
    /// Largest batch issued so far. Batch-scoped (see `completed`).
    pub max_batch: AtomicU64,
    /// Mirrored from the kernel cache at the end of each drain by the
    /// single drain thread; Relaxed is enough for a plain publication
    /// of independent totals.
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub cache_evictions: AtomicU64,
    /// Submissions bounced by queue backpressure. Submit-side: see
    /// `enqueued`.
    pub rejected_queue_full: AtomicU64,
    /// Requests shed at submit because admission control projected
    /// their deadline already unmeetable. Submit-side: see `enqueued`.
    pub rejected_deadline_admit: AtomicU64,
    /// Requests shed inside batch execution — the last-resort guard for
    /// deadlines that looked meetable at admission but were overtaken
    /// by the batch they landed in. Written only by the drain thread
    /// (Relaxed, monotone).
    pub rejected_deadline_late: AtomicU64,
    /// Low-priority requests shed by the high-watermark load-shedding
    /// policy (queue fill over the watermark sheds bulk work first).
    /// Submit-side: see `enqueued`.
    pub shed_low_priority: AtomicU64,
    /// Requests answered from a coalesced execution: in-flight
    /// duplicates fanned out from one representative, plus result-cache
    /// hits. Batch-scoped (see `completed`) — recorded under the
    /// per-device lock via [`ServerStats::record_coalesced`].
    pub coalesce_hits: AtomicU64,
    /// Batches moved off their greedily chosen device by work stealing.
    /// Written only by the drain thread (Relaxed, monotone).
    pub steals: AtomicU64,
    /// Requests whose host register tile differed from the tuned
    /// blocking (the substitutions the old silent clamp hid).
    /// Batch-scoped (see `completed`).
    pub tile_substitutions: AtomicU64,
    /// Strided-batched calls served through the bypass API. Written
    /// only inside [`ServerStats::record_batched`] under the per-device
    /// lock (same coherence contract as the batch-scoped totals).
    pub batched_calls: AtomicU64,
    /// Total matrix entries across those strided-batched calls.
    pub batched_entries: AtomicU64,
    /// Shape buckets cold-started from the analytical predictor with
    /// zero search. Written only by the drain thread (Relaxed,
    /// monotone).
    pub predict_cold_starts: AtomicU64,
    /// Tuning-database lookups that served a launchable entry.
    /// Drain-thread only (see `predict_cold_starts`).
    pub db_hits: AtomicU64,
    /// Tuning-database lookups that found nothing for the key.
    pub db_misses: AtomicU64,
    /// Tuning-database entries found but unlaunchable for the bucket
    /// (e.g. written by a different calibration and since gone bad).
    pub db_stale: AtomicU64,
    /// Background refinements absorbed into the cache so far. Written
    /// only by the drain thread when it absorbs refiner results.
    pub refines: AtomicU64,
    /// Cache hits by entry provenance, indexed by
    /// [`Provenance::index`]. Mirrored from the kernel cache at the end
    /// of each drain, like `cache_hits`.
    pub hits_by_provenance: [AtomicU64; 3],
    per_device: Mutex<BTreeMap<String, DeviceStat>>,
    per_tenant: Mutex<BTreeMap<String, TenantStat>>,
    registry: Registry,
    queue_wait: Arc<Histogram>,
    batch_size: Arc<Histogram>,
    batched_size: Arc<Histogram>,
    deadline_slack: Arc<Histogram>,
    deadline_lateness: Arc<Histogram>,
    drift_abs: Arc<Histogram>,
    refine_seconds: Arc<Histogram>,
    cold_start_total: Arc<Counter>,
    db_hit_total: Arc<Counter>,
    db_miss_total: Arc<Counter>,
    db_stale_total: Arc<Counter>,
    coalesce_hit_total: Arc<Counter>,
}

/// Per-tenant serving totals (fair-queueing accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantStat {
    /// Requests this tenant got admitted past admission control.
    pub admitted: u64,
    /// Requests shed at submit (any reason: unmeetable deadline,
    /// low-priority watermark, queue or lane full).
    pub shed: u64,
    /// Admitted requests answered (executed, coalesced, or cached).
    pub completed: u64,
    /// Sum of queue-wait seconds over this tenant's completed requests
    /// (divide by `completed` for the mean).
    pub wait_seconds_sum: f64,
}

/// Per-device serving totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceStat {
    /// Requests served on this device.
    pub requests: u64,
    /// Grouped launches placed on this device.
    pub batches: u64,
    /// Modelled busy seconds accumulated on this device's queue — what
    /// the scheduler believed the work would cost.
    pub busy_seconds: f64,
    /// Measured wall seconds the host actually spent executing this
    /// device's batches.
    pub wall_seconds: f64,
    /// Requests in this device's batches that executed with a register
    /// tile substituted for the tuned blocking.
    pub tile_substitutions: u64,
    /// Matrix entries served on this device through strided-batched
    /// calls (bypass API; not counted in `requests`).
    pub batched_entries: u64,
    /// Modelled seconds of strided-batched work on this device.
    pub batched_busy_seconds: f64,
    /// Measured wall seconds of strided-batched work on this device.
    pub batched_wall_seconds: f64,
}

impl DeviceStat {
    /// Modelled minus measured seconds: positive when the cost model
    /// overestimates this device, negative when real execution is
    /// slower than the model believes (and the scheduler is silently
    /// under-provisioning it).
    #[must_use]
    pub fn drift(&self) -> f64 {
        self.busy_seconds - self.wall_seconds
    }

    /// Modelled minus measured seconds for strided-batched calls —
    /// tracked separately from [`DeviceStat::drift`] because the
    /// batched model amortises launch overhead across entries and its
    /// skew would otherwise hide inside the per-request drift.
    #[must_use]
    pub fn batched_drift(&self) -> f64 {
        self.batched_busy_seconds - self.batched_wall_seconds
    }
}

impl ServerStats {
    /// Stats recording into `registry` (the server passes
    /// [`Registry::global`] unless configured otherwise; tests pass
    /// [`Registry::new`] for isolation).
    #[must_use]
    pub fn new(registry: Registry) -> ServerStats {
        let queue_wait = registry.histogram("serve_queue_wait_seconds", 1e-9);
        let batch_size = registry.histogram("serve_batch_size_requests", 1.0);
        let batched_size = registry.histogram("serve_batched_entries", 1.0);
        let deadline_slack = registry.histogram("serve_deadline_slack_seconds", 1e-9);
        let deadline_lateness = registry.histogram("serve_deadline_lateness_seconds", 1e-9);
        let drift_abs = registry.histogram("serve_model_drift_abs_seconds", 1e-9);
        let refine_seconds = registry.histogram("tuner_background_refine_seconds", 1e-9);
        let cold_start_total = registry.counter("predict_cold_start_total");
        let db_hit_total = registry.counter("tuning_db_hit_total");
        let db_miss_total = registry.counter("tuning_db_miss_total");
        let db_stale_total = registry.counter("tuning_db_stale_total");
        let coalesce_hit_total = registry.counter("serve_coalesce_hits_total");
        ServerStats {
            enqueued: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_deadline_admit: AtomicU64::new(0),
            rejected_deadline_late: AtomicU64::new(0),
            shed_low_priority: AtomicU64::new(0),
            coalesce_hits: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            tile_substitutions: AtomicU64::new(0),
            batched_calls: AtomicU64::new(0),
            batched_entries: AtomicU64::new(0),
            predict_cold_starts: AtomicU64::new(0),
            db_hits: AtomicU64::new(0),
            db_misses: AtomicU64::new(0),
            db_stale: AtomicU64::new(0),
            refines: AtomicU64::new(0),
            hits_by_provenance: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            per_device: Mutex::new(BTreeMap::new()),
            per_tenant: Mutex::new(BTreeMap::new()),
            registry,
            queue_wait,
            batch_size,
            batched_size,
            deadline_slack,
            deadline_lateness,
            drift_abs,
            refine_seconds,
            cold_start_total,
            db_hit_total,
            db_miss_total,
            db_stale_total,
            coalesce_hit_total,
        }
    }

    /// Record a shape bucket cold-started from the predictor with no
    /// synchronous search.
    pub fn note_predict_cold_start(&self) {
        self.predict_cold_starts.fetch_add(1, Ordering::Relaxed);
        self.cold_start_total.inc();
    }

    /// Record a tuning-database lookup that served a launchable entry.
    pub fn note_db_hit(&self) {
        self.db_hits.fetch_add(1, Ordering::Relaxed);
        self.db_hit_total.inc();
    }

    /// Record a tuning-database lookup that found nothing.
    pub fn note_db_miss(&self) {
        self.db_misses.fetch_add(1, Ordering::Relaxed);
        self.db_miss_total.inc();
    }

    /// Record a tuning-database entry rejected as unlaunchable.
    pub fn note_db_stale(&self) {
        self.db_stale.fetch_add(1, Ordering::Relaxed);
        self.db_stale_total.inc();
    }

    /// Record one absorbed background refinement: how long the search
    /// took, and how close the predictor's forecast came to the refined
    /// result (exported per device as the
    /// `predict_vs_tuned_gflops_ratio` gauge — a ratio near 1.0 means
    /// cold starts were served near-optimally).
    pub fn note_refine(
        &self,
        device: &str,
        seconds: f64,
        predicted_gflops: f64,
        tuned_gflops: f64,
    ) {
        self.refines.fetch_add(1, Ordering::Relaxed);
        self.refine_seconds.observe_value(seconds);
        if tuned_gflops > 0.0 {
            self.registry
                .gauge_labeled("predict_vs_tuned_gflops_ratio", &[("device", device)])
                .set(predicted_gflops / tuned_gflops);
        }
    }

    /// The registry this server's histograms and gauges live in.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Record how long a request sat queued before its batch executed.
    pub fn observe_queue_wait(&self, seconds: f64) {
        self.queue_wait.observe_value(seconds);
    }

    /// Record a deadline'd request's signed slack (deadline minus
    /// projected completion). Positive slack lands in
    /// `serve_deadline_slack_seconds`; negative slack lands — as its
    /// magnitude, i.e. *how late* the request would be — in
    /// `serve_deadline_lateness_seconds`. The old behaviour clamped
    /// negatives to 0 in the slack histogram, which erased exactly the
    /// signal admission control sheds on.
    pub fn observe_deadline_slack(&self, seconds: f64) {
        if seconds >= 0.0 {
            self.deadline_slack.observe_value(seconds);
        } else {
            self.deadline_lateness.observe_value(-seconds);
        }
    }

    /// Record requests answered from a coalesced execution on `device`
    /// (in-flight duplicates fanned out, or result-cache hits credited
    /// to the device that served the original). Updates `completed` and
    /// the per-device row under the per-device lock, preserving the
    /// snapshot invariant `completed == Σ per-device requests`.
    pub fn record_coalesced(&self, device: &str, requests: u64) {
        if requests == 0 {
            return;
        }
        let mut map = self.per_device.lock().expect("stats poisoned");
        self.completed.fetch_add(requests, Ordering::Relaxed);
        self.coalesce_hits.fetch_add(requests, Ordering::Relaxed);
        map.entry(device.to_string()).or_default().requests += requests;
        drop(map);
        self.coalesce_hit_total.add(requests);
    }

    /// Record a request admitted past admission control for `tenant`.
    pub fn note_admitted(&self, tenant: &str) {
        self.per_tenant
            .lock()
            .expect("stats poisoned")
            .entry(tenant.to_string())
            .or_default()
            .admitted += 1;
        self.registry
            .counter_labeled("serve_admitted_total", &[("tenant", tenant)])
            .inc();
    }

    /// Record a request shed at submit for `tenant`, tagged with the
    /// shed `reason` (`deadline`, `low_priority`, `queue_full`).
    pub fn note_shed(&self, tenant: &str, reason: &str) {
        self.per_tenant
            .lock()
            .expect("stats poisoned")
            .entry(tenant.to_string())
            .or_default()
            .shed += 1;
        self.registry
            .counter_labeled("serve_shed_total", &[("reason", reason)])
            .inc();
    }

    /// Record one of `tenant`'s admitted requests answered after
    /// sitting `wait_seconds` in the queue.
    pub fn note_tenant_completed(&self, tenant: &str, wait_seconds: f64) {
        let mut map = self.per_tenant.lock().expect("stats poisoned");
        let entry = map.entry(tenant.to_string()).or_default();
        entry.completed += 1;
        entry.wait_seconds_sum += wait_seconds.max(0.0);
    }

    /// Record one grouped launch on a device: `requests` completed
    /// members, `busy_seconds` of modelled device time, `wall_seconds`
    /// of measured host execution, and the number of members whose host
    /// register tile differed from the tuned blocking.
    ///
    /// Every batch-scoped atomic is bumped while the per-device lock is
    /// held — see the module docs for the coherence contract with
    /// [`ServerStats::snapshot`].
    pub fn record_batch(
        &self,
        device: &str,
        requests: u64,
        busy_seconds: f64,
        wall_seconds: f64,
        tile_substitutions: u64,
    ) {
        let mut map = self.per_device.lock().expect("stats poisoned");
        // Relaxed suffices inside the critical section: the lock
        // orders these writes against any snapshot.
        self.completed.fetch_add(requests, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        if requests > 1 {
            self.batched_requests.fetch_add(requests, Ordering::Relaxed);
        }
        self.max_batch.fetch_max(requests, Ordering::Relaxed);
        self.tile_substitutions
            .fetch_add(tile_substitutions, Ordering::Relaxed);
        let entry = map.entry(device.to_string()).or_default();
        entry.requests += requests;
        entry.batches += 1;
        entry.busy_seconds += busy_seconds;
        entry.wall_seconds += wall_seconds;
        entry.tile_substitutions += tile_substitutions;
        self.batch_size.observe(requests);
        self.drift_abs
            .observe_value((busy_seconds - wall_seconds).abs());
        // Cumulative signed drift per device, exported as a gauge so
        // model skew is visible fleet-wide (satellite: the scheduler
        // places by `estimate_seconds`; if this diverges the fleet is
        // silently mis-balanced).
        self.registry
            .gauge_labeled("serve_model_drift_seconds", &[("device", device)])
            .set(entry.drift());
    }

    /// Record one strided-batched call served on a device: `entries`
    /// matrices in the batch, `busy_seconds` of modelled device time,
    /// `wall_seconds` of measured host execution. Updates the
    /// per-device `serve_batched_model_drift_seconds` gauge with the
    /// cumulative signed drift of the batched performance model — the
    /// scheduler places whole slabs by `predict_batch`/
    /// `predict_batch_direct`, so skew here silently mis-balances the
    /// fleet exactly as per-request drift would.
    pub fn record_batched(&self, device: &str, entries: u64, busy_seconds: f64, wall_seconds: f64) {
        let mut map = self.per_device.lock().expect("stats poisoned");
        self.batched_calls.fetch_add(1, Ordering::Relaxed);
        self.batched_entries.fetch_add(entries, Ordering::Relaxed);
        let entry = map.entry(device.to_string()).or_default();
        entry.batched_entries += entries;
        entry.batched_busy_seconds += busy_seconds;
        entry.batched_wall_seconds += wall_seconds;
        self.batched_size.observe(entries);
        self.registry
            .gauge_labeled("serve_batched_model_drift_seconds", &[("device", device)])
            .set(entry.batched_drift());
    }

    /// A coherent copy of every counter.
    ///
    /// The per-device lock is taken first and held across all reads:
    /// [`ServerStats::record_batch`] writes the batch-scoped totals
    /// under the same lock, so `completed`, `batches`,
    /// `batched_requests`, `max_batch`, `tile_substitutions`, and the
    /// per-device rows are mutually consistent in the returned value
    /// (in particular `completed` equals the per-device `requests`
    /// sum). Submit-side counters may run ahead, as documented on the
    /// fields.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        let per_device = self.per_device.lock().expect("stats poisoned");
        let per_tenant = self.per_tenant.lock().expect("stats poisoned").clone();
        StatsSnapshot {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_deadline_admit: self.rejected_deadline_admit.load(Ordering::Relaxed),
            rejected_deadline_late: self.rejected_deadline_late.load(Ordering::Relaxed),
            shed_low_priority: self.shed_low_priority.load(Ordering::Relaxed),
            coalesce_hits: self.coalesce_hits.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            tile_substitutions: self.tile_substitutions.load(Ordering::Relaxed),
            batched_calls: self.batched_calls.load(Ordering::Relaxed),
            batched_entries: self.batched_entries.load(Ordering::Relaxed),
            predict_cold_starts: self.predict_cold_starts.load(Ordering::Relaxed),
            db_hits: self.db_hits.load(Ordering::Relaxed),
            db_misses: self.db_misses.load(Ordering::Relaxed),
            db_stale: self.db_stale.load(Ordering::Relaxed),
            refines: self.refines.load(Ordering::Relaxed),
            hits_by_provenance: [
                self.hits_by_provenance[0].load(Ordering::Relaxed),
                self.hits_by_provenance[1].load(Ordering::Relaxed),
                self.hits_by_provenance[2].load(Ordering::Relaxed),
            ],
            queue_wait: self.queue_wait.summary(),
            batch_size: self.batch_size.summary(),
            batched_size: self.batched_size.summary(),
            deadline_slack: self.deadline_slack.summary(),
            deadline_lateness: self.deadline_lateness.summary(),
            model_drift_abs: self.drift_abs.summary(),
            per_device: per_device.clone(),
            per_tenant,
        }
    }
}

impl Default for ServerStats {
    /// An isolated instance (fresh registry) — what unit tests want.
    /// `GemmServer` wires the process-global registry explicitly.
    fn default() -> ServerStats {
        ServerStats::new(Registry::new())
    }
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    pub enqueued: u64,
    pub completed: u64,
    pub batches: u64,
    pub batched_requests: u64,
    pub max_batch: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub rejected_queue_full: u64,
    /// Shed at submit: projected completion already missed the deadline.
    pub rejected_deadline_admit: u64,
    /// Shed inside batch execution: the last-resort deadline guard.
    pub rejected_deadline_late: u64,
    /// Low-priority requests shed by the high-watermark policy.
    pub shed_low_priority: u64,
    /// Requests answered from a coalesced execution (in-flight fan-out
    /// or result-cache hit) instead of their own device launch.
    pub coalesce_hits: u64,
    pub steals: u64,
    pub tile_substitutions: u64,
    /// Strided-batched calls served through the bypass API.
    pub batched_calls: u64,
    /// Total matrix entries across those strided-batched calls.
    pub batched_entries: u64,
    /// Shape buckets cold-started from the analytical predictor.
    pub predict_cold_starts: u64,
    /// Tuning-database lookups that served a launchable entry.
    pub db_hits: u64,
    /// Tuning-database lookups that found nothing.
    pub db_misses: u64,
    /// Tuning-database entries rejected as unlaunchable.
    pub db_stale: u64,
    /// Background refinements absorbed into the cache.
    pub refines: u64,
    /// Cache hits by entry provenance ([`Provenance::index`] order:
    /// predicted, refined, persisted).
    pub hits_by_provenance: [u64; 3],
    /// Seconds requests sat queued before their batch executed.
    pub queue_wait: HistSummary,
    /// Completed requests per grouped launch.
    pub batch_size: HistSummary,
    /// Entries per strided-batched call.
    pub batched_size: HistSummary,
    /// Positive slack (deadline − projected completion) of deadline'd
    /// requests that looked meetable when projected.
    pub deadline_slack: HistSummary,
    /// Magnitude of *negative* slack — how late shed requests would
    /// have been. The admission policy's shedding signal.
    pub deadline_lateness: HistSummary,
    /// |modelled busy − measured wall| seconds per batch.
    pub model_drift_abs: HistSummary,
    pub per_device: BTreeMap<String, DeviceStat>,
    /// Per-tenant admitted/shed/completed/wait totals.
    pub per_tenant: BTreeMap<String, TenantStat>,
}

impl StatsSnapshot {
    /// Devices that served at least one request.
    #[must_use]
    pub fn devices_used(&self) -> usize {
        self.per_device.values().filter(|d| d.requests > 0).count()
    }

    /// Cache hits on entries of one [`Provenance`].
    #[must_use]
    pub fn hits_with(&self, provenance: Provenance) -> u64 {
        self.hits_by_provenance[provenance.index()]
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests: {} enqueued, {} completed",
            self.enqueued, self.completed
        )?;
        writeln!(
            f,
            "batches:  {} issued, {} requests coalesced, largest {}",
            self.batches, self.batched_requests, self.max_batch
        )?;
        writeln!(
            f,
            "cache:    {} hits, {} misses, {} evictions",
            self.cache_hits, self.cache_misses, self.cache_evictions
        )?;
        writeln!(
            f,
            "rejected: {} queue-full, {} deadline-at-admit, {} deadline-late, {} low-priority; steals: {}",
            self.rejected_queue_full,
            self.rejected_deadline_admit,
            self.rejected_deadline_late,
            self.shed_low_priority,
            self.steals
        )?;
        if self.coalesce_hits > 0 {
            writeln!(
                f,
                "coalesce: {} requests shared an execution",
                self.coalesce_hits
            )?;
        }
        writeln!(f, "tiles:    {} substituted", self.tile_substitutions)?;
        if self.predict_cold_starts + self.db_hits + self.db_misses + self.db_stale + self.refines
            > 0
        {
            writeln!(
                f,
                "predict:  {} cold starts, {} refined; db: {} hits, {} misses, {} stale",
                self.predict_cold_starts, self.refines, self.db_hits, self.db_misses, self.db_stale
            )?;
            writeln!(
                f,
                "hits by provenance: {} predicted, {} refined, {} persisted",
                self.hits_with(Provenance::Predicted),
                self.hits_with(Provenance::Refined),
                self.hits_with(Provenance::Persisted)
            )?;
        }
        if self.batched_calls > 0 {
            writeln!(
                f,
                "strided:  {} batched calls, {} entries, largest {:.0}",
                self.batched_calls, self.batched_entries, self.batched_size.max
            )?;
        }
        let ms = |s: f64| s * 1e3;
        writeln!(
            f,
            "queue-wait ms: p50 {:.3} p95 {:.3} p99 {:.3} max {:.3} (n={})",
            ms(self.queue_wait.p50),
            ms(self.queue_wait.p95),
            ms(self.queue_wait.p99),
            ms(self.queue_wait.max),
            self.queue_wait.count
        )?;
        writeln!(
            f,
            "batch-size:    p50 {:.1} p95 {:.1} max {:.0}",
            self.batch_size.p50, self.batch_size.p95, self.batch_size.max
        )?;
        if self.deadline_slack.count > 0 {
            writeln!(
                f,
                "deadline-slack ms: p50 {:.3} p99 {:.3} max {:.3} (n={})",
                ms(self.deadline_slack.p50),
                ms(self.deadline_slack.p99),
                ms(self.deadline_slack.max),
                self.deadline_slack.count
            )?;
        }
        if self.deadline_lateness.count > 0 {
            writeln!(
                f,
                "deadline-lateness ms: p50 {:.3} p99 {:.3} max {:.3} (n={})",
                ms(self.deadline_lateness.p50),
                ms(self.deadline_lateness.p99),
                ms(self.deadline_lateness.max),
                self.deadline_lateness.count
            )?;
        }
        for (tenant, t) in &self.per_tenant {
            writeln!(
                f,
                "tenant {tenant}: {} admitted, {} shed, {} completed, mean wait {:.3} ms",
                t.admitted,
                t.shed,
                t.completed,
                if t.completed > 0 {
                    t.wait_seconds_sum / t.completed as f64 * 1e3
                } else {
                    0.0
                }
            )?;
        }
        for (name, d) in &self.per_device {
            writeln!(
                f,
                "device {name}: {} requests in {} batches, busy {:.3} ms, wall {:.3} ms, drift {:+.3} ms",
                d.requests,
                d.batches,
                d.busy_seconds * 1e3,
                d.wall_seconds * 1e3,
                d.drift() * 1e3
            )?;
            if d.batched_entries > 0 {
                writeln!(
                    f,
                    "device {name}: {} strided entries, batched drift {:+.3} ms",
                    d.batched_entries,
                    d.batched_drift() * 1e3
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_recording_aggregates_per_device() {
        let stats = ServerStats::default();
        stats.record_batch("Tahiti", 3, 0.5, 0.4, 2);
        stats.record_batch("Tahiti", 1, 0.25, 0.3, 0);
        stats.record_batch("Fermi", 2, 0.1, 0.1, 1);
        let snap = stats.snapshot();
        assert_eq!(snap.batches, 3);
        assert_eq!(
            snap.batched_requests, 5,
            "singleton batches are not 'batched'"
        );
        assert_eq!(snap.max_batch, 3);
        assert_eq!(snap.devices_used(), 2);
        assert_eq!(snap.tile_substitutions, 3);
        let tahiti = &snap.per_device["Tahiti"];
        assert_eq!((tahiti.requests, tahiti.batches), (4, 2));
        assert_eq!(tahiti.tile_substitutions, 2);
        assert!((tahiti.busy_seconds - 0.75).abs() < 1e-12);
        assert!((tahiti.wall_seconds - 0.7).abs() < 1e-12);
        assert!((tahiti.drift() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn completed_stays_consistent_with_per_device_totals() {
        let stats = ServerStats::default();
        stats.record_batch("Tahiti", 3, 0.5, 0.5, 0);
        stats.record_batch("Fermi", 2, 0.1, 0.1, 0);
        let snap = stats.snapshot();
        let per_device: u64 = snap.per_device.values().map(|d| d.requests).sum();
        assert_eq!(
            snap.completed, per_device,
            "record_batch updates both under one lock"
        );
    }

    #[test]
    fn histograms_fold_into_the_snapshot() {
        let stats = ServerStats::default();
        stats.observe_queue_wait(1e-3);
        stats.observe_queue_wait(2e-3);
        stats.observe_deadline_slack(5e-3);
        stats.observe_deadline_slack(-1.0); // shed: recorded as lateness
        stats.record_batch("Tahiti", 4, 0.5, 0.4, 0);
        let snap = stats.snapshot();
        assert_eq!(snap.queue_wait.count, 2);
        assert!((snap.queue_wait.max - 2e-3).abs() < 1e-9);
        assert_eq!(
            snap.deadline_slack.count, 1,
            "negative slack must not pollute the positive histogram"
        );
        assert!((snap.deadline_slack.max - 5e-3).abs() < 1e-9);
        assert_eq!(snap.batch_size.count, 1);
        assert_eq!(snap.batch_size.max, 4.0);
        assert_eq!(snap.model_drift_abs.count, 1);
        assert!((snap.model_drift_abs.max - 0.1).abs() < 1e-6);
    }

    #[test]
    fn negative_slack_lands_in_the_lateness_histogram_with_magnitude() {
        // The old clamp recorded shed requests as 0 slack, erasing how
        // late they were — the signal admission control sheds on.
        let stats = ServerStats::default();
        stats.observe_deadline_slack(-0.25);
        stats.observe_deadline_slack(-1.5);
        stats.observe_deadline_slack(3e-3);
        let snap = stats.snapshot();
        assert_eq!(snap.deadline_lateness.count, 2);
        assert!(
            (snap.deadline_lateness.max - 1.5).abs() < 0.1,
            "lateness keeps the magnitude, got {}",
            snap.deadline_lateness.max
        );
        assert_eq!(snap.deadline_slack.count, 1);
        let reg = stats.registry().snapshot();
        let hist = reg
            .hist("serve_deadline_lateness_seconds")
            .expect("lateness histogram registered");
        assert_eq!(hist.count, 2);
        let text = snap.to_string();
        assert!(text.contains("deadline-lateness ms"));
    }

    #[test]
    fn coalesced_completions_keep_the_per_device_invariant() {
        let stats = ServerStats::default();
        stats.record_batch("Tahiti", 2, 0.5, 0.5, 0);
        stats.record_coalesced("Tahiti", 3);
        stats.record_coalesced("Tahiti", 0); // no-op
        let snap = stats.snapshot();
        assert_eq!(snap.completed, 5);
        assert_eq!(snap.coalesce_hits, 3);
        let per_device: u64 = snap.per_device.values().map(|d| d.requests).sum();
        assert_eq!(snap.completed, per_device);
        let reg = stats.registry().snapshot();
        assert_eq!(reg.counter("serve_coalesce_hits_total"), Some(3));
    }

    #[test]
    fn tenant_notes_aggregate_and_export_labeled_counters() {
        let stats = ServerStats::default();
        stats.note_admitted("alpha");
        stats.note_admitted("alpha");
        stats.note_admitted("beta");
        stats.note_shed("beta", "deadline");
        stats.note_shed("beta", "queue_full");
        stats.note_tenant_completed("alpha", 2e-3);
        stats.note_tenant_completed("alpha", 4e-3);
        let snap = stats.snapshot();
        let alpha = &snap.per_tenant["alpha"];
        assert_eq!((alpha.admitted, alpha.shed, alpha.completed), (2, 0, 2));
        assert!((alpha.wait_seconds_sum - 6e-3).abs() < 1e-12);
        let beta = &snap.per_tenant["beta"];
        assert_eq!((beta.admitted, beta.shed), (1, 2));
        let reg = stats.registry().snapshot();
        assert_eq!(
            reg.counter("serve_admitted_total{tenant=\"alpha\"}"),
            Some(2)
        );
        assert_eq!(
            reg.counter("serve_shed_total{reason=\"deadline\"}"),
            Some(1)
        );
        assert_eq!(
            reg.counter("serve_shed_total{reason=\"queue_full\"}"),
            Some(1)
        );
        let text = snap.to_string();
        assert!(text.contains("tenant alpha: 2 admitted"));
    }

    #[test]
    fn drift_gauge_is_exported_per_device() {
        let stats = ServerStats::default();
        stats.record_batch("Tahiti", 1, 0.5, 0.2, 0);
        stats.record_batch("Tahiti", 1, 0.5, 0.2, 0);
        let snap = stats.registry().snapshot();
        let drift = snap
            .gauge("serve_model_drift_seconds{device=\"Tahiti\"}")
            .expect("drift gauge registered");
        assert!((drift - 0.6).abs() < 1e-12, "cumulative signed drift");
        // And the registry carries the serving histograms too.
        assert!(snap.hist("serve_batch_size_requests").is_some());
        let text = snap.to_prometheus();
        assert!(text.contains("serve_model_drift_seconds{device=\"Tahiti\"} 0.6"));
    }

    #[test]
    fn batched_calls_record_their_own_drift_gauge() {
        let stats = ServerStats::default();
        stats.record_batched("Tahiti", 64, 0.4, 0.1);
        stats.record_batched("Tahiti", 8, 0.2, 0.1);
        let snap = stats.snapshot();
        assert_eq!(snap.batched_calls, 2);
        assert_eq!(snap.batched_entries, 72);
        assert_eq!(snap.batched_size.count, 2);
        assert_eq!(snap.batched_size.max, 64.0);
        let d = &snap.per_device["Tahiti"];
        assert_eq!(d.batched_entries, 72);
        assert!((d.batched_drift() - 0.4).abs() < 1e-12, "cumulative drift");
        assert_eq!(d.requests, 0, "bypass calls are not queued requests");
        let reg = stats.registry().snapshot();
        let drift = reg
            .gauge("serve_batched_model_drift_seconds{device=\"Tahiti\"}")
            .expect("batched drift gauge registered");
        assert!((drift - 0.4).abs() < 1e-12);
        let text = snap.to_string();
        assert!(text.contains("strided:  2 batched calls, 72 entries"));
        assert!(text.contains("batched drift"));
    }

    #[test]
    fn predictor_notes_feed_counters_histogram_and_gauge() {
        let stats = ServerStats::default();
        stats.note_predict_cold_start();
        stats.note_db_miss();
        stats.note_db_stale();
        stats.note_db_hit();
        stats.note_db_hit();
        stats.note_refine("Tahiti", 0.25, 90.0, 100.0);
        let snap = stats.snapshot();
        assert_eq!(snap.predict_cold_starts, 1);
        assert_eq!((snap.db_hits, snap.db_misses, snap.db_stale), (2, 1, 1));
        assert_eq!(snap.refines, 1);
        let reg = stats.registry().snapshot();
        assert_eq!(reg.counter("predict_cold_start_total"), Some(1));
        assert_eq!(reg.counter("tuning_db_hit_total"), Some(2));
        assert_eq!(reg.counter("tuning_db_miss_total"), Some(1));
        assert_eq!(reg.counter("tuning_db_stale_total"), Some(1));
        let hist = reg
            .hist("tuner_background_refine_seconds")
            .expect("refine histogram registered");
        assert_eq!(hist.count, 1);
        assert!((hist.max - 0.25).abs() < 1e-9);
        let ratio = reg
            .gauge("predict_vs_tuned_gflops_ratio{device=\"Tahiti\"}")
            .expect("ratio gauge set");
        assert!((ratio - 0.9).abs() < 1e-12);
        let text = stats.snapshot().to_string();
        assert!(text.contains("predict:  1 cold starts"));
        assert!(text.contains("hits by provenance"));
    }

    #[test]
    fn snapshot_renders_human_readably() {
        let stats = ServerStats::default();
        stats.enqueued.fetch_add(5, Ordering::Relaxed);
        stats.record_batch("Cayman", 2, 0.001, 0.002, 1);
        stats.observe_queue_wait(1e-3);
        let text = stats.snapshot().to_string();
        assert!(text.contains("5 enqueued"));
        assert!(text.contains("device Cayman: 2 requests"));
        assert!(text.contains("1 substituted"));
        assert!(text.contains("queue-wait ms"));
        assert!(text.contains("drift"));
    }
}
