//! Serving counters.
//!
//! Everything the server does is counted with atomics so any number of
//! submitter threads can bump them through `&self`; per-device busy
//! time lives behind a mutex keyed by device code name.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Live counters; read a coherent copy via [`ServerStats::snapshot`].
#[derive(Debug, Default)]
pub struct ServerStats {
    pub enqueued: AtomicU64,
    pub completed: AtomicU64,
    /// Grouped launches issued.
    pub batches: AtomicU64,
    /// Requests that shared a batch with at least one other request.
    pub batched_requests: AtomicU64,
    /// Largest batch issued so far.
    pub max_batch: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub cache_evictions: AtomicU64,
    /// Submissions bounced by queue backpressure.
    pub rejected_queue_full: AtomicU64,
    /// Requests dropped because their deadline was unmeetable.
    pub rejected_deadline: AtomicU64,
    /// Batches moved off their greedily chosen device by work stealing.
    pub steals: AtomicU64,
    /// Requests whose host register tile differed from the tuned
    /// blocking (the substitutions the old silent clamp hid).
    pub tile_substitutions: AtomicU64,
    per_device: Mutex<BTreeMap<String, DeviceStat>>,
}

/// Per-device serving totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceStat {
    /// Requests served on this device.
    pub requests: u64,
    /// Grouped launches placed on this device.
    pub batches: u64,
    /// Modelled busy seconds accumulated on this device's queue.
    pub busy_seconds: f64,
    /// Requests in this device's batches that executed with a register
    /// tile substituted for the tuned blocking.
    pub tile_substitutions: u64,
}

impl ServerStats {
    /// Record one grouped launch on a device; `tile_substitutions`
    /// counts the requests in it whose host register tile differed from
    /// the tuned blocking.
    pub fn record_batch(
        &self,
        device: &str,
        requests: u64,
        busy_seconds: f64,
        tile_substitutions: u64,
    ) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if requests > 1 {
            self.batched_requests.fetch_add(requests, Ordering::Relaxed);
        }
        self.max_batch.fetch_max(requests, Ordering::Relaxed);
        self.tile_substitutions
            .fetch_add(tile_substitutions, Ordering::Relaxed);
        let mut map = self.per_device.lock().expect("stats poisoned");
        let entry = map.entry(device.to_string()).or_default();
        entry.requests += requests;
        entry.batches += 1;
        entry.busy_seconds += busy_seconds;
        entry.tile_substitutions += tile_substitutions;
    }

    /// A coherent copy of every counter.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            tile_substitutions: self.tile_substitutions.load(Ordering::Relaxed),
            per_device: self.per_device.lock().expect("stats poisoned").clone(),
        }
    }
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    pub enqueued: u64,
    pub completed: u64,
    pub batches: u64,
    pub batched_requests: u64,
    pub max_batch: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub rejected_queue_full: u64,
    pub rejected_deadline: u64,
    pub steals: u64,
    pub tile_substitutions: u64,
    pub per_device: BTreeMap<String, DeviceStat>,
}

impl StatsSnapshot {
    /// Devices that served at least one request.
    #[must_use]
    pub fn devices_used(&self) -> usize {
        self.per_device.values().filter(|d| d.requests > 0).count()
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests: {} enqueued, {} completed",
            self.enqueued, self.completed
        )?;
        writeln!(
            f,
            "batches:  {} issued, {} requests coalesced, largest {}",
            self.batches, self.batched_requests, self.max_batch
        )?;
        writeln!(
            f,
            "cache:    {} hits, {} misses, {} evictions",
            self.cache_hits, self.cache_misses, self.cache_evictions
        )?;
        writeln!(
            f,
            "rejected: {} queue-full, {} deadline; steals: {}",
            self.rejected_queue_full, self.rejected_deadline, self.steals
        )?;
        writeln!(f, "tiles:    {} substituted", self.tile_substitutions)?;
        for (name, d) in &self.per_device {
            writeln!(
                f,
                "device {name}: {} requests in {} batches, busy {:.3} ms",
                d.requests,
                d.batches,
                d.busy_seconds * 1e3
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_recording_aggregates_per_device() {
        let stats = ServerStats::default();
        stats.record_batch("Tahiti", 3, 0.5, 2);
        stats.record_batch("Tahiti", 1, 0.25, 0);
        stats.record_batch("Fermi", 2, 0.1, 1);
        let snap = stats.snapshot();
        assert_eq!(snap.batches, 3);
        assert_eq!(
            snap.batched_requests, 5,
            "singleton batches are not 'batched'"
        );
        assert_eq!(snap.max_batch, 3);
        assert_eq!(snap.devices_used(), 2);
        assert_eq!(snap.tile_substitutions, 3);
        let tahiti = &snap.per_device["Tahiti"];
        assert_eq!((tahiti.requests, tahiti.batches), (4, 2));
        assert_eq!(tahiti.tile_substitutions, 2);
        assert!((tahiti.busy_seconds - 0.75).abs() < 1e-12);
    }

    #[test]
    fn snapshot_renders_human_readably() {
        let stats = ServerStats::default();
        stats.enqueued.fetch_add(5, Ordering::Relaxed);
        stats.record_batch("Cayman", 2, 0.001, 1);
        let text = stats.snapshot().to_string();
        assert!(text.contains("5 enqueued"));
        assert!(text.contains("device Cayman: 2 requests"));
        assert!(text.contains("1 substituted"));
    }
}
