//! The shape-bucketed kernel cache.
//!
//! Tuning is the expensive path (five-plus hours per device in the
//! paper); serving must not pay it per request. This LRU maps
//! `(device, precision, shape bucket)` to the kernel parameters serving
//! that bucket, fronting the persistent
//! [`KernelRepo`](clgemm::repo::KernelRepo).

use crate::request::ShapeBucket;
use clgemm::params::KernelParams;
use clgemm::repo::KernelRepo;
use clgemm_blas::scalar::Precision;

/// Cache key: which kernel serves which bucket where.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Device code name, as in [`KernelRepo::cache_key`].
    pub device: String,
    pub precision: Precision,
    pub bucket: ShapeBucket,
}

impl CacheKey {
    /// The repo-style string key for this cache entry's device slice.
    #[must_use]
    pub fn repo_key(&self) -> String {
        KernelRepo::cache_key(&self.device, self.precision)
    }
}

/// Where a cached parameter set came from — the serving layer's three
/// resolution paths (see `GemmServer::resolve_miss`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// The analytical predictor (`clgemm::predict`) — zero search.
    Predicted,
    /// A tuner search: the background refiner, or a synchronous
    /// `tune_misses` run.
    Refined,
    /// Persisted knowledge: the on-disk tuning database, the kernel
    /// repo, or the paper's Table II winners.
    Persisted,
}

impl Provenance {
    /// All provenances, in [`Provenance::index`] order.
    pub const ALL: [Provenance; 3] = [
        Provenance::Predicted,
        Provenance::Refined,
        Provenance::Persisted,
    ];

    /// Stable label (for metrics and display).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Provenance::Predicted => "predicted",
            Provenance::Refined => "refined",
            Provenance::Persisted => "persisted",
        }
    }

    /// Position in [`Self::ALL`] (for fixed-size tally arrays).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Provenance::Predicted => 0,
            Provenance::Refined => 1,
            Provenance::Persisted => 2,
        }
    }
}

/// A small LRU over tuned kernel parameters.
///
/// Front of the list is most-recently used; eviction pops the back.
#[derive(Debug)]
pub struct KernelCache {
    capacity: usize,
    entries: Vec<(CacheKey, KernelParams, Provenance)>,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Hits per [`Provenance`], indexed by [`Provenance::index`].
    hits_by_provenance: [u64; 3],
}

impl KernelCache {
    /// A cache holding at most `capacity` kernels.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> KernelCache {
        assert!(capacity > 0, "cache capacity must be positive");
        KernelCache {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            hits_by_provenance: [0; 3],
        }
    }

    /// Look up and touch: a hit moves the entry to the MRU position and
    /// reports where the winning parameters originally came from.
    pub fn get(&mut self, key: &CacheKey) -> Option<(KernelParams, Provenance)> {
        match self.entries.iter().position(|(k, _, _)| k == key) {
            Some(pos) => {
                self.hits += 1;
                let entry = self.entries.remove(pos);
                let (params, provenance) = (entry.1, entry.2);
                self.hits_by_provenance[provenance.index()] += 1;
                self.entries.insert(0, entry);
                Some((params, provenance))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look without touching LRU order or hit/miss counters (used by
    /// the scheduler when costing a batch on devices it may not pick).
    #[must_use]
    pub fn peek(&self, key: &CacheKey) -> Option<&KernelParams> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, p, _)| p)
    }

    /// Insert at MRU, evicting the LRU entry when full. Replaces any
    /// existing entry for the key (and its provenance — the background
    /// refiner uses exactly this to upgrade `Predicted` to `Refined`).
    pub fn insert(&mut self, key: CacheKey, params: KernelParams, provenance: Provenance) {
        if let Some(pos) = self.entries.iter().position(|(k, _, _)| *k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() >= self.capacity {
            self.entries.pop();
            self.evictions += 1;
        }
        self.entries.insert(0, (key, params, provenance));
    }

    /// Number of cached kernels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses, evictions)` so far.
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Hits split by entry provenance, indexed by [`Provenance::index`].
    #[must_use]
    pub fn provenance_hits(&self) -> [u64; 3] {
        self.hits_by_provenance
    }

    /// Keys from MRU to LRU (for diagnostics and tests).
    pub fn keys(&self) -> impl Iterator<Item = &CacheKey> {
        self.entries.iter().map(|(k, _, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clgemm::params::small_test_params;

    fn key(device: &str, m: usize) -> CacheKey {
        CacheKey {
            device: device.to_string(),
            precision: Precision::F64,
            bucket: ShapeBucket::of(m, m, m),
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = small_test_params(Precision::F64);
        let mut cache = KernelCache::new(2);
        cache.insert(key("Tahiti", 64), p, Provenance::Persisted);
        cache.insert(key("Tahiti", 128), p, Provenance::Persisted);
        // Touch 64 so 128 becomes LRU.
        assert!(cache.get(&key("Tahiti", 64)).is_some());
        cache.insert(key("Tahiti", 256), p, Provenance::Persisted);
        assert_eq!(cache.len(), 2);
        assert!(
            cache.peek(&key("Tahiti", 128)).is_none(),
            "128 was LRU and must go"
        );
        assert!(cache.peek(&key("Tahiti", 64)).is_some());
        assert!(cache.peek(&key("Tahiti", 256)).is_some());
        let (hits, misses, evictions) = cache.counters();
        assert_eq!((hits, misses, evictions), (1, 0, 1));
    }

    #[test]
    fn devices_and_precisions_do_not_collide() {
        let p = small_test_params(Precision::F64);
        let mut cache = KernelCache::new(8);
        cache.insert(key("Tahiti", 64), p, Provenance::Persisted);
        assert!(cache.get(&key("Cayman", 64)).is_none());
        let mut sgemm_key = key("Tahiti", 64);
        sgemm_key.precision = Precision::F32;
        assert!(cache.get(&sgemm_key).is_none());
        assert_eq!(cache.counters().1, 2, "both lookups were misses");
    }

    #[test]
    fn peek_does_not_perturb_order_or_counters() {
        let p = small_test_params(Precision::F64);
        let mut cache = KernelCache::new(2);
        cache.insert(key("Tahiti", 64), p, Provenance::Persisted);
        cache.insert(key("Tahiti", 128), p, Provenance::Persisted);
        assert!(cache.peek(&key("Tahiti", 64)).is_some());
        // 64 is still LRU despite the peek; inserting a third evicts it.
        cache.insert(key("Tahiti", 256), p, Provenance::Persisted);
        assert!(cache.peek(&key("Tahiti", 64)).is_none());
        assert_eq!(cache.counters(), (0, 0, 1));
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let d = small_test_params(Precision::F64);
        let mut cache = KernelCache::new(2);
        cache.insert(key("Tahiti", 64), d, Provenance::Predicted);
        let mut altered = d;
        altered.kwi += 1;
        cache.insert(key("Tahiti", 64), altered, Provenance::Refined);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.peek(&key("Tahiti", 64)).unwrap().kwi, d.kwi + 1);
        assert_eq!(cache.counters().2, 0);
        // The refiner's upgrade is visible on the next hit.
        let (_, prov) = cache.get(&key("Tahiti", 64)).unwrap();
        assert_eq!(prov, Provenance::Refined);
    }

    #[test]
    fn hits_are_tallied_per_provenance() {
        let p = small_test_params(Precision::F64);
        let mut cache = KernelCache::new(4);
        cache.insert(key("Tahiti", 64), p, Provenance::Predicted);
        cache.insert(key("Tahiti", 128), p, Provenance::Persisted);
        cache.get(&key("Tahiti", 64));
        cache.get(&key("Tahiti", 64));
        cache.get(&key("Tahiti", 128));
        cache.get(&key("Tahiti", 256)); // miss
        let by = cache.provenance_hits();
        assert_eq!(by[Provenance::Predicted.index()], 2);
        assert_eq!(by[Provenance::Refined.index()], 0);
        assert_eq!(by[Provenance::Persisted.index()], 1);
        assert_eq!(cache.counters(), (3, 1, 0));
    }
}
