//! # clgemm-serve — a batching, multi-device GEMM serving subsystem
//!
//! The paper tunes one kernel per `(device, precision)` and measures it
//! in isolation. A production BLAS sits behind *callers*: many
//! concurrent GEMM requests of assorted shapes, precisions and
//! transpose types, racing for a handful of devices. This crate layers
//! that serving story over the reproduction's simulated platform:
//!
//! * [`GemmServer`] accepts [`GemmRequest`]s (any of the four GEMM
//!   types, either precision, optional deadline, priority and tenant)
//!   behind *admission control*: completion is projected from a cost
//!   estimate plus the queued backlog, requests whose deadline slack is
//!   already negative are shed at submit, and Low-priority work is shed
//!   once the queue passes a high watermark.
//! * Admitted work lands in a per-tenant weighted-fair queue
//!   ([`FairQueue`]): deficit-round-robin across tenant lanes divides
//!   *work* (flops, not request counts) by configured weight, and
//!   per-lane capacity shares stop one tenant squatting the queue.
//! * Identical concurrent requests are *idempotently coalesced*: a
//!   content-addressed key over shape, type, scalars and input bytes
//!   lets duplicates share one execution, and a bounded LRU
//!   [`ResultCache`] replays recent results across drains.
//! * A shape-bucketed kernel cache ([`KernelCache`]) fronts the
//!   [`KernelRepo`](clgemm::repo::KernelRepo): requests whose padded
//!   shapes fall in the same bucket share one tuned parameter set, LRU
//!   over `(device, precision, bucket)`. A miss resolves through the
//!   on-disk tuning database, then the analytical predictor
//!   (`clgemm::predict`, zero search — a background refiner re-derives
//!   the bucket with a real search and persists it), then an optional
//!   synchronous smoke-tune, then the paper's Table II winners; every
//!   cached entry carries its [`Provenance`].
//! * A batcher coalesces same-bucket requests into grouped launches on
//!   one virtual command queue, amortising launch overhead exactly the
//!   way real serving stacks amortise kernel dispatch.
//! * A multi-device scheduler places each batch on the least-loaded
//!   [`SimDevice`](clgemm_sim::SimDevice), using the analytic cost
//!   model (`clgemm_device::estimate`) for placement and per-device
//!   virtual clocks for load tracking, with work stealing when queues
//!   go skew.
//! * [`ServerStats`] counts everything observable: enqueued, batched,
//!   cache hits/misses, rejections, per-device busy time.
//!
//! Execution stays bit-exact: every request is served by the same
//! `TunedGemm` routine layer the rest of the workspace uses, so a
//! served result is bit-for-bit identical to a sequential call with
//! the same kernel parameters — a property the integration suite
//! checks over random interleavings.

pub mod batch;
pub mod batched;
pub mod cache;
pub mod inflight;
pub mod queue;
pub mod request;
pub mod scheduler;
pub mod server;
pub mod stats;

pub use batch::{coalesce, Batch, BatchKey};
pub use batched::{BatchedPayload, BatchedRequest, BatchedResponse};
pub use cache::{CacheKey, KernelCache, Provenance};
pub use inflight::{content_key, CachedC, CachedResult, ContentKey, ResultCache};
pub use queue::{BoundedQueue, FairQueue};
pub use request::{
    GemmPayload, GemmRequest, GemmResponse, Outcome, Priority, RequestId, ShapeBucket, TenantId,
    DEFAULT_TENANT,
};
pub use scheduler::{Placement, Scheduler};
pub use server::{GemmServer, RejectReason, ServeConfig, Submitter};
pub use stats::{DeviceStat, ServerStats, StatsSnapshot, TenantStat};
