//! Least-loaded multi-device placement with work stealing.
//!
//! Each device is a [`DeviceWorker`] whose virtual command-queue clock
//! *is* its load. Placement is greedy — each batch goes to the device
//! that finishes it soonest under the analytic cost model — followed by
//! a work-stealing pass: while moving the most-loaded device's last
//! batch to another device shrinks the overall makespan, move it. The
//! greedy pass is order-sensitive (batches arrive priority-first), the
//! stealing pass repairs the skew that ordering can leave behind.

use clgemm_device::DeviceSpec;
use clgemm_sim::DeviceWorker;

/// Where one batch ended up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Index of the batch in the slice handed to [`Scheduler::place`].
    pub batch: usize,
    /// Index of the chosen worker.
    pub worker: usize,
    /// Modelled cost of the batch on that worker, in seconds.
    pub cost: f64,
    /// `true` when the work-stealing pass moved this batch off its
    /// greedily chosen device.
    pub stolen: bool,
}

/// The device pool and its virtual-clock load tracking.
#[derive(Debug)]
pub struct Scheduler {
    workers: Vec<DeviceWorker>,
}

impl Scheduler {
    /// A scheduler over one worker per device spec.
    ///
    /// # Panics
    /// Panics if `devices` is empty.
    #[must_use]
    pub fn new(devices: Vec<DeviceSpec>) -> Scheduler {
        assert!(!devices.is_empty(), "scheduler needs at least one device");
        Scheduler {
            workers: devices.into_iter().map(DeviceWorker::new).collect(),
        }
    }

    /// The workers, in construction order.
    #[must_use]
    pub fn workers(&self) -> &[DeviceWorker] {
        &self.workers
    }

    /// Mutable worker access (the server charges executed batches).
    pub fn worker_mut(&mut self, idx: usize) -> &mut DeviceWorker {
        &mut self.workers[idx]
    }

    /// Current load (virtual drain time) per worker.
    #[must_use]
    pub fn loads(&self) -> Vec<f64> {
        self.workers.iter().map(DeviceWorker::busy_until).collect()
    }

    /// Decide placements for a set of batches without committing any
    /// queue time. `costs[b][w]` is the modelled cost of batch `b` on
    /// worker `w` (`f64::INFINITY` = cannot run there).
    ///
    /// Returns one placement per batch, in batch order.
    ///
    /// # Panics
    /// Panics if a batch cannot run on any device, or if a cost row has
    /// the wrong width.
    #[must_use]
    pub fn place(&self, costs: &[Vec<f64>]) -> Vec<Placement> {
        let n_workers = self.workers.len();
        let mut load = self.loads();
        let mut placements: Vec<Placement> = Vec::with_capacity(costs.len());
        // Per-worker stack of indices into `placements`, for stealing.
        let mut queued: Vec<Vec<usize>> = vec![Vec::new(); n_workers];

        // --- greedy: finish-soonest device, in batch order -------------
        for (b, row) in costs.iter().enumerate() {
            assert_eq!(row.len(), n_workers, "cost row width");
            let w = (0..n_workers)
                .min_by(|&x, &y| {
                    (load[x] + row[x])
                        .partial_cmp(&(load[y] + row[y]))
                        .expect("finite loads")
                })
                .expect("at least one worker");
            assert!(
                row[w].is_finite(),
                "batch {b} cannot launch on any device in the pool"
            );
            load[w] += row[w];
            queued[w].push(placements.len());
            placements.push(Placement {
                batch: b,
                worker: w,
                cost: row[w],
                stolen: false,
            });
        }

        // --- work stealing: shrink the makespan while possible ----------
        loop {
            let victim = (0..n_workers)
                .max_by(|&x, &y| load[x].partial_cmp(&load[y]).expect("finite"))
                .expect("at least one worker");
            let makespan_now = load[victim];
            // Best (batch on victim, destination) move, by resulting
            // makespan between the two workers involved.
            let mut best: Option<(usize, usize, f64)> = None; // (slot, thief, makespan_if)
            for (slot, &pidx) in queued[victim].iter().enumerate() {
                let b = placements[pidx].batch;
                for thief in (0..n_workers).filter(|&w| w != victim) {
                    if !costs[b][thief].is_finite() {
                        continue;
                    }
                    let makespan_if =
                        (load[victim] - placements[pidx].cost).max(load[thief] + costs[b][thief]);
                    if best.is_none_or(|(_, _, m)| makespan_if < m) {
                        best = Some((slot, thief, makespan_if));
                    }
                }
            }
            let Some((slot, thief, makespan_if)) = best else {
                break;
            };
            if makespan_if >= makespan_now - 1e-15 {
                break; // no strict improvement left
            }
            let pidx = queued[victim].remove(slot);
            let b = placements[pidx].batch;
            load[victim] -= placements[pidx].cost;
            load[thief] += costs[b][thief];
            queued[thief].push(pidx);
            placements[pidx] = Placement {
                batch: b,
                worker: thief,
                cost: costs[b][thief],
                stolen: true,
            };
        }

        placements
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clgemm_device::DeviceId;

    fn pool() -> Scheduler {
        Scheduler::new(vec![DeviceId::Tahiti.spec(), DeviceId::Cayman.spec()])
    }

    #[test]
    fn batches_spread_across_equal_devices() {
        let sched = Scheduler::new(vec![DeviceId::Tahiti.spec(), DeviceId::Tahiti.spec()]);
        let costs = vec![
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, 1.0],
        ];
        let placements = sched.place(&costs);
        let on0 = placements.iter().filter(|p| p.worker == 0).count();
        assert_eq!(on0, 2, "equal work must split evenly");
    }

    #[test]
    fn skewed_preload_pushes_work_to_the_idle_device() {
        let mut sched = pool();
        // Device 0 is busy for a long time already.
        sched.worker_mut(0).submit("preload", 100.0);
        let costs = vec![vec![1.0, 1.5], vec![1.0, 1.5], vec![1.0, 1.5]];
        for p in sched.place(&costs) {
            assert_eq!(p.worker, 1, "all work must avoid the busy device");
        }
    }

    #[test]
    fn stealing_rebalances_a_cost_cliff() {
        let sched = Scheduler::new(vec![DeviceId::Tahiti.spec(), DeviceId::Tahiti.spec()]);
        // Greedy strands small batches behind a big one: b0→w0(1),
        // b1→w1(1), b2→w0(11, tie broken by index), b3→w1(2) gives a
        // makespan of 11; moving b0 off the big device reaches the
        // optimum 10. Only the stealing pass can see that.
        let costs = vec![
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![10.0, 10.0],
            vec![1.0, 1.0],
        ];
        let placements = sched.place(&costs);
        let load0: f64 = placements
            .iter()
            .filter(|p| p.worker == 0)
            .map(|p| p.cost)
            .sum();
        let load1: f64 = placements
            .iter()
            .filter(|p| p.worker == 1)
            .map(|p| p.cost)
            .sum();
        assert_eq!(
            load0.max(load1),
            10.0,
            "makespan must be the big batch alone"
        );
        assert!(
            placements.iter().any(|p| p.stolen),
            "a steal must have happened"
        );
    }

    #[test]
    fn infinite_cost_devices_are_avoided() {
        let sched = pool();
        let costs = vec![vec![f64::INFINITY, 2.0]];
        let placements = sched.place(&costs);
        assert_eq!(placements[0].worker, 1);
    }

    #[test]
    #[should_panic(expected = "cannot launch on any device")]
    fn unplaceable_batch_panics() {
        let sched = pool();
        let _ = sched.place(&[vec![f64::INFINITY, f64::INFINITY]]);
    }
}
