//! Strided-batched request/response types for the serving layer.
//!
//! A strided batch is *one* request whose operands are slabs holding
//! `batch` same-shaped matrices at fixed strides (see
//! [`GemmBatch`]) — many tiny GEMMs that would drown the queue →
//! batcher → cache pipeline as individual submissions. The server
//! therefore serves them through a bypass API
//! ([`crate::GemmServer::run_batched`]): the whole slab is costed on
//! every device with the batched performance model
//! (`TunedGemm::predict_batch` / `predict_batch_direct`), placed on the
//! least-loaded worker by the same scheduler that places coalesced
//! batches, and executed in one call through the routine layer's
//! batched entry point with a per-worker reusable [`BatchWorkspace`].
//!
//! Unlike [`crate::GemmPayload`], batched payloads cover the two
//! reduced-precision *storage* types as well: `f16` and `bf16` slabs
//! accumulate in `f32` (convert-on-pack in the routine layer), so their
//! serving precision — the precision the kernel cache and scheduler key
//! on — is [`Precision::F32`].

use clgemm::batched::BatchRun;
use clgemm::params::KernelParams;
use clgemm_blas::scalar::Precision;
use clgemm_blas::{Bf16, GemmBatch, F16};

/// The operand slabs of one strided-batched GEMM, in any of the four
/// storage types. `alpha`/`beta` are given in the *accumulation* type.
#[derive(Debug, Clone)]
pub enum BatchedPayload {
    F64 {
        alpha: f64,
        a: Vec<f64>,
        b: Vec<f64>,
        beta: f64,
        c: Vec<f64>,
    },
    F32 {
        alpha: f32,
        a: Vec<f32>,
        b: Vec<f32>,
        beta: f32,
        c: Vec<f32>,
    },
    /// IEEE binary16 storage, f32 accumulation.
    F16 {
        alpha: f32,
        a: Vec<F16>,
        b: Vec<F16>,
        beta: f32,
        c: Vec<F16>,
    },
    /// bfloat16 storage, f32 accumulation.
    Bf16 {
        alpha: f32,
        a: Vec<Bf16>,
        b: Vec<Bf16>,
        beta: f32,
        c: Vec<Bf16>,
    },
}

impl BatchedPayload {
    /// The precision the kernel runs at — what the cache and the
    /// scheduler key on. Reduced-precision storage accumulates in f32.
    #[must_use]
    pub fn precision(&self) -> Precision {
        match self {
            BatchedPayload::F64 { .. } => Precision::F64,
            BatchedPayload::F32 { .. }
            | BatchedPayload::F16 { .. }
            | BatchedPayload::Bf16 { .. } => Precision::F32,
        }
    }

    /// `true` when packing widens the storage type (f16/bf16 → f32).
    #[must_use]
    pub fn widens(&self) -> bool {
        matches!(
            self,
            BatchedPayload::F16 { .. } | BatchedPayload::Bf16 { .. }
        )
    }

    /// Short tag for logs and stats: `f64`, `f32`, `f16`, `bf16`.
    #[must_use]
    pub fn storage_tag(&self) -> &'static str {
        match self {
            BatchedPayload::F64 { .. } => "f64",
            BatchedPayload::F32 { .. } => "f32",
            BatchedPayload::F16 { .. } => "f16",
            BatchedPayload::Bf16 { .. } => "bf16",
        }
    }
}

/// One strided-batched GEMM to serve: the shared descriptor plus the
/// operand slabs it indexes into.
#[derive(Debug, Clone)]
pub struct BatchedRequest {
    pub desc: GemmBatch,
    pub payload: BatchedPayload,
}

impl BatchedRequest {
    #[must_use]
    pub fn new(desc: GemmBatch, payload: BatchedPayload) -> BatchedRequest {
        BatchedRequest { desc, payload }
    }
}

/// The served strided batch, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct BatchedResponse {
    /// Code name of the device that served it.
    pub device: String,
    /// Kernel parameters resolved for the batch's shape bucket (the
    /// packed path runs through them; the direct path bypasses them but
    /// they are what a re-tune would start from).
    pub params: KernelParams,
    /// The shared descriptor the batch ran under.
    pub desc: GemmBatch,
    /// Operand slabs with `C` updated in place.
    pub payload: BatchedPayload,
    /// Path taken, modelled timing, tile/pack decisions.
    pub run: BatchRun,
    /// Virtual time at which the device queue drains this batch.
    pub done_at: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_precision_storage_serves_at_f32() {
        let half = BatchedPayload::F16 {
            alpha: 1.0,
            a: vec![],
            b: vec![],
            beta: 0.0,
            c: vec![],
        };
        assert_eq!(half.precision(), Precision::F32);
        assert!(half.widens());
        assert_eq!(half.storage_tag(), "f16");
        let single = BatchedPayload::F32 {
            alpha: 1.0,
            a: vec![],
            b: vec![],
            beta: 0.0,
            c: vec![],
        };
        assert_eq!(single.precision(), Precision::F32);
        assert!(!single.widens());
    }
}
