//! Content-addressed request identity and the idempotent result cache.
//!
//! Serving traffic repeats itself: retries, fan-in from replicated
//! callers, and periodic jobs all submit byte-identical GEMMs. Because
//! the routine layer is bit-exact — the same operands and kernel
//! parameters always produce the same `C` — identical requests are
//! *idempotent*, and executing each copy is pure waste. This module
//! gives every request a [`ContentKey`] (a hash of shape, transpose
//! type, scalars, and every input element's bit pattern) so the server
//! can run one representative and fan the result out, plus a small
//! bounded LRU [`ResultCache`] so repeats arriving *after* the original
//! completed are served without touching a device.
//!
//! Correctness argument: two requests with equal keys are treated as
//! the same computation. The key covers everything `TunedGemm` reads —
//! `op(A)`/`op(B)` selection, both dimensions and storage order of
//! every operand, `alpha`/`beta` bit patterns, and all logical elements
//! of `A`, `B`, *and* `C` (`C` participates whenever `beta != 0`, and
//! hashing it unconditionally is cheaper than reasoning about when it
//! is dead). Two independent 64-bit FNV-1a streams with different
//! offsets plus the total element count make accidental collision
//! probability ~2⁻¹²⁸ per pair — and a collision could only ever
//! substitute one *served result* for another, never corrupt a batch.

use crate::request::{GemmPayload, GemmRequest};
use clgemm::params::KernelParams;
use clgemm::routine::GemmRun;
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::scalar::Scalar;
use clgemm_blas::Trans;

/// Content identity of a GEMM request: equal keys ⇒ the same
/// computation (same tuned kernel inputs, bit for bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContentKey {
    h1: u64,
    h2: u64,
    /// Total logical elements hashed, as a cheap length guard.
    elems: u64,
}

/// Two independent FNV-1a streams (different offset bases) fed the
/// same word sequence.
struct Fnv2 {
    h1: u64,
    h2: u64,
    words: u64,
}

impl Fnv2 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    fn new() -> Fnv2 {
        Fnv2 {
            h1: 0xCBF2_9CE4_8422_2325, // standard FNV offset basis
            h2: 0x6C62_272E_07BB_0142, // FNV-1a 128-bit basis (low word)
            words: 0,
        }
    }

    fn write_u64(&mut self, x: u64) {
        for byte in x.to_le_bytes() {
            self.h1 = (self.h1 ^ u64::from(byte)).wrapping_mul(Self::PRIME);
            self.h2 = (self.h2 ^ u64::from(byte ^ 0x5A)).wrapping_mul(Self::PRIME);
        }
        self.words += 1;
    }
}

fn trans_tag(t: Trans) -> u64 {
    match t {
        Trans::No => 0,
        Trans::Yes => 1,
    }
}

fn order_tag(o: StorageOrder) -> u64 {
    match o {
        StorageOrder::ColMajor => 0,
        StorageOrder::RowMajor => 1,
    }
}

/// Hash one operand: shape, storage order, and every logical element's
/// bit pattern (logical traversal, so `ld` padding bytes — which the
/// kernel never reads — cannot split identical requests apart).
fn hash_matrix<T: Scalar>(h: &mut Fnv2, m: &Matrix<T>) -> u64 {
    h.write_u64(m.rows() as u64);
    h.write_u64(m.cols() as u64);
    h.write_u64(order_tag(m.order()));
    for j in 0..m.cols() {
        for i in 0..m.rows() {
            h.write_u64(m.at(i, j).to_f64().to_bits());
        }
    }
    (m.rows() * m.cols()) as u64
}

/// The content key of a request. Cost is one pass over the operands —
/// far cheaper than the GEMM itself (O(n²) vs O(n³)).
#[must_use]
pub fn content_key(req: &GemmRequest) -> ContentKey {
    let mut h = Fnv2::new();
    h.write_u64(trans_tag(req.ty.ta));
    h.write_u64(trans_tag(req.ty.tb));
    let elems = match &req.payload {
        GemmPayload::F64 {
            alpha,
            a,
            b,
            beta,
            c,
        } => {
            h.write_u64(0); // precision tag
            h.write_u64(alpha.to_bits());
            h.write_u64(beta.to_bits());
            hash_matrix(&mut h, a) + hash_matrix(&mut h, b) + hash_matrix(&mut h, c)
        }
        GemmPayload::F32 {
            alpha,
            a,
            b,
            beta,
            c,
        } => {
            h.write_u64(1);
            h.write_u64(u64::from(alpha.to_bits()));
            h.write_u64(u64::from(beta.to_bits()));
            hash_matrix(&mut h, a) + hash_matrix(&mut h, b) + hash_matrix(&mut h, c)
        }
    };
    ContentKey {
        h1: h.h1,
        h2: h.h2,
        elems,
    }
}

/// The result matrix a completed request produced, in its precision.
#[derive(Debug, Clone)]
pub enum CachedC {
    F64(Matrix<f64>),
    F32(Matrix<f32>),
}

impl CachedC {
    /// Capture the (already computed) `C` out of a served payload.
    #[must_use]
    pub fn capture(payload: &GemmPayload) -> CachedC {
        match payload {
            GemmPayload::F64 { c, .. } => CachedC::F64(c.clone()),
            GemmPayload::F32 { c, .. } => CachedC::F32(c.clone()),
        }
    }

    /// Copy the cached result into a follower's payload. Precisions
    /// always match because precision is part of the content key.
    pub fn write_into(&self, payload: &mut GemmPayload) {
        match (self, payload) {
            (CachedC::F64(src), GemmPayload::F64 { c, .. }) => *c = src.clone(),
            (CachedC::F32(src), GemmPayload::F32 { c, .. }) => *c = src.clone(),
            _ => unreachable!("content key includes precision"),
        }
    }
}

/// Everything needed to answer a duplicate request exactly as the
/// original was answered — device, parameters, modelled run, and the
/// result bits — so replaying the response still reproduces `C`.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Code name of the device that served the original.
    pub device: String,
    /// The kernel parameters the original executed with.
    pub params: KernelParams,
    /// Modelled timing of the original's share of its batch.
    pub run: GemmRun,
    /// Virtual time the original's batch drained.
    pub done_at: f64,
    /// The batch the original was grouped into.
    pub batch: u64,
    /// The computed result.
    pub c: CachedC,
}

/// A small LRU from [`ContentKey`] to the served result — the
/// cross-drain half of idempotent coalescing. Front is MRU.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    entries: Vec<(ContentKey, CachedResult)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` results.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> ResultCache {
        assert!(capacity > 0, "result cache capacity must be positive");
        ResultCache {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up and touch: a hit moves the entry to the MRU position.
    pub fn get(&mut self, key: &ContentKey) -> Option<&CachedResult> {
        match self.entries.iter().position(|(k, _)| k == key) {
            Some(pos) => {
                self.hits += 1;
                let entry = self.entries.remove(pos);
                self.entries.insert(0, entry);
                Some(&self.entries[0].1)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert at MRU, evicting the LRU entry when full. Replaces any
    /// existing entry for the key.
    pub fn insert(&mut self, key: ContentKey, result: CachedResult) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        } else if self.entries.len() >= self.capacity {
            self.entries.pop();
            self.evictions += 1;
        }
        self.entries.insert(0, (key, result));
    }

    /// Number of cached results.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses, evictions)` so far.
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clgemm_blas::GemmType;

    fn request(seed: u64, alpha: f64) -> GemmRequest {
        GemmRequest::new(
            GemmType::NN,
            GemmPayload::F64 {
                alpha,
                a: Matrix::test_pattern(24, 16, StorageOrder::ColMajor, seed),
                b: Matrix::test_pattern(16, 20, StorageOrder::ColMajor, seed + 1),
                beta: 0.0,
                c: Matrix::zeros(24, 20, StorageOrder::ColMajor),
            },
        )
    }

    #[test]
    fn identical_requests_share_a_key() {
        assert_eq!(content_key(&request(7, 1.0)), content_key(&request(7, 1.0)));
    }

    #[test]
    fn any_input_difference_changes_the_key() {
        let base = content_key(&request(7, 1.0));
        // Different input bytes.
        assert_ne!(base, content_key(&request(8, 1.0)));
        // Different scalar.
        assert_ne!(base, content_key(&request(7, 1.5)));
        // Different transpose type (same operand bytes).
        let mut transposed = request(7, 1.0);
        transposed.ty = GemmType::NT;
        if let GemmPayload::F64 { b, c, .. } = &mut transposed.payload {
            *b = Matrix::test_pattern(20, 16, StorageOrder::ColMajor, 8);
            *c = Matrix::zeros(24, 20, StorageOrder::ColMajor);
        }
        assert_ne!(base, content_key(&transposed));
        // Different C under beta != 0.
        let mut seeded_c = request(7, 1.0);
        if let GemmPayload::F64 { beta, c, .. } = &mut seeded_c.payload {
            *beta = 1.0;
            *c = Matrix::test_pattern(24, 20, StorageOrder::ColMajor, 3);
        }
        assert_ne!(base, content_key(&seeded_c));
    }

    #[test]
    fn precision_is_part_of_the_key() {
        let f32_req = GemmRequest::new(
            GemmType::NN,
            GemmPayload::F32 {
                alpha: 1.0,
                a: Matrix::test_pattern(24, 16, StorageOrder::ColMajor, 7),
                b: Matrix::test_pattern(16, 20, StorageOrder::ColMajor, 8),
                beta: 0.0,
                c: Matrix::zeros(24, 20, StorageOrder::ColMajor),
            },
        );
        assert_ne!(content_key(&request(7, 1.0)), content_key(&f32_req));
    }

    #[test]
    fn tenant_and_priority_do_not_split_the_key() {
        // Identity is *content*: scheduling metadata must not defeat
        // coalescing across tenants.
        let a = request(7, 1.0).with_tenant("alpha");
        let b = request(7, 1.0)
            .with_tenant("beta")
            .with_priority(crate::request::Priority::High);
        assert_eq!(content_key(&a), content_key(&b));
    }

    fn cached(tag: f64) -> CachedResult {
        CachedResult {
            device: "Tahiti".into(),
            params: clgemm::params::small_test_params(clgemm_blas::scalar::Precision::F64),
            run: GemmRun::empty(),
            done_at: tag,
            batch: 0,
            c: CachedC::F64(Matrix::zeros(1, 1, StorageOrder::ColMajor)),
        }
    }

    #[test]
    fn result_cache_is_lru_with_counters() {
        let k = |s| content_key(&request(s, 1.0));
        let mut cache = ResultCache::new(2);
        cache.insert(k(1), cached(1.0));
        cache.insert(k(2), cached(2.0));
        assert!(cache.get(&k(1)).is_some(), "touch 1 so 2 becomes LRU");
        cache.insert(k(3), cached(3.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&k(2)).is_none(), "2 was LRU and must go");
        assert!(cache.get(&k(3)).is_some());
        assert_eq!(cache.counters(), (2, 1, 1));
    }

    #[test]
    fn cached_c_round_trips_into_a_payload() {
        let src = Matrix::test_pattern(6, 5, StorageOrder::ColMajor, 9);
        let cached = CachedC::F64(src.clone());
        let mut payload = GemmPayload::F64 {
            alpha: 1.0,
            a: Matrix::zeros(6, 4, StorageOrder::ColMajor),
            b: Matrix::zeros(4, 5, StorageOrder::ColMajor),
            beta: 0.0,
            c: Matrix::zeros(6, 5, StorageOrder::ColMajor),
        };
        cached.write_into(&mut payload);
        let GemmPayload::F64 { c, .. } = payload else {
            unreachable!()
        };
        assert_eq!(c.as_slice(), src.as_slice(), "bit-identical copy");
    }
}
