//! Request/response types and the shape bucketing they are keyed by.

use clgemm::params::KernelParams;
use clgemm::routine::GemmRun;
use clgemm_blas::matrix::Matrix;
use clgemm_blas::scalar::Precision;
use clgemm_blas::GemmType;
use std::fmt;

/// Server-assigned request identifier (submission order).
pub type RequestId = u64;

/// Tenant identity: which caller a request is billed to. The fair
/// queue keeps one lane per tenant and drains them deficit-round-robin
/// by weight, so one bulk tenant cannot starve interactive tenants.
pub type TenantId = String;

/// The tenant requests belong to when none is set.
pub const DEFAULT_TENANT: &str = "default";

/// Scheduling priority; higher priorities are batched and placed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    High,
    #[default]
    Normal,
    Low,
}

impl Priority {
    /// Sort rank: lower runs earlier.
    #[must_use]
    pub fn rank(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// The operands of one GEMM call, in either precision.
#[derive(Debug, Clone)]
pub enum GemmPayload {
    F64 {
        alpha: f64,
        a: Matrix<f64>,
        b: Matrix<f64>,
        beta: f64,
        c: Matrix<f64>,
    },
    F32 {
        alpha: f32,
        a: Matrix<f32>,
        b: Matrix<f32>,
        beta: f32,
        c: Matrix<f32>,
    },
}

impl GemmPayload {
    /// Which precision this payload computes in.
    #[must_use]
    pub fn precision(&self) -> Precision {
        match self {
            GemmPayload::F64 { .. } => Precision::F64,
            GemmPayload::F32 { .. } => Precision::F32,
        }
    }

    /// Problem dimensions `(m, n, k)` under the request's GEMM type.
    #[must_use]
    pub fn dims(&self, ty: GemmType) -> (usize, usize, usize) {
        match self {
            GemmPayload::F64 { a, c, .. } => {
                let (m, k) = a.dims_op(ty.ta);
                (m, c.cols(), k)
            }
            GemmPayload::F32 { a, c, .. } => {
                let (m, k) = a.dims_op(ty.ta);
                (m, c.cols(), k)
            }
        }
    }

    /// Arithmetic work of this GEMM: `2·m·n·k` flops. The admission
    /// controller scales this by its seconds-per-flop estimate to
    /// project completion, and the fair queue uses it as the DRR cost
    /// so weights divide *work*, not request counts.
    #[must_use]
    pub fn flops(&self, ty: GemmType) -> f64 {
        let (m, n, k) = self.dims(ty);
        2.0 * m.max(1) as f64 * n.max(1) as f64 * k.max(1) as f64
    }
}

/// One GEMM to serve.
#[derive(Debug, Clone)]
pub struct GemmRequest {
    pub ty: GemmType,
    pub payload: GemmPayload,
    pub priority: Priority,
    /// Virtual-time deadline (seconds on the serving clock). A request
    /// whose projected completion misses the deadline is rejected —
    /// first at admission time (submit projects completion from the
    /// cost model plus the queued backlog), and as a last resort at
    /// batch-execution time.
    pub deadline: Option<f64>,
    /// Which tenant this request is billed to (fair-queueing lane).
    pub tenant: TenantId,
}

impl GemmRequest {
    /// A normal-priority request with no deadline, billed to
    /// [`DEFAULT_TENANT`].
    #[must_use]
    pub fn new(ty: GemmType, payload: GemmPayload) -> GemmRequest {
        GemmRequest {
            ty,
            payload,
            priority: Priority::Normal,
            deadline: None,
            tenant: DEFAULT_TENANT.to_string(),
        }
    }

    /// Builder: set the priority.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> GemmRequest {
        self.priority = priority;
        self
    }

    /// Builder: set a virtual-time deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: f64) -> GemmRequest {
        self.deadline = Some(deadline);
        self
    }

    /// Builder: bill the request to a tenant (fair-queueing lane).
    #[must_use]
    pub fn with_tenant(mut self, tenant: &str) -> GemmRequest {
        self.tenant = tenant.to_string();
        self
    }

    /// The shape bucket this request falls in.
    #[must_use]
    pub fn bucket(&self) -> ShapeBucket {
        let (m, n, k) = self.payload.dims(self.ty);
        ShapeBucket::of(m, n, k)
    }
}

/// A queued request: its server-assigned id, the trace-epoch
/// nanosecond at which the queue accepted it (queue-wait accounting —
/// see `clgemm_trace::now_ns`), and the request itself. This is what
/// flows from the submission queue through the batcher to execution.
#[derive(Debug, Clone)]
pub struct PendingRequest {
    pub id: RequestId,
    /// `clgemm_trace::now_ns` at admission.
    pub enqueued_ns: u64,
    /// Modelled seconds this request was charged to the admission
    /// backlog when it was accepted; credited back when it drains.
    pub admit_cost: f64,
    pub req: GemmRequest,
}

/// A power-of-two shape bucket.
///
/// Kernel parameters tuned for one problem size serve nearby sizes
/// nearly as well (the paper's stage-2 sweep shows flat neighbourhoods
/// between LCM multiples), so the serving cache quantises each
/// dimension up to the next power of two (minimum 16) and shares one
/// kernel per bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeBucket {
    pub m: usize,
    pub n: usize,
    pub k: usize,
}

impl ShapeBucket {
    /// Bucket for a concrete problem shape.
    #[must_use]
    pub fn of(m: usize, n: usize, k: usize) -> ShapeBucket {
        ShapeBucket {
            m: quantise(m),
            n: quantise(n),
            k: quantise(k),
        }
    }
}

fn quantise(x: usize) -> usize {
    x.max(16).next_power_of_two()
}

impl fmt::Display for ShapeBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.k)
    }
}

/// What happened to a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served; the payload's `C` holds the result.
    Completed,
    /// Dropped before execution: the projected completion time missed
    /// the request's deadline. The payload's `C` is untouched.
    MissedDeadline,
}

/// The served request, with everything needed to replay it exactly.
#[derive(Debug, Clone)]
pub struct GemmResponse {
    pub id: RequestId,
    /// The batch this request was grouped into.
    pub batch: u64,
    /// Code name of the device that served it.
    pub device: String,
    /// The kernel parameters actually used — replaying `TunedGemm` with
    /// these on any device reproduces `C` bit for bit.
    pub params: KernelParams,
    pub ty: GemmType,
    /// Operands with `C` updated in place (unless the outcome says
    /// otherwise).
    pub payload: GemmPayload,
    /// Modelled timing of this request's share of the batch.
    pub run: GemmRun,
    /// Virtual time at which the batch containing this request drained.
    pub done_at: f64,
    pub outcome: Outcome,
}

#[cfg(test)]
mod tests {
    use super::*;
    use clgemm_blas::matrix::StorageOrder;

    fn payload(m: usize, n: usize, k: usize) -> GemmPayload {
        GemmPayload::F64 {
            alpha: 1.0,
            a: Matrix::test_pattern(m, k, StorageOrder::ColMajor, 1),
            b: Matrix::test_pattern(k, n, StorageOrder::ColMajor, 2),
            beta: 0.0,
            c: Matrix::zeros(m, n, StorageOrder::ColMajor),
        }
    }

    #[test]
    fn buckets_quantise_to_powers_of_two() {
        assert_eq!(
            ShapeBucket::of(60, 65, 100),
            ShapeBucket {
                m: 64,
                n: 128,
                k: 128
            }
        );
        assert_eq!(
            ShapeBucket::of(1, 2, 3),
            ShapeBucket {
                m: 16,
                n: 16,
                k: 16
            }
        );
        assert_eq!(
            ShapeBucket::of(128, 128, 128),
            ShapeBucket {
                m: 128,
                n: 128,
                k: 128
            }
        );
    }

    #[test]
    fn nearby_shapes_share_a_bucket_and_distant_ones_do_not() {
        let a = GemmRequest::new(GemmType::NN, payload(100, 100, 100));
        let b = GemmRequest::new(GemmType::NN, payload(120, 97, 110));
        let c = GemmRequest::new(GemmType::NN, payload(300, 100, 100));
        assert_eq!(a.bucket(), b.bucket());
        assert_ne!(a.bucket(), c.bucket());
    }

    #[test]
    fn dims_respect_the_transpose_type() {
        // op(A) = Aᵀ: A is k x m.
        let p = GemmPayload::F64 {
            alpha: 1.0,
            a: Matrix::zeros(30, 20, StorageOrder::ColMajor),
            b: Matrix::zeros(30, 10, StorageOrder::ColMajor),
            beta: 0.0,
            c: Matrix::zeros(20, 10, StorageOrder::ColMajor),
        };
        assert_eq!(p.dims(GemmType::TN), (20, 10, 30));
    }

    #[test]
    fn priority_ranks_order_correctly() {
        assert!(Priority::High.rank() < Priority::Normal.rank());
        assert!(Priority::Normal.rank() < Priority::Low.rank());
    }
}
