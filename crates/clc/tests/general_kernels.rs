//! The clc substrate is a general OpenCL C subset, not a GEMM-only DSL:
//! classic parallel kernels — transpose through local memory, tree
//! reduction, saxpy with while loops, numeric builtins — compile and run
//! with correct work-group semantics.

use clgemm_clc::{Arg, BufData, ExecOptions, NdRange, Program};

fn f64s(b: &BufData) -> &[f64] {
    match b {
        BufData::F64(v) => v,
        other => panic!("expected f64 buffer, got {other:?}"),
    }
}

#[test]
fn tiled_transpose_through_local_memory() {
    // The classic coalesced-transpose kernel: stage a tile in local
    // memory, barrier, write it back transposed.
    let src = r#"
        #define TILE 4
        __kernel __attribute__((reqd_work_group_size(4, 4, 1)))
        void transpose(__global const double* in, __global double* out, int n) {
            __local double tile[TILE*TILE];
            int gx = get_group_id(0);
            int gy = get_group_id(1);
            int tx = get_local_id(0);
            int ty = get_local_id(1);
            int x = gx*TILE + tx;
            int y = gy*TILE + ty;
            tile[ty*TILE + tx] = in[y*n + x];
            barrier(1);
            int ox = gy*TILE + tx;
            int oy = gx*TILE + ty;
            out[oy*n + ox] = tile[tx*TILE + ty];
        }
    "#;
    let p = Program::compile(src).unwrap();
    let n = 8usize;
    let input: Vec<f64> = (0..n * n).map(|i| i as f64).collect();
    let mut bufs = vec![BufData::F64(input.clone()), BufData::F64(vec![0.0; n * n])];
    p.kernel("transpose")
        .unwrap()
        .launch(
            NdRange::d2([n, n], [4, 4]),
            &[Arg::Buf(0), Arg::Buf(1), Arg::I32(n as i32)],
            &mut bufs,
            &ExecOptions::default(),
        )
        .unwrap();
    let out = f64s(&bufs[1]);
    for y in 0..n {
        for x in 0..n {
            assert_eq!(out[y * n + x], input[x * n + y], "({x},{y})");
        }
    }
}

#[test]
fn tree_reduction_with_while_loop() {
    // Work-group tree reduction using a while loop and barriers.
    let src = r#"
        __kernel void reduce(__global const double* in, __global double* out) {
            __local double scratch[8];
            int l = get_local_id(0);
            int g = get_global_id(0);
            scratch[l] = in[g];
            barrier(1);
            int stride = 4;
            while (stride > 0) {
                if (l < stride) {
                    scratch[l] = scratch[l] + scratch[l + stride];
                }
                barrier(1);
                stride = stride / 2;
            }
            if (l == 0) { out[get_group_id(0)] = scratch[0]; }
        }
    "#;
    let p = Program::compile(src).unwrap();
    let input: Vec<f64> = (1..=16).map(f64::from).collect();
    let mut bufs = vec![BufData::F64(input), BufData::F64(vec![0.0; 2])];
    p.kernel("reduce")
        .unwrap()
        .launch(
            NdRange::d1(16, 8),
            &[Arg::Buf(0), Arg::Buf(1)],
            &mut bufs,
            &ExecOptions::default(),
        )
        .unwrap();
    let out = f64s(&bufs[1]);
    assert_eq!(out[0], (1..=8).sum::<i32>() as f64);
    assert_eq!(out[1], (9..=16).sum::<i32>() as f64);
}

#[test]
fn while_loop_divergent_trip_counts() {
    // Each work-item loops a different number of times — uniform control
    // flow is NOT required outside barriers.
    let src = r#"
        __kernel void tri(__global double* out) {
            int g = get_global_id(0);
            double acc = 0.0;
            int i = 0;
            while (i <= g) {
                acc = acc + (double)i;
                i = i + 1;
            }
            out[g] = acc;
        }
    "#;
    let p = Program::compile(src).unwrap();
    let mut bufs = vec![BufData::F64(vec![0.0; 6])];
    p.kernel("tri")
        .unwrap()
        .launch(
            NdRange::d1(6, 2),
            &[Arg::Buf(0)],
            &mut bufs,
            &ExecOptions::default(),
        )
        .unwrap();
    assert_eq!(f64s(&bufs[0]), &[0.0, 1.0, 3.0, 6.0, 10.0, 15.0]);
}

#[test]
fn math_builtins_evaluate_correctly() {
    let src = r#"
        __kernel void mathy(__global const double* x, __global double* y) {
            int g = get_global_id(0);
            double v = x[g];
            double c = clamp(v, -1.0, 1.0);
            double e = exp(c);
            double l = log(e);
            y[g] = fmax(fmin(l, 10.0), -10.0) + sqrt(fabs(v));
        }
    "#;
    let p = Program::compile(src).unwrap();
    let xs = vec![-4.0, 0.25, 2.0, 9.0];
    let mut bufs = vec![BufData::F64(xs.clone()), BufData::F64(vec![0.0; 4])];
    p.kernel("mathy")
        .unwrap()
        .launch(
            NdRange::d1(4, 2),
            &[Arg::Buf(0), Arg::Buf(1)],
            &mut bufs,
            &ExecOptions::default(),
        )
        .unwrap();
    let out = f64s(&bufs[1]);
    for (i, &x) in xs.iter().enumerate() {
        let c: f64 = x.clamp(-1.0, 1.0);
        let want = c.exp().ln().clamp(-10.0, 10.0) + x.abs().sqrt();
        assert!((out[i] - want).abs() < 1e-12, "{i}: {} vs {want}", out[i]);
    }
}

#[test]
fn saxpy_with_vectors_and_tail() {
    // Vectorised body + scalar tail handling, the standard BLAS-1 shape.
    let src = r#"
        __kernel void saxpy4(__global const float* x, __global float* y, float a, int n4) {
            int g = get_global_id(0);
            if (g < n4) {
                float4 xv = vload4(g, x);
                float4 yv = vload4(g, y);
                vstore4(mad((float4)(a), xv, yv), g, y);
            }
        }
    "#;
    let p = Program::compile(src).unwrap();
    let n = 16usize;
    let mut bufs = vec![
        BufData::F32((0..n).map(|i| i as f32).collect()),
        BufData::F32(vec![1.0; n]),
    ];
    p.kernel("saxpy4")
        .unwrap()
        .launch(
            NdRange::d1(4, 2),
            &[Arg::Buf(0), Arg::Buf(1), Arg::F32(2.0), Arg::I32(4)],
            &mut bufs,
            &ExecOptions::default(),
        )
        .unwrap();
    match &bufs[1] {
        BufData::F32(v) => {
            for (i, &y) in v.iter().enumerate() {
                assert_eq!(y, 2.0 * i as f32 + 1.0);
            }
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn multi_kernel_program_with_shared_state() {
    // Two kernels in one program operating on the same buffer in
    // sequence — the host-API usage pattern of the routine layer.
    let src = r#"
        __kernel void fill(__global double* x) {
            x[get_global_id(0)] = (double)get_global_id(0);
        }
        __kernel void square(__global double* x) {
            int g = get_global_id(0);
            x[g] = x[g]*x[g];
        }
    "#;
    let p = Program::compile(src).unwrap();
    let mut bufs = vec![BufData::F64(vec![0.0; 8])];
    let opts = ExecOptions::default();
    p.kernel("fill")
        .unwrap()
        .launch(NdRange::d1(8, 4), &[Arg::Buf(0)], &mut bufs, &opts)
        .unwrap();
    p.kernel("square")
        .unwrap()
        .launch(NdRange::d1(8, 4), &[Arg::Buf(0)], &mut bufs, &opts)
        .unwrap();
    assert_eq!(
        f64s(&bufs[0]),
        &[0.0, 1.0, 4.0, 9.0, 16.0, 25.0, 36.0, 49.0]
    );
}

#[test]
fn non_terminating_while_is_caught_by_step_limit() {
    let src = r#"
        __kernel void spin(__global double* x) {
            int i = 1;
            while (i > 0) { i = 1; }
            x[0] = (double)i;
        }
    "#;
    let p = Program::compile(src).unwrap();
    let mut bufs = vec![BufData::F64(vec![0.0; 1])];
    let opts = ExecOptions {
        step_limit: 10_000,
        ..Default::default()
    };
    let err = p
        .kernel("spin")
        .unwrap()
        .launch(NdRange::d1(1, 1), &[Arg::Buf(0)], &mut bufs, &opts)
        .unwrap_err();
    assert!(err.to_string().contains("step limit"), "{err}");
}
