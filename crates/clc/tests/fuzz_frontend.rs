//! Robustness fuzzing for the OpenCL C frontend: arbitrary byte soup,
//! token soup and mutated-but-plausible kernels must produce
//! `CompileError`s, never panics. (The tuner feeds the compiler millions
//! of generated sources over its lifetime; the frontend must be total.)

use clgemm_clc::Program;
use clgemm_shim::Rng;

/// Arbitrary strings never panic the compiler.
#[test]
fn arbitrary_strings_never_panic() {
    let mut rng = Rng::new(1);
    for _ in 0..256 {
        let len = rng.range(0, 401);
        let src: String = (0..len)
            .map(|_| char::from_u32(rng.range(1, 0xD800) as u32).unwrap_or('?'))
            .collect();
        let _ = Program::compile(&src);
    }
}

/// Token soup from the language's own vocabulary never panics.
#[test]
fn token_soup_never_panics() {
    const VOCAB: &[&str] = &[
        "__kernel",
        "void",
        "int",
        "float",
        "double",
        "float4",
        "__global",
        "__local",
        "const",
        "for",
        "if",
        "else",
        "while",
        "return",
        "barrier",
        "mad",
        "vload2",
        "vstore2",
        "get_global_id",
        "(",
        ")",
        "{",
        "}",
        "[",
        "]",
        ";",
        ",",
        "=",
        "+",
        "-",
        "*",
        "/",
        "<",
        ">",
        "==",
        "&&",
        "0",
        "1",
        "42",
        "3.5",
        "2.0f",
        "x",
        "y",
        "A",
    ];
    let mut rng = Rng::new(2);
    for _ in 0..256 {
        let n = rng.range(0, 60);
        let src = (0..n)
            .map(|_| *rng.choose(VOCAB).unwrap())
            .collect::<Vec<_>>()
            .join(" ");
        let _ = Program::compile(&src);
    }
}

/// Mutating one byte of a valid kernel never panics (it may still
/// compile if the byte lands in a comment).
#[test]
fn single_byte_mutations_never_panic() {
    let base = r#"
        // a comment line to absorb some mutations
        __kernel void k(__global const float* a, __global float* c, int n) {
            int i = get_global_id(0);
            float acc = 0.0f;
            for (int p = 0; p < n; p += 1) { acc = mad(a[p], 2.0f, acc); }
            if (i < n) { c[i] = acc; }
        }
    "#;
    let mut rng = Rng::new(3);
    for _ in 0..256 {
        let mut bytes = base.as_bytes().to_vec();
        let idx = rng.range(0, bytes.len());
        bytes[idx] = rng.range(0, 128) as u8;
        if let Ok(src) = std::str::from_utf8(&bytes) {
            let _ = Program::compile(src);
        }
    }
}

/// Deeply nested expressions neither panic nor hang.
#[test]
fn nested_parens_are_handled() {
    for depth in 1..60 {
        let expr = format!("{}1.0{}", "(".repeat(depth), ")".repeat(depth));
        let src = format!("__kernel void k(__global double* x) {{ x[0] = {expr}; }}");
        let p = Program::compile(&src);
        assert!(p.is_ok(), "balanced parens should compile at depth {depth}");
    }
}

#[test]
fn pathological_but_valid_sources_compile() {
    // Very long straight-line kernel (stress the lowering, not the parser).
    let mut body = String::new();
    for i in 0..500 {
        body.push_str(&format!("double v{i} = {i}.0;\n"));
    }
    body.push_str("double s = 0.0;\n");
    for i in 0..500 {
        body.push_str(&format!("s = s + v{i};\n"));
    }
    let src = format!("__kernel void k(__global double* x) {{\n{body}\nx[0] = s;\n}}");
    let p = Program::compile(&src).unwrap();
    // And it runs: sum 0..499 = 124750.
    let mut bufs = vec![clgemm_clc::BufData::F64(vec![0.0])];
    p.kernel("k")
        .unwrap()
        .launch(
            clgemm_clc::NdRange::d1(1, 1),
            &[clgemm_clc::Arg::Buf(0)],
            &mut bufs,
            &clgemm_clc::ExecOptions::default(),
        )
        .unwrap();
    match &bufs[0] {
        clgemm_clc::BufData::F64(v) => assert_eq!(v[0], 124_750.0),
        other => panic!("{other:?}"),
    }
}

#[test]
fn deeply_nested_control_flow_compiles_and_runs() {
    let mut src = String::from("__kernel void k(__global int* x) {\nint acc = 0;\n");
    for i in 0..24 {
        src.push_str(&format!("if (acc >= {i}) {{ acc = acc + 1;\n"));
    }
    src.push_str(&"}".repeat(24));
    src.push_str("\nx[0] = acc;\n}");
    let p = Program::compile(&src).unwrap();
    let mut bufs = vec![clgemm_clc::BufData::I32(vec![0])];
    p.kernel("k")
        .unwrap()
        .launch(
            clgemm_clc::NdRange::d1(1, 1),
            &[clgemm_clc::Arg::Buf(0)],
            &mut bufs,
            &clgemm_clc::ExecOptions::default(),
        )
        .unwrap();
    match &bufs[0] {
        clgemm_clc::BufData::I32(v) => assert_eq!(v[0], 24),
        other => panic!("{other:?}"),
    }
}
