//! Deterministic text renderings of the SSA IR and the trace plan,
//! used by the disassembler and by the committed golden-file test.

use super::trace::{Bank, PBlock, POp, PTerm, Slot, TracePlan};
use super::{Func, Op, OpKind, Term};
use std::fmt::Write;

/// Render an SSA function.
#[must_use]
pub fn print_func(f: &Func) -> String {
    let mut s = String::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        let params: Vec<String> = b.params.iter().map(|p| format!("v{p}")).collect();
        let _ = writeln!(s, "b{bi}({}):", params.join(", "));
        for op in &b.ops {
            let _ = writeln!(s, "  {}", fmt_op(op));
        }
        let _ = writeln!(s, "  {}", fmt_term(&b.term));
    }
    s
}

fn fmt_op(op: &Op) -> String {
    let dst = match op.dst {
        Some(d) => format!("v{d} = "),
        None => String::new(),
    };
    let body = match &op.kind {
        OpKind::Const(v) => format!("const {v:?}"),
        OpKind::Bin(o, a, b) => format!("{o:?} v{a}, v{b}"),
        OpKind::Un(o, a) => format!("{o:?} v{a}"),
        OpKind::Convert(a, base) => format!("convert v{a} to {base:?}"),
        OpKind::Broadcast(a, w) => format!("broadcast v{a} x{w}"),
        OpKind::BuildVec(base, parts) => {
            let ps: Vec<String> = parts.iter().map(|p| format!("v{p}")).collect();
            format!("build {base:?} [{}]", ps.join(", "))
        }
        OpKind::Extract(a, l) => format!("extract v{a}[{l}]"),
        OpKind::Insert(a, b, l) => format!("insert v{a}[{l}] = v{b}"),
        OpKind::Mad(a, b, c) => format!("mad v{a}, v{b}, v{c}"),
        OpKind::MadLane(v, l, b, c) => format!("madlane v{v}[{l}], v{b}, v{c}"),
        OpKind::Math(f, args, n) => {
            let ps: Vec<String> = args[..*n as usize]
                .iter()
                .map(|p| format!("v{p}"))
                .collect();
            format!("{f:?}({})", ps.join(", "))
        }
        OpKind::Wi(f, d) => format!("{f:?}(v{d})"),
        OpKind::LoadGlobal { buf, idx, width } => format!("ldg buf{buf}[v{idx}] x{width}"),
        OpKind::StoreGlobal {
            buf,
            idx,
            src,
            width,
        } => format!("stg buf{buf}[v{idx}] x{width} = v{src}"),
        OpKind::LoadLocal { arr, idx, width } => format!("ldl arr{arr}[v{idx}] x{width}"),
        OpKind::StoreLocal {
            arr,
            idx,
            src,
            width,
        } => format!("stl arr{arr}[v{idx}] x{width} = v{src}"),
        OpKind::Select(c, a, b) => format!("select v{c} ? v{a} : v{b}"),
    };
    format!("{dst}{body}")
}

fn fmt_edge(e: &super::Edge) -> String {
    let args: Vec<String> = e.args.iter().map(|a| format!("v{a}")).collect();
    format!("b{}({})", e.to, args.join(", "))
}

fn fmt_term(t: &Term) -> String {
    match t {
        Term::Br(e) => format!("br {}", fmt_edge(e)),
        Term::CondBr { cond, t, f } => {
            format!("condbr v{cond} ? {} : {}", fmt_edge(t), fmt_edge(f))
        }
        Term::Barrier { site, next } => format!("barrier #{site} -> {}", fmt_edge(next)),
        Term::Ret => "ret".to_string(),
    }
}

/// Render a trace plan: slot-group table, seeds, then per-block ops.
#[must_use]
pub fn print_plan(plan: &TracePlan) -> String {
    let mut s = String::new();
    let st = &plan.stats;
    let _ = writeln!(
        s,
        "; ops {} -> {} (folded {}, cse {}, dce {}, merged {}, \
         unrolled {} loops / {} iters, spills {})",
        st.ops_in,
        st.ops_out,
        st.folded,
        st.cse,
        st.dce,
        st.blocks_merged,
        st.unrolled_loops,
        st.unrolled_iters,
        st.spills
    );
    for (gi, g) in plan.groups.iter().enumerate() {
        let bank = match g.bank {
            Bank::I => "i64",
            Bank::F => "f32",
            Bank::D => "f64",
        };
        let kind = if g.varying { "varying" } else { "uniform" };
        let _ = writeln!(
            s,
            "group g{gi}: {bank} x{} {kind}, {} slots",
            g.lanes, g.n_slots
        );
    }
    for (slot, v) in &plan.consts {
        let _ = writeln!(s, "seed {} = {v:?}", fmt_slot(*slot));
    }
    for (slot, reg) in &plan.entries {
        let _ = writeln!(s, "seed {} = r{reg}", fmt_slot(*slot));
    }
    for (bi, b) in plan.blocks.iter().enumerate() {
        let _ = writeln!(s, "b{bi}:  ; {} instrs/wi", b.cost.instrs);
        print_pblock(&mut s, b);
    }
    s
}

fn print_pblock(s: &mut String, b: &PBlock) {
    for op in &b.ops {
        let _ = writeln!(s, "  {}", fmt_pop(op));
    }
    match &b.term {
        PTerm::Br { to, copies } => {
            for c in copies {
                let _ = writeln!(s, "  {}", fmt_pop(c));
            }
            let _ = writeln!(s, "  br b{to}");
        }
        PTerm::CondBr {
            cond,
            t,
            f,
            t_copies,
            f_copies,
        } => {
            for c in t_copies {
                let _ = writeln!(s, "  [t] {}", fmt_pop(c));
            }
            for c in f_copies {
                let _ = writeln!(s, "  [f] {}", fmt_pop(c));
            }
            let _ = writeln!(s, "  condbr {} ? b{t} : b{f}", fmt_slot(*cond));
        }
        PTerm::Barrier { to, copies } => {
            for c in copies {
                let _ = writeln!(s, "  {}", fmt_pop(c));
            }
            let _ = writeln!(s, "  barrier -> b{to}");
        }
        PTerm::Ret => {
            let _ = writeln!(s, "  ret");
        }
    }
}

fn fmt_slot(s: Slot) -> String {
    if s == Slot::NONE {
        "_".to_string()
    } else {
        format!("g{}s{}", s.group, s.slot)
    }
}

fn fmt_pop(op: &POp) -> String {
    let mut s = format!("{:?}", op.k);
    s.make_ascii_lowercase();
    let mut out = String::new();
    if op.d != Slot::NONE {
        let _ = write!(out, "{} = ", fmt_slot(op.d));
    }
    let _ = write!(out, "{s}");
    for slot in [op.a, op.b, op.c] {
        if slot != Slot::NONE {
            let _ = write!(out, " {}", fmt_slot(slot));
        }
    }
    for slot in &op.ex {
        let _ = write!(out, " {}", fmt_slot(*slot));
    }
    if op.aux != 0 {
        let _ = write!(out, " aux={}", op.aux);
    }
    if s.starts_with("ldg") || s.starts_with("stg") || s.starts_with("ldl") || s.starts_with("stl")
    {
        let _ = write!(out, " buf={}", op.buf);
    }
    out
}
