//! The trace backend: uniformity analysis, splat insertion, linear-scan
//! slot allocation onto typed SoA banks, and emission of the
//! pre-scheduled [`TracePlan`] the compiled engine executes.
//!
//! A value is **uniform** when it is provably identical across every
//! work-item of a group (constants, value parameters, group ids,
//! sizes); everything derived from `get_global_id`/`get_local_id` or a
//! memory load is **varying**. Uniform ops execute once per group;
//! varying ops execute as one flat loop over all work-items of the
//! group — that loop is where the per-op dispatch cost of the
//! interpreters is amortised away.
//!
//! Varying ops take all-varying operands: a uniform operand is
//! **splatted** into a varying slot first (once, adjacent to its
//! definition; splats of constants and entry parameters cost nothing
//! at runtime — they become group-reset seeds). Branch conditions must
//! be uniform; a kernel with a work-item-divergent branch is declined
//! and falls back to the fast VM. Memory ops always execute per
//! work-item so bounds checks and race recording match the reference
//! interpreter access-for-access.
//!
//! Slots live in three per-group banks (`i64`/`f32`/`f64`), grouped by
//! (storage shape, uniformity). A varying slot is `nwi × lanes`
//! contiguous cells (slot-major), so elementwise ops vectorise as flat
//! loops. Linear scan reuses slots of block-local values; anything
//! live across blocks (params, loop carriers) is pinned.

use super::{CompileStats, Cost, Edge, Func, Op, OpKind, Term, Val};
use crate::ast::{Base, BinOp, UnOp};
use crate::lower::{CompiledKernel, MathFunc, Reg, RegClass, WiFunc};
use crate::vm::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Which typed bank a slot lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Bank {
    I,
    F,
    D,
}

/// A slot group: one storage shape within a bank. A slot of this group
/// occupies `lanes` cells (uniform) or `nwi × lanes` cells (varying).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct GroupInfo {
    pub bank: Bank,
    pub lanes: u8,
    pub varying: bool,
    pub n_slots: u32,
}

/// A symbolic slot reference, resolved to a flat bank offset at bind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Slot {
    pub group: u16,
    pub slot: u32,
}

impl Slot {
    pub(crate) const NONE: Slot = Slot {
        group: u16::MAX,
        slot: 0,
    };
}

/// Fully-specialised trace op kinds. Each executes as one dispatch per
/// group (not per work-item): elementwise kinds run a flat loop over
/// the destination's cells, structured kinds loop `reps × lanes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PK {
    // copies (also used for block-argument moves) and splats
    CpyI,
    CpyF,
    CpyD,
    SplatI,
    SplatF,
    SplatD,
    // integer ALU (scalars; bools are 0/1 i64)
    AddI,
    SubI,
    MulI,
    DivI,
    RemI,
    /// Truncating division by a power of two (`aux` = shift): branchless
    /// and divider-free, exact for every operand including negatives.
    DivIP2,
    /// Truncating remainder by a power of two (`aux` = shift).
    RemIP2,
    AndI,
    OrI,
    XorI,
    ShlI,
    ShrI,
    LAndI,
    LOrI,
    CmpI,
    NegI,
    NotI,
    // f32 (scalar and vector — the flat count covers the lanes);
    // arithmetic via f64 intermediates, mirroring the reference
    AddF,
    SubF,
    MulF,
    DivF,
    /// `d = a << aux` — multiplication by the power of two `2^aux`.
    MulIP2,
    NegF,
    MadF,
    /// Fused lane-broadcast mad: `d = v[aux] * b + c` per work-item,
    /// where `aux` is the source lane and `buf` carries the source
    /// vector's lane count (its stride through the bank).
    MadBF,
    CmpF,
    // f64
    AddD,
    SubD,
    MulD,
    DivD,
    NegD,
    MadD,
    /// f64 twin of [`PK::MadBF`].
    MadBD,
    CmpD,
    // select
    SelI,
    SelF,
    SelD,
    SelVF,
    SelVD,
    // scalar converts
    I2F,
    I2D,
    I2B,
    F2I,
    F2D,
    D2I,
    D2F,
    // vector converts
    VF2D,
    VD2F,
    // vector assembly/disassembly
    BcastF,
    BcastD,
    BcastID,
    BuildF,
    BuildD,
    ExtrF,
    ExtrD,
    InsF,
    InsD,
    // math builtins (scalars)
    MinI,
    MaxI,
    ClampI,
    MinF,
    MaxF,
    ClampF,
    MinD,
    MaxD,
    ClampD,
    AbsF,
    AbsD,
    SqrtF,
    SqrtD,
    ExpF,
    ExpD,
    LogF,
    LogD,
    RecipF,
    RecipD,
    // work-item queries: aux packs (func, dim)
    WiId,
    WiUni,
    // global memory (always per work-item; aux = access width)
    LdG1F,
    LdGVF,
    LdG1D,
    LdGVD,
    LdG1I,
    StG1F,
    StGVF,
    StG1D,
    StGVD,
    StG1I,
    // local memory
    LdL1F,
    LdLVF,
    LdL1D,
    LdLVD,
    LdL1I,
    StL1F,
    StLVF,
    StL1D,
    StLVD,
    StL1I,
}

/// A planned op: kind + symbolic slots + immediates.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct POp {
    pub k: PK,
    pub d: Slot,
    pub a: Slot,
    pub b: Slot,
    pub c: Slot,
    /// Lane index, cmp code, packed Wi (func, dim), or access width.
    pub aux: u8,
    /// Global buffer or local array index for memory ops.
    pub buf: u16,
    /// BuildVec part slots.
    pub ex: Vec<Slot>,
}

impl POp {
    fn new(k: PK, d: Slot) -> POp {
        POp {
            k,
            d,
            a: Slot::NONE,
            b: Slot::NONE,
            c: Slot::NONE,
            aux: 0,
            buf: 0,
            ex: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum PTerm {
    Br {
        to: usize,
        copies: Vec<POp>,
    },
    CondBr {
        cond: Slot,
        t: usize,
        f: usize,
        t_copies: Vec<POp>,
        f_copies: Vec<POp>,
    },
    Barrier {
        to: usize,
        copies: Vec<POp>,
    },
    Ret,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PBlock {
    pub ops: Vec<POp>,
    pub cost: Cost,
    pub term: PTerm,
}

/// The compiled kernel: a geometry-independent schedule. [`bind`]
/// resolves it to flat bank offsets for a concrete group size.
///
/// [`bind`]: TracePlan::bind
#[derive(Debug, Clone, PartialEq)]
pub struct TracePlan {
    pub stats: CompileStats,
    pub(crate) groups: Vec<GroupInfo>,
    pub(crate) blocks: Vec<PBlock>,
    /// Constant seeds written at every group reset.
    pub(crate) consts: Vec<(Slot, Value)>,
    /// Entry-parameter seeds: slot ← launch `init_regs[reg]`.
    pub(crate) entries: Vec<SlotReg>,
}

/// An entry seed: this slot is initialised from that launch register.
pub(crate) type SlotReg = (Slot, Reg);

// ---- bound (per-launch) form ----------------------------------------------

/// A bound op: flat bank offsets plus loop bounds. `n` is the flat
/// element count for elementwise kinds and the rep (work-item) count
/// for structured kinds; `w` is the lane count.
#[derive(Debug, Clone)]
pub(crate) struct BOp {
    pub k: PK,
    pub d: u32,
    pub a: u32,
    pub b: u32,
    pub c: u32,
    pub n: u32,
    pub w: u32,
    pub aux: u8,
    pub buf: u16,
    pub ex: Box<[u32]>,
}

#[derive(Debug, Clone)]
pub(crate) enum BTerm {
    Br {
        to: u32,
        copies: Box<[BOp]>,
    },
    CondBr {
        cond: u32,
        t: u32,
        f: u32,
        t_copies: Box<[BOp]>,
        f_copies: Box<[BOp]>,
    },
    Barrier {
        to: u32,
        copies: Box<[BOp]>,
    },
    Ret,
}

#[derive(Debug, Clone)]
pub(crate) struct BBlock {
    pub ops: Vec<BOp>,
    pub cost: Cost,
    pub term: BTerm,
}

/// One seed write performed at each group reset: `reps` repetitions of
/// the `lanes`-cell payload starting at `flat` in `bank`.
#[derive(Debug, Clone)]
pub(crate) struct BSeed {
    pub bank: Bank,
    pub flat: u32,
    pub reps: u32,
    pub lanes: u32,
    pub val: Value,
}

/// A plan bound to a concrete group size.
#[derive(Debug, Clone)]
pub(crate) struct BoundTrace {
    pub blocks: Vec<BBlock>,
    pub seeds: Vec<BSeed>,
    /// Entry-param seeds: (write shape, source register in `init_regs`).
    pub entry_seeds: Vec<(BSeed, Reg)>,
    pub ni: usize,
    pub nf: usize,
    pub nd: usize,
}

impl GroupInfo {
    fn unit(&self, nwi: usize) -> usize {
        self.lanes as usize * if self.varying { nwi } else { 1 }
    }
}

fn is_mem_pk(k: PK) -> bool {
    use PK::*;
    matches!(
        k,
        LdG1F
            | LdGVF
            | LdG1D
            | LdGVD
            | LdG1I
            | StG1F
            | StGVF
            | StG1D
            | StGVD
            | StG1I
            | LdL1F
            | LdLVF
            | LdL1D
            | LdLVD
            | LdL1I
            | StL1F
            | StLVF
            | StL1D
            | StLVD
            | StL1I
    )
}

fn is_structured_pk(k: PK) -> bool {
    use PK::*;
    matches!(
        k,
        SplatI
            | SplatF
            | SplatD
            | BcastF
            | BcastD
            | BcastID
            | BuildF
            | BuildD
            | ExtrF
            | ExtrD
            | InsF
            | InsD
            | SelVF
            | SelVD
            | MadBF
            | MadBD
            | WiId
    )
}

impl TracePlan {
    /// Resolve slots to flat offsets for groups of `nwi` work-items.
    pub(crate) fn bind(&self, nwi: usize) -> BoundTrace {
        let mut base = vec![0u32; self.groups.len()];
        let mut tot = [0usize; 3]; // I, F, D bank sizes
        for (gi, g) in self.groups.iter().enumerate() {
            let b = match g.bank {
                Bank::I => 0,
                Bank::F => 1,
                Bank::D => 2,
            };
            base[gi] = tot[b] as u32;
            tot[b] += g.n_slots as usize * g.unit(nwi);
        }
        let flat = |s: Slot| -> u32 {
            if s.group == u16::MAX {
                return 0;
            }
            let g = &self.groups[s.group as usize];
            base[s.group as usize] + s.slot * g.unit(nwi) as u32
        };
        let bind_op = |p: &POp| -> BOp {
            let (n, w) = if is_mem_pk(p.k) {
                (nwi as u32, u32::from(p.aux.max(1)))
            } else if matches!(p.k, PK::ExtrF | PK::ExtrD) {
                // The lane count comes from the *source* vector — the
                // destination is scalar.
                let g = &self.groups[p.a.group as usize];
                let reps = if g.varying { nwi as u32 } else { 1 };
                (reps, u32::from(g.lanes))
            } else if is_structured_pk(p.k) {
                let g = &self.groups[p.d.group as usize];
                let reps = if g.varying { nwi as u32 } else { 1 };
                (reps, u32::from(g.lanes))
            } else if matches!(p.k, PK::WiUni) {
                (1, 1)
            } else {
                // Elementwise: one flat loop over the dst's cells. For
                // cross-bank kinds (compares, converts) the operand
                // shape matches the dst shape cell-for-cell.
                let g = &self.groups[p.d.group as usize];
                let reps = if g.varying { nwi as u32 } else { 1 };
                (reps * u32::from(g.lanes), u32::from(g.lanes))
            };
            BOp {
                k: p.k,
                d: flat(p.d),
                a: flat(p.a),
                b: flat(p.b),
                c: flat(p.c),
                n,
                w,
                aux: p.aux,
                buf: p.buf,
                ex: p.ex.iter().map(|&s| flat(s)).collect(),
            }
        };
        let bind_ops = |ops: &[POp]| -> Box<[BOp]> { ops.iter().map(bind_op).collect() };
        let blocks = self
            .blocks
            .iter()
            .map(|b| BBlock {
                ops: b.ops.iter().map(bind_op).collect(),
                cost: b.cost,
                term: match &b.term {
                    PTerm::Br { to, copies } => BTerm::Br {
                        to: *to as u32,
                        copies: bind_ops(copies),
                    },
                    PTerm::CondBr {
                        cond,
                        t,
                        f,
                        t_copies,
                        f_copies,
                    } => BTerm::CondBr {
                        cond: flat(*cond),
                        t: *t as u32,
                        f: *f as u32,
                        t_copies: bind_ops(t_copies),
                        f_copies: bind_ops(f_copies),
                    },
                    PTerm::Barrier { to, copies } => BTerm::Barrier {
                        to: *to as u32,
                        copies: bind_ops(copies),
                    },
                    PTerm::Ret => BTerm::Ret,
                },
            })
            .collect();
        let seed_of = |slot: Slot, val: Value| -> BSeed {
            let g = &self.groups[slot.group as usize];
            BSeed {
                bank: g.bank,
                flat: flat(slot),
                reps: if g.varying { nwi as u32 } else { 1 },
                lanes: u32::from(g.lanes),
                val,
            }
        };
        BoundTrace {
            blocks,
            seeds: self.consts.iter().map(|&(s, v)| seed_of(s, v)).collect(),
            entry_seeds: self
                .entries
                .iter()
                .map(|&(s, r)| (seed_of(s, Value::I(0)), r))
                .collect(),
            ni: tot[0],
            nf: tot[1],
            nd: tot[2],
        }
    }
}

// ---- emission -------------------------------------------------------------

fn class_shape(c: RegClass) -> (Bank, u8) {
    match c {
        RegClass::Int => (Bank::I, 1),
        RegClass::F32 => (Bank::F, 1),
        RegClass::F64 => (Bank::D, 1),
        RegClass::V32(w) => (Bank::F, w),
        RegClass::V64(w) => (Bank::D, w),
    }
}

fn cmp_code(op: BinOp) -> u8 {
    match op {
        BinOp::Lt => 0,
        BinOp::Gt => 1,
        BinOp::Le => 2,
        BinOp::Ge => 3,
        BinOp::Eq => 4,
        BinOp::Ne => 5,
        _ => unreachable!("not a comparison"),
    }
}

pub(crate) fn wi_pack(f: WiFunc, dim: u8) -> u8 {
    let fc = match f {
        WiFunc::GlobalId => 0,
        WiFunc::LocalId => 1,
        WiFunc::GroupId => 2,
        WiFunc::GlobalSize => 3,
        WiFunc::LocalSize => 4,
        WiFunc::NumGroups => 5,
    };
    fc * 4 + dim
}

/// Schedule item within a block: a source op or an inserted splat.
enum SItem {
    Op(usize),
    Splat { src: Val, dst: Val },
}

/// Where a splat twin gets written.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SplatSite {
    /// At group reset (constants, entry params): no runtime op.
    Seed,
    BlockStart(usize),
    AfterOp(usize, usize),
}

struct Emitter<'a> {
    k: &'a CompiledKernel,
    f: &'a Func,
    /// `f.classes` extended with the splat twins'.
    classes: Vec<RegClass>,
    uni: Vec<bool>,
    splat: BTreeMap<Val, Val>,
    splat_site: HashMap<Val, SplatSite>,
    konst: Vec<Option<Value>>,
    groups: Vec<GroupInfo>,
    group_idx: HashMap<(Bank, u8, bool), u16>,
    slot_of: Vec<Option<Slot>>,
    /// Reserved scratch slot per group, for parallel-copy cycles.
    temps: Vec<u32>,
}

/// Emit a trace plan, or return the reason the kernel is declined.
pub(crate) fn emit(
    k: &CompiledKernel,
    f: &Func,
    mut stats: CompileStats,
) -> Result<TracePlan, String> {
    let konst = konst_of(f);
    let uni = uniformity(f);
    for b in &f.blocks {
        if let Term::CondBr { cond, .. } = &b.term {
            if !uni[*cond as usize] {
                return Err("work-item-divergent branch condition".into());
            }
        }
    }
    let mut em = Emitter {
        k,
        f,
        classes: f.classes.clone(),
        uni,
        splat: BTreeMap::new(),
        splat_site: HashMap::new(),
        konst,
        groups: Vec::new(),
        group_idx: HashMap::new(),
        slot_of: Vec::new(),
        temps: Vec::new(),
    };
    let scheds = em.plan_splats();
    em.allocate(&scheds, &mut stats);
    let mut blocks = Vec::with_capacity(f.blocks.len());
    for (bi, blk) in f.blocks.iter().enumerate() {
        let mut ops = Vec::new();
        for item in &scheds[bi] {
            match item {
                SItem::Splat { src, dst } => {
                    let (bank, _) = class_shape(em.classes[*src as usize]);
                    let kind = match bank {
                        Bank::I => PK::SplatI,
                        Bank::F => PK::SplatF,
                        Bank::D => PK::SplatD,
                    };
                    let mut p = POp::new(kind, em.slot(*dst));
                    p.a = em.slot(*src);
                    ops.push(p);
                }
                SItem::Op(oi) => {
                    if let Some(p) = em.lower_op(&blk.ops[*oi])? {
                        ops.push(p);
                    }
                }
            }
        }
        let term = em.lower_term(&blk.term);
        blocks.push(PBlock {
            ops,
            cost: blk.cost,
            term,
        });
    }
    let (consts, entries) = em.collect_seeds();
    Ok(TracePlan {
        stats,
        groups: em.groups,
        blocks,
        consts,
        entries,
    })
}

fn konst_of(f: &Func) -> Vec<Option<Value>> {
    let mut k = vec![None; f.n_vals()];
    for b in &f.blocks {
        for op in &b.ops {
            if let (Some(d), OpKind::Const(v)) = (op.dst, &op.kind) {
                k[d as usize] = Some(*v);
            }
        }
    }
    k
}

/// Per-value uniformity to a fixpoint. Start everything uniform and
/// demote: loads and per-item id queries are varying sources; any op
/// with a varying operand is varying; a block param is varying when any
/// incoming edge argument is.
fn uniformity(f: &Func) -> Vec<bool> {
    let mut uni = vec![true; f.n_vals()];
    loop {
        let mut changed = false;
        for b in &f.blocks {
            for op in &b.ops {
                let Some(d) = op.dst else { continue };
                let varying = match &op.kind {
                    OpKind::LoadGlobal { .. } | OpKind::LoadLocal { .. } => true,
                    OpKind::Wi(WiFunc::GlobalId | WiFunc::LocalId, _) => true,
                    OpKind::Wi(_, _) => false,
                    kind => kind.operands().iter().any(|&o| !uni[o as usize]),
                };
                if varying && uni[d as usize] {
                    uni[d as usize] = false;
                    changed = true;
                }
            }
            for e in b.term.edges() {
                for (param, arg) in f.blocks[e.to].params.iter().zip(&e.args) {
                    if !uni[*arg as usize] && uni[*param as usize] {
                        uni[*param as usize] = false;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return uni;
        }
    }
}

impl Emitter<'_> {
    fn group(&mut self, bank: Bank, lanes: u8, varying: bool) -> u16 {
        if let Some(&g) = self.group_idx.get(&(bank, lanes, varying)) {
            return g;
        }
        let g = self.groups.len() as u16;
        self.groups.push(GroupInfo {
            bank,
            lanes,
            varying,
            n_slots: 0,
        });
        self.group_idx.insert((bank, lanes, varying), g);
        g
    }

    fn group_of_val(&mut self, v: Val) -> u16 {
        let (bank, lanes) = class_shape(self.classes[v as usize]);
        let varying = !self.uni[v as usize];
        self.group(bank, lanes, varying)
    }

    fn slot(&self, v: Val) -> Slot {
        self.slot_of[v as usize].expect("value has a slot")
    }

    fn op_varying(&self, op: &Op) -> bool {
        op.kind.is_mem() || op.dst.is_some_and(|d| !self.uni[d as usize])
    }

    /// Runtime operands after splat rewriting: `Wi` reads no slots (its
    /// dim is an immediate); a varying op reads the splatted twin of
    /// any uniform operand.
    fn rt_operands(&self, op: &Op) -> Vec<Val> {
        if matches!(op.kind, OpKind::Wi(_, _) | OpKind::Const(_)) {
            return vec![];
        }
        let varying = self.op_varying(op);
        op.kind
            .operands()
            .into_iter()
            .map(|o| self.rewrite(o, varying))
            .collect()
    }

    fn rewrite(&self, o: Val, consumer_varying: bool) -> Val {
        if consumer_varying && self.uni[o as usize] {
            *self.splat.get(&o).expect("splat twin planned")
        } else {
            o
        }
    }

    /// Decide which uniform values need varying twins, create the twin
    /// values, and build each block's schedule with the splat writes
    /// placed adjacent to the source definitions (so every use is
    /// dominated).
    fn plan_splats(&mut self) -> Vec<Vec<SItem>> {
        let f = self.f;
        let mut need: BTreeSet<Val> = BTreeSet::new();
        for b in &f.blocks {
            for op in &b.ops {
                if matches!(op.kind, OpKind::Wi(_, _) | OpKind::Const(_)) {
                    continue;
                }
                if self.op_varying(op) {
                    for o in op.kind.operands() {
                        if self.uni[o as usize] {
                            need.insert(o);
                        }
                    }
                }
            }
            for e in b.term.edges() {
                for (param, arg) in f.blocks[e.to].params.iter().zip(&e.args) {
                    if !self.uni[*param as usize] && self.uni[*arg as usize] {
                        need.insert(*arg);
                    }
                }
            }
        }
        // Twin values, in deterministic (val id) order.
        for &v in &need {
            let sv = self.classes.len() as Val;
            self.classes.push(self.classes[v as usize]);
            self.uni.push(false);
            self.splat.insert(v, sv);
        }
        // Definition sites. A value is a param or an op dst; Const dsts
        // and entry params (of a pred-less entry) seed at group reset.
        let entry_has_preds = !f.preds()[0].is_empty();
        for &v in &need {
            self.splat_site.insert(v, SplatSite::Seed);
        }
        for (bi, b) in f.blocks.iter().enumerate() {
            for &p in &b.params {
                if need.contains(&p) && (bi != 0 || entry_has_preds) {
                    self.splat_site.insert(p, SplatSite::BlockStart(bi));
                }
            }
            for (oi, op) in b.ops.iter().enumerate() {
                if let Some(d) = op.dst {
                    if need.contains(&d) && !matches!(op.kind, OpKind::Const(_)) {
                        self.splat_site.insert(d, SplatSite::AfterOp(bi, oi));
                    }
                }
            }
        }
        // Schedules.
        let mut scheds: Vec<Vec<SItem>> = Vec::with_capacity(f.blocks.len());
        for (bi, b) in f.blocks.iter().enumerate() {
            let mut items = Vec::with_capacity(b.ops.len() + 4);
            for (&src, &site) in self.splat_site.iter().collect::<BTreeMap<_, _>>() {
                if site == SplatSite::BlockStart(bi) {
                    items.push(SItem::Splat {
                        src,
                        dst: self.splat[&src],
                    });
                }
            }
            for (oi, op) in b.ops.iter().enumerate() {
                if !matches!(op.kind, OpKind::Const(_)) {
                    items.push(SItem::Op(oi));
                }
                if let Some(d) = op.dst {
                    if self.splat_site.get(&d) == Some(&SplatSite::AfterOp(bi, oi)) {
                        items.push(SItem::Splat {
                            src: d,
                            dst: self.splat[&d],
                        });
                    }
                }
            }
            scheds.push(items);
        }
        scheds
    }

    /// Assign every live value a slot. Values confined to one block get
    /// linear-scan slot reuse; params, constants, seeds, and anything
    /// live across blocks are pinned. Each group also reserves one
    /// scratch slot for parallel-copy cycles at block edges.
    fn allocate(&mut self, scheds: &[Vec<SItem>], stats: &mut CompileStats) {
        let f = self.f;
        let n = self.classes.len();
        self.slot_of = vec![None; n];
        // (first, last, block, multi-block?) per value.
        let mut first = vec![u32::MAX; n];
        let mut last = vec![0u32; n];
        let mut home = vec![usize::MAX; n];
        let mut multi = vec![false; n];
        let mut touch = |v: Val, bi: usize, pos: u32| {
            let v = v as usize;
            first[v] = first[v].min(pos);
            last[v] = last[v].max(pos);
            if home[v] == usize::MAX {
                home[v] = bi;
            } else if home[v] != bi {
                multi[v] = true;
            }
        };
        let mut pos: u32 = 0;
        for (bi, b) in f.blocks.iter().enumerate() {
            pos += 1;
            for &p in &b.params {
                touch(p, bi, pos);
            }
            for item in &scheds[bi] {
                pos += 1;
                match item {
                    SItem::Op(oi) => {
                        let op = &b.ops[*oi];
                        for o in self.rt_operands(op) {
                            touch(o, bi, pos);
                        }
                        if let Some(d) = op.dst {
                            touch(d, bi, pos);
                        }
                    }
                    SItem::Splat { src, dst } => {
                        touch(*src, bi, pos);
                        touch(*dst, bi, pos);
                    }
                }
            }
            pos += 1;
            if let Term::CondBr { cond, .. } = &b.term {
                touch(*cond, bi, pos);
            }
            for e in b.term.edges() {
                for (param, arg) in f.blocks[e.to].params.iter().zip(&e.args) {
                    let a = self.rewrite(*arg, !self.uni[*param as usize]);
                    touch(a, bi, pos);
                }
            }
        }
        // Classify. Params and seed-written values are pinned: their
        // writes happen outside their own def position (edge copies,
        // group reset).
        let mut is_param = vec![false; n];
        for b in &f.blocks {
            for &p in &b.params {
                is_param[p as usize] = true;
            }
        }
        let mut seed_written = vec![false; n];
        for (v, k) in self.konst.iter().enumerate() {
            if k.is_some() {
                seed_written[v] = true;
            }
        }
        for (&src, &site) in &self.splat_site {
            if site == SplatSite::Seed {
                seed_written[self.splat[&src] as usize] = true;
            }
        }
        for &p in &f.blocks[0].params {
            seed_written[p as usize] = true;
        }
        // Pinned pass (ascending val id = deterministic layout).
        let mut transient: Vec<Val> = Vec::new();
        for v in 0..n as Val {
            if first[v as usize] == u32::MAX {
                continue; // never touched
            }
            let pinned = is_param[v as usize] || seed_written[v as usize] || multi[v as usize];
            if pinned {
                let g = self.group_of_val(v);
                let s = self.groups[g as usize].n_slots;
                self.groups[g as usize].n_slots += 1;
                self.slot_of[v as usize] = Some(Slot { group: g, slot: s });
            } else {
                transient.push(v);
            }
        }
        // Linear scan over transients.
        transient.sort_by_key(|&v| (first[v as usize], v));
        let mut free: HashMap<u16, Vec<u32>> = HashMap::new();
        let mut active: Vec<(u32, u16, u32)> = Vec::new(); // (last, group, slot)
        for v in transient {
            let start = first[v as usize];
            let mut i = 0;
            while i < active.len() {
                if active[i].0 <= start {
                    let (_, g, s) = active.swap_remove(i);
                    free.entry(g).or_default().push(s);
                } else {
                    i += 1;
                }
            }
            let g = self.group_of_val(v);
            let s = match free.get_mut(&g).and_then(Vec::pop) {
                Some(s) => s,
                None => {
                    let s = self.groups[g as usize].n_slots;
                    self.groups[g as usize].n_slots += 1;
                    s
                }
            };
            self.slot_of[v as usize] = Some(Slot { group: g, slot: s });
            active.push((last[v as usize], g, s));
        }
        // Scratch slot per group + the pressure metric.
        self.temps = Vec::with_capacity(self.groups.len());
        for g in &mut self.groups {
            self.temps.push(g.n_slots);
            g.n_slots += 1;
            if g.n_slots > 64 {
                stats.spills += u64::from(g.n_slots - 64);
            }
        }
    }

    fn collect_seeds(&self) -> (Vec<(Slot, Value)>, Vec<SlotReg>) {
        let mut consts = Vec::new();
        let mut entries = Vec::new();
        for (v, k) in self.konst.iter().enumerate() {
            let Some(val) = k else { continue };
            if let Some(s) = self.slot_of[v] {
                consts.push((s, *val));
            }
            if let Some(&sv) = self.splat.get(&(v as Val)) {
                if self.splat_site.get(&(v as Val)) == Some(&SplatSite::Seed) {
                    if let Some(s) = self.slot_of[sv as usize] {
                        consts.push((s, *val));
                    }
                }
            }
        }
        for (i, &p) in self.f.blocks[0].params.iter().enumerate() {
            let reg = self.f.entry_regs[i];
            if let Some(s) = self.slot_of[p as usize] {
                entries.push((s, reg));
            }
            if let Some(&sv) = self.splat.get(&p) {
                if self.splat_site.get(&p) == Some(&SplatSite::Seed) {
                    if let Some(s) = self.slot_of[sv as usize] {
                        entries.push((s, reg));
                    }
                }
            }
        }
        (consts, entries)
    }

    /// Lower one SSA op to a planned op. `Ok(None)` for constants
    /// (they are seeds); `Err` declines the kernel.
    #[allow(clippy::too_many_lines)]
    fn lower_op(&self, op: &Op) -> Result<Option<POp>, String> {
        use PK::*;
        let cls = |v: Val| self.classes[v as usize];
        let ro = self.rt_operands(op);
        let dst = op.dst;
        let d_slot = match dst {
            Some(d) => self.slot(d),
            None => Slot::NONE,
        };
        let s = |i: usize| self.slot(ro[i]);
        let mut p;
        match &op.kind {
            OpKind::Const(_) => return Ok(None),
            OpKind::Bin(bop, a0, b0) => {
                let oc = cls(*a0);
                let dc = cls(dst.expect("bin has dst"));
                let kind = if bop.is_cmp() {
                    match oc {
                        RegClass::Int => CmpI,
                        RegClass::F32 => CmpF,
                        RegClass::F64 => CmpD,
                        other => return Err(format!("comparison on {other:?}")),
                    }
                } else if bop.is_logic() {
                    match (bop, oc) {
                        (BinOp::And, RegClass::Int) => LAndI,
                        (BinOp::Or, RegClass::Int) => LOrI,
                        (b, c) => return Err(format!("logic {b:?} on {c:?}")),
                    }
                } else {
                    match (dc, bop) {
                        (RegClass::Int, BinOp::Add) => AddI,
                        (RegClass::Int, BinOp::Sub) => SubI,
                        (RegClass::Int, BinOp::Mul) => MulI,
                        (RegClass::Int, BinOp::Div) => DivI,
                        (RegClass::Int, BinOp::Rem) => RemI,
                        (RegClass::Int, BinOp::BitAnd) => AndI,
                        (RegClass::Int, BinOp::BitOr) => OrI,
                        (RegClass::Int, BinOp::BitXor) => XorI,
                        (RegClass::Int, BinOp::Shl) => ShlI,
                        (RegClass::Int, BinOp::Shr) => ShrI,
                        (RegClass::F32 | RegClass::V32(_), BinOp::Add) => AddF,
                        (RegClass::F32 | RegClass::V32(_), BinOp::Sub) => SubF,
                        (RegClass::F32 | RegClass::V32(_), BinOp::Mul) => MulF,
                        (RegClass::F32 | RegClass::V32(_), BinOp::Div) => DivF,
                        (RegClass::F64 | RegClass::V64(_), BinOp::Add) => AddD,
                        (RegClass::F64 | RegClass::V64(_), BinOp::Sub) => SubD,
                        (RegClass::F64 | RegClass::V64(_), BinOp::Mul) => MulD,
                        (RegClass::F64 | RegClass::V64(_), BinOp::Div) => DivD,
                        (c, b) => return Err(format!("binary {b:?} on {c:?}")),
                    }
                };
                if !bop.is_cmp() && !bop.is_logic() && cls(ro[0]) != dc {
                    return Err("binary operand class mismatch".into());
                }
                p = POp::new(kind, d_slot);
                p.a = s(0);
                p.b = s(1);
                if bop.is_cmp() {
                    p.aux = cmp_code(*bop);
                }
                // Division by a known positive power of two (every
                // `vload2` index ends in `/2`) strength-reduces to a
                // branchless shift — no per-element zero check and no
                // hardware divide in the trace.
                if matches!(p.k, DivI | RemI) {
                    if let Some(Value::I(c)) = self.konst.get(*b0 as usize).copied().flatten() {
                        if c > 0 && c & (c - 1) == 0 {
                            p.k = if p.k == DivI { DivIP2 } else { RemIP2 };
                            p.aux = c.trailing_zeros() as u8;
                            p.b = Slot::NONE;
                        }
                    }
                }
                // Multiplication by a power of two (tile strides are
                // powers of two throughout the generator) becomes a
                // shift: wrapping `x << k` equals wrapping `x * 2^k`
                // for every i64, and unlike 64-bit multiplies the
                // shift vectorises.
                if p.k == MulI {
                    let pow2 = |v: Val| match self.konst.get(v as usize).copied().flatten() {
                        Some(Value::I(c)) if c > 0 && c & (c - 1) == 0 => {
                            Some(c.trailing_zeros() as u8)
                        }
                        _ => None,
                    };
                    if let Some(sh) = pow2(*b0) {
                        p.k = MulIP2;
                        p.aux = sh;
                        p.b = Slot::NONE;
                    } else if let Some(sh) = pow2(*a0) {
                        p.k = MulIP2;
                        p.aux = sh;
                        p.a = p.b;
                        p.b = Slot::NONE;
                    }
                }
            }
            OpKind::Un(uop, a0) => {
                let kind = match (uop, cls(*a0)) {
                    (UnOp::Neg, RegClass::Int) => NegI,
                    (UnOp::Neg, RegClass::F32 | RegClass::V32(_)) => NegF,
                    (UnOp::Neg, RegClass::F64 | RegClass::V64(_)) => NegD,
                    (UnOp::Not, RegClass::Int) => NotI,
                    (u, c) => return Err(format!("unary {u:?} on {c:?}")),
                };
                p = POp::new(kind, d_slot);
                p.a = s(0);
            }
            OpKind::Convert(a0, base) => {
                let kind = match (cls(*a0), base) {
                    (RegClass::Int, Base::Float) => I2F,
                    (RegClass::Int, Base::Double) => I2D,
                    (RegClass::Int, Base::Bool) => I2B,
                    (RegClass::Int, Base::Int | Base::Uint) => CpyI,
                    (RegClass::F32, Base::Double) => F2D,
                    (RegClass::F32, Base::Int | Base::Uint) => F2I,
                    (RegClass::F32, Base::Float) => CpyF,
                    (RegClass::F64, Base::Float) => D2F,
                    (RegClass::F64, Base::Int | Base::Uint) => D2I,
                    (RegClass::F64, Base::Double) => CpyD,
                    (RegClass::V32(_), Base::Double) => VF2D,
                    (RegClass::V64(_), Base::Float) => VD2F,
                    (RegClass::V32(_), Base::Float) => CpyF,
                    (RegClass::V64(_), Base::Double) => CpyD,
                    (c, b) => return Err(format!("convert {c:?} to {b:?}")),
                };
                p = POp::new(kind, d_slot);
                p.a = s(0);
            }
            OpKind::Broadcast(a0, _) => {
                let kind = match cls(*a0) {
                    RegClass::F32 => BcastF,
                    RegClass::F64 => BcastD,
                    RegClass::Int => BcastID,
                    c => return Err(format!("broadcast of {c:?}")),
                };
                p = POp::new(kind, d_slot);
                p.a = s(0);
            }
            OpKind::BuildVec(base, parts) => {
                let kind = match base {
                    Base::Float => BuildF,
                    Base::Double => BuildD,
                    b => return Err(format!("vector of {b:?}")),
                };
                let want = match base {
                    Base::Float => RegClass::F32,
                    _ => RegClass::F64,
                };
                if parts.iter().any(|&q| cls(q) != want) {
                    return Err("vector part class mismatch".into());
                }
                p = POp::new(kind, d_slot);
                p.ex = (0..ro.len()).map(s).collect();
            }
            OpKind::Extract(a0, lane) => {
                let kind = match cls(*a0) {
                    RegClass::V32(w) if *lane < w => ExtrF,
                    RegClass::V64(w) if *lane < w => ExtrD,
                    c => return Err(format!("extract lane {lane} from {c:?}")),
                };
                p = POp::new(kind, d_slot);
                p.a = s(0);
                p.aux = *lane;
            }
            OpKind::Insert(v0, sc, lane) => {
                let kind = match (cls(*v0), cls(*sc)) {
                    (RegClass::V32(w), RegClass::F32) if *lane < w => InsF,
                    (RegClass::V64(w), RegClass::F64) if *lane < w => InsD,
                    (c, sc) => return Err(format!("insert {sc:?} into {c:?}")),
                };
                p = POp::new(kind, d_slot);
                p.a = s(0);
                p.b = s(1);
                p.aux = *lane;
            }
            OpKind::Mad(a0, b0, c0) => {
                let dc = cls(dst.expect("mad has dst"));
                let kind = match dc {
                    RegClass::F32 | RegClass::V32(_) => MadF,
                    RegClass::F64 | RegClass::V64(_) => MadD,
                    c => return Err(format!("mad on {c:?}")),
                };
                if cls(*a0) != dc || cls(*b0) != dc || cls(*c0) != dc {
                    return Err("mad operand class mismatch".into());
                }
                p = POp::new(kind, d_slot);
                p.a = s(0);
                p.b = s(1);
                p.c = s(2);
            }
            OpKind::MadLane(v0, lane, b0, c0) => {
                let dc = cls(dst.expect("mad has dst"));
                let (kind, ws) = match (dc, cls(*v0)) {
                    (RegClass::V32(_), RegClass::V32(ws)) if *lane < ws => (MadBF, ws),
                    (RegClass::V64(_), RegClass::V64(ws)) if *lane < ws => (MadBD, ws),
                    (d, v) => return Err(format!("fused mad lane from {v:?} into {d:?}")),
                };
                if cls(*b0) != dc || cls(*c0) != dc {
                    return Err("mad operand class mismatch".into());
                }
                p = POp::new(kind, d_slot);
                p.a = s(0);
                p.b = s(1);
                p.c = s(2);
                p.aux = *lane;
                p.buf = u16::from(ws);
            }
            OpKind::Math(mf, _, n_args) => {
                let dc = cls(dst.expect("math has dst"));
                let kind = match (n_args, mf, dc) {
                    (3, MathFunc::Clamp, RegClass::Int) => ClampI,
                    (3, MathFunc::Clamp, RegClass::F32) => ClampF,
                    (3, MathFunc::Clamp, RegClass::F64) => ClampD,
                    (2, MathFunc::Min, RegClass::Int) => MinI,
                    (2, MathFunc::Max, RegClass::Int) => MaxI,
                    (2, MathFunc::Min | MathFunc::Fmin, RegClass::F32) => MinF,
                    (2, MathFunc::Max | MathFunc::Fmax, RegClass::F32) => MaxF,
                    (2, MathFunc::Min | MathFunc::Fmin, RegClass::F64) => MinD,
                    (2, MathFunc::Max | MathFunc::Fmax, RegClass::F64) => MaxD,
                    (1, MathFunc::Fabs, RegClass::F32) => AbsF,
                    (1, MathFunc::Fabs, RegClass::F64) => AbsD,
                    (1, MathFunc::Sqrt, RegClass::F32) => SqrtF,
                    (1, MathFunc::Sqrt, RegClass::F64) => SqrtD,
                    (1, MathFunc::Exp, RegClass::F32) => ExpF,
                    (1, MathFunc::Exp, RegClass::F64) => ExpD,
                    (1, MathFunc::Log, RegClass::F32) => LogF,
                    (1, MathFunc::Log, RegClass::F64) => LogD,
                    (1, MathFunc::NativeRecip, RegClass::F32) => RecipF,
                    (1, MathFunc::NativeRecip, RegClass::F64) => RecipD,
                    (n, f, c) => return Err(format!("math {f:?}/{n} on {c:?}")),
                };
                p = POp::new(kind, d_slot);
                p.a = s(0);
                if ro.len() >= 2 {
                    p.b = s(1);
                }
                if ro.len() >= 3 {
                    p.c = s(2);
                }
            }
            OpKind::Wi(wf, dim) => {
                let d = match self.konst.get(*dim as usize).copied().flatten() {
                    Some(Value::I(d)) if (0..=1).contains(&d) => d as u8,
                    other => return Err(format!("work-item dim not 0/1: {other:?}")),
                };
                let kind = match wf {
                    WiFunc::GlobalId | WiFunc::LocalId => WiId,
                    _ => WiUni,
                };
                p = POp::new(kind, d_slot);
                p.aux = wi_pack(*wf, d);
            }
            OpKind::LoadGlobal { buf, width, .. } => {
                let base = self.k.checked.buffer_params[*buf].base;
                let kind = match (base, *width) {
                    (Base::Float, 1) => LdG1F,
                    (Base::Float, _) => LdGVF,
                    (Base::Double, 1) => LdG1D,
                    (Base::Double, _) => LdGVD,
                    (_, 1) => LdG1I,
                    (b, w) => return Err(format!("vector load width {w} from {b:?} buffer")),
                };
                p = POp::new(kind, d_slot);
                p.a = s(0);
                p.aux = *width;
                p.buf = *buf as u16;
            }
            OpKind::StoreGlobal { buf, width, .. } => {
                let base = self.k.checked.buffer_params[*buf].base;
                let kind = match (base, *width) {
                    (Base::Float, 1) => StG1F,
                    (Base::Float, _) => StGVF,
                    (Base::Double, 1) => StG1D,
                    (Base::Double, _) => StGVD,
                    (_, 1) => StG1I,
                    (b, w) => return Err(format!("vector store width {w} to {b:?} buffer")),
                };
                p = POp::new(kind, Slot::NONE);
                p.a = s(0);
                p.b = s(1);
                p.aux = *width;
                p.buf = *buf as u16;
            }
            OpKind::LoadLocal { arr, width, .. } => {
                let base = self.k.checked.local_arrays[*arr].base;
                let kind = match (base, *width) {
                    (Base::Float, 1) => LdL1F,
                    (Base::Float, _) => LdLVF,
                    (Base::Double, 1) => LdL1D,
                    (Base::Double, _) => LdLVD,
                    (_, 1) => LdL1I,
                    (b, w) => return Err(format!("vector load width {w} from local {b:?}")),
                };
                p = POp::new(kind, d_slot);
                p.a = s(0);
                p.aux = *width;
                p.buf = *arr as u16;
            }
            OpKind::StoreLocal { arr, width, .. } => {
                let base = self.k.checked.local_arrays[*arr].base;
                let kind = match (base, *width) {
                    (Base::Float, 1) => StL1F,
                    (Base::Float, _) => StLVF,
                    (Base::Double, 1) => StL1D,
                    (Base::Double, _) => StLVD,
                    (_, 1) => StL1I,
                    (b, w) => return Err(format!("vector store width {w} to local {b:?}")),
                };
                p = POp::new(kind, Slot::NONE);
                p.a = s(0);
                p.b = s(1);
                p.aux = *width;
                p.buf = *arr as u16;
            }
            OpKind::Select(_, a0, _) => {
                let dc = cls(dst.expect("select has dst"));
                let kind = match dc {
                    RegClass::Int => SelI,
                    RegClass::F32 => SelF,
                    RegClass::F64 => SelD,
                    RegClass::V32(_) => SelVF,
                    RegClass::V64(_) => SelVD,
                };
                if cls(*a0) != dc {
                    return Err("select arm class mismatch".into());
                }
                p = POp::new(kind, d_slot);
                p.a = s(1);
                p.b = s(2);
                p.c = s(0); // condition
            }
        }
        Ok(Some(p))
    }

    fn lower_term(&self, term: &Term) -> PTerm {
        match term {
            Term::Br(e) => PTerm::Br {
                to: e.to,
                copies: self.edge_copies(e),
            },
            Term::CondBr { cond, t, f } => PTerm::CondBr {
                cond: self.slot(*cond),
                t: t.to,
                f: f.to,
                t_copies: self.edge_copies(t),
                f_copies: self.edge_copies(f),
            },
            Term::Barrier { next, .. } => PTerm::Barrier {
                to: next.to,
                copies: self.edge_copies(next),
            },
            Term::Ret => PTerm::Ret,
        }
    }

    /// Block-argument moves for one edge, sequentialised so no copy
    /// clobbers a not-yet-read source; cycles break through the
    /// group's reserved scratch slot.
    fn edge_copies(&self, e: &Edge) -> Vec<POp> {
        let params = &self.f.blocks[e.to].params;
        let mut moves: Vec<(Slot, Slot)> = Vec::new();
        for (param, arg) in params.iter().zip(&e.args) {
            let a = self.rewrite(*arg, !self.uni[*param as usize]);
            let d = self.slot(*param);
            let s = self.slot(a);
            if d != s {
                moves.push((d, s));
            }
        }
        let mut out = Vec::with_capacity(moves.len());
        let cpy = |d: Slot, s: Slot| -> POp {
            let kind = match self.groups[d.group as usize].bank {
                Bank::I => PK::CpyI,
                Bank::F => PK::CpyF,
                Bank::D => PK::CpyD,
            };
            let mut p = POp::new(kind, d);
            p.a = s;
            p
        };
        while !moves.is_empty() {
            if let Some(i) = (0..moves.len()).find(|&i| {
                !moves
                    .iter()
                    .enumerate()
                    .any(|(j, m)| j != i && m.1 == moves[i].0)
            }) {
                let (d, s) = moves.remove(i);
                out.push(cpy(d, s));
            } else {
                // Cycle: stash one source in the scratch slot.
                let s0 = moves[0].1;
                let t = Slot {
                    group: s0.group,
                    slot: self.temps[s0.group as usize],
                };
                out.push(cpy(t, s0));
                for m in &mut moves {
                    if m.1 == s0 {
                        m.1 = t;
                    }
                }
            }
        }
        out
    }
}
