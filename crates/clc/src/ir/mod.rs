//! A typed SSA compiler pipeline over the clc register bytecode.
//!
//! The interpreters ([`crate::vm`], [`crate::fastvm`]) decode one
//! instruction per work-item per step; for the generated GEMM kernels
//! that dispatch overhead dwarfs the arithmetic. This module compiles
//! the bytecode into **pre-scheduled trace code** executed by
//! [`crate::vm::Engine::Compiled`]:
//!
//! 1. [`build`] — bytecode → control-flow graph → typed SSA in
//!    phi-free block-argument form. Every basic block carries a frozen
//!    [`Cost`]: the exact per-work-item [`crate::vm::DynStats`] delta
//!    the reference interpreter charges for one execution of the
//!    block's source instructions. Passes may rewrite the ops freely;
//!    costs (and therefore stats and step-limit outcomes) never change.
//! 2. [`passes`] — constant folding (using the reference
//!    interpreter's own arithmetic, so folded results are bit-exact),
//!    identity-conversion strength reduction, block-local common
//!    subexpression elimination, dead-code elimination, CFG
//!    simplification, full unrolling of compile-time-constant
//!    work-item loops, loop-invariant code motion out of the remaining
//!    runtime-bounded loops, and fusion of `extract → broadcast → mad`
//!    triples into single lane-indexed mad ops.
//! 3. [`trace`] — uniformity analysis (values provably identical
//!    across the work-items of a group run once per group; per-item
//!    values run in a tight loop over all work-items inside one
//!    dispatched op), linear-scan register allocation onto typed SoA
//!    slot banks, and emission of a [`trace::TracePlan`].
//! 4. [`engine`] — binds a plan to a launch's geometry and runs
//!    work-groups in parallel, block by block: per-op decode is paid
//!    once per *group* instead of once per work-item step.
//!
//! The compiler declines kernels whose branch conditions diverge
//! across work-items (and a few rarities like non-constant
//! `get_global_id` dimensions); those fall back to the fast VM, and
//! the reference interpreter remains the bit-for-bit oracle.

pub mod build;
pub(crate) mod engine;
pub mod passes;
pub mod print;
pub mod trace;

use crate::ast::{Base, BinOp, UnOp};
use crate::lower::{CompiledKernel, MathFunc, Reg, RegClass, WiFunc};
use crate::vm::Value;

/// An SSA value id.
pub type Val = u32;

/// A non-terminator SSA operation. Operands are [`Val`]s; destination
/// values are defined in [`Op::dst`]. `InsertLane`'s in-place update
/// becomes a pure `Insert` producing a fresh vector value.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    Const(Value),
    Bin(BinOp, Val, Val),
    Un(UnOp, Val),
    Convert(Val, Base),
    Broadcast(Val, u8),
    BuildVec(Base, Vec<Val>),
    Extract(Val, u8),
    /// `(vector, scalar, lane)` — new vector with one lane replaced.
    Insert(Val, Val, u8),
    Mad(Val, Val, Val),
    /// `(vector, lane, mul, add)` — a `Mad` whose multiplicand is
    /// `broadcast(extract(vector, lane))`, fused by [`passes::fuse`]
    /// so the trace reads the lane directly instead of materialising
    /// the scalar and the broadcast vector.
    MadLane(Val, u8, Val, Val),
    Math(MathFunc, [Val; 3], u8),
    Wi(WiFunc, Val),
    LoadGlobal {
        buf: usize,
        idx: Val,
        width: u8,
    },
    StoreGlobal {
        buf: usize,
        idx: Val,
        src: Val,
        width: u8,
    },
    LoadLocal {
        arr: usize,
        idx: Val,
        width: u8,
    },
    StoreLocal {
        arr: usize,
        idx: Val,
        src: Val,
        width: u8,
    },
    Select(Val, Val, Val),
}

#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    pub dst: Option<Val>,
    pub kind: OpKind,
}

/// A control-flow edge carrying the successor's block arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    pub to: usize,
    pub args: Vec<Val>,
}

/// Block terminator. `Barrier` is a terminator because it ends a
/// race-detection phase and re-synchronises the group.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    Br(Edge),
    CondBr { cond: Val, t: Edge, f: Edge },
    Barrier { site: u32, next: Edge },
    Ret,
}

impl Term {
    pub fn edges(&self) -> Vec<&Edge> {
        match self {
            Term::Br(e) | Term::Barrier { next: e, .. } => vec![e],
            Term::CondBr { t, f, .. } => vec![t, f],
            Term::Ret => vec![],
        }
    }

    pub fn edges_mut(&mut self) -> Vec<&mut Edge> {
        match self {
            Term::Br(e) | Term::Barrier { next: e, .. } => vec![e],
            Term::CondBr { t, f, .. } => vec![t, f],
            Term::Ret => vec![],
        }
    }
}

/// Frozen per-work-item `DynStats` delta for one execution of a block,
/// captured from the source bytecode at IR construction. The `instrs`
/// field doubles as the per-phase step count for step-limit parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    pub instrs: u64,
    pub alu: u64,
    pub mads: u64,
    pub mem_global_instrs: u64,
    pub mem_global_bytes: u64,
    pub mem_local_instrs: u64,
    pub mem_local_bytes: u64,
}

impl Cost {
    pub fn add(&mut self, o: &Cost) {
        self.instrs += o.instrs;
        self.alu += o.alu;
        self.mads += o.mads;
        self.mem_global_instrs += o.mem_global_instrs;
        self.mem_global_bytes += o.mem_global_bytes;
        self.mem_local_instrs += o.mem_local_instrs;
        self.mem_local_bytes += o.mem_local_bytes;
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub params: Vec<Val>,
    pub ops: Vec<Op>,
    pub term: Term,
    pub cost: Cost,
}

/// An SSA function: blocks (entry is block 0), one storage class per
/// value, and the source register behind each entry-block parameter
/// (seeded from the launch's initial register file).
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    pub blocks: Vec<Block>,
    pub classes: Vec<RegClass>,
    pub entry_regs: Vec<Reg>,
}

impl Func {
    pub fn new_val(&mut self, class: RegClass) -> Val {
        self.classes.push(class);
        (self.classes.len() - 1) as Val
    }

    pub fn n_vals(&self) -> usize {
        self.classes.len()
    }

    /// Predecessor block indices, per block.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut p = vec![Vec::new(); self.blocks.len()];
        for (bi, b) in self.blocks.iter().enumerate() {
            for e in b.term.edges() {
                if !p[e.to].contains(&bi) {
                    p[e.to].push(bi);
                }
            }
        }
        p
    }
}

impl OpKind {
    /// Operand values, in a fixed order.
    pub fn operands(&self) -> Vec<Val> {
        match self {
            OpKind::Const(_) => vec![],
            OpKind::Un(_, a)
            | OpKind::Convert(a, _)
            | OpKind::Broadcast(a, _)
            | OpKind::Extract(a, _)
            | OpKind::Wi(_, a)
            | OpKind::LoadGlobal { idx: a, .. }
            | OpKind::LoadLocal { idx: a, .. } => vec![*a],
            OpKind::Bin(_, a, b)
            | OpKind::StoreGlobal { idx: a, src: b, .. }
            | OpKind::StoreLocal { idx: a, src: b, .. } => vec![*a, *b],
            OpKind::Insert(a, b, _) => vec![*a, *b],
            OpKind::Mad(a, b, c) | OpKind::Select(a, b, c) | OpKind::MadLane(a, _, b, c) => {
                vec![*a, *b, *c]
            }
            OpKind::Math(_, args, n) => args[..*n as usize].to_vec(),
            OpKind::BuildVec(_, parts) => parts.clone(),
        }
    }

    /// Rewrite every operand through `f`.
    pub fn map_operands(&mut self, f: &mut dyn FnMut(Val) -> Val) {
        match self {
            OpKind::Const(_) => {}
            OpKind::Un(_, a)
            | OpKind::Convert(a, _)
            | OpKind::Broadcast(a, _)
            | OpKind::Extract(a, _)
            | OpKind::Wi(_, a)
            | OpKind::LoadGlobal { idx: a, .. }
            | OpKind::LoadLocal { idx: a, .. } => *a = f(*a),
            OpKind::Bin(_, a, b)
            | OpKind::StoreGlobal { idx: a, src: b, .. }
            | OpKind::StoreLocal { idx: a, src: b, .. }
            | OpKind::Insert(a, b, _) => {
                *a = f(*a);
                *b = f(*b);
            }
            OpKind::Mad(a, b, c) | OpKind::Select(a, b, c) | OpKind::MadLane(a, _, b, c) => {
                *a = f(*a);
                *b = f(*b);
                *c = f(*c);
            }
            OpKind::Math(_, args, n) => {
                for a in args[..*n as usize].iter_mut() {
                    *a = f(*a);
                }
            }
            OpKind::BuildVec(_, parts) => {
                for p in parts.iter_mut() {
                    *p = f(*p);
                }
            }
        }
    }

    /// Whether the op touches memory or race tables — such ops are
    /// never removed, reordered across each other, or deduplicated.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            OpKind::LoadGlobal { .. }
                | OpKind::StoreGlobal { .. }
                | OpKind::LoadLocal { .. }
                | OpKind::StoreLocal { .. }
        )
    }
}

/// Per-pass instrumentation, surfaced through `clgemm-trace` counters
/// and the IR printer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileStats {
    /// SSA ops immediately after construction.
    pub ops_in: u64,
    /// SSA ops after the full pipeline.
    pub ops_out: u64,
    pub folded: u64,
    pub cse: u64,
    pub dce: u64,
    pub blocks_merged: u64,
    pub unrolled_loops: u64,
    pub unrolled_iters: u64,
    /// Loop-invariant ops moved to a preheader by `licm`.
    pub hoisted: u64,
    /// `extract → broadcast → mad` triples fused into `MadLane`.
    pub fused: u64,
    /// Values pushed past the 64-slots-per-bank soft budget by the
    /// linear-scan allocator (a pressure metric, not actual memory
    /// spills — banks grow as needed).
    pub spills: u64,
}

/// Compile a lowered kernel to a trace plan, or explain why the
/// compiler declines it (the caller then falls back to the fast VM).
///
/// # Errors
/// A human-readable decline reason; declining is not a failure mode,
/// just a routing decision.
pub fn compile(k: &CompiledKernel) -> Result<trace::TracePlan, String> {
    compile_parts(k).map(|(_, plan)| plan)
}

/// Like [`compile`] but also returns the optimised SSA function, for
/// the disassembler's IR printer.
///
/// # Errors
/// Same decline reasons as [`compile`].
pub fn compile_parts(k: &CompiledKernel) -> Result<(Func, trace::TracePlan), String> {
    let _span = clgemm_trace::span!("clc.compile");
    let classes = crate::lower::assign_classes(k)
        .ok_or_else(|| "register classes not assignable".to_string())?;
    let mut stats = CompileStats::default();
    let mut f = build::build(k, &classes)?;
    stats.ops_in = count_ops(&f);
    passes::simplify(&mut f, &mut stats);
    passes::clean(&mut f, &mut stats);
    passes::unroll(&mut f, &mut stats);
    passes::simplify(&mut f, &mut stats);
    passes::clean(&mut f, &mut stats);
    passes::licm(&mut f, &mut stats);
    passes::fuse(&mut f, &mut stats);
    passes::clean(&mut f, &mut stats);
    stats.ops_out = count_ops(&f);
    let plan = trace::emit(k, &f, stats)?;
    record_compile_metrics(&plan.stats);
    Ok((f, plan))
}

fn count_ops(f: &Func) -> u64 {
    f.blocks.iter().map(|b| b.ops.len() as u64).sum()
}

/// Per-pass counters, registered only at first non-zero use so the
/// dead-metric lint stays meaningful.
fn record_compile_metrics(s: &CompileStats) {
    if !clgemm_trace::enabled() {
        return;
    }
    let reg = clgemm_trace::Registry::global();
    reg.counter("clc_compile_total").inc();
    for (name, v) in [
        ("clc_compile_ops_in_total", s.ops_in),
        ("clc_compile_ops_out_total", s.ops_out),
        ("clc_compile_folded_total", s.folded),
        ("clc_compile_cse_total", s.cse),
        ("clc_compile_dce_total", s.dce),
        ("clc_compile_unrolled_loops_total", s.unrolled_loops),
        ("clc_compile_unrolled_iters_total", s.unrolled_iters),
        ("clc_compile_hoisted_total", s.hoisted),
        ("clc_compile_fused_total", s.fused),
        ("clc_compile_spills_total", s.spills),
    ] {
        if v > 0 {
            reg.counter(name).add(v);
        }
    }
}
