//! The compiled-trace execution loop behind
//! [`crate::vm::Engine::Compiled`].
//!
//! A bound trace executes one *group* at a time, block by block: every
//! [`BOp`] is decoded once and then runs a flat loop over all
//! work-items of the group (`n` cells), so per-op dispatch cost is
//! paid per group instead of per work-item step. Control flow is
//! uniform by construction (divergent kernels were declined at compile
//! time), so there is no per-work-item program counter at all.
//!
//! Parity with the reference interpreter:
//! - value arithmetic follows `vm::bin_op`/`un_op`/`convert` exactly
//!   (f32 arithmetic through f64 intermediates, wrapping integer ops,
//!   identical division-by-zero error strings);
//! - memory ops run per work-item, in work-item order, with the same
//!   bounds checks and race-table updates as the interpreters;
//! - `DynStats` are charged from the frozen per-block [`Cost`]s, and
//!   the per-phase step limit trips with the reference's error string
//!   (at block granularity — the limit is checked before a block runs).
//!
//! [`Cost`]: super::Cost

use super::trace::{BOp, BSeed, BTerm, Bank, BoundTrace, TracePlan, PK};
use crate::error::RuntimeError;
use crate::fastvm::{g_race_r, g_race_w, l_check, l_race_r, l_race_w, SharedBufs};
use crate::lower::CompiledKernel;
use crate::vm::{
    BufData, DynStats, ExecOptions, Geometry, GlobalRaceTables, LocalBuf, RaceTable, Value,
};

/// Reusable per-worker execution state: one set of typed banks sized
/// for a whole group, plus the group's local buffers and race tables.
#[derive(Default)]
struct CArena {
    ib: Vec<i64>,
    fb: Vec<f32>,
    db: Vec<f64>,
    locals: Vec<LocalBuf>,
    races: Vec<RaceTable>,
}

fn write_seed(a: &mut CArena, s: &BSeed) {
    let (flat, reps, lanes) = (s.flat as usize, s.reps as usize, s.lanes as usize);
    match (s.bank, s.val) {
        (Bank::I, Value::I(x)) => a.ib[flat..flat + reps].fill(x),
        (Bank::I, Value::B(x)) => a.ib[flat..flat + reps].fill(i64::from(x)),
        (Bank::F, Value::F32(x)) => a.fb[flat..flat + reps].fill(x),
        (Bank::D, Value::F64(x)) => a.db[flat..flat + reps].fill(x),
        (Bank::F, Value::V32(xs, w)) if usize::from(w) == lanes => {
            for r in 0..reps {
                a.fb[flat + r * lanes..flat + (r + 1) * lanes].copy_from_slice(&xs[..lanes]);
            }
        }
        (Bank::D, Value::V64(xs, w)) if usize::from(w) == lanes => {
            for r in 0..reps {
                a.db[flat + r * lanes..flat + (r + 1) * lanes].copy_from_slice(&xs[..lanes]);
            }
        }
        // Placeholder seeds for values of another storage class (the
        // banks are zero-filled and lowering writes before reads).
        _ => {}
    }
}

impl CArena {
    fn reset(
        &mut self,
        kernel: &CompiledKernel,
        bt: &BoundTrace,
        init_regs: &[Value],
        detect_races: bool,
    ) {
        self.ib.clear();
        self.ib.resize(bt.ni, 0);
        self.fb.clear();
        self.fb.resize(bt.nf, 0.0);
        self.db.clear();
        self.db.resize(bt.nd, 0.0);
        for s in &bt.seeds {
            write_seed(self, s);
        }
        for (s, reg) in &bt.entry_seeds {
            let mut s = s.clone();
            s.val = init_regs[*reg];
            write_seed(self, &s);
        }
        // Same locals / race-table reuse policy as the other engines.
        let arrays = &kernel.checked.local_arrays;
        let locals_ok = self.locals.len() == arrays.len()
            && self
                .locals
                .iter()
                .zip(arrays)
                .all(|(l, a)| l.len() == a.len && l.base_matches(a));
        if locals_ok {
            for l in &mut self.locals {
                l.zero();
            }
        } else {
            self.locals = arrays.iter().map(LocalBuf::new).collect();
        }
        let want_races = if detect_races { arrays.len() } else { 0 };
        if self.races.len() == want_races
            && self.races.iter().zip(arrays).all(|(r, a)| r.len() == a.len)
        {
            for r in &mut self.races {
                r.clear();
            }
        } else if detect_races {
            self.races = arrays.iter().map(|a| RaceTable::new(a.len)).collect();
        } else {
            self.races.clear();
        }
    }
}

/// Launch-wide immutable context for one group.
struct Ctx<'a> {
    kernel: &'a CompiledKernel,
    group: [usize; 2],
    group_linear: u32,
    geom: &'a Geometry,
    bufs: &'a SharedBufs,
    opts: &'a ExecOptions,
    grace: Option<&'a GlobalRaceTables>,
}

/// Run the whole NDRange on a compiled plan, groups in parallel.
/// Mirrors `fastvm::launch`: contiguous group ranges per worker, a
/// private arena per worker, range-ordered stats merge.
pub(crate) fn launch(
    kernel: &CompiledKernel,
    plan: &TracePlan,
    geom: &Geometry,
    init_regs: &[Value],
    bufs: &mut [BufData],
    opts: &ExecOptions,
) -> Result<DynStats, RuntimeError> {
    let _span = clgemm_trace::span!("clc.trace_exec");
    let nwi = geom.local[0] * geom.local[1];
    let bt = plan.bind(nwi);
    let n_groups = geom.groups[0] * geom.groups[1];
    let grace = (opts.detect_races && n_groups > 1).then(|| GlobalRaceTables::new(bufs));
    let shared = SharedBufs::new(bufs);
    let results = clgemm_shim::par::par_range_map(n_groups, |range| {
        let mut arena = CArena::default();
        let mut acc = DynStats::default();
        for g in range {
            let ctx = Ctx {
                kernel,
                group: [g % geom.groups[0], g / geom.groups[0]],
                group_linear: g as u32,
                geom,
                bufs: &shared,
                opts,
                grace: grace.as_ref(),
            };
            match run_group(&ctx, &bt, init_regs, &mut arena) {
                Ok(s) => acc.add(&s),
                Err(e) => return Err(e),
            }
        }
        Ok(acc)
    });
    let mut stats = DynStats::default();
    for r in results {
        stats.add(&r?);
    }
    Ok(stats)
}

fn run_group(
    ctx: &Ctx<'_>,
    bt: &BoundTrace,
    init_regs: &[Value],
    arena: &mut CArena,
) -> Result<DynStats, RuntimeError> {
    let nwi = ctx.geom.local[0] * ctx.geom.local[1];
    arena.reset(ctx.kernel, bt, init_regs, ctx.opts.detect_races);
    let mut stats = DynStats::default();
    let mut phase: u32 = 0;
    let mut phase_steps: u64 = 0;
    let mut cur = 0usize;
    loop {
        let blk = &bt.blocks[cur];
        phase_steps = phase_steps.saturating_add(blk.cost.instrs);
        if phase_steps > ctx.opts.step_limit {
            return Err(RuntimeError::Internal(format!(
                "work-item exceeded step limit {} (non-terminating kernel?)",
                ctx.opts.step_limit
            )));
        }
        let n = nwi as u64;
        stats.instrs += blk.cost.instrs * n;
        stats.alu += blk.cost.alu * n;
        stats.mads += blk.cost.mads * n;
        stats.mem_global_instrs += blk.cost.mem_global_instrs * n;
        stats.mem_global_bytes += blk.cost.mem_global_bytes * n;
        stats.mem_local_instrs += blk.cost.mem_local_instrs * n;
        stats.mem_local_bytes += blk.cost.mem_local_bytes * n;
        for op in &blk.ops {
            exec_op(ctx, arena, op, phase)?;
        }
        match &blk.term {
            BTerm::Br { to, copies } => {
                for c in copies.iter() {
                    exec_op(ctx, arena, c, phase)?;
                }
                cur = *to as usize;
            }
            BTerm::CondBr {
                cond,
                t,
                f,
                t_copies,
                f_copies,
            } => {
                let (to, copies) = if arena.ib[*cond as usize] != 0 {
                    (*t, t_copies)
                } else {
                    (*f, f_copies)
                };
                for c in copies.iter() {
                    exec_op(ctx, arena, c, phase)?;
                }
                cur = to as usize;
            }
            BTerm::Barrier { to, copies } => {
                for c in copies.iter() {
                    exec_op(ctx, arena, c, phase)?;
                }
                stats.barriers += 1;
                phase += 1;
                phase_steps = 0;
                for rt in &mut arena.races {
                    rt.new_phase();
                }
                cur = *to as usize;
            }
            BTerm::Ret => break,
        }
    }
    Ok(stats)
}

/// Vectorised i64 helpers for the hottest address-arithmetic kinds.
/// The scalar loops cannot auto-vectorise: source and destination
/// ranges live in one bank, and LLVM cannot prove they don't partially
/// overlap. Slot allocation guarantees ranges are pairwise *equal or
/// disjoint*, so loading a whole chunk before storing it is exact.
#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
mod vi {
    use core::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_cmpgt_epi64,
        _mm256_loadu_si256, _mm256_or_si256, _mm256_set1_epi64x, _mm256_setzero_si256,
        _mm256_sll_epi64, _mm256_srl_epi64, _mm256_storeu_si256, _mm256_sub_epi64,
        _mm_cvtsi32_si128,
    };

    /// `d[j] = a[j] + b[j]` (wrapping), caller-checked bounds.
    pub unsafe fn add(p: *mut i64, d: usize, a: usize, b: usize, n: usize) {
        let mut j = 0;
        while j + 4 <= n {
            let x = _mm256_loadu_si256(p.add(a + j).cast());
            let y = _mm256_loadu_si256(p.add(b + j).cast());
            _mm256_storeu_si256(p.add(d + j).cast(), _mm256_add_epi64(x, y));
            j += 4;
        }
        while j < n {
            *p.add(d + j) = (*p.add(a + j)).wrapping_add(*p.add(b + j));
            j += 1;
        }
    }

    /// `d[j] = a[j] << sh` (wrapping multiply by `2^sh`).
    pub unsafe fn shl(p: *mut i64, d: usize, a: usize, sh: u32, n: usize) {
        let cnt = _mm_cvtsi32_si128(sh as i32);
        let mut j = 0;
        while j + 4 <= n {
            let x = _mm256_loadu_si256(p.add(a + j).cast());
            _mm256_storeu_si256(p.add(d + j).cast(), _mm256_sll_epi64(x, cnt));
            j += 4;
        }
        while j < n {
            *p.add(d + j) = (*p.add(a + j)).wrapping_shl(sh);
            j += 1;
        }
    }

    /// Truncating `t >> sh` — AVX2 has no 64-bit arithmetic shift, so
    /// emulate with a logical shift plus sign fill (`sll` by ≥ 64
    /// yields zero, which covers `sh == 0`).
    #[inline]
    unsafe fn sra(t: __m256i, cnt: __m128i, cnt_inv: __m128i) -> __m256i {
        let sign = _mm256_cmpgt_epi64(_mm256_setzero_si256(), t);
        _mm256_or_si256(_mm256_srl_epi64(t, cnt), _mm256_sll_epi64(sign, cnt_inv))
    }

    #[inline]
    unsafe fn quot_p2(x: __m256i, maskv: __m256i, cnt: __m128i, cnt_inv: __m128i) -> __m256i {
        // Round toward zero: bias negative operands by `2^sh - 1`.
        let bias = _mm256_and_si256(_mm256_cmpgt_epi64(_mm256_setzero_si256(), x), maskv);
        sra(_mm256_add_epi64(x, bias), cnt, cnt_inv)
    }

    /// `d[j] = a[j] / 2^sh`, truncating like the reference's `DivI`.
    pub unsafe fn div_p2(p: *mut i64, d: usize, a: usize, sh: u32, n: usize) {
        let mask = (1i64 << sh) - 1;
        let maskv = _mm256_set1_epi64x(mask);
        let cnt = _mm_cvtsi32_si128(sh as i32);
        let cnt_inv = _mm_cvtsi32_si128(64 - sh as i32);
        let mut j = 0;
        while j + 4 <= n {
            let x = _mm256_loadu_si256(p.add(a + j).cast());
            _mm256_storeu_si256(p.add(d + j).cast(), quot_p2(x, maskv, cnt, cnt_inv));
            j += 4;
        }
        while j < n {
            let x = *p.add(a + j);
            *p.add(d + j) = x.wrapping_add((x >> 63) & mask) >> sh;
            j += 1;
        }
    }

    /// `d[j] = a[j] % 2^sh`, sign following the dividend.
    pub unsafe fn rem_p2(p: *mut i64, d: usize, a: usize, sh: u32, n: usize) {
        let mask = (1i64 << sh) - 1;
        let maskv = _mm256_set1_epi64x(mask);
        let cnt = _mm_cvtsi32_si128(sh as i32);
        let cnt_inv = _mm_cvtsi32_si128(64 - sh as i32);
        let mut j = 0;
        while j + 4 <= n {
            let x = _mm256_loadu_si256(p.add(a + j).cast());
            let q = quot_p2(x, maskv, cnt, cnt_inv);
            let r = _mm256_sub_epi64(x, _mm256_sll_epi64(q, cnt));
            _mm256_storeu_si256(p.add(d + j).cast(), r);
            j += 4;
        }
        while j < n {
            let x = *p.add(a + j);
            let q = x.wrapping_add((x >> 63) & mask) >> sh;
            *p.add(d + j) = x.wrapping_sub(q.wrapping_shl(sh));
            j += 1;
        }
    }
}

/// `MadBF` for the generator's ubiquitous `float2` shape: per rep,
/// `d[2r..2r+2] = a[2r + lane] * b[2r..2r+2] + c[2r..2r+2]`. The caller
/// has bounds-checked all four ranges; slot allocation makes them
/// pairwise equal or disjoint, so loading a whole chunk before storing
/// it preserves the scalar loop's semantics. On x86 the per-pair lane
/// broadcast is a single `moveldup`/`movehdup`, and `fmadd` rounds once
/// exactly like `f32::mul_add`.
fn madbf_w2(fb: &mut [f32], [d, a, b, c]: [usize; 4], lane: usize, n: usize) {
    let mut r = 0;
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    unsafe {
        use core::arch::x86_64::{
            _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_movehdup_ps, _mm256_moveldup_ps,
            _mm256_storeu_ps,
        };
        let p = fb.as_mut_ptr();
        while r + 4 <= n {
            let va = _mm256_loadu_ps(p.add(a + 2 * r));
            let x = if lane == 0 {
                _mm256_moveldup_ps(va)
            } else {
                _mm256_movehdup_ps(va)
            };
            let vb = _mm256_loadu_ps(p.add(b + 2 * r));
            let vc = _mm256_loadu_ps(p.add(c + 2 * r));
            _mm256_storeu_ps(p.add(d + 2 * r), _mm256_fmadd_ps(x, vb, vc));
            r += 4;
        }
    }
    for r in r..n {
        let x = unsafe { *fb.get_unchecked(a + 2 * r + lane) };
        for k in 0..2 {
            let (y, z) = unsafe {
                (
                    *fb.get_unchecked(b + 2 * r + k),
                    *fb.get_unchecked(c + 2 * r + k),
                )
            };
            unsafe { *fb.get_unchecked_mut(d + 2 * r + k) = x.mul_add(y, z) };
        }
    }
}

fn div_zero() -> RuntimeError {
    RuntimeError::Arithmetic("integer division by zero".into())
}

fn rem_zero() -> RuntimeError {
    RuntimeError::Arithmetic("integer remainder by zero".into())
}

/// Execute one bound op against the group banks.
#[allow(clippy::too_many_lines)]
fn exec_op(ctx: &Ctx<'_>, arena: &mut CArena, op: &BOp, phase: u32) -> Result<(), RuntimeError> {
    let CArena {
        ib,
        fb,
        db,
        locals,
        races,
    } = arena;
    let (d, a, b, c) = (op.d as usize, op.a as usize, op.b as usize, op.c as usize);
    let n = op.n as usize;
    let w = op.w as usize;
    let glin = ctx.group_linear;
    // One bounds assertion per range up front, then unchecked element
    // accesses inside the loops: the per-element checks LLVM cannot
    // hoist (three ranges into one bank may alias) are what keep these
    // loops from vectorising.
    macro_rules! ck {
        ($bank:ident: $($base:expr),+) => {
            $(assert!($base + n <= $bank.len());)+
        };
    }
    // Elementwise integer helper.
    macro_rules! bin_i {
        (|$x:ident, $y:ident| $e:expr) => {{
            ck!(ib: d, a, b);
            for j in 0..n {
                let ($x, $y) = unsafe { (*ib.get_unchecked(a + j), *ib.get_unchecked(b + j)) };
                unsafe { *ib.get_unchecked_mut(d + j) = $e };
            }
        }};
    }
    // f32 arithmetic via f64 intermediates, as the reference does.
    macro_rules! bin_f {
        (|$x:ident, $y:ident| $e:expr) => {{
            ck!(fb: d, a, b);
            for j in 0..n {
                let ($x, $y) = unsafe {
                    (
                        f64::from(*fb.get_unchecked(a + j)),
                        f64::from(*fb.get_unchecked(b + j)),
                    )
                };
                unsafe { *fb.get_unchecked_mut(d + j) = ($e) as f32 };
            }
        }};
    }
    macro_rules! bin_d {
        (|$x:ident, $y:ident| $e:expr) => {{
            ck!(db: d, a, b);
            for j in 0..n {
                let ($x, $y) = unsafe { (*db.get_unchecked(a + j), *db.get_unchecked(b + j)) };
                unsafe { *db.get_unchecked_mut(d + j) = $e };
            }
        }};
    }
    // Elementwise unary over one bank (`src_bank` may equal `dst_bank`).
    macro_rules! un_ew {
        ($src:ident -> $dst:ident, |$x:ident| $e:expr) => {{
            ck!($src: a);
            ck!($dst: d);
            for j in 0..n {
                let $x = unsafe { *$src.get_unchecked(a + j) };
                unsafe { *$dst.get_unchecked_mut(d + j) = $e };
            }
        }};
    }
    // Memory ops: one per-work-item loop with the bounds test inlined
    // (the cold path re-runs the checked helper to build the exact
    // reference error) and the race-table call gated on whether
    // detection is on at all. The bank-side accesses are covered by the
    // up-front asserts; the buffer side is covered by the bounds test.
    macro_rules! ld_g {
        ($bank:ident, $ld:ident, $wv:expr, |$x:ident| $conv:expr) => {{
            let bi = op.buf as usize;
            let wv: usize = $wv;
            let len = ctx.bufs.len(bi);
            assert!(a + n <= ib.len() && d + n * wv <= $bank.len());
            for wi in 0..n {
                let idx = unsafe { *ib.get_unchecked(a + wi) };
                if idx < 0 || idx as usize + wv > len {
                    ctx.bufs.check(ctx.kernel, bi, idx, wv as u8)?;
                    unreachable!("check rejects the same bounds");
                }
                let i = idx as usize;
                if ctx.grace.is_some() {
                    g_race_r(ctx.kernel, ctx.grace, bi, i, wv as u8, glin)?;
                }
                for k in 0..wv {
                    let $x = unsafe { ctx.bufs.$ld(bi, i + k) };
                    unsafe { *$bank.get_unchecked_mut(d + wi * wv + k) = $conv };
                }
            }
        }};
    }
    macro_rules! st_g {
        ($bank:ident, $st:ident, $wv:expr, |$x:ident| $conv:expr) => {{
            let bi = op.buf as usize;
            let wv: usize = $wv;
            let len = ctx.bufs.len(bi);
            assert!(a + n <= ib.len() && b + n * wv <= $bank.len());
            for wi in 0..n {
                let idx = unsafe { *ib.get_unchecked(a + wi) };
                if idx < 0 || idx as usize + wv > len {
                    ctx.bufs.check(ctx.kernel, bi, idx, wv as u8)?;
                    unreachable!("check rejects the same bounds");
                }
                let i = idx as usize;
                if ctx.grace.is_some() {
                    g_race_w(ctx.kernel, ctx.grace, bi, i, wv as u8, glin)?;
                }
                for k in 0..wv {
                    let $x = unsafe { *$bank.get_unchecked(b + wi * wv + k) };
                    unsafe { ctx.bufs.$st(bi, i + k, $conv) };
                }
            }
        }};
    }
    macro_rules! ld_l {
        ($variant:ident, $bank:ident, $wv:expr, |$x:ident| $conv:expr) => {{
            let arr = op.buf as usize;
            let wv: usize = $wv;
            let LocalBuf::$variant(v) = &locals[arr] else {
                unreachable!("typed local load");
            };
            let len = v.len();
            assert!(a + n <= ib.len() && d + n * wv <= $bank.len());
            for wi in 0..n {
                let idx = unsafe { *ib.get_unchecked(a + wi) };
                if idx < 0 || idx as usize + wv > len {
                    l_check(ctx.kernel, &*locals, arr, idx, wv as u8)?;
                    unreachable!("l_check rejects the same bounds");
                }
                let i = idx as usize;
                if !races.is_empty() {
                    l_race_r(ctx.kernel, races, arr, i, wv as u8, wi as u32, phase)?;
                }
                for k in 0..wv {
                    let $x = unsafe { *v.get_unchecked(i + k) };
                    unsafe { *$bank.get_unchecked_mut(d + wi * wv + k) = $conv };
                }
            }
        }};
    }
    macro_rules! st_l {
        ($variant:ident, $bank:ident, $wv:expr, |$x:ident| $conv:expr) => {{
            let arr = op.buf as usize;
            let wv: usize = $wv;
            let LocalBuf::$variant(v) = &mut locals[arr] else {
                unreachable!("typed local store");
            };
            let len = v.len();
            assert!(a + n <= ib.len() && b + n * wv <= $bank.len());
            for wi in 0..n {
                let idx = unsafe { *ib.get_unchecked(a + wi) };
                if idx < 0 || idx as usize + wv > len {
                    return Err(RuntimeError::LocalOob {
                        array: ctx.kernel.checked.local_arrays[arr].name.clone(),
                        index: idx,
                        len,
                    });
                }
                let i = idx as usize;
                if !races.is_empty() {
                    l_race_w(ctx.kernel, races, arr, i, wv as u8, wi as u32, phase)?;
                }
                for k in 0..wv {
                    let $x = unsafe { *$bank.get_unchecked(b + wi * wv + k) };
                    unsafe { *v.get_unchecked_mut(i + k) = $conv };
                }
            }
        }};
    }
    match op.k {
        PK::CpyI => ib.copy_within(a..a + n, d),
        PK::CpyF => fb.copy_within(a..a + n, d),
        PK::CpyD => db.copy_within(a..a + n, d),
        PK::SplatI => {
            assert!(a + w <= ib.len() && d + n * w <= ib.len());
            for r in 0..n {
                for k in 0..w {
                    unsafe { *ib.get_unchecked_mut(d + r * w + k) = *ib.get_unchecked(a + k) };
                }
            }
        }
        PK::SplatF => {
            assert!(a + w <= fb.len() && d + n * w <= fb.len());
            for r in 0..n {
                for k in 0..w {
                    unsafe { *fb.get_unchecked_mut(d + r * w + k) = *fb.get_unchecked(a + k) };
                }
            }
        }
        PK::SplatD => {
            assert!(a + w <= db.len() && d + n * w <= db.len());
            for r in 0..n {
                for k in 0..w {
                    unsafe { *db.get_unchecked_mut(d + r * w + k) = *db.get_unchecked(a + k) };
                }
            }
        }
        PK::AddI => {
            #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
            {
                ck!(ib: d, a, b);
                unsafe { vi::add(ib.as_mut_ptr(), d, a, b, n) };
            }
            #[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
            bin_i!(|x, y| x.wrapping_add(y));
        }
        PK::SubI => bin_i!(|x, y| x.wrapping_sub(y)),
        PK::MulI => bin_i!(|x, y| x.wrapping_mul(y)),
        PK::DivI => {
            ck!(ib: d, a, b);
            for j in 0..n {
                let y = unsafe { *ib.get_unchecked(b + j) };
                if y == 0 {
                    return Err(div_zero());
                }
                let x = unsafe { *ib.get_unchecked(a + j) };
                unsafe { *ib.get_unchecked_mut(d + j) = x.wrapping_div(y) };
            }
        }
        PK::RemI => {
            ck!(ib: d, a, b);
            for j in 0..n {
                let y = unsafe { *ib.get_unchecked(b + j) };
                if y == 0 {
                    return Err(rem_zero());
                }
                let x = unsafe { *ib.get_unchecked(a + j) };
                unsafe { *ib.get_unchecked_mut(d + j) = x.wrapping_rem(y) };
            }
        }
        // Truncating div/rem by 2^aux: round toward zero by adding
        // `2^aux - 1` to negative operands before the arithmetic shift.
        PK::DivIP2 => {
            let sh = u32::from(op.aux);
            #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
            {
                ck!(ib: d, a);
                unsafe { vi::div_p2(ib.as_mut_ptr(), d, a, sh, n) };
            }
            #[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
            {
                let mask = (1i64 << sh) - 1;
                un_ew!(ib -> ib, |x| x.wrapping_add((x >> 63) & mask) >> sh);
            }
        }
        PK::RemIP2 => {
            let sh = u32::from(op.aux);
            #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
            {
                ck!(ib: d, a);
                unsafe { vi::rem_p2(ib.as_mut_ptr(), d, a, sh, n) };
            }
            #[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
            {
                let mask = (1i64 << sh) - 1;
                un_ew!(ib -> ib, |x| {
                    let q = x.wrapping_add((x >> 63) & mask) >> sh;
                    x.wrapping_sub(q.wrapping_shl(sh))
                });
            }
        }
        PK::MulIP2 => {
            let sh = u32::from(op.aux);
            #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
            {
                ck!(ib: d, a);
                unsafe { vi::shl(ib.as_mut_ptr(), d, a, sh, n) };
            }
            #[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
            un_ew!(ib -> ib, |x| x.wrapping_shl(sh));
        }
        PK::AndI => bin_i!(|x, y| x & y),
        PK::OrI => bin_i!(|x, y| x | y),
        PK::XorI => bin_i!(|x, y| x ^ y),
        PK::ShlI => bin_i!(|x, y| x.wrapping_shl(y as u32)),
        PK::ShrI => bin_i!(|x, y| x.wrapping_shr(y as u32)),
        PK::LAndI => bin_i!(|x, y| i64::from(x != 0 && y != 0)),
        PK::LOrI => bin_i!(|x, y| i64::from(x != 0 || y != 0)),
        PK::CmpI => {
            let code = op.aux;
            bin_i!(|x, y| i64::from(cmp(code, x, y)));
        }
        PK::NegI => un_ew!(ib -> ib, |x| x.wrapping_neg()),
        PK::NotI => un_ew!(ib -> ib, |x| i64::from(x == 0)),
        PK::AddF => bin_f!(|x, y| x + y),
        PK::SubF => bin_f!(|x, y| x - y),
        PK::MulF => bin_f!(|x, y| x * y),
        PK::DivF => bin_f!(|x, y| x / y),
        PK::NegF => un_ew!(fb -> fb, |x| -x),
        PK::MadF => {
            ck!(fb: d, a, b, c);
            for j in 0..n {
                let (x, y, z) = unsafe {
                    (
                        *fb.get_unchecked(a + j),
                        *fb.get_unchecked(b + j),
                        *fb.get_unchecked(c + j),
                    )
                };
                unsafe { *fb.get_unchecked_mut(d + j) = x.mul_add(y, z) };
            }
        }
        PK::MadBF => {
            // One source lane (stride `buf` per work-item) multiplied
            // into a whole dst vector: n = reps, w = dst lanes.
            let ws = op.buf as usize;
            let lane = op.aux as usize;
            assert!(lane < ws && a + n * ws <= fb.len());
            assert!(d + n * w <= fb.len() && b + n * w <= fb.len() && c + n * w <= fb.len());
            if ws == 2 && w == 2 {
                madbf_w2(fb, [d, a, b, c], lane, n);
            } else {
                for r in 0..n {
                    let x = unsafe { *fb.get_unchecked(a + r * ws + lane) };
                    for k in 0..w {
                        let (y, z) = unsafe {
                            (
                                *fb.get_unchecked(b + r * w + k),
                                *fb.get_unchecked(c + r * w + k),
                            )
                        };
                        unsafe { *fb.get_unchecked_mut(d + r * w + k) = x.mul_add(y, z) };
                    }
                }
            }
        }
        PK::CmpF => {
            let code = op.aux;
            ck!(fb: a, b);
            ck!(ib: d);
            for j in 0..n {
                let (x, y) = unsafe {
                    (
                        f64::from(*fb.get_unchecked(a + j)),
                        f64::from(*fb.get_unchecked(b + j)),
                    )
                };
                unsafe { *ib.get_unchecked_mut(d + j) = i64::from(cmp(code, x, y)) };
            }
        }
        PK::AddD => bin_d!(|x, y| x + y),
        PK::SubD => bin_d!(|x, y| x - y),
        PK::MulD => bin_d!(|x, y| x * y),
        PK::DivD => bin_d!(|x, y| x / y),
        PK::NegD => un_ew!(db -> db, |x| -x),
        PK::MadD => {
            ck!(db: d, a, b, c);
            for j in 0..n {
                let (x, y, z) = unsafe {
                    (
                        *db.get_unchecked(a + j),
                        *db.get_unchecked(b + j),
                        *db.get_unchecked(c + j),
                    )
                };
                unsafe { *db.get_unchecked_mut(d + j) = x.mul_add(y, z) };
            }
        }
        PK::MadBD => {
            let ws = op.buf as usize;
            let lane = op.aux as usize;
            assert!(lane < ws && a + n * ws <= db.len());
            assert!(d + n * w <= db.len() && b + n * w <= db.len() && c + n * w <= db.len());
            for r in 0..n {
                let x = unsafe { *db.get_unchecked(a + r * ws + lane) };
                for k in 0..w {
                    let (y, z) = unsafe {
                        (
                            *db.get_unchecked(b + r * w + k),
                            *db.get_unchecked(c + r * w + k),
                        )
                    };
                    unsafe { *db.get_unchecked_mut(d + r * w + k) = x.mul_add(y, z) };
                }
            }
        }
        PK::CmpD => {
            let code = op.aux;
            ck!(db: a, b);
            ck!(ib: d);
            for j in 0..n {
                let (x, y) = unsafe { (*db.get_unchecked(a + j), *db.get_unchecked(b + j)) };
                unsafe { *ib.get_unchecked_mut(d + j) = i64::from(cmp(code, x, y)) };
            }
        }
        PK::SelI => {
            for j in 0..n {
                ib[d + j] = if ib[c + j] != 0 { ib[a + j] } else { ib[b + j] };
            }
        }
        PK::SelF => {
            for j in 0..n {
                fb[d + j] = if ib[c + j] != 0 { fb[a + j] } else { fb[b + j] };
            }
        }
        PK::SelD => {
            for j in 0..n {
                db[d + j] = if ib[c + j] != 0 { db[a + j] } else { db[b + j] };
            }
        }
        PK::SelVF => {
            for r in 0..n {
                let src = if ib[c + r] != 0 { a } else { b };
                fb.copy_within(src + r * w..src + (r + 1) * w, d + r * w);
            }
        }
        PK::SelVD => {
            for r in 0..n {
                let src = if ib[c + r] != 0 { a } else { b };
                db.copy_within(src + r * w..src + (r + 1) * w, d + r * w);
            }
        }
        PK::I2F => un_ew!(ib -> fb, |x| x as f32),
        PK::I2D => un_ew!(ib -> db, |x| x as f64),
        PK::I2B => un_ew!(ib -> ib, |x| i64::from(x != 0)),
        PK::F2I => un_ew!(fb -> ib, |x| x as i64),
        PK::F2D => un_ew!(fb -> db, |x| f64::from(x)),
        PK::D2I => un_ew!(db -> ib, |x| x as i64),
        PK::D2F => un_ew!(db -> fb, |x| x as f32),
        PK::VF2D => un_ew!(fb -> db, |x| f64::from(x)),
        PK::VD2F => un_ew!(db -> fb, |x| x as f32),
        PK::BcastF => {
            assert!(a + n <= fb.len() && d + n * w <= fb.len());
            for r in 0..n {
                let x = unsafe { *fb.get_unchecked(a + r) };
                for k in 0..w {
                    unsafe { *fb.get_unchecked_mut(d + r * w + k) = x };
                }
            }
        }
        PK::BcastD => {
            assert!(a + n <= db.len() && d + n * w <= db.len());
            for r in 0..n {
                let x = unsafe { *db.get_unchecked(a + r) };
                for k in 0..w {
                    unsafe { *db.get_unchecked_mut(d + r * w + k) = x };
                }
            }
        }
        // The reference broadcasts ints into a *double* vector.
        PK::BcastID => {
            assert!(a + n <= ib.len() && d + n * w <= db.len());
            for r in 0..n {
                let x = unsafe { *ib.get_unchecked(a + r) } as f64;
                for k in 0..w {
                    unsafe { *db.get_unchecked_mut(d + r * w + k) = x };
                }
            }
        }
        PK::BuildF => {
            for r in 0..n {
                for (l, &p) in op.ex.iter().enumerate() {
                    fb[d + r * w + l] = fb[p as usize + r];
                }
            }
        }
        PK::BuildD => {
            for r in 0..n {
                for (l, &p) in op.ex.iter().enumerate() {
                    db[d + r * w + l] = db[p as usize + r];
                }
            }
        }
        PK::ExtrF => {
            let lane = op.aux as usize;
            assert!(d + n <= fb.len() && a + n * w <= fb.len() && lane < w);
            for r in 0..n {
                unsafe { *fb.get_unchecked_mut(d + r) = *fb.get_unchecked(a + r * w + lane) };
            }
        }
        PK::ExtrD => {
            let lane = op.aux as usize;
            assert!(d + n <= db.len() && a + n * w <= db.len() && lane < w);
            for r in 0..n {
                unsafe { *db.get_unchecked_mut(d + r) = *db.get_unchecked(a + r * w + lane) };
            }
        }
        PK::InsF => {
            let lane = op.aux as usize;
            for r in 0..n {
                fb.copy_within(a + r * w..a + (r + 1) * w, d + r * w);
                fb[d + r * w + lane] = fb[b + r];
            }
        }
        PK::InsD => {
            let lane = op.aux as usize;
            for r in 0..n {
                db.copy_within(a + r * w..a + (r + 1) * w, d + r * w);
                db[d + r * w + lane] = db[b + r];
            }
        }
        PK::MinI => bin_i!(|x, y| x.min(y)),
        PK::MaxI => bin_i!(|x, y| x.max(y)),
        PK::ClampI => {
            for j in 0..n {
                ib[d + j] = ib[a + j].clamp(ib[b + j], ib[c + j]);
            }
        }
        PK::MinF => {
            for j in 0..n {
                fb[d + j] = fb[a + j].min(fb[b + j]);
            }
        }
        PK::MaxF => {
            for j in 0..n {
                fb[d + j] = fb[a + j].max(fb[b + j]);
            }
        }
        PK::ClampF => {
            for j in 0..n {
                fb[d + j] = fb[a + j].clamp(fb[b + j], fb[c + j]);
            }
        }
        PK::MinD => {
            for j in 0..n {
                db[d + j] = db[a + j].min(db[b + j]);
            }
        }
        PK::MaxD => {
            for j in 0..n {
                db[d + j] = db[a + j].max(db[b + j]);
            }
        }
        PK::ClampD => {
            for j in 0..n {
                db[d + j] = db[a + j].clamp(db[b + j], db[c + j]);
            }
        }
        PK::AbsF => {
            for j in 0..n {
                fb[d + j] = fb[a + j].abs();
            }
        }
        PK::AbsD => {
            for j in 0..n {
                db[d + j] = db[a + j].abs();
            }
        }
        PK::SqrtF => {
            for j in 0..n {
                fb[d + j] = fb[a + j].sqrt();
            }
        }
        PK::SqrtD => {
            for j in 0..n {
                db[d + j] = db[a + j].sqrt();
            }
        }
        PK::ExpF => {
            for j in 0..n {
                fb[d + j] = fb[a + j].exp();
            }
        }
        PK::ExpD => {
            for j in 0..n {
                db[d + j] = db[a + j].exp();
            }
        }
        PK::LogF => {
            for j in 0..n {
                fb[d + j] = fb[a + j].ln();
            }
        }
        PK::LogD => {
            for j in 0..n {
                db[d + j] = db[a + j].ln();
            }
        }
        PK::RecipF => {
            for j in 0..n {
                fb[d + j] = 1.0 / fb[a + j];
            }
        }
        PK::RecipD => {
            for j in 0..n {
                db[d + j] = 1.0 / db[a + j];
            }
        }
        PK::WiId => {
            let dim = (op.aux % 4) as usize;
            let local0 = ctx.geom.local[0];
            let base = ctx.group[dim] * ctx.geom.local[dim];
            for wi in 0..n {
                let lid = if dim == 0 { wi % local0 } else { wi / local0 };
                ib[d + wi] = if op.aux < 4 {
                    (base + lid) as i64 // GlobalId
                } else {
                    lid as i64 // LocalId
                };
            }
        }
        PK::WiUni => {
            let dim = (op.aux % 4) as usize;
            ib[d] = match op.aux / 4 {
                2 => ctx.group[dim] as i64,
                3 => ctx.geom.global[dim] as i64,
                4 => ctx.geom.local[dim] as i64,
                _ => ctx.geom.groups[dim] as i64,
            };
        }
        PK::LdG1F => ld_g!(fb, ld_f32, 1, |x| x),
        PK::LdGVF => ld_g!(fb, ld_f32, w, |x| x),
        PK::LdG1D => ld_g!(db, ld_f64, 1, |x| x),
        PK::LdGVD => ld_g!(db, ld_f64, w, |x| x),
        PK::LdG1I => ld_g!(ib, ld_i32, 1, |x| i64::from(x)),
        PK::StG1F => st_g!(fb, st_f32, 1, |x| x),
        PK::StGVF => st_g!(fb, st_f32, w, |x| x),
        PK::StG1D => st_g!(db, st_f64, 1, |x| x),
        PK::StGVD => st_g!(db, st_f64, w, |x| x),
        PK::StG1I => st_g!(ib, st_i32, 1, |x| x as i32),
        PK::LdL1F => ld_l!(F32, fb, 1, |x| x),
        PK::LdLVF => ld_l!(F32, fb, w, |x| x),
        PK::LdL1D => ld_l!(F64, db, 1, |x| x),
        PK::LdLVD => ld_l!(F64, db, w, |x| x),
        PK::LdL1I => ld_l!(I32, ib, 1, |x| x),
        PK::StL1F => st_l!(F32, fb, 1, |x| x),
        PK::StLVF => st_l!(F32, fb, w, |x| x),
        PK::StL1D => st_l!(F64, db, 1, |x| x),
        PK::StLVD => st_l!(F64, db, w, |x| x),
        PK::StL1I => st_l!(I32, ib, 1, |x| x),
    }
    Ok(())
}

/// Ordered comparison by code (Lt, Gt, Le, Ge, Eq, Ne) — matches the
/// reference's widened comparisons for both ints and floats.
fn cmp<T: PartialOrd>(code: u8, x: T, y: T) -> bool {
    match code {
        0 => x < y,
        1 => x > y,
        2 => x <= y,
        3 => x >= y,
        4 => x == y,
        _ => x != y,
    }
}
