//! Bytecode → control-flow graph → typed SSA (block-argument form).
//!
//! Block parameters are exactly the live-in registers of each block
//! (computed by a backward dataflow over the bytecode), so no phi
//! placement is needed: every predecessor's terminator passes the
//! current SSA value of each live-in register.
//!
//! Each block's [`Cost`] is charged here from the source instructions —
//! including the control instruction that ends the block — using the
//! reference interpreter's exact per-instruction accounting. Later
//! passes rewrite ops but never costs.

use super::{Block, Cost, Edge, Func, Op, OpKind, Term, Val};
use crate::ast::Base;
use crate::check::CheckedKernel;
use crate::lower::{CompiledKernel, Instr, Reg, RegClass};

/// Build the SSA function for a lowered kernel.
///
/// # Errors
/// A decline reason when the bytecode's shape is outside what the
/// trace engine supports.
pub fn build(k: &CompiledKernel, classes: &[RegClass]) -> Result<Func, String> {
    let code = &k.code;
    let n = code.len();
    if n == 0 {
        return Err("empty kernel body".into());
    }
    // 1. Leaders: entry, jump targets, and fall-through points after
    // control instructions.
    let mut leader = vec![false; n];
    leader[0] = true;
    for (pc, ins) in code.iter().enumerate() {
        match ins {
            Instr::Jump { target } | Instr::JumpIfFalse { target, .. } => {
                if *target >= n {
                    return Err(format!("jump target {target} out of range"));
                }
                leader[*target] = true;
                if pc + 1 < n {
                    leader[pc + 1] = true;
                }
            }
            Instr::Barrier { .. } | Instr::Ret if pc + 1 < n => leader[pc + 1] = true,
            _ => {}
        }
    }
    let starts: Vec<usize> = (0..n).filter(|&pc| leader[pc]).collect();
    let block_of = |pc: usize| -> usize {
        match starts.binary_search(&pc) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    };
    let nb = starts.len();
    let spans: Vec<(usize, usize)> = starts
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, if i + 1 < nb { starts[i + 1] } else { n }))
        .collect();

    // 2. Per-block register use/def sets for liveness.
    let nr = k.n_regs;
    let mut gen = vec![vec![false; nr]; nb];
    let mut kill = vec![vec![false; nr]; nb];
    for (b, &(s, e)) in spans.iter().enumerate() {
        for ins in &code[s..e] {
            for r in instr_reads(ins) {
                if !kill[b][r] {
                    gen[b][r] = true;
                }
            }
            if let Some(d) = instr_writes(ins) {
                kill[b][d] = true;
            }
        }
    }
    // Successors per block, for liveness (the same edges the
    // terminators will take below).
    let succs: Vec<Vec<usize>> = spans
        .iter()
        .map(|&(s, e)| {
            let last = &code[e - 1];
            match last {
                Instr::Jump { target } => vec![block_of(*target)],
                Instr::JumpIfFalse { target, .. } => {
                    vec![block_of(e), block_of(*target)]
                }
                Instr::Barrier { .. } => vec![block_of(e)],
                Instr::Ret => vec![],
                _ => {
                    debug_assert!(e < n, "fallthrough off the end at {s}..{e}");
                    vec![block_of(e)]
                }
            }
        })
        .collect();

    // 3. Backward liveness fixpoint.
    let mut live_in = vec![vec![false; nr]; nb];
    let mut live_out = vec![vec![false; nr]; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            let mut out = vec![false; nr];
            for &s in &succs[b] {
                for r in 0..nr {
                    out[r] |= live_in[s][r];
                }
            }
            let mut inn = out.clone();
            for r in 0..nr {
                if kill[b][r] && !gen[b][r] {
                    inn[r] = false;
                }
                if gen[b][r] {
                    inn[r] = true;
                }
            }
            if inn != live_in[b] || out != live_out[b] {
                live_in[b] = inn;
                live_out[b] = out;
                changed = true;
            }
        }
    }
    let param_regs: Vec<Vec<Reg>> = live_in
        .iter()
        .map(|l| (0..nr).filter(|&r| l[r]).collect())
        .collect();

    // 4. Fill blocks: one pass per block with a register → value map.
    let mut f = Func {
        blocks: Vec::with_capacity(nb),
        classes: Vec::new(),
        entry_regs: param_regs[0].clone(),
    };
    // Pre-create parameter values for every block so edges can refer
    // to successor params before the successor is filled.
    let param_vals: Vec<Vec<Val>> = param_regs
        .iter()
        .map(|regs| {
            regs.iter()
                .map(|&r| f.new_val(classes[r]))
                .collect::<Vec<_>>()
        })
        .collect();

    for (b, &(s, e)) in spans.iter().enumerate() {
        let mut env: Vec<Option<Val>> = vec![None; nr];
        for (i, &r) in param_regs[b].iter().enumerate() {
            env[r] = Some(param_vals[b][i]);
        }
        let mut ops = Vec::new();
        let mut cost = Cost::default();
        let mut term = None;
        let read = |env: &[Option<Val>], r: Reg| -> Result<Val, String> {
            env[r].ok_or_else(|| format!("register r{r} read before any write"))
        };
        let edge_to = |env: &[Option<Val>], t: usize| -> Result<Edge, String> {
            let args = param_regs[t]
                .iter()
                .map(|&r| read(env, r))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Edge { to: t, args })
        };
        for (pc, ins) in code[s..e].iter().enumerate() {
            charge(&mut cost, ins, classes, &k.checked);
            let is_last = s + pc == e - 1;
            match ins {
                Instr::Jump { target } => {
                    term = Some(Term::Br(edge_to(&env, block_of(*target))?));
                }
                Instr::JumpIfFalse { cond, target } => {
                    term = Some(Term::CondBr {
                        cond: read(&env, *cond)?,
                        t: edge_to(&env, block_of(e))?,
                        f: edge_to(&env, block_of(*target))?,
                    });
                }
                Instr::Barrier { site } => {
                    term = Some(Term::Barrier {
                        site: *site,
                        next: edge_to(&env, block_of(e))?,
                    });
                }
                Instr::Ret => term = Some(Term::Ret),
                Instr::Mov { dst, src } => {
                    // Copy propagation for free: the destination simply
                    // aliases the source value from here on.
                    env[*dst] = Some(read(&env, *src)?);
                }
                Instr::InsertLane { vec, src, lane } => {
                    let kind = OpKind::Insert(read(&env, *vec)?, read(&env, *src)?, *lane);
                    let d = f.new_val(classes[*vec]);
                    ops.push(Op { dst: Some(d), kind });
                    env[*vec] = Some(d);
                }
                other => {
                    let kind = lift(other, &env, &read)?;
                    let dst = instr_writes(other).map(|d| {
                        let v = f.new_val(classes[d]);
                        env[d] = Some(v);
                        v
                    });
                    ops.push(Op { dst, kind });
                }
            }
            if is_last && term.is_none() {
                // Fall through into the next leader; charges nothing.
                term = Some(Term::Br(edge_to(&env, block_of(e))?));
            }
        }
        f.blocks.push(Block {
            params: param_vals[b].clone(),
            ops,
            term: term.ok_or_else(|| format!("block at {s} has no terminator"))?,
            cost,
        });
    }
    Ok(f)
}

/// How [`lift`] resolves a bytecode register to an SSA value.
type ReadReg<'a> = &'a dyn Fn(&[Option<Val>], Reg) -> Result<Val, String>;

/// Lift one non-control, non-Mov instruction into an [`OpKind`].
fn lift(ins: &Instr, env: &[Option<Val>], read: ReadReg) -> Result<OpKind, String> {
    Ok(match ins {
        Instr::Const { val, .. } => OpKind::Const(*val),
        Instr::Bin { op, a, b, .. } => OpKind::Bin(*op, read(env, *a)?, read(env, *b)?),
        Instr::Un { op, a, .. } => OpKind::Un(*op, read(env, *a)?),
        Instr::Convert { src, base, .. } => OpKind::Convert(read(env, *src)?, *base),
        Instr::Broadcast { src, width, .. } => OpKind::Broadcast(read(env, *src)?, *width),
        Instr::BuildVec { base, parts, .. } => OpKind::BuildVec(
            *base,
            parts
                .iter()
                .map(|&p| read(env, p))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Instr::Extract { src, lane, .. } => OpKind::Extract(read(env, *src)?, *lane),
        Instr::Mad { a, b, c, .. } => OpKind::Mad(read(env, *a)?, read(env, *b)?, read(env, *c)?),
        Instr::Math {
            f, args, n_args, ..
        } => {
            let mut vals = [0 as Val; 3];
            for (i, slot) in vals.iter_mut().enumerate().take(*n_args as usize) {
                *slot = read(env, args[i])?;
            }
            OpKind::Math(*f, vals, *n_args)
        }
        Instr::Wi { f, dim, .. } => OpKind::Wi(*f, read(env, *dim)?),
        Instr::LoadGlobal {
            buf, idx, width, ..
        } => OpKind::LoadGlobal {
            buf: *buf,
            idx: read(env, *idx)?,
            width: *width,
        },
        Instr::StoreGlobal {
            buf,
            idx,
            src,
            width,
        } => OpKind::StoreGlobal {
            buf: *buf,
            idx: read(env, *idx)?,
            src: read(env, *src)?,
            width: *width,
        },
        Instr::LoadLocal {
            arr, idx, width, ..
        } => OpKind::LoadLocal {
            arr: *arr,
            idx: read(env, *idx)?,
            width: *width,
        },
        Instr::StoreLocal {
            arr,
            idx,
            src,
            width,
        } => OpKind::StoreLocal {
            arr: *arr,
            idx: read(env, *idx)?,
            src: read(env, *src)?,
            width: *width,
        },
        Instr::Select { cond, a, b, .. } => {
            OpKind::Select(read(env, *cond)?, read(env, *a)?, read(env, *b)?)
        }
        other => return Err(format!("unexpected instruction in lift: {other:?}")),
    })
}

/// Registers an instruction reads.
fn instr_reads(ins: &Instr) -> Vec<Reg> {
    match ins {
        Instr::Const { .. } | Instr::Jump { .. } | Instr::Barrier { .. } | Instr::Ret => {
            vec![]
        }
        Instr::Mov { src, .. }
        | Instr::Un { a: src, .. }
        | Instr::Convert { src, .. }
        | Instr::Broadcast { src, .. }
        | Instr::Extract { src, .. }
        | Instr::Wi { dim: src, .. }
        | Instr::LoadGlobal { idx: src, .. }
        | Instr::LoadLocal { idx: src, .. }
        | Instr::JumpIfFalse { cond: src, .. } => vec![*src],
        Instr::Bin { a, b, .. } => vec![*a, *b],
        Instr::InsertLane { vec, src, .. } => vec![*vec, *src],
        Instr::StoreGlobal { idx, src, .. } | Instr::StoreLocal { idx, src, .. } => {
            vec![*idx, *src]
        }
        Instr::Mad { a, b, c, .. }
        | Instr::Select {
            cond: a,
            a: b,
            b: c,
            ..
        } => {
            vec![*a, *b, *c]
        }
        Instr::Math { args, n_args, .. } => args[..*n_args as usize].to_vec(),
        Instr::BuildVec { parts, .. } => parts.clone(),
    }
}

/// The register an instruction writes, if any. `InsertLane` counts as
/// a write (it also reads; `instr_reads` lists `vec` first).
fn instr_writes(ins: &Instr) -> Option<Reg> {
    match ins {
        Instr::Const { dst, .. }
        | Instr::Mov { dst, .. }
        | Instr::Bin { dst, .. }
        | Instr::Un { dst, .. }
        | Instr::Convert { dst, .. }
        | Instr::Broadcast { dst, .. }
        | Instr::BuildVec { dst, .. }
        | Instr::Extract { dst, .. }
        | Instr::Mad { dst, .. }
        | Instr::Math { dst, .. }
        | Instr::Wi { dst, .. }
        | Instr::LoadGlobal { dst, .. }
        | Instr::LoadLocal { dst, .. }
        | Instr::Select { dst, .. } => Some(*dst),
        Instr::InsertLane { vec, .. } => Some(*vec),
        Instr::StoreGlobal { .. }
        | Instr::StoreLocal { .. }
        | Instr::Jump { .. }
        | Instr::JumpIfFalse { .. }
        | Instr::Barrier { .. }
        | Instr::Ret => None,
    }
}

/// Charge one source instruction to a block cost, mirroring
/// `vm::exec_until_stop` exactly: every instruction charges one step
/// and one `instrs`; `Bin`/`Un`/`Math` add one `alu` (vector binops
/// charge 1, not the lane count); `Mad` adds `mads` per lane; memory
/// ops add one instr plus the element-size × width bytes of their
/// statically-known buffer type.
fn charge(cost: &mut Cost, ins: &Instr, classes: &[RegClass], ck: &CheckedKernel) {
    cost.instrs += 1;
    match ins {
        Instr::Bin { .. } | Instr::Un { .. } | Instr::Math { .. } => cost.alu += 1,
        Instr::Mad { dst, .. } => {
            cost.mads += match classes[*dst] {
                RegClass::V32(w) | RegClass::V64(w) => u64::from(w),
                _ => 1,
            }
        }
        Instr::LoadGlobal { buf, width, .. } | Instr::StoreGlobal { buf, width, .. } => {
            cost.mem_global_instrs += 1;
            let elem = match ck.buffer_params[*buf].base {
                Base::Double => 8,
                // f32 and i32 buffers both hold 4-byte elements.
                _ => 4,
            };
            cost.mem_global_bytes += elem * u64::from(*width);
        }
        Instr::LoadLocal { arr, width, .. } | Instr::StoreLocal { arr, width, .. } => {
            cost.mem_local_instrs += 1;
            let elem = match ck.local_arrays[*arr].base {
                Base::Float => 4,
                // f64 locals and the i64-backed int locals are 8 bytes.
                _ => 8,
            };
            cost.mem_local_bytes += elem * u64::from(*width);
        }
        _ => {}
    }
}
