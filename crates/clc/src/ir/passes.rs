//! The optimisation pipeline over [`Func`].
//!
//! Ordering rationale (also documented in DESIGN.md):
//!
//! 1. `simplify` first — merging single-predecessor chains gives the
//!    block-local passes bigger windows.
//! 2. `clean` (fold → CSE → DCE to a fixpoint) — folding uses the
//!    reference interpreter's own arithmetic helpers, so folded
//!    constants are bit-exact; integer-only algebraic identities
//!    (`x+0`, `x*1`, `x*0`, …) strength-reduce the generator's affine
//!    address expressions. Floats are never reassociated or folded
//!    against identities (`x+0.0` would flip `-0.0`).
//! 3. `unroll` — fully unrolls loops whose trip count folds to a
//!    constant (the generator's `pwi` work-item loops). Runs after
//!    `clean` so loop bounds are materialised constants, and before
//!    the final `simplify`+`clean` so the unrolled chain is merged
//!    into straight-line code and cross-iteration redundancy is CSE'd.
//!
//! Every pass preserves block [`Cost`]s: ops move or disappear, the
//! frozen per-execution stats charge does not. Unrolling *copies*
//! costs (header cost × T+1, body cost × T), which is exactly what
//! the reference interpreter would have charged.

use super::{Block, CompileStats, Edge, Func, Op, OpKind, Term, Val};
use crate::ast::{Base, BinOp};
use crate::lower::{RegClass, WiFunc};
use crate::vm::{self, Value};
use std::collections::HashMap;

// ---- shared helpers -------------------------------------------------------

fn resolve(alias: &HashMap<Val, Val>, mut v: Val) -> Val {
    while let Some(&n) = alias.get(&v) {
        v = n;
    }
    v
}

fn apply_alias(f: &mut Func, alias: &HashMap<Val, Val>) {
    if alias.is_empty() {
        return;
    }
    for b in &mut f.blocks {
        for op in &mut b.ops {
            op.kind.map_operands(&mut |v| resolve(alias, v));
        }
        match &mut b.term {
            Term::CondBr { cond, t, f: fe } => {
                *cond = resolve(alias, *cond);
                for e in [t, fe] {
                    for a in &mut e.args {
                        *a = resolve(alias, *a);
                    }
                }
            }
            Term::Br(e) | Term::Barrier { next: e, .. } => {
                for a in &mut e.args {
                    *a = resolve(alias, *a);
                }
            }
            Term::Ret => {}
        }
    }
}

/// Constant value of each val whose defining op is `Const`.
fn konst_map(f: &Func) -> Vec<Option<Value>> {
    let mut k = vec![None; f.n_vals()];
    for b in &f.blocks {
        for op in &b.ops {
            if let (Some(d), OpKind::Const(v)) = (op.dst, &op.kind) {
                k[d as usize] = Some(*v);
            }
        }
    }
    k
}

fn as_b(v: Value) -> Option<bool> {
    match v {
        Value::B(b) => Some(b),
        Value::I(x) => Some(x != 0),
        _ => None,
    }
}

/// Evaluate a pure op over constant operands with the reference
/// interpreter's own arithmetic. `None` when not evaluable (unknown
/// operand, memory op, or a would-be runtime error, which must stay
/// in the code and trap at the same point).
fn eval_kind(kind: &OpKind, get: &dyn Fn(Val) -> Option<Value>) -> Option<Value> {
    match kind {
        OpKind::Const(v) => Some(*v),
        OpKind::Bin(op, a, b) => vm::bin_op(*op, get(*a)?, get(*b)?).ok(),
        OpKind::Un(op, a) => vm::un_op(*op, get(*a)?).ok(),
        OpKind::Convert(a, base) => vm::convert(get(*a)?, *base).ok(),
        OpKind::Broadcast(a, w) => vm::broadcast(get(*a)?, *w).ok(),
        OpKind::Extract(a, lane) => vm::extract(get(*a)?, *lane).ok(),
        OpKind::Insert(a, s, lane) => vm::insert_lane(get(*a)?, get(*s)?, *lane).ok(),
        OpKind::Mad(a, b, c) => vm::mad(get(*a)?, get(*b)?, get(*c)?).ok(),
        // Created by `fuse`, which runs after all folding passes.
        OpKind::MadLane(..) => None,
        OpKind::Math(mf, args, n) => {
            let a = get(args[0])?;
            let b = if *n >= 2 { get(args[1])? } else { a };
            let c = if *n >= 3 { get(args[2])? } else { a };
            vm::math(*mf, a, b, c, *n).ok()
        }
        OpKind::BuildVec(base, parts) => {
            let vals: Option<Vec<Value>> = parts.iter().map(|&p| get(p)).collect();
            let vals = vals?;
            match base {
                Base::Float => {
                    let xs: Option<Vec<f32>> = vals
                        .iter()
                        .map(|v| match v {
                            Value::F32(x) => Some(*x),
                            _ => None,
                        })
                        .collect();
                    Some(Value::v32(&xs?))
                }
                Base::Double => {
                    let xs: Option<Vec<f64>> = vals
                        .iter()
                        .map(|v| match v {
                            Value::F64(x) => Some(*x),
                            _ => None,
                        })
                        .collect();
                    Some(Value::v64(&xs?))
                }
                _ => None,
            }
        }
        OpKind::Select(c, a, b) => {
            if as_b(get(*c)?)? {
                get(*a)
            } else {
                get(*b)
            }
        }
        // Geometry-dependent except the always-clamped dimension 2.
        OpKind::Wi(wf, dim) => match get(*dim)? {
            Value::I(2) => Some(match wf {
                WiFunc::GlobalSize | WiFunc::LocalSize | WiFunc::NumGroups => Value::I(1),
                _ => Value::I(0),
            }),
            _ => None,
        },
        OpKind::LoadGlobal { .. }
        | OpKind::StoreGlobal { .. }
        | OpKind::LoadLocal { .. }
        | OpKind::StoreLocal { .. } => None,
    }
}

// ---- simplify: CFG cleanup ------------------------------------------------

/// Remove unreachable blocks and merge single-predecessor `Br` chains.
pub fn simplify(f: &mut Func, st: &mut CompileStats) {
    let mut alias: HashMap<Val, Val> = HashMap::new();
    loop {
        compact(f);
        let preds = f.preds();
        let mut cand = None;
        for (b, blk) in f.blocks.iter().enumerate() {
            if let Term::Br(e) = &blk.term {
                if e.to != 0 && e.to != b && preds[e.to] == [b] {
                    cand = Some((b, e.to));
                    break;
                }
            }
        }
        let Some((b, c)) = cand else { break };
        let cblk = std::mem::replace(
            &mut f.blocks[c],
            Block {
                params: vec![],
                ops: vec![],
                term: Term::Ret,
                cost: super::Cost::default(),
            },
        );
        let Term::Br(e) = std::mem::replace(&mut f.blocks[b].term, Term::Ret) else {
            unreachable!("candidate checked above");
        };
        for (p, a) in cblk.params.iter().zip(&e.args) {
            alias.insert(*p, resolve(&alias, *a));
        }
        f.blocks[b].ops.extend(cblk.ops);
        f.blocks[b].term = cblk.term;
        f.blocks[b].cost.add(&cblk.cost);
        st.blocks_merged += 1;
        apply_alias(f, &alias);
    }
    apply_alias(f, &alias);
    compact(f);
}

/// Drop unreachable blocks and renumber the rest (entry stays 0).
fn compact(f: &mut Func) {
    let n = f.blocks.len();
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        if std::mem::replace(&mut seen[b], true) {
            continue;
        }
        for e in f.blocks[b].term.edges() {
            stack.push(e.to);
        }
    }
    if seen.iter().all(|&s| s) {
        return;
    }
    let mut remap = vec![usize::MAX; n];
    let mut next = 0usize;
    for (i, &s) in seen.iter().enumerate() {
        if s {
            remap[i] = next;
            next += 1;
        }
    }
    let old = std::mem::take(&mut f.blocks);
    for (i, b) in old.into_iter().enumerate() {
        if seen[i] {
            f.blocks.push(b);
        }
    }
    for b in &mut f.blocks {
        for e in b.term.edges_mut() {
            e.to = remap[e.to];
        }
    }
}

// ---- clean: fold + CSE + DCE to a fixpoint --------------------------------

pub fn clean(f: &mut Func, st: &mut CompileStats) {
    loop {
        let mut changed = false;
        changed |= fold(f, st);
        changed |= cse(f, st);
        changed |= dce(f, st);
        if !changed {
            break;
        }
    }
}

/// Constant folding, identity-conversion removal, and integer
/// algebraic identities.
fn fold(f: &mut Func, st: &mut CompileStats) -> bool {
    let mut changed = false;
    let mut konst = konst_map(f);
    let mut alias: HashMap<Val, Val> = HashMap::new();
    for bi in 0..f.blocks.len() {
        let mut ops = std::mem::take(&mut f.blocks[bi].ops);
        ops.retain_mut(|op| {
            op.kind.map_operands(&mut |v| resolve(&alias, v));
            let Some(d) = op.dst else { return true };
            if matches!(op.kind, OpKind::Const(_)) {
                return true;
            }
            // Identity conversions and Select with a constant
            // condition become pure aliases.
            if let Some(src) = alias_of(&op.kind, &f.classes, &konst) {
                alias.insert(d, resolve(&alias, src));
                st.folded += 1;
                changed = true;
                return false;
            }
            let get = |v: Val| konst[v as usize];
            if let Some(v) = eval_kind(&op.kind, &get) {
                op.kind = OpKind::Const(v);
                konst[d as usize] = Some(v);
                st.folded += 1;
                changed = true;
            }
            true
        });
        f.blocks[bi].ops = ops;
    }
    apply_alias(f, &alias);
    changed
}

/// `Some(source)` when the op is value-identical to one of its
/// operands (or a constant-condition Select), under the fast engines'
/// bool-as-int encoding.
fn alias_of(kind: &OpKind, classes: &[RegClass], konst: &[Option<Value>]) -> Option<Val> {
    let kv = |v: Val| konst[v as usize];
    match kind {
        // Identity conversions: same storage class, same base.
        OpKind::Convert(a, base) => match (classes[*a as usize], base) {
            (RegClass::F32, Base::Float)
            | (RegClass::F64, Base::Double)
            | (RegClass::V32(_), Base::Float)
            | (RegClass::V64(_), Base::Double)
            | (RegClass::Int, Base::Int | Base::Uint) => Some(*a),
            _ => None,
        },
        OpKind::Select(c, a, b) => as_b(kv(*c)?).map(|t| if t { *a } else { *b }),
        // Integer-only algebraic identities; wrapping arithmetic makes
        // these exact. Floats are deliberately excluded.
        OpKind::Bin(op, a, b) if classes[*a as usize] == RegClass::Int => {
            let ci = |v: Val| match kv(v) {
                Some(Value::I(x)) => Some(x),
                _ => None,
            };
            match op {
                BinOp::Add => match (ci(*a), ci(*b)) {
                    (Some(0), _) => Some(*b),
                    (_, Some(0)) => Some(*a),
                    _ => None,
                },
                BinOp::Sub | BinOp::Shl | BinOp::Shr if ci(*b) == Some(0) => Some(*a),
                BinOp::Mul => match (ci(*a), ci(*b)) {
                    (Some(1), _) => Some(*b),
                    (_, Some(1)) => Some(*a),
                    _ => None,
                },
                BinOp::Div if ci(*b) == Some(1) => Some(*a),
                _ => None,
            }
        }
        _ => None,
    }
}

/// A CSE key for a pure op. Constants key on exact bit patterns so
/// distinct NaN payloads never merge.
fn cse_key(kind: &OpKind) -> String {
    match kind {
        OpKind::Const(v) => match v {
            Value::I(x) => format!("ci:{x}"),
            Value::B(x) => format!("cb:{x}"),
            Value::F32(x) => format!("cf:{:08x}", x.to_bits()),
            Value::F64(x) => format!("cd:{:016x}", x.to_bits()),
            Value::V32(xs, w) => {
                let lanes: Vec<String> = xs[..*w as usize]
                    .iter()
                    .map(|x| format!("{:08x}", x.to_bits()))
                    .collect();
                format!("cv32:{}", lanes.join(","))
            }
            Value::V64(xs, w) => {
                let lanes: Vec<String> = xs[..*w as usize]
                    .iter()
                    .map(|x| format!("{:016x}", x.to_bits()))
                    .collect();
                format!("cv64:{}", lanes.join(","))
            }
        },
        other => format!("{other:?}"),
    }
}

/// Block-local common-subexpression elimination. Memory ops are never
/// merged (their bounds/race effects must fire per access); everything
/// else is deterministic per (group, work-item), so merging a repeat
/// with its first occurrence is bit-exact — including trapping ops,
/// which would have trapped at the first occurrence already.
fn cse(f: &mut Func, st: &mut CompileStats) -> bool {
    let mut changed = false;
    let mut alias: HashMap<Val, Val> = HashMap::new();
    for b in &mut f.blocks {
        let mut seen: HashMap<String, Val> = HashMap::new();
        b.ops.retain_mut(|op| {
            op.kind.map_operands(&mut |v| resolve(&alias, v));
            let Some(d) = op.dst else { return true };
            if op.kind.is_mem() {
                return true;
            }
            let key = cse_key(&op.kind);
            match seen.get(&key) {
                Some(&prev) => {
                    alias.insert(d, prev);
                    st.cse += 1;
                    changed = true;
                    false
                }
                None => {
                    seen.insert(key, d);
                    true
                }
            }
        });
    }
    apply_alias(f, &alias);
    changed
}

/// Dead-code elimination over ops and block parameters. Memory ops and
/// possibly-trapping ops are roots (removing them would remove a
/// bounds/race/arithmetic error the reference interpreter raises).
fn dce(f: &mut Func, st: &mut CompileStats) -> bool {
    let konst = konst_map(f);
    let n = f.n_vals();
    let mut used = vec![false; n];
    for b in &f.blocks {
        if let Term::CondBr { cond, .. } = &b.term {
            used[*cond as usize] = true;
        }
        for e in b.term.edges() {
            for &a in &e.args {
                used[a as usize] = true;
            }
        }
    }
    let is_root = |kind: &OpKind| -> bool {
        if kind.is_mem() {
            return true;
        }
        match kind {
            OpKind::Bin(BinOp::Div | BinOp::Rem, _, b) => {
                !matches!(konst[*b as usize], Some(Value::I(x)) if x != 0)
            }
            // A non-constant or out-of-range dimension traps.
            OpKind::Wi(_, dim) => {
                !matches!(konst[*dim as usize], Some(Value::I(d)) if (0..=2).contains(&d))
            }
            _ => false,
        }
    };
    // Fixpoint: mark operands of every live op.
    loop {
        let mut grew = false;
        for b in &f.blocks {
            for op in &b.ops {
                let live = is_root(&op.kind) || op.dst.is_some_and(|d| used[d as usize]);
                if live {
                    for v in op.kind.operands() {
                        if !used[v as usize] {
                            used[v as usize] = true;
                            grew = true;
                        }
                    }
                }
            }
        }
        if !grew {
            break;
        }
    }
    let mut changed = false;
    for b in &mut f.blocks {
        let before = b.ops.len();
        b.ops
            .retain(|op| is_root(&op.kind) || op.dst.is_none_or(|d| used[d as usize]));
        let removed = before - b.ops.len();
        st.dce += removed as u64;
        changed |= removed > 0;
    }
    // Prune dead block parameters (and the matching edge arguments).
    for bi in 0..f.blocks.len() {
        let keep: Vec<bool> = f.blocks[bi]
            .params
            .iter()
            .map(|&p| used[p as usize])
            .collect();
        if keep.iter().all(|&k| k) {
            continue;
        }
        changed = true;
        let mut it = keep.iter();
        f.blocks[bi].params.retain(|_| *it.next().expect("mask"));
        if bi == 0 {
            let mut it = keep.iter();
            f.entry_regs.retain(|_| *it.next().expect("mask"));
        }
        for b in 0..f.blocks.len() {
            for e in f.blocks[b].term.edges_mut() {
                if e.to == bi {
                    let mut it = keep.iter();
                    e.args.retain(|_| *it.next().expect("mask"));
                }
            }
        }
    }
    changed
}

// ---- unroll ---------------------------------------------------------------

/// Budget caps: give up past this many iterations or resulting ops.
const MAX_TRIPS: usize = 256;
const MAX_UNROLL_OPS: usize = 50_000;

/// Fully unroll two-block loops (`header ⇄ body`) whose trip count
/// folds to a constant: the shape the generator's `pwi` work-item
/// loops take after `simplify`. The header's condition chain is
/// re-evaluated symbolically each iteration with reference arithmetic;
/// anything non-constant (e.g. a `K`-bounded outer loop) bails out.
pub fn unroll(f: &mut Func, st: &mut CompileStats) {
    while unroll_one(f, st) == Some(true) {
        simplify(f, st);
        let mut ignore = CompileStats::default();
        clean(f, &mut ignore);
        st.folded += ignore.folded;
        st.cse += ignore.cse;
        st.dce += ignore.dce;
    }
}

/// Try to unroll one loop. `Some(true)` when a loop was unrolled,
/// `Some(false)` when none qualified.
#[allow(clippy::too_many_lines)]
fn unroll_one(f: &mut Func, st: &mut CompileStats) -> Option<bool> {
    let preds = f.preds();
    let konst = konst_map(f);
    for h in 1..f.blocks.len() {
        let Term::CondBr { cond, t, f: fe } = f.blocks[h].term.clone() else {
            continue;
        };
        if preds[h].len() != 2 {
            continue;
        }
        let is_latch = |x: usize| -> bool {
            x != 0
                && x != h
                && preds[x] == [h]
                && matches!(&f.blocks[x].term, Term::Br(e) if e.to == h)
        };
        let (body_e, exit_e, body_on_true) = if is_latch(t.to) {
            (t.clone(), fe.clone(), true)
        } else if is_latch(fe.to) {
            (fe.clone(), t.clone(), false)
        } else {
            continue;
        };
        let b = body_e.to;
        if exit_e.to == h || exit_e.to == b {
            continue;
        }
        let &p = preds[h].iter().find(|&&x| x != b)?;
        if p == h {
            continue;
        }
        let p_edges_to_h = f.blocks[p]
            .term
            .edges()
            .iter()
            .filter(|e| e.to == h)
            .count();
        if p_edges_to_h != 1 {
            continue;
        }
        let init_args = f.blocks[p]
            .term
            .edges()
            .into_iter()
            .find(|e| e.to == h)
            .expect("checked")
            .args
            .clone();
        let latch_args = match &f.blocks[b].term {
            Term::Br(e) => e.args.clone(),
            _ => continue,
        };

        // Symbolic trip count.
        let mut param_vals: HashMap<Val, Value> = HashMap::new();
        for (param, arg) in f.blocks[h].params.iter().zip(&init_args) {
            if let Some(v) = konst[*arg as usize] {
                param_vals.insert(*param, v);
            }
        }
        let mut trips = 0usize;
        let trips = loop {
            let mut cur = param_vals.clone();
            let get_in =
                |cur: &HashMap<Val, Value>, v: Val| cur.get(&v).copied().or(konst[v as usize]);
            for op in &f.blocks[h].ops {
                if let Some(d) = op.dst {
                    let get = |v: Val| get_in(&cur, v);
                    if let Some(val) = eval_kind(&op.kind, &get) {
                        cur.insert(d, val);
                    }
                }
            }
            let Some(cv) = get_in(&cur, cond).and_then(as_b) else {
                break None;
            };
            if cv != body_on_true {
                break Some(trips);
            }
            // Evaluate the body far enough to compute the next params.
            for (param, arg) in f.blocks[b].params.iter().zip(&body_e.args) {
                match get_in(&cur, *arg) {
                    Some(v) => {
                        cur.insert(*param, v);
                    }
                    None => {
                        cur.remove(param);
                    }
                }
            }
            for op in &f.blocks[b].ops {
                if let Some(d) = op.dst {
                    let get = |v: Val| get_in(&cur, v);
                    if let Some(val) = eval_kind(&op.kind, &get) {
                        cur.insert(d, val);
                    }
                }
            }
            param_vals.clear();
            for (param, arg) in f.blocks[h].params.iter().zip(&latch_args) {
                if let Some(v) = get_in(&cur, *arg) {
                    param_vals.insert(*param, v);
                }
            }
            trips += 1;
            if trips > MAX_TRIPS {
                break None;
            }
        };
        let Some(trips) = trips else { continue };
        let body_cost = trips * (f.blocks[h].ops.len() + f.blocks[b].ops.len());
        if body_cost > MAX_UNROLL_OPS {
            continue;
        }

        // Materialise: header copy → body copy → … → final header copy
        // branching to the exit. Each copy substitutes the incoming
        // block arguments directly, so copies carry no parameters.
        let mut cur_args = init_args;
        let mut first_copy = None;
        let mut prev: Option<usize> = None;
        for _ in 0..trips {
            let (hc, mh) = clone_block(f, h, &cur_args);
            if first_copy.is_none() {
                first_copy = Some(hc);
            }
            if let Some(pb) = prev {
                f.blocks[pb].term = Term::Br(Edge {
                    to: hc,
                    args: vec![],
                });
            }
            let bargs: Vec<Val> = body_e
                .args
                .iter()
                .map(|v| *mh.get(v).unwrap_or(v))
                .collect();
            let (bc, mb) = clone_block(f, b, &bargs);
            f.blocks[hc].term = Term::Br(Edge {
                to: bc,
                args: vec![],
            });
            cur_args = latch_args.iter().map(|v| *mb.get(v).unwrap_or(v)).collect();
            prev = Some(bc);
        }
        let (hf, mhf) = clone_block(f, h, &cur_args);
        if let Some(pb) = prev {
            f.blocks[pb].term = Term::Br(Edge {
                to: hf,
                args: vec![],
            });
        }
        f.blocks[hf].term = Term::Br(Edge {
            to: exit_e.to,
            args: exit_e
                .args
                .iter()
                .map(|v| *mhf.get(v).unwrap_or(v))
                .collect(),
        });
        let entry = first_copy.unwrap_or(hf);
        for e in f.blocks[p].term.edges_mut() {
            if e.to == h {
                e.to = entry;
                e.args.clear();
            }
        }
        st.unrolled_loops += 1;
        st.unrolled_iters += trips as u64;
        return Some(true);
    }
    Some(false)
}

/// Clone a block with its parameters substituted by `incoming` and all
/// op destinations renamed fresh. Returns the new block index and the
/// old→new value map (params map to the incoming args).
fn clone_block(f: &mut Func, src: usize, incoming: &[Val]) -> (usize, HashMap<Val, Val>) {
    let mut m: HashMap<Val, Val> = HashMap::new();
    let params = f.blocks[src].params.clone();
    for (param, &arg) in params.iter().zip(incoming) {
        m.insert(*param, arg);
    }
    let src_ops = f.blocks[src].ops.clone();
    let mut ops = Vec::with_capacity(src_ops.len());
    for op in src_ops {
        let mut kind = op.kind;
        kind.map_operands(&mut |v| *m.get(&v).unwrap_or(&v));
        let dst = op.dst.map(|d| {
            let nd = f.new_val(f.classes[d as usize]);
            m.insert(d, nd);
            nd
        });
        ops.push(Op { dst, kind });
    }
    let cost = f.blocks[src].cost;
    f.blocks.push(Block {
        params: vec![],
        ops,
        term: Term::Ret,
        cost,
    });
    (f.blocks.len() - 1, m)
}

// ---- licm -----------------------------------------------------------------

/// Loop-invariant code motion. Runs after `unroll`, so the only loops
/// left are runtime-bounded (the generator's `K` tile loop); their
/// bodies recompute work-item addressing chains that depend only on
/// ids and compile-time tile shapes. Pure, non-trapping invariant ops
/// move to the loop's unique preheader. Possibly-trapping ops
/// (`Div`/`Rem` without a known non-zero divisor, `Wi` with a
/// non-constant dimension) stay put: hoisting one would raise an error
/// the reference interpreter only raises if the loop actually runs.
/// Costs are frozen per block, so moving ops changes neither stats nor
/// step-limit outcomes.
pub fn licm(f: &mut Func, st: &mut CompileStats) {
    let konst = konst_map(f);
    let nb = f.blocks.len();
    let preds = f.preds();
    // Iterative dominator sets over the (small) CFG.
    let mut dom = vec![vec![true; nb]; nb];
    dom[0] = vec![false; nb];
    dom[0][0] = true;
    let mut grew = true;
    while grew {
        grew = false;
        for b in 1..nb {
            let mut nd = vec![true; nb];
            for &p in &preds[b] {
                for (x, y) in nd.iter_mut().zip(&dom[p]) {
                    *x = *x && *y;
                }
            }
            nd[b] = true;
            if nd != dom[b] {
                dom[b] = nd;
                grew = true;
            }
        }
    }
    // Natural loops, merged per header: every back edge `b → h` with
    // `h` dominating `b` contributes `{h} ∪ reverse-reachable(b)`.
    let mut loops: HashMap<usize, Vec<bool>> = HashMap::new();
    for (b, blk) in f.blocks.iter().enumerate() {
        for e in blk.term.edges() {
            let h = e.to;
            if !dom[b][h] {
                continue;
            }
            let in_loop = loops.entry(h).or_insert_with(|| {
                let mut v = vec![false; nb];
                v[h] = true;
                v
            });
            let mut stack = vec![b];
            while let Some(x) = stack.pop() {
                if !in_loop[x] {
                    in_loop[x] = true;
                    stack.extend(preds[x].iter().copied());
                }
            }
        }
    }
    if loops.is_empty() {
        return;
    }
    // val → defining block (params and op dsts).
    let mut def = vec![usize::MAX; f.n_vals()];
    for (bi, b) in f.blocks.iter().enumerate() {
        for &p in &b.params {
            def[p as usize] = bi;
        }
        for op in &b.ops {
            if let Some(d) = op.dst {
                def[d as usize] = bi;
            }
        }
    }
    let hoistable = |kind: &OpKind| -> bool {
        if kind.is_mem() {
            return false;
        }
        match kind {
            OpKind::Bin(BinOp::Div | BinOp::Rem, _, b) => {
                matches!(konst[*b as usize], Some(Value::I(x)) if x != 0)
            }
            OpKind::Wi(_, dim) => {
                matches!(konst[*dim as usize], Some(Value::I(d)) if (0..=2).contains(&d))
            }
            _ => true,
        }
    };
    let mut headers: Vec<usize> = loops.keys().copied().collect();
    headers.sort_unstable();
    // Fixpoint: an op hoisted into an inner preheader (itself inside an
    // outer loop) is re-examined by the outer loop's next round, and a
    // hoisted def unlocks its users across blocks.
    let mut moved = true;
    while moved {
        moved = false;
        for &h in &headers {
            let in_loop = &loops[&h];
            // The preheader: the unique predecessor outside the loop,
            // itself dominating the header, so a def placed there
            // dominates every use inside the loop.
            let outside: Vec<usize> = preds[h].iter().copied().filter(|&p| !in_loop[p]).collect();
            let [pre] = outside[..] else { continue };
            if !dom[h][pre] {
                continue;
            }
            let mut lifted: Vec<Op> = Vec::new();
            for bi in 0..nb {
                if !in_loop[bi] {
                    continue;
                }
                let ops = std::mem::take(&mut f.blocks[bi].ops);
                let mut kept = Vec::with_capacity(ops.len());
                for op in ops {
                    let invariant = hoistable(&op.kind)
                        && op.kind.operands().iter().all(|&v| {
                            let dv = def[v as usize];
                            dv >= nb || !in_loop[dv]
                        });
                    if invariant {
                        if let Some(d) = op.dst {
                            def[d as usize] = pre;
                        }
                        lifted.push(op);
                        moved = true;
                    } else {
                        kept.push(op);
                    }
                }
                f.blocks[bi].ops = kept;
            }
            st.hoisted += lifted.len() as u64;
            f.blocks[pre].ops.extend(lifted);
        }
    }
}

// ---- fuse -----------------------------------------------------------------

/// Fuse `mad(broadcast(extract(v, lane)), b, c)` — either multiplicand,
/// since fma's multiplication commutes — into [`OpKind::MadLane`],
/// which the trace executes as one op reading the lane in place. The
/// generator's inner product is `MWI × NWI` such triples per unrolled
/// iteration; fusing removes the scalar and the broadcast vector
/// temporary per mad. The leftover `Extract`/`Broadcast` ops die in
/// the following `clean` unless otherwise used.
pub fn fuse(f: &mut Func, st: &mut CompileStats) {
    let mut def: HashMap<Val, OpKind> = HashMap::new();
    for b in &f.blocks {
        for op in &b.ops {
            if let (Some(d), OpKind::Broadcast(..) | OpKind::Extract(..)) = (op.dst, &op.kind) {
                def.insert(d, op.kind.clone());
            }
        }
    }
    let lane_of = |v: Val| -> Option<(Val, u8)> {
        if let Some(OpKind::Broadcast(s, _)) = def.get(&v) {
            if let Some(OpKind::Extract(vec, lane)) = def.get(s) {
                return Some((*vec, *lane));
            }
        }
        None
    };
    for b in &mut f.blocks {
        for op in &mut b.ops {
            let (a0, b0, c0, d) = match (&op.kind, op.dst) {
                (&OpKind::Mad(a0, b0, c0), Some(d)) => (a0, b0, c0, d),
                _ => continue,
            };
            let Some(((vec, lane), mul)) = lane_of(a0)
                .map(|x| (x, b0))
                .or_else(|| lane_of(b0).map(|x| (x, a0)))
            else {
                continue;
            };
            // Same float family only — the trace reads the lane
            // straight out of the source vector's slot.
            let ok = matches!(
                (f.classes[d as usize], f.classes[vec as usize]),
                (RegClass::V32(_), RegClass::V32(ws)) | (RegClass::V64(_), RegClass::V64(ws))
                    if lane < ws
            );
            if !ok {
                continue;
            }
            op.kind = OpKind::MadLane(vec, lane, mul, c0);
            st.fused += 1;
        }
    }
}
