//! Recursive-descent parser for the OpenCL C subset.

use crate::ast::*;
use crate::error::{CompileError, Pos};
use crate::lexer::{tokenize, Spanned, Tok};

/// Parse a full translation unit from source.
pub fn parse(src: &str) -> Result<Unit, CompileError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks,
        i: 0,
        next_id: 0,
    };
    p.unit()
}

struct Parser {
    toks: Vec<Spanned>,
    i: usize,
    next_id: u32,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.i + 1).min(self.toks.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), CompileError> {
        if self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{tok}`, found `{}`", self.peek())))
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(w) if w == word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.pos(), msg)
    }

    fn fresh(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn mk(&mut self, pos: Pos, kind: ExprKind) -> Expr {
        Expr {
            id: self.fresh(),
            pos,
            kind,
        }
    }

    // ---- types ---------------------------------------------------------

    /// `true` if the word is a value type name.
    fn is_type_word(word: &str) -> bool {
        parse_type_name(word).is_some()
    }

    // ---- top level ------------------------------------------------------

    fn unit(&mut self) -> Result<Unit, CompileError> {
        let mut unit = Unit::default();
        while *self.peek() != Tok::Eof {
            unit.kernels.push(self.kernel()?);
        }
        if unit.kernels.is_empty() {
            return Err(self.err("source contains no __kernel functions"));
        }
        Ok(unit)
    }

    fn kernel(&mut self) -> Result<KernelDef, CompileError> {
        let pos = self.pos();
        if !(self.eat_ident("__kernel") || self.eat_ident("kernel")) {
            return Err(self.err("expected `__kernel`"));
        }
        let reqd_wg_size = self.attribute()?;
        if !self.eat_ident("void") {
            return Err(self.err("kernels must return void"));
        }
        let name = self.expect_ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                params.push(self.param()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let body = self.block()?;
        Ok(KernelDef {
            name,
            params,
            body,
            pos,
            reqd_wg_size,
        })
    }

    fn attribute(&mut self) -> Result<Option<[u32; 3]>, CompileError> {
        if !self.eat_ident("__attribute__") {
            return Ok(None);
        }
        self.expect(&Tok::LParen)?;
        self.expect(&Tok::LParen)?;
        if !self.eat_ident("reqd_work_group_size") {
            return Err(self.err("only reqd_work_group_size attribute is supported"));
        }
        self.expect(&Tok::LParen)?;
        let mut dims = [1u32; 3];
        for (d, slot) in dims.iter_mut().enumerate() {
            if d > 0 {
                self.expect(&Tok::Comma)?;
            }
            match self.bump() {
                Tok::IntLit(v) if v > 0 => *slot = v as u32,
                _ => return Err(self.err("attribute dimensions must be positive integers")),
            }
        }
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::RParen)?;
        Ok(Some(dims))
    }

    fn param(&mut self) -> Result<Param, CompileError> {
        let mut space = None;
        let mut is_const = false;
        loop {
            if self.eat_ident("__global") || self.eat_ident("global") {
                space = Some(AddrSpace::Global);
            } else if self.eat_ident("__local") || self.eat_ident("local") {
                space = Some(AddrSpace::Local);
            } else if self.eat_ident("const") {
                is_const = true;
            } else {
                break;
            }
        }
        let tyword = self.expect_ident()?;
        let base_ty =
            parse_type_name(&tyword).ok_or_else(|| self.err(format!("unknown type `{tyword}`")))?;
        // `const` may also follow the type.
        if self.eat_ident("const") {
            is_const = true;
        }
        let is_ptr = if *self.peek() == Tok::Star {
            self.bump();
            let _ = self.eat_ident("restrict") || self.eat_ident("__restrict");
            true
        } else {
            false
        };
        let name = self.expect_ident()?;
        let ty = if is_ptr {
            let base = base_ty
                .base()
                .ok_or_else(|| self.err("pointer to void is not supported"))?;
            if base_ty.width() != 1 {
                return Err(self.err("pointers to vector types are not supported; use vloadN"));
            }
            Type::Ptr(space.unwrap_or(AddrSpace::Global), base, is_const)
        } else {
            if space.is_some() {
                return Err(self.err("address space qualifiers require a pointer parameter"));
            }
            base_ty
        };
        Ok(Param { name, ty })
    }

    // ---- statements ------------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return Err(self.err("unexpected end of file inside block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(stmts)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if *self.peek() == Tok::LBrace {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        match self.peek() {
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::Ident(w) if w == "for" => self.for_stmt(),
            Tok::Ident(w) if w == "while" => self.while_stmt(),
            Tok::Ident(w) if w == "if" => self.if_stmt(),
            Tok::Ident(w) if w == "return" => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Return(pos))
            }
            Tok::Ident(w)
                if w == "__local"
                    || w == "local"
                    || w == "__private"
                    || w == "private"
                    || w == "const"
                    || Self::is_type_word(w) =>
            {
                let s = self.decl()?;
                self.expect(&Tok::Semi)?;
                Ok(s)
            }
            _ => {
                let s = self.assign_or_expr()?;
                self.expect(&Tok::Semi)?;
                Ok(s)
            }
        }
    }

    /// Declaration without the trailing semicolon.
    fn decl(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        let mut addr_space = None;
        loop {
            if self.eat_ident("__local") || self.eat_ident("local") {
                addr_space = Some(AddrSpace::Local);
            } else if self.eat_ident("__private")
                || self.eat_ident("private")
                || self.eat_ident("const")
            {
                // private is the default; const is advisory here.
            } else {
                break;
            }
        }
        let tyword = self.expect_ident()?;
        let ty =
            parse_type_name(&tyword).ok_or_else(|| self.err(format!("unknown type `{tyword}`")))?;
        let name = self.expect_ident()?;
        let array_len = if *self.peek() == Tok::LBracket {
            self.bump();
            let e = self.expr()?;
            self.expect(&Tok::RBracket)?;
            Some(e)
        } else {
            None
        };
        let init = if *self.peek() == Tok::Assign {
            self.bump();
            Some(self.expr()?)
        } else {
            None
        };
        if array_len.is_some() && init.is_some() {
            return Err(self.err("array declarations cannot have initialisers"));
        }
        Ok(Stmt::Decl {
            pos,
            ty,
            name,
            array_len,
            init,
            addr_space,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        self.bump(); // for
        self.expect(&Tok::LParen)?;
        let init = if matches!(self.peek(), Tok::Ident(w) if Self::is_type_word(w)) {
            self.decl()?
        } else {
            self.assign_or_expr()?
        };
        self.expect(&Tok::Semi)?;
        let cond = self.expr()?;
        self.expect(&Tok::Semi)?;
        let step = self.assign_or_expr()?;
        self.expect(&Tok::RParen)?;
        let body = self.block_or_single()?;
        Ok(Stmt::For {
            pos,
            init: Box::new(init),
            cond,
            step: Box::new(step),
            body,
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        self.bump(); // while
        self.expect(&Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen)?;
        let body = self.block_or_single()?;
        Ok(Stmt::While { pos, cond, body })
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        self.bump(); // if
        self.expect(&Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen)?;
        let then_body = self.block_or_single()?;
        let else_body = if self.eat_ident("else") {
            self.block_or_single()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            pos,
            cond,
            then_body,
            else_body,
        })
    }

    /// Assignment (including compound and `++`/`--`) or bare expression,
    /// without the trailing semicolon.
    fn assign_or_expr(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        let lhs = self.expr()?;
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => Some(BinOp::Add),
            Tok::MinusAssign => Some(BinOp::Sub),
            Tok::StarAssign => Some(BinOp::Mul),
            Tok::SlashAssign => Some(BinOp::Div),
            Tok::PlusPlus => {
                self.bump();
                let one = self.mk(pos, ExprKind::IntLit(1));
                let sum = self.mk(
                    pos,
                    ExprKind::Bin(BinOp::Add, Box::new(lhs.clone()), Box::new(one)),
                );
                return Ok(Stmt::Assign { pos, lhs, rhs: sum });
            }
            Tok::MinusMinus => {
                self.bump();
                let one = self.mk(pos, ExprKind::IntLit(1));
                let dif = self.mk(
                    pos,
                    ExprKind::Bin(BinOp::Sub, Box::new(lhs.clone()), Box::new(one)),
                );
                return Ok(Stmt::Assign { pos, lhs, rhs: dif });
            }
            _ => return Ok(Stmt::Expr(lhs)),
        };
        self.bump();
        let rhs = self.expr()?;
        let rhs = match op {
            // Desugar `a op= b` to `a = a op b`; lvalues in this subset
            // have no side effects, so re-evaluation is safe.
            Some(op) => self.mk(pos, ExprKind::Bin(op, Box::new(lhs.clone()), Box::new(rhs))),
            None => rhs,
        };
        Ok(Stmt::Assign { pos, lhs, rhs })
    }

    // ---- expressions (precedence climbing) ------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, CompileError> {
        let cond = self.binary(0)?;
        if *self.peek() == Tok::Question {
            let pos = self.pos();
            self.bump();
            let a = self.expr()?;
            self.expect(&Tok::Colon)?;
            let b = self.ternary()?;
            Ok(self.mk(
                pos,
                ExprKind::Ternary(Box::new(cond), Box::new(a), Box::new(b)),
            ))
        } else {
            Ok(cond)
        }
    }

    fn bin_op_of(tok: &Tok) -> Option<(BinOp, u8)> {
        Some(match tok {
            Tok::OrOr => (BinOp::Or, 1),
            Tok::AndAnd => (BinOp::And, 2),
            Tok::Pipe => (BinOp::BitOr, 3),
            Tok::Caret => (BinOp::BitXor, 4),
            Tok::Amp => (BinOp::BitAnd, 5),
            Tok::Eq => (BinOp::Eq, 6),
            Tok::Ne => (BinOp::Ne, 6),
            Tok::Lt => (BinOp::Lt, 7),
            Tok::Gt => (BinOp::Gt, 7),
            Tok::Le => (BinOp::Le, 7),
            Tok::Ge => (BinOp::Ge, 7),
            Tok::Shl => (BinOp::Shl, 8),
            Tok::Shr => (BinOp::Shr, 8),
            Tok::Plus => (BinOp::Add, 9),
            Tok::Minus => (BinOp::Sub, 9),
            Tok::Star => (BinOp::Mul, 10),
            Tok::Slash => (BinOp::Div, 10),
            Tok::Percent => (BinOp::Rem, 10),
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = Self::bin_op_of(self.peek()) {
            if prec < min_prec {
                break;
            }
            let pos = self.pos();
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = self.mk(pos, ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(self.mk(pos, ExprKind::Un(UnOp::Neg, Box::new(e))))
            }
            Tok::Not => {
                self.bump();
                let e = self.unary()?;
                Ok(self.mk(pos, ExprKind::Un(UnOp::Not, Box::new(e))))
            }
            Tok::Plus => {
                self.bump();
                self.unary()
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Tok::LBracket => {
                    let pos = self.pos();
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    e = self.mk(pos, ExprKind::Index(Box::new(e), Box::new(idx)));
                }
                Tok::Dot => {
                    let pos = self.pos();
                    self.bump();
                    let comp = self.expect_ident()?;
                    let lane = parse_component(&comp)
                        .ok_or_else(|| self.err(format!("unknown vector component `.{comp}`")))?;
                    e = self.mk(pos, ExprKind::Swizzle(Box::new(e), lane));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        match self.bump() {
            Tok::IntLit(v) => Ok(self.mk(pos, ExprKind::IntLit(v))),
            Tok::FloatLit(v, f32s) => Ok(self.mk(pos, ExprKind::FloatLit(v, f32s))),
            Tok::Ident(name) => {
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(self.mk(pos, ExprKind::Call(name, args)))
                } else {
                    Ok(self.mk(pos, ExprKind::Var(name)))
                }
            }
            Tok::LParen => {
                // Either a parenthesised expression or a cast/constructor:
                // `(double2)(a, b)` / `(int)x`.
                if let Tok::Ident(word) = self.peek() {
                    if let Some(ty) = parse_type_name(word) {
                        if *self.peek2() == Tok::RParen {
                            self.bump(); // type word
                            self.bump(); // )
                                         // Cast target: (ty) unary  OR  (ty)(args...)
                            if *self.peek() == Tok::LParen {
                                self.bump();
                                let mut args = Vec::new();
                                if *self.peek() != Tok::RParen {
                                    loop {
                                        args.push(self.expr()?);
                                        if *self.peek() == Tok::Comma {
                                            self.bump();
                                        } else {
                                            break;
                                        }
                                    }
                                }
                                self.expect(&Tok::RParen)?;
                                return Ok(self.mk(pos, ExprKind::Cast(ty, args)));
                            }
                            let e = self.unary()?;
                            return Ok(self.mk(pos, ExprKind::Cast(ty, vec![e])));
                        }
                    }
                }
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(CompileError::new(
                pos,
                format!("unexpected token `{other}` in expression"),
            )),
        }
    }
}

/// Parse a value type name like `double`, `float4`, `uint`.
fn parse_type_name(word: &str) -> Option<Type> {
    let (base, rest) = if let Some(r) = word.strip_prefix("double") {
        (Base::Double, r)
    } else if let Some(r) = word.strip_prefix("float") {
        (Base::Float, r)
    } else if let Some(r) = word.strip_prefix("uint") {
        (Base::Uint, r)
    } else if let Some(r) = word.strip_prefix("int") {
        (Base::Int, r)
    } else if word == "bool" {
        (Base::Bool, "")
    } else if word == "void" {
        return Some(Type::Void);
    } else {
        return None;
    };
    match rest {
        "" => Some(Type::Scalar(base)),
        "2" => Some(Type::Vector(base, 2)),
        "4" => Some(Type::Vector(base, 4)),
        "8" => Some(Type::Vector(base, 8)),
        "16" => Some(Type::Vector(base, 16)),
        _ => None,
    }
}

/// Map a component name to a lane index.
fn parse_component(comp: &str) -> Option<u8> {
    match comp {
        "x" => Some(0),
        "y" => Some(1),
        "z" => Some(2),
        "w" => Some(3),
        _ => {
            let digits = comp.strip_prefix('s')?;
            if digits.len() == 1 {
                let c = digits.as_bytes()[0];
                match c {
                    b'0'..=b'9' => Some(c - b'0'),
                    b'a'..=b'f' => Some(c - b'a' + 10),
                    _ => None,
                }
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
        __kernel void copy(__global const float* src, __global float* dst, int n) {
            int i = get_global_id(0);
            if (i < n) {
                dst[i] = src[i];
            }
        }
    "#;

    #[test]
    fn parses_minimal_kernel() {
        let unit = parse(MINI).unwrap();
        assert_eq!(unit.kernels.len(), 1);
        let k = &unit.kernels[0];
        assert_eq!(k.name, "copy");
        assert_eq!(k.params.len(), 3);
        assert_eq!(
            k.params[0].ty,
            Type::Ptr(AddrSpace::Global, Base::Float, true)
        );
        assert_eq!(k.params[2].ty, Type::Scalar(Base::Int));
        assert_eq!(k.body.len(), 2);
    }

    #[test]
    fn parses_for_loop_and_compound_assign() {
        let src = r#"
            __kernel void acc(__global double* x, int n) {
                double s = 0.0;
                for (int i = 0; i < n; i += 1) {
                    s += x[i];
                }
                x[0] = s;
            }
        "#;
        let unit = parse(src).unwrap();
        let body = &unit.kernels[0].body;
        assert!(matches!(body[1], Stmt::For { .. }));
    }

    #[test]
    fn parses_vector_types_and_constructor() {
        let src = r#"
            __kernel void v(__global float* x) {
                float4 a = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
                float b = a.s2 + a.w;
                x[0] = b;
            }
        "#;
        let unit = parse(src).unwrap();
        match &unit.kernels[0].body[0] {
            Stmt::Decl {
                ty, init: Some(e), ..
            } => {
                assert_eq!(*ty, Type::Vector(Base::Float, 4));
                assert!(
                    matches!(e.kind, ExprKind::Cast(Type::Vector(Base::Float, 4), ref a) if a.len() == 4)
                );
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn parses_local_array_decl() {
        let src = r#"
            __kernel void k(__global double* x) {
                __local double Alm[96*16];
                Alm[0] = x[0];
                barrier(1);
                x[1] = Alm[0];
            }
        "#;
        let unit = parse(src).unwrap();
        match &unit.kernels[0].body[0] {
            Stmt::Decl {
                addr_space: Some(AddrSpace::Local),
                array_len: Some(_),
                ..
            } => {}
            other => panic!("expected local array decl, got {other:?}"),
        }
    }

    #[test]
    fn parses_reqd_work_group_size() {
        let src = r#"
            __kernel __attribute__((reqd_work_group_size(16, 16, 1)))
            void k(__global float* x) { x[0] = 0.0f; }
        "#;
        let unit = parse(src).unwrap();
        assert_eq!(unit.kernels[0].reqd_wg_size, Some([16, 16, 1]));
    }

    #[test]
    fn parses_ternary_and_casts() {
        let src = r#"
            __kernel void k(__global int* x, int n) {
                int a = n > 0 ? n : -n;
                double d = (double)a;
                x[0] = (int)d;
            }
        "#;
        assert!(parse(src).is_ok());
    }

    #[test]
    fn parses_increment_in_for() {
        let src = r#"
            __kernel void k(__global int* x, int n) {
                for (int i = 0; i < n; i++) { x[i] = i; }
            }
        "#;
        assert!(parse(src).is_ok());
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let src = "__kernel void k(__global int* x){ x[0] = 1 + 2 * 3; }";
        let unit = parse(src).unwrap();
        match &unit.kernels[0].body[0] {
            Stmt::Assign { rhs, .. } => match &rhs.kind {
                ExprKind::Bin(BinOp::Add, _, r) => {
                    assert!(matches!(r.kind, ExprKind::Bin(BinOp::Mul, _, _)));
                }
                other => panic!("bad tree {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_semicolon() {
        let src = "__kernel void k(__global int* x){ x[0] = 1 }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_empty_unit() {
        assert!(parse("").is_err());
    }

    #[test]
    fn rejects_unknown_type() {
        let src = "__kernel void k(__global quux* x){ }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn multiple_kernels_in_one_unit() {
        let src = r#"
            __kernel void a(__global int* x){ x[0] = 1; }
            __kernel void b(__global int* x){ x[0] = 2; }
        "#;
        let unit = parse(src).unwrap();
        assert_eq!(unit.kernels.len(), 2);
    }

    #[test]
    fn component_names_map_to_lanes() {
        assert_eq!(parse_component("x"), Some(0));
        assert_eq!(parse_component("w"), Some(3));
        assert_eq!(parse_component("s7"), Some(7));
        assert_eq!(parse_component("sf"), Some(15));
        assert_eq!(parse_component("q"), None);
    }
}
