//! The fast execution engine: typed register banks, fused
//! superinstructions, and parallel work-group execution.
//!
//! The reference interpreter in [`crate::vm`] keeps every register as a
//! [`Value`] enum in a per-work-item `Vec`, so the hot loop pays an enum
//! match (and often a heap clone) per operand. This module compiles a
//! [`CompiledKernel`] one step further at `Program::compile` time:
//!
//! * **register classes** — [`crate::lower::assign_classes`] proves a
//!   single storage class per register; registers then live in per-group
//!   SoA banks (`i64`/`f32`/`f64` scalars, `f32`/`f64` vector lanes),
//!   laid out work-item-major, and the inner loop never inspects a
//!   [`Value`];
//! * **superinstruction fusion** — a peephole pass over the bytecode
//!   fuses the sequences the GEMM generator emits most (constant+binop,
//!   compare+branch, mul+add, load+convert) into single dispatches that
//!   still write every intermediate register and count every constituent
//!   instruction, so buffers *and* [`DynStats`] stay bit-for-bit equal to
//!   the reference interpreter;
//! * **parallel work-groups** — `launch` partitions the NDRange across
//!   scoped threads via [`clgemm_shim::par::par_range_map`]; each thread
//!   owns its locals/race tables and a reusable bank arena, stats merge
//!   in group order, and an inter-group [`GlobalRaceTables`] detector
//!   validates that distinct groups never touch the same global cell
//!   with a write.
//!
//! When `assign_classes` cannot type a kernel (or the specialiser meets
//! an operand combination the reference interpreter would reject at
//! runtime), [`specialize`] returns `None` and launches fall back to the
//! reference interpreter, keeping behaviour identical on both paths.

use crate::ast::{Base, BinOp, UnOp};
use crate::error::RuntimeError;
use crate::lower::{assign_classes, CompiledKernel, Instr, MathFunc, Reg, RegClass, WiFunc};
use crate::vm::{
    global_race_err, local_race_err, BufData, DynStats, ExecOptions, Geometry, GlobalRaceTables,
    LocalBuf, RaceTable, Value, WiStop,
};

const NONE: u32 = u32::MAX;

/// One typed, slot-resolved operation of the fast plan. Scalar operands
/// are indices into the per-work-item class bank; vector operands are
/// base lane indices into the shared lane arena (width carried in `w`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum FOp {
    IConst {
        d: u32,
        v: i64,
    },
    F32Const {
        d: u32,
        v: f32,
    },
    F64Const {
        d: u32,
        v: f64,
    },
    V32Const {
        d: u32,
        w: u8,
        v: Box<[f32; 16]>,
    },
    V64Const {
        d: u32,
        w: u8,
        v: Box<[f64; 16]>,
    },
    IMov {
        d: u32,
        s: u32,
    },
    F32Mov {
        d: u32,
        s: u32,
    },
    F64Mov {
        d: u32,
        s: u32,
    },
    V32Mov {
        d: u32,
        s: u32,
        w: u8,
    },
    V64Mov {
        d: u32,
        s: u32,
        w: u8,
    },
    IBin {
        op: BinOp,
        d: u32,
        a: u32,
        b: u32,
    },
    ICmp {
        op: BinOp,
        d: u32,
        a: u32,
        b: u32,
    },
    F32Cmp {
        op: BinOp,
        d: u32,
        a: u32,
        b: u32,
    },
    F64Cmp {
        op: BinOp,
        d: u32,
        a: u32,
        b: u32,
    },
    ILogic {
        and: bool,
        d: u32,
        a: u32,
        b: u32,
    },
    F32Bin {
        op: BinOp,
        d: u32,
        a: u32,
        b: u32,
    },
    F64Bin {
        op: BinOp,
        d: u32,
        a: u32,
        b: u32,
    },
    V32Bin {
        op: BinOp,
        d: u32,
        a: u32,
        b: u32,
        w: u8,
    },
    V64Bin {
        op: BinOp,
        d: u32,
        a: u32,
        b: u32,
        w: u8,
    },
    INeg {
        d: u32,
        a: u32,
    },
    F32Neg {
        d: u32,
        a: u32,
    },
    F64Neg {
        d: u32,
        a: u32,
    },
    V32Neg {
        d: u32,
        a: u32,
        w: u8,
    },
    V64Neg {
        d: u32,
        a: u32,
        w: u8,
    },
    BNot {
        d: u32,
        a: u32,
    },
    I2F32 {
        d: u32,
        a: u32,
    },
    I2F64 {
        d: u32,
        a: u32,
    },
    I2B {
        d: u32,
        a: u32,
    },
    F32ToI {
        d: u32,
        a: u32,
    },
    F32To64 {
        d: u32,
        a: u32,
    },
    F64ToI {
        d: u32,
        a: u32,
    },
    F64To32 {
        d: u32,
        a: u32,
    },
    V32To64 {
        d: u32,
        a: u32,
        w: u8,
    },
    V64To32 {
        d: u32,
        a: u32,
        w: u8,
    },
    Bcast32 {
        d: u32,
        a: u32,
        w: u8,
    },
    Bcast64 {
        d: u32,
        a: u32,
        w: u8,
    },
    BcastI {
        d: u32,
        a: u32,
        w: u8,
    },
    Build32 {
        d: u32,
        parts: Vec<u32>,
    },
    Build64 {
        d: u32,
        parts: Vec<u32>,
    },
    /// `s` is already lane-resolved (`slot + lane`).
    Extr32 {
        d: u32,
        s: u32,
    },
    Extr64 {
        d: u32,
        s: u32,
    },
    /// `v` is already lane-resolved.
    Ins32 {
        v: u32,
        s: u32,
    },
    Ins64 {
        v: u32,
        s: u32,
    },
    Mad32 {
        d: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    Mad64 {
        d: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    VMad32 {
        d: u32,
        a: u32,
        b: u32,
        c: u32,
        w: u8,
    },
    VMad64 {
        d: u32,
        a: u32,
        b: u32,
        c: u32,
        w: u8,
    },
    MathI {
        f: MathFunc,
        n: u8,
        d: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    Math32 {
        f: MathFunc,
        n: u8,
        d: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    Math64 {
        f: MathFunc,
        n: u8,
        d: u32,
        a: u32,
        b: u32,
        c: u32,
    },
    FWi {
        f: WiFunc,
        d: u32,
        dim: u32,
    },
    LdG32 {
        d: u32,
        buf: u32,
        idx: u32,
    },
    LdG64 {
        d: u32,
        buf: u32,
        idx: u32,
    },
    LdGI {
        d: u32,
        buf: u32,
        idx: u32,
    },
    LdGV32 {
        d: u32,
        buf: u32,
        idx: u32,
        w: u8,
    },
    LdGV64 {
        d: u32,
        buf: u32,
        idx: u32,
        w: u8,
    },
    StG32 {
        buf: u32,
        idx: u32,
        s: u32,
    },
    StG64 {
        buf: u32,
        idx: u32,
        s: u32,
    },
    StGI {
        buf: u32,
        idx: u32,
        s: u32,
    },
    StGV32 {
        buf: u32,
        idx: u32,
        s: u32,
        w: u8,
    },
    StGV64 {
        buf: u32,
        idx: u32,
        s: u32,
        w: u8,
    },
    LdL32 {
        d: u32,
        arr: u32,
        idx: u32,
    },
    LdL64 {
        d: u32,
        arr: u32,
        idx: u32,
    },
    LdLI {
        d: u32,
        arr: u32,
        idx: u32,
    },
    LdLV32 {
        d: u32,
        arr: u32,
        idx: u32,
        w: u8,
    },
    LdLV64 {
        d: u32,
        arr: u32,
        idx: u32,
        w: u8,
    },
    StL32 {
        arr: u32,
        idx: u32,
        s: u32,
    },
    StL64 {
        arr: u32,
        idx: u32,
        s: u32,
    },
    StLI {
        arr: u32,
        idx: u32,
        s: u32,
    },
    StLV32 {
        arr: u32,
        idx: u32,
        s: u32,
        w: u8,
    },
    StLV64 {
        arr: u32,
        idx: u32,
        s: u32,
        w: u8,
    },
    FJump {
        t: u32,
    },
    FJz {
        c: u32,
        t: u32,
    },
    SelI {
        d: u32,
        c: u32,
        a: u32,
        b: u32,
    },
    Sel32 {
        d: u32,
        c: u32,
        a: u32,
        b: u32,
    },
    Sel64 {
        d: u32,
        c: u32,
        a: u32,
        b: u32,
    },
    SelV32 {
        d: u32,
        c: u32,
        a: u32,
        b: u32,
        w: u8,
    },
    SelV64 {
        d: u32,
        c: u32,
        a: u32,
        b: u32,
        w: u8,
    },
    FBarrier {
        site: u32,
    },
    FRet,
    // --- fused superinstructions (each still writes every intermediate
    // register and counts every constituent instruction) ---
    /// `Bin(cmp) ; JumpIfFalse` — 2 instrs, 1 alu.
    CmpJzI {
        op: BinOp,
        d: u32,
        a: u32,
        b: u32,
        t: u32,
    },
    CmpJz32 {
        op: BinOp,
        d: u32,
        a: u32,
        b: u32,
        t: u32,
    },
    CmpJz64 {
        op: BinOp,
        d: u32,
        a: u32,
        b: u32,
        t: u32,
    },
    /// `Const(int) ; Bin(cmp) ; JumpIfFalse` — the constant-bound loop
    /// header. 3 instrs, 1 alu.
    IConstCmpJz {
        v: i64,
        c: u32,
        op: BinOp,
        d: u32,
        a: u32,
        b: u32,
        t: u32,
    },
    /// `Const(int) ; Bin(int) [; Mov]` — index arithmetic and `i += 1`.
    /// `mv == NONE` when there is no trailing move. 2–3 instrs, 1 alu.
    IConstBin {
        v: i64,
        c: u32,
        op: BinOp,
        d: u32,
        a: u32,
        b: u32,
        mv: u32,
    },
    /// `Bin(Mul) ; Bin(Add)` at storage precision (two roundings — this
    /// is *not* `mul_add`). 2 instrs, 2 alu.
    MulAdd32 {
        ma: u32,
        mb: u32,
        t: u32,
        aa: u32,
        ab: u32,
        d: u32,
    },
    MulAdd64 {
        ma: u32,
        mb: u32,
        t: u32,
        aa: u32,
        ab: u32,
        d: u32,
    },
    VMulAdd32 {
        ma: u32,
        mb: u32,
        t: u32,
        aa: u32,
        ab: u32,
        d: u32,
        w: u8,
    },
    VMulAdd64 {
        ma: u32,
        mb: u32,
        t: u32,
        aa: u32,
        ab: u32,
        d: u32,
        w: u8,
    },
    /// `LoadGlobal(width 1) ; Convert` — mixed-precision epilogues.
    /// 2 instrs, 1 global mem instr.
    LdG32To64 {
        d: u32,
        buf: u32,
        idx: u32,
        dc: u32,
    },
    LdG64To32 {
        d: u32,
        buf: u32,
        idx: u32,
        dc: u32,
    },
}

/// The typed/fused execution plan attached to a [`CompiledKernel`] when
/// the register-class assignment pass succeeds.
#[derive(Debug, Clone, PartialEq)]
pub struct FastKernel {
    pub(crate) ops: Vec<FOp>,
    pub(crate) classes: Vec<RegClass>,
    pub(crate) slot: Vec<u32>,
    pub(crate) n_int: usize,
    pub(crate) n_f32: usize,
    pub(crate) n_f64: usize,
    pub(crate) v32_lanes: usize,
    pub(crate) v64_lanes: usize,
    /// Fused superinstructions in the plan (for diagnostics/disasm).
    pub(crate) n_fused: usize,
}

impl FastKernel {
    /// Number of fused superinstructions in the plan.
    #[must_use]
    pub fn fused_count(&self) -> usize {
        self.n_fused
    }

    /// Number of typed ops in the plan.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }
}

// --- specialisation -------------------------------------------------------

struct Tx<'a> {
    k: &'a CompiledKernel,
    cls: &'a [RegClass],
    slot: &'a [u32],
}

impl Tx<'_> {
    fn s(&self, r: Reg) -> u32 {
        self.slot[r]
    }

    fn c(&self, r: Reg) -> RegClass {
        self.cls[r]
    }

    /// Translate one bytecode instruction to a typed op; `None` when the
    /// operand classes are inconsistent with what the reference
    /// interpreter would accept (the whole kernel then falls back).
    #[allow(clippy::too_many_lines)]
    fn op1(&self, ins: &Instr) -> Option<FOp> {
        use RegClass as C;
        Some(match ins {
            Instr::Const { dst, val } => match val {
                Value::I(v) => FOp::IConst {
                    d: self.s(*dst),
                    v: *v,
                },
                Value::B(b) => FOp::IConst {
                    d: self.s(*dst),
                    v: *b as i64,
                },
                Value::F32(v) => FOp::F32Const {
                    d: self.s(*dst),
                    v: *v,
                },
                Value::F64(v) => FOp::F64Const {
                    d: self.s(*dst),
                    v: *v,
                },
                Value::V32(a, w) => FOp::V32Const {
                    d: self.s(*dst),
                    w: *w,
                    v: Box::new(*a),
                },
                Value::V64(a, w) => FOp::V64Const {
                    d: self.s(*dst),
                    w: *w,
                    v: Box::new(*a),
                },
            },
            Instr::Mov { dst, src } => {
                if self.c(*dst) != self.c(*src) {
                    return None;
                }
                let (d, s) = (self.s(*dst), self.s(*src));
                match self.c(*src) {
                    C::Int => FOp::IMov { d, s },
                    C::F32 => FOp::F32Mov { d, s },
                    C::F64 => FOp::F64Mov { d, s },
                    C::V32(w) => FOp::V32Mov { d, s, w },
                    C::V64(w) => FOp::V64Mov { d, s, w },
                }
            }
            Instr::Bin { op, dst, a, b } => {
                let (d, ra, rb) = (self.s(*dst), self.s(*a), self.s(*b));
                if op.is_cmp() {
                    if self.c(*dst) != C::Int {
                        return None;
                    }
                    match (self.c(*a), self.c(*b)) {
                        (C::Int, C::Int) => FOp::ICmp {
                            op: *op,
                            d,
                            a: ra,
                            b: rb,
                        },
                        (C::F32, C::F32) => FOp::F32Cmp {
                            op: *op,
                            d,
                            a: ra,
                            b: rb,
                        },
                        (C::F64, C::F64) => FOp::F64Cmp {
                            op: *op,
                            d,
                            a: ra,
                            b: rb,
                        },
                        _ => return None,
                    }
                } else if op.is_logic() {
                    if self.c(*dst) != C::Int || self.c(*a) != C::Int || self.c(*b) != C::Int {
                        return None;
                    }
                    FOp::ILogic {
                        and: *op == BinOp::And,
                        d,
                        a: ra,
                        b: rb,
                    }
                } else {
                    match (self.c(*a), self.c(*b)) {
                        (C::Int, C::Int) if self.c(*dst) == C::Int => FOp::IBin {
                            op: *op,
                            d,
                            a: ra,
                            b: rb,
                        },
                        (C::F32, C::F32) if self.c(*dst) == C::F32 && !op.int_only() => {
                            FOp::F32Bin {
                                op: *op,
                                d,
                                a: ra,
                                b: rb,
                            }
                        }
                        (C::F64, C::F64) if self.c(*dst) == C::F64 && !op.int_only() => {
                            FOp::F64Bin {
                                op: *op,
                                d,
                                a: ra,
                                b: rb,
                            }
                        }
                        (C::V32(w), C::V32(w2))
                            if w == w2 && self.c(*dst) == C::V32(w) && !op.int_only() =>
                        {
                            FOp::V32Bin {
                                op: *op,
                                d,
                                a: ra,
                                b: rb,
                                w,
                            }
                        }
                        (C::V64(w), C::V64(w2))
                            if w == w2 && self.c(*dst) == C::V64(w) && !op.int_only() =>
                        {
                            FOp::V64Bin {
                                op: *op,
                                d,
                                a: ra,
                                b: rb,
                                w,
                            }
                        }
                        _ => return None,
                    }
                }
            }
            Instr::Un { op, dst, a } => {
                let (d, ra) = (self.s(*dst), self.s(*a));
                match (op, self.c(*a)) {
                    (UnOp::Neg, C::Int) if self.c(*dst) == C::Int => FOp::INeg { d, a: ra },
                    (UnOp::Neg, C::F32) if self.c(*dst) == C::F32 => FOp::F32Neg { d, a: ra },
                    (UnOp::Neg, C::F64) if self.c(*dst) == C::F64 => FOp::F64Neg { d, a: ra },
                    (UnOp::Neg, C::V32(w)) if self.c(*dst) == C::V32(w) => {
                        FOp::V32Neg { d, a: ra, w }
                    }
                    (UnOp::Neg, C::V64(w)) if self.c(*dst) == C::V64(w) => {
                        FOp::V64Neg { d, a: ra, w }
                    }
                    (UnOp::Not, C::Int) if self.c(*dst) == C::Int => FOp::BNot { d, a: ra },
                    _ => return None,
                }
            }
            Instr::Convert { dst, src, base } => {
                let (d, a) = (self.s(*dst), self.s(*src));
                let op = match (self.c(*src), base) {
                    (C::Int, Base::Float) => FOp::I2F32 { d, a },
                    (C::Int, Base::Double) => FOp::I2F64 { d, a },
                    (C::Int, Base::Int | Base::Uint) => FOp::IMov { d, s: a },
                    (C::Int, Base::Bool) => FOp::I2B { d, a },
                    (C::F32, Base::Float) => FOp::F32Mov { d, s: a },
                    (C::F32, Base::Double) => FOp::F32To64 { d, a },
                    (C::F32, Base::Int | Base::Uint) => FOp::F32ToI { d, a },
                    (C::F64, Base::Float) => FOp::F64To32 { d, a },
                    (C::F64, Base::Double) => FOp::F64Mov { d, s: a },
                    (C::F64, Base::Int | Base::Uint) => FOp::F64ToI { d, a },
                    (C::V32(w), Base::Double) => FOp::V32To64 { d, a, w },
                    (C::V32(w), Base::Float) => FOp::V32Mov { d, s: a, w },
                    (C::V64(w), Base::Float) => FOp::V64To32 { d, a, w },
                    (C::V64(w), Base::Double) => FOp::V64Mov { d, s: a, w },
                    _ => return None,
                };
                if expected_dst(&op, self.cls, self.slot, *dst) {
                    op
                } else {
                    return None;
                }
            }
            Instr::Broadcast { dst, src, width } => {
                let (d, a) = (self.s(*dst), self.s(*src));
                match self.c(*src) {
                    C::F32 if self.c(*dst) == C::V32(*width) => FOp::Bcast32 { d, a, w: *width },
                    C::F64 if self.c(*dst) == C::V64(*width) => FOp::Bcast64 { d, a, w: *width },
                    // The reference interpreter broadcasts ints into
                    // double vectors; mirror the quirk.
                    C::Int if self.c(*dst) == C::V64(*width) => FOp::BcastI { d, a, w: *width },
                    _ => return None,
                }
            }
            Instr::BuildVec { dst, base, parts } => {
                let w = parts.len() as u8;
                let slots: Vec<u32> = parts.iter().map(|r| self.s(*r)).collect();
                match base {
                    Base::Float
                        if self.c(*dst) == C::V32(w)
                            && parts.iter().all(|r| self.c(*r) == C::F32) =>
                    {
                        FOp::Build32 {
                            d: self.s(*dst),
                            parts: slots,
                        }
                    }
                    Base::Double
                        if self.c(*dst) == C::V64(w)
                            && parts.iter().all(|r| self.c(*r) == C::F64) =>
                    {
                        FOp::Build64 {
                            d: self.s(*dst),
                            parts: slots,
                        }
                    }
                    _ => return None,
                }
            }
            Instr::Extract { dst, src, lane } => match self.c(*src) {
                C::V32(w) if *lane < w && self.c(*dst) == C::F32 => FOp::Extr32 {
                    d: self.s(*dst),
                    s: self.s(*src) + *lane as u32,
                },
                C::V64(w) if *lane < w && self.c(*dst) == C::F64 => FOp::Extr64 {
                    d: self.s(*dst),
                    s: self.s(*src) + *lane as u32,
                },
                _ => return None,
            },
            Instr::InsertLane { vec, src, lane } => match (self.c(*vec), self.c(*src)) {
                (C::V32(w), C::F32) if *lane < w => FOp::Ins32 {
                    v: self.s(*vec) + *lane as u32,
                    s: self.s(*src),
                },
                (C::V64(w), C::F64) if *lane < w => FOp::Ins64 {
                    v: self.s(*vec) + *lane as u32,
                    s: self.s(*src),
                },
                _ => return None,
            },
            Instr::Mad { dst, a, b, c } => {
                let cl = self.c(*a);
                if self.c(*b) != cl || self.c(*c) != cl || self.c(*dst) != cl {
                    return None;
                }
                let (d, ra, rb, rc) = (self.s(*dst), self.s(*a), self.s(*b), self.s(*c));
                match cl {
                    C::F32 => FOp::Mad32 {
                        d,
                        a: ra,
                        b: rb,
                        c: rc,
                    },
                    C::F64 => FOp::Mad64 {
                        d,
                        a: ra,
                        b: rb,
                        c: rc,
                    },
                    C::V32(w) => FOp::VMad32 {
                        d,
                        a: ra,
                        b: rb,
                        c: rc,
                        w,
                    },
                    C::V64(w) => FOp::VMad64 {
                        d,
                        a: ra,
                        b: rb,
                        c: rc,
                        w,
                    },
                    C::Int => return None,
                }
            }
            Instr::Math {
                f,
                dst,
                args,
                n_args,
            } => {
                let cl = self.c(args[0]);
                for &r in args.iter().take(*n_args as usize) {
                    if self.c(r) != cl {
                        return None;
                    }
                }
                if self.c(*dst) != cl {
                    return None;
                }
                let ok = matches!(
                    (cl, *n_args, f),
                    (C::Int, 2, MathFunc::Min | MathFunc::Max)
                        | (C::Int, 3, MathFunc::Clamp)
                        | (
                            C::F32 | C::F64,
                            2,
                            MathFunc::Min | MathFunc::Max | MathFunc::Fmin | MathFunc::Fmax,
                        )
                        | (C::F32 | C::F64, 3, MathFunc::Clamp)
                        | (
                            C::F32 | C::F64,
                            1,
                            MathFunc::Fabs
                                | MathFunc::Sqrt
                                | MathFunc::Exp
                                | MathFunc::Log
                                | MathFunc::NativeRecip,
                        )
                );
                if !ok {
                    return None;
                }
                let (d, a, b, c) = (
                    self.s(*dst),
                    self.s(args[0]),
                    self.s(args[1]),
                    self.s(args[2]),
                );
                match cl {
                    C::Int => FOp::MathI {
                        f: *f,
                        n: *n_args,
                        d,
                        a,
                        b,
                        c,
                    },
                    C::F32 => FOp::Math32 {
                        f: *f,
                        n: *n_args,
                        d,
                        a,
                        b,
                        c,
                    },
                    C::F64 => FOp::Math64 {
                        f: *f,
                        n: *n_args,
                        d,
                        a,
                        b,
                        c,
                    },
                    _ => return None,
                }
            }
            Instr::Wi { f, dst, dim } => {
                if self.c(*dst) != C::Int || self.c(*dim) != C::Int {
                    return None;
                }
                FOp::FWi {
                    f: *f,
                    d: self.s(*dst),
                    dim: self.s(*dim),
                }
            }
            Instr::LoadGlobal {
                dst,
                buf,
                idx,
                width,
            } => {
                if self.c(*idx) != C::Int {
                    return None;
                }
                let base = self.k.checked.buffer_params[*buf].base;
                let (d, b, i) = (self.s(*dst), *buf as u32, self.s(*idx));
                match (base, *width) {
                    (Base::Float, 1) if self.c(*dst) == C::F32 => FOp::LdG32 { d, buf: b, idx: i },
                    (Base::Double, 1) if self.c(*dst) == C::F64 => FOp::LdG64 { d, buf: b, idx: i },
                    (Base::Int | Base::Uint | Base::Bool, 1) if self.c(*dst) == C::Int => {
                        FOp::LdGI { d, buf: b, idx: i }
                    }
                    (Base::Float, w) if self.c(*dst) == C::V32(w) => FOp::LdGV32 {
                        d,
                        buf: b,
                        idx: i,
                        w,
                    },
                    (Base::Double, w) if self.c(*dst) == C::V64(w) => FOp::LdGV64 {
                        d,
                        buf: b,
                        idx: i,
                        w,
                    },
                    _ => return None,
                }
            }
            Instr::StoreGlobal {
                buf,
                idx,
                src,
                width,
            } => {
                if self.c(*idx) != C::Int {
                    return None;
                }
                let base = self.k.checked.buffer_params[*buf].base;
                let (b, i, s) = (*buf as u32, self.s(*idx), self.s(*src));
                match (base, *width, self.c(*src)) {
                    (Base::Float, 1, C::F32) => FOp::StG32 { buf: b, idx: i, s },
                    (Base::Double, 1, C::F64) => FOp::StG64 { buf: b, idx: i, s },
                    (Base::Int | Base::Uint | Base::Bool, 1, C::Int) => {
                        FOp::StGI { buf: b, idx: i, s }
                    }
                    (Base::Float, w, C::V32(w2)) if w == w2 => FOp::StGV32 {
                        buf: b,
                        idx: i,
                        s,
                        w,
                    },
                    (Base::Double, w, C::V64(w2)) if w == w2 => FOp::StGV64 {
                        buf: b,
                        idx: i,
                        s,
                        w,
                    },
                    _ => return None,
                }
            }
            Instr::LoadLocal {
                dst,
                arr,
                idx,
                width,
            } => {
                if self.c(*idx) != C::Int {
                    return None;
                }
                let base = self.k.checked.local_arrays[*arr].base;
                let (d, ar, i) = (self.s(*dst), *arr as u32, self.s(*idx));
                match (base, *width) {
                    (Base::Float, 1) if self.c(*dst) == C::F32 => FOp::LdL32 { d, arr: ar, idx: i },
                    (Base::Double, 1) if self.c(*dst) == C::F64 => {
                        FOp::LdL64 { d, arr: ar, idx: i }
                    }
                    (Base::Int | Base::Uint | Base::Bool, 1) if self.c(*dst) == C::Int => {
                        FOp::LdLI { d, arr: ar, idx: i }
                    }
                    (Base::Float, w) if self.c(*dst) == C::V32(w) => FOp::LdLV32 {
                        d,
                        arr: ar,
                        idx: i,
                        w,
                    },
                    (Base::Double, w) if self.c(*dst) == C::V64(w) => FOp::LdLV64 {
                        d,
                        arr: ar,
                        idx: i,
                        w,
                    },
                    _ => return None,
                }
            }
            Instr::StoreLocal {
                arr,
                idx,
                src,
                width,
            } => {
                if self.c(*idx) != C::Int {
                    return None;
                }
                let base = self.k.checked.local_arrays[*arr].base;
                let (ar, i, s) = (*arr as u32, self.s(*idx), self.s(*src));
                match (base, *width, self.c(*src)) {
                    (Base::Float, 1, C::F32) => FOp::StL32 { arr: ar, idx: i, s },
                    (Base::Double, 1, C::F64) => FOp::StL64 { arr: ar, idx: i, s },
                    (Base::Int | Base::Uint | Base::Bool, 1, C::Int) => {
                        FOp::StLI { arr: ar, idx: i, s }
                    }
                    (Base::Float, w, C::V32(w2)) if w == w2 => FOp::StLV32 {
                        arr: ar,
                        idx: i,
                        s,
                        w,
                    },
                    (Base::Double, w, C::V64(w2)) if w == w2 => FOp::StLV64 {
                        arr: ar,
                        idx: i,
                        s,
                        w,
                    },
                    _ => return None,
                }
            }
            Instr::Jump { target } => FOp::FJump { t: *target as u32 },
            Instr::JumpIfFalse { cond, target } => {
                if self.c(*cond) != C::Int {
                    return None;
                }
                FOp::FJz {
                    c: self.s(*cond),
                    t: *target as u32,
                }
            }
            Instr::Select { dst, cond, a, b } => {
                if self.c(*cond) != C::Int {
                    return None;
                }
                let cl = self.c(*a);
                if self.c(*b) != cl || self.c(*dst) != cl {
                    return None;
                }
                let (d, c, ra, rb) = (self.s(*dst), self.s(*cond), self.s(*a), self.s(*b));
                match cl {
                    C::Int => FOp::SelI { d, c, a: ra, b: rb },
                    C::F32 => FOp::Sel32 { d, c, a: ra, b: rb },
                    C::F64 => FOp::Sel64 { d, c, a: ra, b: rb },
                    C::V32(w) => FOp::SelV32 {
                        d,
                        c,
                        a: ra,
                        b: rb,
                        w,
                    },
                    C::V64(w) => FOp::SelV64 {
                        d,
                        c,
                        a: ra,
                        b: rb,
                        w,
                    },
                }
            }
            Instr::Barrier { site } => FOp::FBarrier { site: *site },
            Instr::Ret => FOp::FRet,
        })
    }
}

/// Is the op's destination slot consistent with `dst`'s class/slot? Used
/// by the `Convert` translation where the op was chosen from the source
/// class alone.
fn expected_dst(op: &FOp, cls: &[RegClass], slot: &[u32], dst: Reg) -> bool {
    use RegClass as C;
    let want = match op {
        FOp::I2F32 { .. } | FOp::F64To32 { .. } => C::F32,
        FOp::I2F64 { .. } | FOp::F32To64 { .. } => C::F64,
        FOp::IMov { .. } | FOp::I2B { .. } | FOp::F32ToI { .. } | FOp::F64ToI { .. } => C::Int,
        FOp::F32Mov { .. } => C::F32,
        FOp::F64Mov { .. } => C::F64,
        FOp::V32To64 { w, .. } => C::V64(*w),
        FOp::V64To32 { w, .. } => C::V32(*w),
        FOp::V32Mov { w, .. } => C::V32(*w),
        FOp::V64Mov { w, .. } => C::V64(*w),
        _ => return false,
    };
    let _ = slot;
    cls[dst] == want
}

/// Try to fuse a superinstruction window starting at `pc`. Windows never
/// span a jump target (targets can only begin a window), so the
/// old-pc → new-pc remap stays total over reachable targets. Returns the
/// fused op and the number of bytecode instructions consumed.
fn try_fuse(tx: &Tx<'_>, pc: usize, is_target: &[bool]) -> Option<(FOp, usize)> {
    use RegClass as C;
    let code = &tx.k.code;
    let at = |i: usize| code.get(i);

    // Const(int) ; Bin ; ... windows.
    if let Some(Instr::Const {
        dst: cd,
        val: Value::I(v),
    }) = at(pc)
    {
        if let (Some(Instr::Bin { op, dst, a, b }), false) = (at(pc + 1), is_target[pc + 1]) {
            let int_operands = tx.c(*a) == C::Int && tx.c(*b) == C::Int;
            let touches_const = *a == *cd || *b == *cd;
            // Const ; Cmp ; JumpIfFalse — constant-bound loop header.
            if op.is_cmp() && int_operands && touches_const && tx.c(*dst) == C::Int {
                if let (Some(Instr::JumpIfFalse { cond, target }), false) =
                    (at(pc + 2), is_target[pc + 2])
                {
                    if *cond == *dst {
                        return Some((
                            FOp::IConstCmpJz {
                                v: *v,
                                c: tx.s(*cd),
                                op: *op,
                                d: tx.s(*dst),
                                a: tx.s(*a),
                                b: tx.s(*b),
                                t: *target as u32,
                            },
                            3,
                        ));
                    }
                }
            }
            // Const ; Bin(int arith) [; Mov] — index math, `i += 1`.
            if !op.is_cmp()
                && !op.is_logic()
                && int_operands
                && touches_const
                && tx.c(*dst) == C::Int
            {
                let mv = match (at(pc + 2), is_target[pc + 2]) {
                    (Some(Instr::Mov { dst: md, src }), false)
                        if *src == *dst && tx.c(*md) == C::Int =>
                    {
                        Some(tx.s(*md))
                    }
                    _ => None,
                };
                let len = if mv.is_some() { 3 } else { 2 };
                return Some((
                    FOp::IConstBin {
                        v: *v,
                        c: tx.s(*cd),
                        op: *op,
                        d: tx.s(*dst),
                        a: tx.s(*a),
                        b: tx.s(*b),
                        mv: mv.unwrap_or(NONE),
                    },
                    len,
                ));
            }
        }
    }

    // Bin(scalar cmp) ; JumpIfFalse.
    if let Some(Instr::Bin { op, dst, a, b }) = at(pc) {
        if op.is_cmp() && tx.c(*dst) == C::Int {
            if let (Some(Instr::JumpIfFalse { cond, target }), false) =
                (at(pc + 1), is_target[pc + 1])
            {
                if *cond == *dst {
                    let (d, ra, rb, t) = (tx.s(*dst), tx.s(*a), tx.s(*b), *target as u32);
                    let fused = match (tx.c(*a), tx.c(*b)) {
                        (C::Int, C::Int) => FOp::CmpJzI {
                            op: *op,
                            d,
                            a: ra,
                            b: rb,
                            t,
                        },
                        (C::F32, C::F32) => FOp::CmpJz32 {
                            op: *op,
                            d,
                            a: ra,
                            b: rb,
                            t,
                        },
                        (C::F64, C::F64) => FOp::CmpJz64 {
                            op: *op,
                            d,
                            a: ra,
                            b: rb,
                            t,
                        },
                        _ => return None,
                    };
                    return Some((fused, 2));
                }
            }
        }
        // Bin(Mul) ; Bin(Add) at float/vector class — the unfused
        // multiply-accumulate the generator emits when MAD is off.
        if *op == BinOp::Mul {
            if let (
                Some(Instr::Bin {
                    op: op2,
                    dst: d2,
                    a: a2,
                    b: b2,
                }),
                false,
            ) = (at(pc + 1), is_target[pc + 1])
            {
                let cl = tx.c(*dst);
                let same = tx.c(*a) == cl
                    && tx.c(*b) == cl
                    && tx.c(*a2) == cl
                    && tx.c(*b2) == cl
                    && tx.c(*d2) == cl;
                if *op2 == BinOp::Add && same {
                    let (ma, mb, t) = (tx.s(*a), tx.s(*b), tx.s(*dst));
                    let (aa, ab, d) = (tx.s(*a2), tx.s(*b2), tx.s(*d2));
                    let fused = match cl {
                        C::F32 => FOp::MulAdd32 {
                            ma,
                            mb,
                            t,
                            aa,
                            ab,
                            d,
                        },
                        C::F64 => FOp::MulAdd64 {
                            ma,
                            mb,
                            t,
                            aa,
                            ab,
                            d,
                        },
                        C::V32(w) => FOp::VMulAdd32 {
                            ma,
                            mb,
                            t,
                            aa,
                            ab,
                            d,
                            w,
                        },
                        C::V64(w) => FOp::VMulAdd64 {
                            ma,
                            mb,
                            t,
                            aa,
                            ab,
                            d,
                            w,
                        },
                        C::Int => return None,
                    };
                    return Some((fused, 2));
                }
            }
        }
    }

    // LoadGlobal(width 1) ; Convert — mixed-precision alpha/beta loads.
    if let Some(Instr::LoadGlobal {
        dst,
        buf,
        idx,
        width: 1,
    }) = at(pc)
    {
        if tx.c(*idx) == C::Int {
            if let (
                Some(Instr::Convert {
                    dst: cdst,
                    src,
                    base,
                }),
                false,
            ) = (at(pc + 1), is_target[pc + 1])
            {
                if *src == *dst {
                    let bufbase = tx.k.checked.buffer_params[*buf].base;
                    let (d, b, i, dc) = (tx.s(*dst), *buf as u32, tx.s(*idx), tx.s(*cdst));
                    match (bufbase, base) {
                        (Base::Float, Base::Double)
                            if tx.c(*dst) == C::F32 && tx.c(*cdst) == C::F64 =>
                        {
                            return Some((
                                FOp::LdG32To64 {
                                    d,
                                    buf: b,
                                    idx: i,
                                    dc,
                                },
                                2,
                            ));
                        }
                        (Base::Double, Base::Float)
                            if tx.c(*dst) == C::F64 && tx.c(*cdst) == C::F32 =>
                        {
                            return Some((
                                FOp::LdG64To32 {
                                    d,
                                    buf: b,
                                    idx: i,
                                    dc,
                                },
                                2,
                            ));
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    None
}

/// Compile the typed/fused plan for a kernel, or `None` when the
/// register-class pass (or operand validation) cannot type it — launches
/// then fall back to the reference interpreter.
#[must_use]
pub fn specialize(k: &CompiledKernel) -> Option<FastKernel> {
    let classes = assign_classes(k)?;

    // Per-class slot assignment; vectors get base lane offsets.
    let mut slot = vec![0u32; k.n_regs];
    let (mut n_int, mut n_f32, mut n_f64, mut v32_lanes, mut v64_lanes) = (0usize, 0, 0, 0, 0);
    for (r, c) in classes.iter().enumerate() {
        slot[r] = match c {
            RegClass::Int => {
                n_int += 1;
                (n_int - 1) as u32
            }
            RegClass::F32 => {
                n_f32 += 1;
                (n_f32 - 1) as u32
            }
            RegClass::F64 => {
                n_f64 += 1;
                (n_f64 - 1) as u32
            }
            RegClass::V32(w) => {
                let base = v32_lanes;
                v32_lanes += *w as usize;
                base as u32
            }
            RegClass::V64(w) => {
                let base = v64_lanes;
                v64_lanes += *w as usize;
                base as u32
            }
        };
    }

    let mut is_target = vec![false; k.code.len() + 1];
    for ins in &k.code {
        if let Instr::Jump { target } | Instr::JumpIfFalse { target, .. } = ins {
            is_target[*target] = true;
        }
    }

    let tx = Tx {
        k,
        cls: &classes,
        slot: &slot,
    };
    let mut ops: Vec<FOp> = Vec::with_capacity(k.code.len());
    let mut map = vec![NONE; k.code.len() + 1];
    let mut n_fused = 0usize;
    let mut pc = 0usize;
    while pc < k.code.len() {
        map[pc] = ops.len() as u32;
        if let Some((op, consumed)) = try_fuse(&tx, pc, &is_target) {
            ops.push(op);
            n_fused += 1;
            pc += consumed;
        } else {
            ops.push(tx.op1(&k.code[pc])?);
            pc += 1;
        }
    }
    map[k.code.len()] = ops.len() as u32;

    // Remap jump targets old-pc → new-pc.
    for op in &mut ops {
        match op {
            FOp::FJump { t }
            | FOp::FJz { t, .. }
            | FOp::CmpJzI { t, .. }
            | FOp::CmpJz32 { t, .. }
            | FOp::CmpJz64 { t, .. }
            | FOp::IConstCmpJz { t, .. } => {
                let nt = map[*t as usize];
                if nt == NONE {
                    return None; // target landed inside a window: bug guard
                }
                *t = nt;
            }
            _ => {}
        }
    }

    Some(FastKernel {
        ops,
        classes,
        slot,
        n_int,
        n_f32,
        n_f64,
        v32_lanes,
        v64_lanes,
        n_fused,
    })
}

// --- scalar/vector op semantics (bit-identical to the reference) ----------

#[inline]
fn i_bin(op: BinOp, x: i64, y: i64) -> Result<i64, RuntimeError> {
    Ok(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return Err(RuntimeError::Arithmetic("integer division by zero".into()));
            }
            x.wrapping_div(y)
        }
        BinOp::Rem => {
            if y == 0 {
                return Err(RuntimeError::Arithmetic("integer remainder by zero".into()));
            }
            x.wrapping_rem(y)
        }
        BinOp::BitAnd => x & y,
        BinOp::BitOr => x | y,
        BinOp::BitXor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32),
        BinOp::Shr => x.wrapping_shr(y as u32),
        _ => unreachable!("specialize admits only int arithmetic here"),
    })
}

/// Float arithmetic in f64; f32 results are rounded at the call site,
/// mirroring the reference's compute-wide-round-at-storage rule.
#[inline]
fn f_bin(op: BinOp, x: f64, y: f64) -> f64 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        _ => unreachable!("specialize admits only float arithmetic here"),
    }
}

#[inline]
fn cmp_i(op: BinOp, x: i64, y: i64) -> bool {
    match op {
        BinOp::Lt => x < y,
        BinOp::Gt => x > y,
        BinOp::Le => x <= y,
        BinOp::Ge => x >= y,
        BinOp::Eq => x == y,
        BinOp::Ne => x != y,
        _ => unreachable!("specialize admits only comparisons here"),
    }
}

#[inline]
fn cmp_f(op: BinOp, x: f64, y: f64) -> bool {
    match op {
        BinOp::Lt => x < y,
        BinOp::Gt => x > y,
        BinOp::Le => x <= y,
        BinOp::Ge => x >= y,
        BinOp::Eq => x == y,
        BinOp::Ne => x != y,
        _ => unreachable!("specialize admits only comparisons here"),
    }
}

// --- shared global buffers ------------------------------------------------

enum RawBuf {
    F32(*mut f32, usize),
    F64(*mut f64, usize),
    I32(*mut i32, usize),
}

/// Raw-pointer view of the launch's global buffers, shared across the
/// parallel group threads.
///
/// # Safety
///
/// Concurrent unsynchronised writes through these pointers are only
/// sound because distinct work-groups of a generated kernel write
/// disjoint global cells. That discipline is *validated*, not assumed:
/// when `detect_races` is on, every access first consults
/// [`GlobalRaceTables`], whose write slots are claimed with a
/// compare-and-swap — a second group writing the same cell errors before
/// its payload store, so write/write overlap never reaches the buffer.
/// (A read racing a first write can still observe either value in the
/// narrow window before detection; the launch still fails.) With
/// `detect_races` off the caller asserts disjointness.
pub(crate) struct SharedBufs {
    bufs: Vec<RawBuf>,
}

unsafe impl Send for SharedBufs {}
unsafe impl Sync for SharedBufs {}

impl SharedBufs {
    pub(crate) fn new(bufs: &mut [BufData]) -> SharedBufs {
        SharedBufs {
            bufs: bufs
                .iter_mut()
                .map(|b| match b {
                    BufData::F32(v) => RawBuf::F32(v.as_mut_ptr(), v.len()),
                    BufData::F64(v) => RawBuf::F64(v.as_mut_ptr(), v.len()),
                    BufData::I32(v) => RawBuf::I32(v.as_mut_ptr(), v.len()),
                })
                .collect(),
        }
    }

    pub(crate) fn len(&self, b: usize) -> usize {
        match self.bufs[b] {
            RawBuf::F32(_, n) | RawBuf::F64(_, n) | RawBuf::I32(_, n) => n,
        }
    }

    /// Bounds check identical to the reference interpreter's.
    pub(crate) fn check(
        &self,
        kernel: &CompiledKernel,
        buf: usize,
        idx: i64,
        width: u8,
    ) -> Result<usize, RuntimeError> {
        let len = self.len(buf);
        if idx < 0 || (idx as usize) + width as usize > len {
            return Err(RuntimeError::GlobalOob {
                buffer: kernel.checked.buffer_params[buf].name.clone(),
                index: idx,
                len,
            });
        }
        Ok(idx as usize)
    }

    pub(crate) unsafe fn ld_f32(&self, b: usize, i: usize) -> f32 {
        match self.bufs[b] {
            RawBuf::F32(p, _) => unsafe { *p.add(i) },
            _ => unreachable!("typed f32 load on non-f32 buffer"),
        }
    }

    pub(crate) unsafe fn ld_f64(&self, b: usize, i: usize) -> f64 {
        match self.bufs[b] {
            RawBuf::F64(p, _) => unsafe { *p.add(i) },
            _ => unreachable!("typed f64 load on non-f64 buffer"),
        }
    }

    pub(crate) unsafe fn ld_i32(&self, b: usize, i: usize) -> i32 {
        match self.bufs[b] {
            RawBuf::I32(p, _) => unsafe { *p.add(i) },
            _ => unreachable!("typed i32 load on non-i32 buffer"),
        }
    }

    pub(crate) unsafe fn st_f32(&self, b: usize, i: usize, v: f32) {
        match self.bufs[b] {
            RawBuf::F32(p, _) => unsafe { *p.add(i) = v },
            _ => unreachable!("typed f32 store on non-f32 buffer"),
        }
    }

    pub(crate) unsafe fn st_f64(&self, b: usize, i: usize, v: f64) {
        match self.bufs[b] {
            RawBuf::F64(p, _) => unsafe { *p.add(i) = v },
            _ => unreachable!("typed f64 store on non-f64 buffer"),
        }
    }

    pub(crate) unsafe fn st_i32(&self, b: usize, i: usize, v: i32) {
        match self.bufs[b] {
            RawBuf::I32(p, _) => unsafe { *p.add(i) = v },
            _ => unreachable!("typed i32 store on non-i32 buffer"),
        }
    }
}

pub(crate) fn g_race_r(
    kernel: &CompiledKernel,
    grace: Option<&GlobalRaceTables>,
    buf: usize,
    i: usize,
    width: u8,
    group: u32,
) -> Result<(), RuntimeError> {
    if let Some(g) = grace {
        if let Err((k, other)) = g.on_read(buf, i, width, group) {
            return Err(global_race_err(kernel, buf, k, group, other));
        }
    }
    Ok(())
}

pub(crate) fn g_race_w(
    kernel: &CompiledKernel,
    grace: Option<&GlobalRaceTables>,
    buf: usize,
    i: usize,
    width: u8,
    group: u32,
) -> Result<(), RuntimeError> {
    if let Some(g) = grace {
        if let Err((k, other)) = g.on_write(buf, i, width, group) {
            return Err(global_race_err(kernel, buf, k, group, other));
        }
    }
    Ok(())
}

pub(crate) fn l_check(
    kernel: &CompiledKernel,
    locals: &[LocalBuf],
    arr: usize,
    idx: i64,
    width: u8,
) -> Result<usize, RuntimeError> {
    let len = locals[arr].len();
    if idx < 0 || (idx as usize) + width as usize > len {
        return Err(RuntimeError::LocalOob {
            array: kernel.checked.local_arrays[arr].name.clone(),
            index: idx,
            len,
        });
    }
    Ok(idx as usize)
}

pub(crate) fn l_race_r(
    kernel: &CompiledKernel,
    races: &mut [RaceTable],
    arr: usize,
    i: usize,
    width: u8,
    wi: u32,
    phase: u32,
) -> Result<(), RuntimeError> {
    if let Some(rt) = races.get_mut(arr) {
        if let Err((k, writer, other)) = rt.on_read(i, width, wi, phase) {
            return Err(local_race_err(kernel, arr, k, writer, other));
        }
    }
    Ok(())
}

pub(crate) fn l_race_w(
    kernel: &CompiledKernel,
    races: &mut [RaceTable],
    arr: usize,
    i: usize,
    width: u8,
    wi: u32,
    phase: u32,
) -> Result<(), RuntimeError> {
    if let Some(rt) = races.get_mut(arr) {
        if let Err((k, writer, other)) = rt.on_write(i, width, wi, phase) {
            return Err(local_race_err(kernel, arr, k, writer, other));
        }
    }
    Ok(())
}

// --- per-launch state -----------------------------------------------------

/// A value-parameter seed: `(bank slot, value)` applied to every
/// work-item's banks when a group starts.
pub(crate) enum Seed {
    I(u32, i64),
    F(u32, f32),
    D(u32, f64),
}

fn build_seeds(fk: &FastKernel, init_regs: &[Value]) -> Vec<Seed> {
    let mut out = Vec::new();
    for (r, v) in init_regs.iter().enumerate() {
        match (fk.classes[r], *v) {
            (RegClass::Int, Value::I(x)) => out.push(Seed::I(fk.slot[r], x)),
            (RegClass::Int, Value::B(x)) => out.push(Seed::I(fk.slot[r], i64::from(x))),
            (RegClass::F32, Value::F32(x)) => out.push(Seed::F(fk.slot[r], x)),
            (RegClass::F64, Value::F64(x)) => out.push(Seed::D(fk.slot[r], x)),
            // Non-parameter slots carry `I(0)` placeholders; the banks
            // are zero-filled already and lowering writes every declared
            // value before its first read, so nothing to seed.
            _ => {}
        }
    }
    out
}

/// Reusable per-thread execution state for the fast engine: SoA register
/// banks for the whole group (work-item-major), per-work-item pc/done,
/// plus the group's local buffers and race tables. Allocated once per
/// worker thread; re-seeded per group.
#[derive(Default)]
pub(crate) struct FastArena {
    ints: Vec<i64>,
    f32s: Vec<f32>,
    f64s: Vec<f64>,
    v32: Vec<f32>,
    v64: Vec<f64>,
    pcs: Vec<u32>,
    done: Vec<bool>,
    locals: Vec<LocalBuf>,
    races: Vec<RaceTable>,
}

impl FastArena {
    fn reset(
        &mut self,
        kernel: &CompiledKernel,
        fk: &FastKernel,
        nwi: usize,
        seeds: &[Seed],
        detect_races: bool,
    ) {
        self.ints.clear();
        self.ints.resize(nwi * fk.n_int, 0);
        self.f32s.clear();
        self.f32s.resize(nwi * fk.n_f32, 0.0);
        self.f64s.clear();
        self.f64s.resize(nwi * fk.n_f64, 0.0);
        self.v32.clear();
        self.v32.resize(nwi * fk.v32_lanes, 0.0);
        self.v64.clear();
        self.v64.resize(nwi * fk.v64_lanes, 0.0);
        self.pcs.clear();
        self.pcs.resize(nwi, 0);
        self.done.clear();
        self.done.resize(nwi, false);
        for wi in 0..nwi {
            let (bi, bf, bd) = (wi * fk.n_int, wi * fk.n_f32, wi * fk.n_f64);
            for s in seeds {
                match *s {
                    Seed::I(slot, x) => self.ints[bi + slot as usize] = x,
                    Seed::F(slot, x) => self.f32s[bf + slot as usize] = x,
                    Seed::D(slot, x) => self.f64s[bd + slot as usize] = x,
                }
            }
        }
        // Locals and race tables follow the reference arena's reuse
        // policy: keep the allocations when the shapes match.
        let arrays = &kernel.checked.local_arrays;
        let locals_ok = self.locals.len() == arrays.len()
            && self
                .locals
                .iter()
                .zip(arrays)
                .all(|(l, a)| l.len() == a.len && l.base_matches(a));
        if locals_ok {
            for l in &mut self.locals {
                l.zero();
            }
        } else {
            self.locals = arrays.iter().map(LocalBuf::new).collect();
        }
        let want_races = if detect_races { arrays.len() } else { 0 };
        if self.races.len() == want_races
            && self.races.iter().zip(arrays).all(|(r, a)| r.len() == a.len)
        {
            for r in &mut self.races {
                r.clear();
            }
        } else if detect_races {
            self.races = arrays.iter().map(|a| RaceTable::new(a.len)).collect();
        } else {
            self.races.clear();
        }
    }
}

/// Launch-wide immutable context shared by every work-item of a group.
struct GroupCtx<'a> {
    kernel: &'a CompiledKernel,
    fk: &'a FastKernel,
    group: [usize; 2],
    group_linear: u32,
    geom: &'a Geometry,
    bufs: &'a SharedBufs,
    opts: &'a ExecOptions,
    grace: Option<&'a GlobalRaceTables>,
}

/// One work-item's mutable slices of the group's SoA banks.
struct Banks<'a> {
    i: &'a mut [i64],
    f: &'a mut [f32],
    d: &'a mut [f64],
    v32: &'a mut [f32],
    v64: &'a mut [f64],
}

/// Run one group on the fast plan. Mirrors `run_group_in`'s round-robin
/// schedule, barrier-divergence checks and error strings exactly.
fn run_group_fast(
    ctx: &GroupCtx<'_>,
    seeds: &[Seed],
    arena: &mut FastArena,
) -> Result<DynStats, RuntimeError> {
    let geom = ctx.geom;
    let nwi = geom.local[0] * geom.local[1];
    arena.reset(ctx.kernel, ctx.fk, nwi, seeds, ctx.opts.detect_races);
    let FastArena {
        ints,
        f32s,
        f64s,
        v32,
        v64,
        pcs,
        done,
        locals,
        races,
    } = arena;

    let mut stats = DynStats::default();
    let mut phase: u32 = 0;
    loop {
        let mut arrived: Option<u32> = None;
        let mut n_done = 0usize;
        let mut n_barrier = 0usize;
        for wi in 0..nwi {
            if done[wi] {
                n_done += 1;
                continue;
            }
            let lid = [wi % geom.local[0], wi / geom.local[0]];
            let fk = ctx.fk;
            let banks = Banks {
                i: &mut ints[wi * fk.n_int..(wi + 1) * fk.n_int],
                f: &mut f32s[wi * fk.n_f32..(wi + 1) * fk.n_f32],
                d: &mut f64s[wi * fk.n_f64..(wi + 1) * fk.n_f64],
                v32: &mut v32[wi * fk.v32_lanes..(wi + 1) * fk.v32_lanes],
                v64: &mut v64[wi * fk.v64_lanes..(wi + 1) * fk.v64_lanes],
            };
            let stop = exec_wi(
                ctx,
                banks,
                &mut pcs[wi],
                wi as u32,
                lid,
                locals,
                races,
                phase,
                &mut stats,
            )?;
            match stop {
                WiStop::Done => {
                    done[wi] = true;
                    n_done += 1;
                }
                WiStop::Barrier(site) => {
                    n_barrier += 1;
                    match arrived {
                        None => arrived = Some(site),
                        Some(prev) if prev == site => {}
                        Some(prev) => {
                            return Err(RuntimeError::BarrierDivergence {
                                detail: format!(
                                "work-item {wi} reached barrier site {site}, others reached {prev}"
                            ),
                            })
                        }
                    }
                }
            }
        }
        if n_barrier > 0 {
            if n_done > 0 {
                return Err(RuntimeError::BarrierDivergence {
                    detail: format!(
                        "{n_barrier} work-item(s) waiting at a barrier while {n_done} returned"
                    ),
                });
            }
            stats.barriers += 1;
            phase += 1;
            for rt in races.iter_mut() {
                rt.new_phase();
            }
            continue;
        }
        debug_assert_eq!(n_done, nwi);
        break;
    }
    Ok(stats)
}

/// Run the whole NDRange on the fast plan, groups in parallel.
///
/// Groups are partitioned into contiguous ranges (one per worker); each
/// worker owns a private [`FastArena`] reused across its groups. Stats
/// are merged in range order so the sum is deterministic; on failure the
/// error from the lowest-numbered failing range wins, matching the
/// sequential reference's "first group to fail" attribution as closely
/// as a parallel schedule allows.
pub(crate) fn launch(
    kernel: &CompiledKernel,
    fk: &FastKernel,
    geom: &Geometry,
    init_regs: &[Value],
    bufs: &mut [BufData],
    opts: &ExecOptions,
) -> Result<DynStats, RuntimeError> {
    let n_groups = geom.groups[0] * geom.groups[1];
    let grace = (opts.detect_races && n_groups > 1).then(|| GlobalRaceTables::new(bufs));
    let seeds = build_seeds(fk, init_regs);
    let shared = SharedBufs::new(bufs);
    let results = clgemm_shim::par::par_range_map(n_groups, |range| {
        let mut arena = FastArena::default();
        let mut acc = DynStats::default();
        for g in range {
            let ctx = GroupCtx {
                kernel,
                fk,
                group: [g % geom.groups[0], g / geom.groups[0]],
                group_linear: g as u32,
                geom,
                bufs: &shared,
                opts,
                grace: grace.as_ref(),
            };
            match run_group_fast(&ctx, &seeds, &mut arena) {
                Ok(s) => acc.add(&s),
                Err(e) => return Err(e),
            }
        }
        Ok(acc)
    });
    let mut stats = DynStats::default();
    for r in results {
        stats.add(&r?);
    }
    Ok(stats)
}

/// Execute one work-item until it stops at a barrier or returns.
///
/// Accounting parity with the reference: the loop head charges one step
/// and one `instrs` per dispatched op; fused superinstructions then add
/// the counts of the extra source instructions they cover, so `DynStats`
/// and step-limit outcomes are identical to the reference interpreter's.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn exec_wi(
    ctx: &GroupCtx<'_>,
    banks: Banks<'_>,
    pc_slot: &mut u32,
    wi: u32,
    lid: [usize; 2],
    locals: &mut [LocalBuf],
    races: &mut [RaceTable],
    phase: u32,
    stats: &mut DynStats,
) -> Result<WiStop, RuntimeError> {
    let Banks {
        i: ib,
        f: fb,
        d: db,
        v32: vb32,
        v64: vb64,
    } = banks;
    let ops: &[FOp] = &ctx.fk.ops;
    let kernel = ctx.kernel;
    let glin = ctx.group_linear;
    let mut pc = *pc_slot as usize;
    let mut steps: u64 = 0;
    let mut local = DynStats::default();
    loop {
        if steps >= ctx.opts.step_limit {
            return Err(RuntimeError::Internal(format!(
                "work-item exceeded step limit {} (non-terminating kernel?)",
                ctx.opts.step_limit
            )));
        }
        let op = &ops[pc];
        pc += 1;
        steps += 1;
        local.instrs += 1;
        match op {
            // -- constants and moves --
            FOp::IConst { d, v } => ib[*d as usize] = *v,
            FOp::F32Const { d, v } => fb[*d as usize] = *v,
            FOp::F64Const { d, v } => db[*d as usize] = *v,
            FOp::V32Const { d, w, v } => {
                let d = *d as usize;
                vb32[d..d + *w as usize].copy_from_slice(&v[..*w as usize]);
            }
            FOp::V64Const { d, w, v } => {
                let d = *d as usize;
                vb64[d..d + *w as usize].copy_from_slice(&v[..*w as usize]);
            }
            FOp::IMov { d, s } => ib[*d as usize] = ib[*s as usize],
            FOp::F32Mov { d, s } => fb[*d as usize] = fb[*s as usize],
            FOp::F64Mov { d, s } => db[*d as usize] = db[*s as usize],
            FOp::V32Mov { d, s, w } => {
                let (d, s) = (*d as usize, *s as usize);
                vb32.copy_within(s..s + *w as usize, d);
            }
            FOp::V64Mov { d, s, w } => {
                let (d, s) = (*d as usize, *s as usize);
                vb64.copy_within(s..s + *w as usize, d);
            }
            // -- arithmetic --
            FOp::IBin { op, d, a, b } => {
                local.alu += 1;
                ib[*d as usize] = i_bin(*op, ib[*a as usize], ib[*b as usize])?;
            }
            FOp::ICmp { op, d, a, b } => {
                local.alu += 1;
                ib[*d as usize] = i64::from(cmp_i(*op, ib[*a as usize], ib[*b as usize]));
            }
            FOp::F32Cmp { op, d, a, b } => {
                local.alu += 1;
                ib[*d as usize] = i64::from(cmp_f(
                    *op,
                    f64::from(fb[*a as usize]),
                    f64::from(fb[*b as usize]),
                ));
            }
            FOp::F64Cmp { op, d, a, b } => {
                local.alu += 1;
                ib[*d as usize] = i64::from(cmp_f(*op, db[*a as usize], db[*b as usize]));
            }
            FOp::ILogic { and, d, a, b } => {
                local.alu += 1;
                let (x, y) = (ib[*a as usize] != 0, ib[*b as usize] != 0);
                ib[*d as usize] = i64::from(if *and { x && y } else { x || y });
            }
            FOp::F32Bin { op, d, a, b } => {
                local.alu += 1;
                fb[*d as usize] =
                    f_bin(*op, f64::from(fb[*a as usize]), f64::from(fb[*b as usize])) as f32;
            }
            FOp::F64Bin { op, d, a, b } => {
                local.alu += 1;
                db[*d as usize] = f_bin(*op, db[*a as usize], db[*b as usize]);
            }
            FOp::V32Bin { op, d, a, b, w } => {
                local.alu += 1;
                let (d, a, b) = (*d as usize, *a as usize, *b as usize);
                for k in 0..*w as usize {
                    vb32[d + k] = f_bin(*op, f64::from(vb32[a + k]), f64::from(vb32[b + k])) as f32;
                }
            }
            FOp::V64Bin { op, d, a, b, w } => {
                local.alu += 1;
                let (d, a, b) = (*d as usize, *a as usize, *b as usize);
                for k in 0..*w as usize {
                    vb64[d + k] = f_bin(*op, vb64[a + k], vb64[b + k]);
                }
            }
            FOp::INeg { d, a } => {
                local.alu += 1;
                ib[*d as usize] = -ib[*a as usize];
            }
            FOp::F32Neg { d, a } => {
                local.alu += 1;
                fb[*d as usize] = -fb[*a as usize];
            }
            FOp::F64Neg { d, a } => {
                local.alu += 1;
                db[*d as usize] = -db[*a as usize];
            }
            FOp::V32Neg { d, a, w } => {
                local.alu += 1;
                let (d, a) = (*d as usize, *a as usize);
                for k in 0..*w as usize {
                    vb32[d + k] = -vb32[a + k];
                }
            }
            FOp::V64Neg { d, a, w } => {
                local.alu += 1;
                let (d, a) = (*d as usize, *a as usize);
                for k in 0..*w as usize {
                    vb64[d + k] = -vb64[a + k];
                }
            }
            FOp::BNot { d, a } => {
                local.alu += 1;
                ib[*d as usize] = i64::from(ib[*a as usize] == 0);
            }
            // -- conversions --
            FOp::I2F32 { d, a } => fb[*d as usize] = ib[*a as usize] as f32,
            FOp::I2F64 { d, a } => db[*d as usize] = ib[*a as usize] as f64,
            FOp::I2B { d, a } => ib[*d as usize] = i64::from(ib[*a as usize] != 0),
            FOp::F32ToI { d, a } => ib[*d as usize] = fb[*a as usize] as i64,
            FOp::F32To64 { d, a } => db[*d as usize] = f64::from(fb[*a as usize]),
            FOp::F64ToI { d, a } => ib[*d as usize] = db[*a as usize] as i64,
            FOp::F64To32 { d, a } => fb[*d as usize] = db[*a as usize] as f32,
            FOp::V32To64 { d, a, w } => {
                let (d, a) = (*d as usize, *a as usize);
                for k in 0..*w as usize {
                    vb64[d + k] = f64::from(vb32[a + k]);
                }
            }
            FOp::V64To32 { d, a, w } => {
                let (d, a) = (*d as usize, *a as usize);
                for k in 0..*w as usize {
                    vb32[d + k] = vb64[a + k] as f32;
                }
            }
            FOp::Bcast32 { d, a, w } => {
                let (d, x) = (*d as usize, fb[*a as usize]);
                vb32[d..d + *w as usize].fill(x);
            }
            FOp::Bcast64 { d, a, w } => {
                let (d, x) = (*d as usize, db[*a as usize]);
                vb64[d..d + *w as usize].fill(x);
            }
            FOp::BcastI { d, a, w } => {
                // Reference quirk: Int broadcast lands in a V64 register.
                let (d, x) = (*d as usize, ib[*a as usize] as f64);
                vb64[d..d + *w as usize].fill(x);
            }
            FOp::Build32 { d, parts } => {
                let d = *d as usize;
                for (k, p) in parts.iter().enumerate() {
                    vb32[d + k] = fb[*p as usize];
                }
            }
            FOp::Build64 { d, parts } => {
                let d = *d as usize;
                for (k, p) in parts.iter().enumerate() {
                    vb64[d + k] = db[*p as usize];
                }
            }
            FOp::Extr32 { d, s } => fb[*d as usize] = vb32[*s as usize],
            FOp::Extr64 { d, s } => db[*d as usize] = vb64[*s as usize],
            FOp::Ins32 { v, s } => vb32[*v as usize] = fb[*s as usize],
            FOp::Ins64 { v, s } => vb64[*v as usize] = db[*s as usize],
            // -- mad / math --
            FOp::Mad32 { d, a, b, c } => {
                local.mads += 1;
                fb[*d as usize] = fb[*a as usize].mul_add(fb[*b as usize], fb[*c as usize]);
            }
            FOp::Mad64 { d, a, b, c } => {
                local.mads += 1;
                db[*d as usize] = db[*a as usize].mul_add(db[*b as usize], db[*c as usize]);
            }
            FOp::VMad32 { d, a, b, c, w } => {
                local.mads += u64::from(*w);
                let (d, a, b, c) = (*d as usize, *a as usize, *b as usize, *c as usize);
                for k in 0..*w as usize {
                    vb32[d + k] = vb32[a + k].mul_add(vb32[b + k], vb32[c + k]);
                }
            }
            FOp::VMad64 { d, a, b, c, w } => {
                local.mads += u64::from(*w);
                let (d, a, b, c) = (*d as usize, *a as usize, *b as usize, *c as usize);
                for k in 0..*w as usize {
                    vb64[d + k] = vb64[a + k].mul_add(vb64[b + k], vb64[c + k]);
                }
            }
            FOp::MathI { f, n, d, a, b, c } => {
                local.alu += 1;
                let (x, y, z) = (ib[*a as usize], ib[*b as usize], ib[*c as usize]);
                ib[*d as usize] = match (*n, f) {
                    (2, MathFunc::Min) => x.min(y),
                    (2, MathFunc::Max) => x.max(y),
                    (3, MathFunc::Clamp) => x.clamp(y, z),
                    _ => return Err(RuntimeError::Internal("fast plan int math mismatch".into())),
                };
            }
            FOp::Math32 { f, n, d, a, b, c } => {
                local.alu += 1;
                let (x, y, z) = (fb[*a as usize], fb[*b as usize], fb[*c as usize]);
                fb[*d as usize] = match (*n, f) {
                    (2, MathFunc::Min | MathFunc::Fmin) => x.min(y),
                    (2, MathFunc::Max | MathFunc::Fmax) => x.max(y),
                    (3, MathFunc::Clamp) => x.clamp(y, z),
                    (1, MathFunc::Fabs) => x.abs(),
                    (1, MathFunc::Sqrt) => x.sqrt(),
                    (1, MathFunc::Exp) => x.exp(),
                    (1, MathFunc::Log) => x.ln(),
                    (1, MathFunc::NativeRecip) => 1.0 / x,
                    _ => return Err(RuntimeError::Internal("fast plan f32 math mismatch".into())),
                };
            }
            FOp::Math64 { f, n, d, a, b, c } => {
                local.alu += 1;
                let (x, y, z) = (db[*a as usize], db[*b as usize], db[*c as usize]);
                db[*d as usize] = match (*n, f) {
                    (2, MathFunc::Min | MathFunc::Fmin) => x.min(y),
                    (2, MathFunc::Max | MathFunc::Fmax) => x.max(y),
                    (3, MathFunc::Clamp) => x.clamp(y, z),
                    (1, MathFunc::Fabs) => x.abs(),
                    (1, MathFunc::Sqrt) => x.sqrt(),
                    (1, MathFunc::Exp) => x.exp(),
                    (1, MathFunc::Log) => x.ln(),
                    (1, MathFunc::NativeRecip) => 1.0 / x,
                    _ => return Err(RuntimeError::Internal("fast plan f64 math mismatch".into())),
                };
            }
            // -- work-item queries --
            FOp::FWi { f, d, dim } => {
                let dm = ib[*dim as usize] as usize;
                if dm > 2 {
                    return Err(RuntimeError::Internal(format!(
                        "dimension {dm} out of range"
                    )));
                }
                let val = if dm >= 2 {
                    match f {
                        WiFunc::GlobalSize | WiFunc::LocalSize | WiFunc::NumGroups => 1,
                        _ => 0,
                    }
                } else {
                    match f {
                        WiFunc::GlobalId => ctx.group[dm] * ctx.geom.local[dm] + lid[dm],
                        WiFunc::LocalId => lid[dm],
                        WiFunc::GroupId => ctx.group[dm],
                        WiFunc::GlobalSize => ctx.geom.global[dm],
                        WiFunc::LocalSize => ctx.geom.local[dm],
                        WiFunc::NumGroups => ctx.geom.groups[dm],
                    }
                };
                ib[*d as usize] = val as i64;
            }
            // -- global memory --
            FOp::LdG32 { d, buf, idx } => {
                let b = *buf as usize;
                let i = ctx.bufs.check(kernel, b, ib[*idx as usize], 1)?;
                g_race_r(kernel, ctx.grace, b, i, 1, glin)?;
                fb[*d as usize] = unsafe { ctx.bufs.ld_f32(b, i) };
                local.mem_global_instrs += 1;
                local.mem_global_bytes += 4;
            }
            FOp::LdG64 { d, buf, idx } => {
                let b = *buf as usize;
                let i = ctx.bufs.check(kernel, b, ib[*idx as usize], 1)?;
                g_race_r(kernel, ctx.grace, b, i, 1, glin)?;
                db[*d as usize] = unsafe { ctx.bufs.ld_f64(b, i) };
                local.mem_global_instrs += 1;
                local.mem_global_bytes += 8;
            }
            FOp::LdGI { d, buf, idx } => {
                let b = *buf as usize;
                let i = ctx.bufs.check(kernel, b, ib[*idx as usize], 1)?;
                g_race_r(kernel, ctx.grace, b, i, 1, glin)?;
                ib[*d as usize] = i64::from(unsafe { ctx.bufs.ld_i32(b, i) });
                local.mem_global_instrs += 1;
                local.mem_global_bytes += 4;
            }
            FOp::LdGV32 { d, buf, idx, w } => {
                let b = *buf as usize;
                let i = ctx.bufs.check(kernel, b, ib[*idx as usize], *w)?;
                g_race_r(kernel, ctx.grace, b, i, *w, glin)?;
                let d = *d as usize;
                for k in 0..*w as usize {
                    vb32[d + k] = unsafe { ctx.bufs.ld_f32(b, i + k) };
                }
                local.mem_global_instrs += 1;
                local.mem_global_bytes += 4 * u64::from(*w);
            }
            FOp::LdGV64 { d, buf, idx, w } => {
                let b = *buf as usize;
                let i = ctx.bufs.check(kernel, b, ib[*idx as usize], *w)?;
                g_race_r(kernel, ctx.grace, b, i, *w, glin)?;
                let d = *d as usize;
                for k in 0..*w as usize {
                    vb64[d + k] = unsafe { ctx.bufs.ld_f64(b, i + k) };
                }
                local.mem_global_instrs += 1;
                local.mem_global_bytes += 8 * u64::from(*w);
            }
            FOp::StG32 { buf, idx, s } => {
                let b = *buf as usize;
                let i = ctx.bufs.check(kernel, b, ib[*idx as usize], 1)?;
                g_race_w(kernel, ctx.grace, b, i, 1, glin)?;
                unsafe { ctx.bufs.st_f32(b, i, fb[*s as usize]) };
                local.mem_global_instrs += 1;
                local.mem_global_bytes += 4;
            }
            FOp::StG64 { buf, idx, s } => {
                let b = *buf as usize;
                let i = ctx.bufs.check(kernel, b, ib[*idx as usize], 1)?;
                g_race_w(kernel, ctx.grace, b, i, 1, glin)?;
                unsafe { ctx.bufs.st_f64(b, i, db[*s as usize]) };
                local.mem_global_instrs += 1;
                local.mem_global_bytes += 8;
            }
            FOp::StGI { buf, idx, s } => {
                let b = *buf as usize;
                let i = ctx.bufs.check(kernel, b, ib[*idx as usize], 1)?;
                g_race_w(kernel, ctx.grace, b, i, 1, glin)?;
                unsafe { ctx.bufs.st_i32(b, i, ib[*s as usize] as i32) };
                local.mem_global_instrs += 1;
                local.mem_global_bytes += 4;
            }
            FOp::StGV32 { buf, idx, s, w } => {
                let b = *buf as usize;
                let i = ctx.bufs.check(kernel, b, ib[*idx as usize], *w)?;
                g_race_w(kernel, ctx.grace, b, i, *w, glin)?;
                let s = *s as usize;
                for k in 0..*w as usize {
                    unsafe { ctx.bufs.st_f32(b, i + k, vb32[s + k]) };
                }
                local.mem_global_instrs += 1;
                local.mem_global_bytes += 4 * u64::from(*w);
            }
            FOp::StGV64 { buf, idx, s, w } => {
                let b = *buf as usize;
                let i = ctx.bufs.check(kernel, b, ib[*idx as usize], *w)?;
                g_race_w(kernel, ctx.grace, b, i, *w, glin)?;
                let s = *s as usize;
                for k in 0..*w as usize {
                    unsafe { ctx.bufs.st_f64(b, i + k, vb64[s + k]) };
                }
                local.mem_global_instrs += 1;
                local.mem_global_bytes += 8 * u64::from(*w);
            }
            // -- local memory --
            FOp::LdL32 { d, arr, idx } => {
                let a = *arr as usize;
                let i = l_check(kernel, locals, a, ib[*idx as usize], 1)?;
                l_race_r(kernel, races, a, i, 1, wi, phase)?;
                let LocalBuf::F32(v) = &locals[a] else {
                    return Err(RuntimeError::Internal("fast local type mismatch".into()));
                };
                fb[*d as usize] = v[i];
                local.mem_local_instrs += 1;
                local.mem_local_bytes += 4;
            }
            FOp::LdL64 { d, arr, idx } => {
                let a = *arr as usize;
                let i = l_check(kernel, locals, a, ib[*idx as usize], 1)?;
                l_race_r(kernel, races, a, i, 1, wi, phase)?;
                let LocalBuf::F64(v) = &locals[a] else {
                    return Err(RuntimeError::Internal("fast local type mismatch".into()));
                };
                db[*d as usize] = v[i];
                local.mem_local_instrs += 1;
                local.mem_local_bytes += 8;
            }
            FOp::LdLI { d, arr, idx } => {
                let a = *arr as usize;
                let i = l_check(kernel, locals, a, ib[*idx as usize], 1)?;
                l_race_r(kernel, races, a, i, 1, wi, phase)?;
                let LocalBuf::I32(v) = &locals[a] else {
                    return Err(RuntimeError::Internal("fast local type mismatch".into()));
                };
                ib[*d as usize] = v[i];
                local.mem_local_instrs += 1;
                local.mem_local_bytes += 8;
            }
            FOp::LdLV32 { d, arr, idx, w } => {
                let a = *arr as usize;
                let i = l_check(kernel, locals, a, ib[*idx as usize], *w)?;
                l_race_r(kernel, races, a, i, *w, wi, phase)?;
                let LocalBuf::F32(v) = &locals[a] else {
                    return Err(RuntimeError::Internal("fast local type mismatch".into()));
                };
                let d = *d as usize;
                vb32[d..d + *w as usize].copy_from_slice(&v[i..i + *w as usize]);
                local.mem_local_instrs += 1;
                local.mem_local_bytes += 4 * u64::from(*w);
            }
            FOp::LdLV64 { d, arr, idx, w } => {
                let a = *arr as usize;
                let i = l_check(kernel, locals, a, ib[*idx as usize], *w)?;
                l_race_r(kernel, races, a, i, *w, wi, phase)?;
                let LocalBuf::F64(v) = &locals[a] else {
                    return Err(RuntimeError::Internal("fast local type mismatch".into()));
                };
                let d = *d as usize;
                vb64[d..d + *w as usize].copy_from_slice(&v[i..i + *w as usize]);
                local.mem_local_instrs += 1;
                local.mem_local_bytes += 8 * u64::from(*w);
            }
            FOp::StL32 { arr, idx, s } => {
                let a = *arr as usize;
                let i = l_check(kernel, locals, a, ib[*idx as usize], 1)?;
                l_race_w(kernel, races, a, i, 1, wi, phase)?;
                let LocalBuf::F32(v) = &mut locals[a] else {
                    return Err(RuntimeError::Internal("fast local type mismatch".into()));
                };
                v[i] = fb[*s as usize];
                local.mem_local_instrs += 1;
                local.mem_local_bytes += 4;
            }
            FOp::StL64 { arr, idx, s } => {
                let a = *arr as usize;
                let i = l_check(kernel, locals, a, ib[*idx as usize], 1)?;
                l_race_w(kernel, races, a, i, 1, wi, phase)?;
                let LocalBuf::F64(v) = &mut locals[a] else {
                    return Err(RuntimeError::Internal("fast local type mismatch".into()));
                };
                v[i] = db[*s as usize];
                local.mem_local_instrs += 1;
                local.mem_local_bytes += 8;
            }
            FOp::StLI { arr, idx, s } => {
                let a = *arr as usize;
                let i = l_check(kernel, locals, a, ib[*idx as usize], 1)?;
                l_race_w(kernel, races, a, i, 1, wi, phase)?;
                let LocalBuf::I32(v) = &mut locals[a] else {
                    return Err(RuntimeError::Internal("fast local type mismatch".into()));
                };
                v[i] = ib[*s as usize];
                local.mem_local_instrs += 1;
                local.mem_local_bytes += 8;
            }
            FOp::StLV32 { arr, idx, s, w } => {
                let a = *arr as usize;
                let i = l_check(kernel, locals, a, ib[*idx as usize], *w)?;
                l_race_w(kernel, races, a, i, *w, wi, phase)?;
                let LocalBuf::F32(v) = &mut locals[a] else {
                    return Err(RuntimeError::Internal("fast local type mismatch".into()));
                };
                let s = *s as usize;
                v[i..i + *w as usize].copy_from_slice(&vb32[s..s + *w as usize]);
                local.mem_local_instrs += 1;
                local.mem_local_bytes += 4 * u64::from(*w);
            }
            FOp::StLV64 { arr, idx, s, w } => {
                let a = *arr as usize;
                let i = l_check(kernel, locals, a, ib[*idx as usize], *w)?;
                l_race_w(kernel, races, a, i, *w, wi, phase)?;
                let LocalBuf::F64(v) = &mut locals[a] else {
                    return Err(RuntimeError::Internal("fast local type mismatch".into()));
                };
                let s = *s as usize;
                v[i..i + *w as usize].copy_from_slice(&vb64[s..s + *w as usize]);
                local.mem_local_instrs += 1;
                local.mem_local_bytes += 8 * u64::from(*w);
            }
            // -- control flow --
            FOp::FJump { t } => pc = *t as usize,
            FOp::FJz { c, t } => {
                if ib[*c as usize] == 0 {
                    pc = *t as usize;
                }
            }
            FOp::SelI { d, c, a, b } => {
                ib[*d as usize] = if ib[*c as usize] != 0 {
                    ib[*a as usize]
                } else {
                    ib[*b as usize]
                };
            }
            FOp::Sel32 { d, c, a, b } => {
                fb[*d as usize] = if ib[*c as usize] != 0 {
                    fb[*a as usize]
                } else {
                    fb[*b as usize]
                };
            }
            FOp::Sel64 { d, c, a, b } => {
                db[*d as usize] = if ib[*c as usize] != 0 {
                    db[*a as usize]
                } else {
                    db[*b as usize]
                };
            }
            FOp::SelV32 { d, c, a, b, w } => {
                let src = if ib[*c as usize] != 0 { *a } else { *b } as usize;
                vb32.copy_within(src..src + *w as usize, *d as usize);
            }
            FOp::SelV64 { d, c, a, b, w } => {
                let src = if ib[*c as usize] != 0 { *a } else { *b } as usize;
                vb64.copy_within(src..src + *w as usize, *d as usize);
            }
            FOp::FBarrier { site } => {
                stats.add(&local);
                *pc_slot = pc as u32;
                return Ok(WiStop::Barrier(*site));
            }
            FOp::FRet => {
                stats.add(&local);
                *pc_slot = pc as u32;
                return Ok(WiStop::Done);
            }
            // -- fused superinstructions --
            FOp::CmpJzI { op, d, a, b, t } => {
                steps += 1;
                local.instrs += 1;
                local.alu += 1;
                let r = cmp_i(*op, ib[*a as usize], ib[*b as usize]);
                ib[*d as usize] = i64::from(r);
                if !r {
                    pc = *t as usize;
                }
            }
            FOp::CmpJz32 { op, d, a, b, t } => {
                steps += 1;
                local.instrs += 1;
                local.alu += 1;
                let r = cmp_f(*op, f64::from(fb[*a as usize]), f64::from(fb[*b as usize]));
                ib[*d as usize] = i64::from(r);
                if !r {
                    pc = *t as usize;
                }
            }
            FOp::CmpJz64 { op, d, a, b, t } => {
                steps += 1;
                local.instrs += 1;
                local.alu += 1;
                let r = cmp_f(*op, db[*a as usize], db[*b as usize]);
                ib[*d as usize] = i64::from(r);
                if !r {
                    pc = *t as usize;
                }
            }
            FOp::IConstCmpJz {
                v,
                c,
                op,
                d,
                a,
                b,
                t,
            } => {
                steps += 2;
                local.instrs += 2;
                local.alu += 1;
                // Const writes first: `a`/`b` may alias `c`.
                ib[*c as usize] = *v;
                let r = cmp_i(*op, ib[*a as usize], ib[*b as usize]);
                ib[*d as usize] = i64::from(r);
                if !r {
                    pc = *t as usize;
                }
            }
            FOp::IConstBin {
                v,
                c,
                op,
                d,
                a,
                b,
                mv,
            } => {
                local.alu += 1;
                ib[*c as usize] = *v;
                let r = i_bin(*op, ib[*a as usize], ib[*b as usize])?;
                ib[*d as usize] = r;
                if *mv != NONE {
                    ib[*mv as usize] = r;
                    steps += 2;
                    local.instrs += 2;
                } else {
                    steps += 1;
                    local.instrs += 1;
                }
            }
            FOp::MulAdd32 {
                ma,
                mb,
                t,
                aa,
                ab,
                d,
            } => {
                steps += 1;
                local.instrs += 1;
                local.alu += 2;
                // Two separate roundings, exactly as the unfused pair.
                fb[*t as usize] =
                    (f64::from(fb[*ma as usize]) * f64::from(fb[*mb as usize])) as f32;
                fb[*d as usize] =
                    (f64::from(fb[*aa as usize]) + f64::from(fb[*ab as usize])) as f32;
            }
            FOp::MulAdd64 {
                ma,
                mb,
                t,
                aa,
                ab,
                d,
            } => {
                steps += 1;
                local.instrs += 1;
                local.alu += 2;
                db[*t as usize] = db[*ma as usize] * db[*mb as usize];
                db[*d as usize] = db[*aa as usize] + db[*ab as usize];
            }
            FOp::VMulAdd32 {
                ma,
                mb,
                t,
                aa,
                ab,
                d,
                w,
            } => {
                steps += 1;
                local.instrs += 1;
                local.alu += 2;
                let (ma, mb, t) = (*ma as usize, *mb as usize, *t as usize);
                let (aa, ab, d) = (*aa as usize, *ab as usize, *d as usize);
                // Finish the mul stage before the add reads: `aa`/`ab`
                // may alias `t`.
                for k in 0..*w as usize {
                    vb32[t + k] = (f64::from(vb32[ma + k]) * f64::from(vb32[mb + k])) as f32;
                }
                for k in 0..*w as usize {
                    vb32[d + k] = (f64::from(vb32[aa + k]) + f64::from(vb32[ab + k])) as f32;
                }
            }
            FOp::VMulAdd64 {
                ma,
                mb,
                t,
                aa,
                ab,
                d,
                w,
            } => {
                steps += 1;
                local.instrs += 1;
                local.alu += 2;
                let (ma, mb, t) = (*ma as usize, *mb as usize, *t as usize);
                let (aa, ab, d) = (*aa as usize, *ab as usize, *d as usize);
                for k in 0..*w as usize {
                    vb64[t + k] = vb64[ma + k] * vb64[mb + k];
                }
                for k in 0..*w as usize {
                    vb64[d + k] = vb64[aa + k] + vb64[ab + k];
                }
            }
            FOp::LdG32To64 { d, buf, idx, dc } => {
                steps += 1;
                local.instrs += 1;
                let b = *buf as usize;
                let i = ctx.bufs.check(kernel, b, ib[*idx as usize], 1)?;
                g_race_r(kernel, ctx.grace, b, i, 1, glin)?;
                let x = unsafe { ctx.bufs.ld_f32(b, i) };
                fb[*d as usize] = x;
                db[*dc as usize] = f64::from(x);
                local.mem_global_instrs += 1;
                local.mem_global_bytes += 4;
            }
            FOp::LdG64To32 { d, buf, idx, dc } => {
                steps += 1;
                local.instrs += 1;
                let b = *buf as usize;
                let i = ctx.bufs.check(kernel, b, ib[*idx as usize], 1)?;
                g_race_r(kernel, ctx.grace, b, i, 1, glin)?;
                let x = unsafe { ctx.bufs.ld_f64(b, i) };
                db[*d as usize] = x;
                fb[*dc as usize] = x as f32;
                local.mem_global_instrs += 1;
                local.mem_global_bytes += 8;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Arg, NdRange, Program};
    use crate::vm::Engine;

    const GEMM_SRC: &str = r#"
        __kernel void gemm(__global const float* a, __global const float* b,
                           __global float* c, int n) {
            int i = get_global_id(0);
            int j = get_global_id(1);
            float acc = 0.0f;
            for (int k = 0; k < n; k = k + 1) {
                acc = acc + a[i*n + k] * b[k*n + j];
            }
            c[i*n + j] = acc;
        }
    "#;

    type EngineRun = (Result<DynStats, RuntimeError>, Vec<BufData>);

    fn run_both(
        src: &str,
        name: &str,
        nd: NdRange,
        args: &[Arg],
        bufs: &[BufData],
    ) -> (EngineRun, EngineRun) {
        let p = Program::compile(src).unwrap();
        let k = p.kernel(name).unwrap();
        let mut fast_bufs = bufs.to_vec();
        let fast = k.launch(nd, args, &mut fast_bufs, &ExecOptions::default());
        let mut ref_bufs = bufs.to_vec();
        let reference = k.launch(nd, args, &mut ref_bufs, &ExecOptions::reference());
        ((fast, fast_bufs), (reference, ref_bufs))
    }

    #[test]
    fn gemm_kernel_specializes_with_fused_ops() {
        let p = Program::compile(GEMM_SRC).unwrap();
        let k = p.kernel("gemm").unwrap();
        let fk = k
            .compiled()
            .fast
            .as_ref()
            .expect("GEMM kernel should take the fast path");
        assert!(fk.fused_count() > 0, "expected fused superinstructions");
        assert!(
            fk.ops
                .iter()
                .any(|op| matches!(op, FOp::IConstBin { .. } | FOp::IConstCmpJz { .. })),
            "loop counter/index arithmetic should fuse: {:?}",
            fk.ops
        );
    }

    #[test]
    fn fast_and_reference_agree_on_gemm() {
        let n = 8usize;
        let a: Vec<f32> = (0..n * n).map(|i| (i as f32) * 0.25 - 3.0).collect();
        let b: Vec<f32> = (0..n * n).map(|i| 1.0 / (i as f32 + 1.0)).collect();
        let bufs = vec![
            BufData::F32(a),
            BufData::F32(b),
            BufData::F32(vec![0.0; n * n]),
        ];
        let args = [Arg::Buf(0), Arg::Buf(1), Arg::Buf(2), Arg::I32(n as i32)];
        let ((fast, fb), (reference, rb)) =
            run_both(GEMM_SRC, "gemm", NdRange::d2([n, n], [4, 2]), &args, &bufs);
        assert_eq!(fast.unwrap(), reference.unwrap(), "DynStats must match");
        assert_eq!(fb, rb, "output buffers must be bit-identical");
    }

    #[test]
    fn fast_and_reference_agree_with_locals_and_barriers() {
        let src = r#"
            __kernel void share(__global const double* x, __global double* y, double s) {
                __local double buf[4];
                int l = get_local_id(0);
                int g = get_global_id(0);
                buf[l] = x[g] * s;
                barrier(1);
                y[g] = buf[3 - l] + fabs(x[g]);
            }
        "#;
        let bufs = vec![
            BufData::F64(vec![-1.5, 2.0, 3.25, -4.0, 5.0, 6.5, -7.0, 8.0]),
            BufData::F64(vec![0.0; 8]),
        ];
        let args = [Arg::Buf(0), Arg::Buf(1), Arg::F64(1.75)];
        let ((fast, fb), (reference, rb)) = run_both(src, "share", NdRange::d1(8, 4), &args, &bufs);
        assert_eq!(fast.unwrap(), reference.unwrap());
        assert_eq!(fb, rb);
    }

    #[test]
    fn barrier_divergence_fails_identically() {
        let src = r#"
            __kernel void div(__global double* y) {
                int l = get_local_id(0);
                if (l == 0) { barrier(1); }
                y[get_global_id(0)] = (double)l;
            }
        "#;
        let bufs = vec![BufData::F64(vec![0.0; 4])];
        let ((fast, _), (reference, _)) =
            run_both(src, "div", NdRange::d1(4, 4), &[Arg::Buf(0)], &bufs);
        let (fe, re) = (fast.unwrap_err(), reference.unwrap_err());
        assert!(matches!(fe, RuntimeError::BarrierDivergence { .. }), "{fe}");
        assert_eq!(fe.to_string(), re.to_string());
    }

    #[test]
    fn step_limit_fails_identically() {
        let src = r#"
            __kernel void spin(__global double* y) {
                int i = 0;
                while (i < 10) { i = i * 0; }
                y[0] = (double)i;
            }
        "#;
        let p = Program::compile(src).unwrap();
        let k = p.kernel("spin").unwrap();
        let tight = |engine| ExecOptions {
            step_limit: 1000,
            engine,
            ..Default::default()
        };
        let mut bufs = vec![BufData::F64(vec![0.0])];
        let fe = k
            .launch(
                NdRange::d1(1, 1),
                &[Arg::Buf(0)],
                &mut bufs,
                &tight(Engine::Fast),
            )
            .unwrap_err();
        let re = k
            .launch(
                NdRange::d1(1, 1),
                &[Arg::Buf(0)],
                &mut bufs,
                &tight(Engine::Reference),
            )
            .unwrap_err();
        assert!(fe.to_string().contains("step limit"), "{fe}");
        assert_eq!(fe.to_string(), re.to_string());
    }

    #[test]
    fn inter_group_write_race_detected_on_both_engines() {
        let src = r#"
            __kernel void clash(__global double* y) {
                y[0] = (double)get_global_id(0);
            }
        "#;
        let bufs = vec![BufData::F64(vec![0.0])];
        let ((fast, _), (reference, _)) =
            run_both(src, "clash", NdRange::d1(4, 1), &[Arg::Buf(0)], &bufs);
        let fe = fast.unwrap_err();
        let re = reference.unwrap_err();
        assert!(matches!(fe, RuntimeError::GlobalRace { .. }), "{fe}");
        assert!(matches!(re, RuntimeError::GlobalRace { .. }), "{re}");
    }

    #[test]
    fn vector_kernel_agrees_across_engines() {
        let src = r#"
            __kernel void vscale(__global const float* x, __global float* y, float s) {
                int i = get_global_id(0);
                float4 v = vload4(i, x);
                float4 w = v * s + v;
                vstore4(w, i, y);
            }
        "#;
        let x: Vec<f32> = (0..32).map(|i| (i as f32) * 0.5 - 4.0).collect();
        let bufs = vec![BufData::F32(x), BufData::F32(vec![0.0; 32])];
        let args = [Arg::Buf(0), Arg::Buf(1), Arg::F32(0.125)];
        let ((fast, fb), (reference, rb)) =
            run_both(src, "vscale", NdRange::d1(8, 2), &args, &bufs);
        assert_eq!(fast.unwrap(), reference.unwrap());
        assert_eq!(fb, rb);
    }
}
