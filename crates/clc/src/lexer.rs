//! Tokeniser for the OpenCL C subset.
//!
//! Handles identifiers/keywords, integer and floating literals (including
//! the `f` suffix), all operators the generator emits, and `//` and
//! `/* */` comments. A tiny preprocessor handles object-like `#define`s
//! (the generator emits blocking factors as defines, as real GEMM
//! generators do).

use crate::error::{CompileError, Pos};
use std::collections::HashMap;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    IntLit(i64),
    FloatLit(f64, bool), // value, is_f32 (had `f` suffix)
    // punctuation and operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Dot,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    Question,
    Colon,
    PlusPlus,
    MinusMinus,
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::IntLit(v) => write!(f, "{v}"),
            Tok::FloatLit(v, s) => write!(f, "{v}{}", if *s { "f" } else { "" }),
            other => {
                let s = match other {
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Comma => ",",
                    Tok::Semi => ";",
                    Tok::Dot => ".",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    Tok::Assign => "=",
                    Tok::PlusAssign => "+=",
                    Tok::MinusAssign => "-=",
                    Tok::StarAssign => "*=",
                    Tok::SlashAssign => "/=",
                    Tok::Eq => "==",
                    Tok::Ne => "!=",
                    Tok::Lt => "<",
                    Tok::Gt => ">",
                    Tok::Le => "<=",
                    Tok::Ge => ">=",
                    Tok::AndAnd => "&&",
                    Tok::OrOr => "||",
                    Tok::Not => "!",
                    Tok::Amp => "&",
                    Tok::Pipe => "|",
                    Tok::Caret => "^",
                    Tok::Shl => "<<",
                    Tok::Shr => ">>",
                    Tok::Question => "?",
                    Tok::Colon => ":",
                    Tok::PlusPlus => "++",
                    Tok::MinusMinus => "--",
                    Tok::Eof => "<eof>",
                    _ => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub pos: Pos,
}

/// Strip comments and expand object-like `#define NAME TOKENS` macros.
///
/// Expansion is textual and non-recursive-safe for the simple macros the
/// generator emits (integer constants). `#pragma` lines are dropped.
pub fn preprocess(src: &str) -> Result<String, CompileError> {
    // Remove /* */ comments first (no nesting), then process lines.
    let mut no_block = String::with_capacity(src.len());
    let mut rest = src;
    while let Some(start) = rest.find("/*") {
        no_block.push_str(&rest[..start]);
        match rest[start + 2..].find("*/") {
            Some(end) => {
                // Preserve newlines inside the comment for positions.
                for ch in rest[start..start + 2 + end + 2].chars() {
                    if ch == '\n' {
                        no_block.push('\n');
                    }
                }
                rest = &rest[start + 2 + end + 2..];
            }
            None => {
                return Err(CompileError::new(
                    Pos { line: 1, col: 1 },
                    "unterminated block comment",
                ))
            }
        }
    }
    no_block.push_str(rest);

    let mut defines: HashMap<String, String> = HashMap::new();
    let mut out = String::with_capacity(no_block.len());
    for line in no_block.lines() {
        let code = match line.find("//") {
            Some(i) => &line[..i],
            None => line,
        };
        let trimmed = code.trim_start();
        if let Some(def) = trimmed.strip_prefix("#define") {
            let mut it = def.trim().splitn(2, char::is_whitespace);
            let name = it.next().unwrap_or("").trim();
            let body = it.next().unwrap_or("").trim();
            if name.is_empty() || name.contains('(') {
                return Err(CompileError::new(
                    Pos { line: 1, col: 1 },
                    format!("unsupported #define {name:?} (function-like macros not supported)"),
                ));
            }
            // Expand previously defined macros inside the body.
            defines.insert(name.to_string(), expand(body, &defines));
            out.push('\n');
            continue;
        }
        if trimmed.starts_with('#') {
            // #pragma OPENCL EXTENSION ... : enable, #ifdef-free sources only.
            out.push('\n');
            continue;
        }
        out.push_str(&expand(code, &defines));
        out.push('\n');
    }
    Ok(out)
}

/// Replace identifier occurrences of macro names.
fn expand(code: &str, defines: &HashMap<String, String>) -> String {
    if defines.is_empty() {
        return code.to_string();
    }
    let mut out = String::with_capacity(code.len());
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &code[start..i];
            match defines.get(word) {
                Some(body) => out.push_str(body),
                None => out.push_str(word),
            }
        } else {
            out.push(c);
            i += c.len_utf8();
        }
    }
    out
}

/// Tokenise preprocessed source.
pub fn lex(src: &str) -> Result<Vec<Spanned>, CompileError> {
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let bytes = src.as_bytes();
    let mut i = 0;

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            toks.push(Spanned {
                tok: $tok,
                pos: Pos { line, col },
            });
            i += $len;
            col += $len as u32;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = src[start..i].to_string();
            let len = (i - start) as u32;
            toks.push(Spanned {
                tok: Tok::Ident(word),
                pos: Pos { line, col },
            });
            col += len;
            continue;
        }
        if c.is_ascii_digit()
            || (c == '.' && i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit())
        {
            let start = i;
            let mut is_float = false;
            while i < bytes.len() {
                let d = bytes[i] as char;
                if d.is_ascii_digit() {
                    i += 1;
                } else if d == '.' && !is_float {
                    is_float = true;
                    i += 1;
                } else if (d == 'e' || d == 'E')
                    && i + 1 < bytes.len()
                    && ((bytes[i + 1] as char).is_ascii_digit()
                        || bytes[i + 1] == b'+'
                        || bytes[i + 1] == b'-')
                {
                    is_float = true;
                    i += 1;
                    if bytes[i] == b'+' || bytes[i] == b'-' {
                        i += 1;
                    }
                } else {
                    break;
                }
            }
            let text = &src[start..i];
            let mut f32_suffix = false;
            if i < bytes.len() && (bytes[i] == b'f' || bytes[i] == b'F') {
                f32_suffix = true;
                is_float = true;
                i += 1;
            }
            // Hex literals are not needed by the generator; reject the 0x
            // prefix explicitly for a clear message.
            if text.starts_with("0x") || text.starts_with("0X") {
                return Err(CompileError::new(
                    Pos { line, col },
                    "hex literals not supported",
                ));
            }
            let pos = Pos { line, col };
            let tok = if is_float {
                let v: f64 = text
                    .parse()
                    .map_err(|_| CompileError::new(pos, format!("bad float literal {text:?}")))?;
                Tok::FloatLit(v, f32_suffix)
            } else {
                let v: i64 = text
                    .parse()
                    .map_err(|_| CompileError::new(pos, format!("bad int literal {text:?}")))?;
                Tok::IntLit(v)
            };
            let len = (i - start) as u32;
            toks.push(Spanned { tok, pos });
            col += len;
            continue;
        }

        // Multi-char operators, longest first.
        let rest = &src[i..];
        // `get` (not slicing) so a multi-byte UTF-8 character one byte
        // ahead cannot split a char boundary.
        let two = rest.get(..2).unwrap_or("");
        let tok2 = match two {
            "+=" => Some(Tok::PlusAssign),
            "-=" => Some(Tok::MinusAssign),
            "*=" => Some(Tok::StarAssign),
            "/=" => Some(Tok::SlashAssign),
            "==" => Some(Tok::Eq),
            "!=" => Some(Tok::Ne),
            "<=" => Some(Tok::Le),
            ">=" => Some(Tok::Ge),
            "&&" => Some(Tok::AndAnd),
            "||" => Some(Tok::OrOr),
            "<<" => Some(Tok::Shl),
            ">>" => Some(Tok::Shr),
            "++" => Some(Tok::PlusPlus),
            "--" => Some(Tok::MinusMinus),
            _ => None,
        };
        if let Some(t) = tok2 {
            push!(t, 2);
            continue;
        }
        let tok1 = match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '{' => Tok::LBrace,
            '}' => Tok::RBrace,
            '[' => Tok::LBracket,
            ']' => Tok::RBracket,
            ',' => Tok::Comma,
            ';' => Tok::Semi,
            '.' => Tok::Dot,
            '+' => Tok::Plus,
            '-' => Tok::Minus,
            '*' => Tok::Star,
            '/' => Tok::Slash,
            '%' => Tok::Percent,
            '=' => Tok::Assign,
            '<' => Tok::Lt,
            '>' => Tok::Gt,
            '!' => Tok::Not,
            '&' => Tok::Amp,
            '|' => Tok::Pipe,
            '^' => Tok::Caret,
            '?' => Tok::Question,
            ':' => Tok::Colon,
            other => {
                return Err(CompileError::new(
                    Pos { line, col },
                    format!("unexpected character {other:?}"),
                ))
            }
        };
        push!(tok1, 1);
    }
    toks.push(Spanned {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(toks)
}

/// Preprocess then lex in one step.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, CompileError> {
    lex(&preprocess(src)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_identifiers_and_numbers() {
        let t = kinds("foo 42 3.5 2.0f 1e3 _bar");
        assert_eq!(
            t,
            vec![
                Tok::Ident("foo".into()),
                Tok::IntLit(42),
                Tok::FloatLit(3.5, false),
                Tok::FloatLit(2.0, true),
                Tok::FloatLit(1000.0, false),
                Tok::Ident("_bar".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_compound_operators() {
        let t = kinds("a += b && c <= d << 2");
        assert!(t.contains(&Tok::PlusAssign));
        assert!(t.contains(&Tok::AndAnd));
        assert!(t.contains(&Tok::Le));
        assert!(t.contains(&Tok::Shl));
    }

    #[test]
    fn strips_line_and_block_comments() {
        let t = kinds("a // comment\n/* multi\nline */ b");
        assert_eq!(
            t,
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn expands_defines() {
        let t = kinds("#define MWG 96\n#define HALF (MWG/2)\nint x = MWG + HALF;");
        assert!(t.contains(&Tok::IntLit(96)));
        // HALF expanded to (96/2)
        assert_eq!(t.iter().filter(|k| **k == Tok::IntLit(96)).count(), 2);
    }

    #[test]
    fn pragma_lines_are_dropped() {
        let t = kinds("#pragma OPENCL EXTENSION cl_khr_fp64 : enable\nx");
        assert_eq!(t, vec![Tok::Ident("x".into()), Tok::Eof]);
    }

    #[test]
    fn positions_track_lines() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn rejects_function_like_macros() {
        assert!(preprocess("#define F(x) x\n").is_err());
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(lex("a @ b").is_err());
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(preprocess("a /* b").is_err());
    }

    #[test]
    fn negative_exponent_float() {
        let t = kinds("1.5e-3");
        assert_eq!(t[0], Tok::FloatLit(0.0015, false));
    }
}
