//! Semantic analysis and type checking.
//!
//! Walks each kernel, resolves names to storage (value slots, buffer
//! parameters, local arrays), infers a [`Type`] for every expression and
//! enforces OpenCL C's rules for the supported subset (implicit
//! int→float promotion, scalar↔vector broadcasting in arithmetic,
//! assignability, builtin signatures, constant local-array sizes).

use crate::ast::*;
use crate::error::{CompileError, Pos};
use std::collections::HashMap;

/// Storage resolution of a name use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarRef {
    /// A private scalar/vector variable or value parameter: slot index in
    /// the work-item register file.
    Value(usize),
    /// A `__global` pointer parameter: index among the kernel's buffer
    /// parameters.
    Buffer(usize),
    /// A `__local` array declared in the kernel body.
    LocalArr(usize),
}

/// A value (non-pointer) kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueParam {
    pub name: String,
    pub ty: Type,
    pub slot: usize,
}

/// A buffer (pointer) kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferParam {
    pub name: String,
    pub base: Base,
    pub is_const: bool,
}

/// A `__local` array declared in a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalArray {
    pub name: String,
    pub base: Base,
    pub len: usize,
}

/// A checked kernel: AST plus all side tables the lowering needs.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedKernel {
    pub def: KernelDef,
    /// Type of every expression, indexed by `Expr::id`.
    pub expr_types: HashMap<u32, Type>,
    /// Resolution of every `Var` expression, indexed by `Expr::id`.
    pub resolutions: HashMap<u32, VarRef>,
    pub value_params: Vec<ValueParam>,
    pub buffer_params: Vec<BufferParam>,
    /// Parameter order as declared (true = buffer), for argument
    /// marshalling at launch time.
    pub param_order: Vec<bool>,
    pub local_arrays: Vec<LocalArray>,
    /// Number of value slots (variables + value params) per work-item.
    pub n_slots: usize,
}

/// A checked translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedUnit {
    pub kernels: Vec<CheckedKernel>,
}

/// Check a parsed unit.
pub fn check(unit: &Unit) -> Result<CheckedUnit, CompileError> {
    let mut kernels = Vec::with_capacity(unit.kernels.len());
    for k in &unit.kernels {
        kernels.push(check_kernel(k)?);
    }
    Ok(CheckedUnit { kernels })
}

struct Scope {
    /// name → (type, reference), innermost last.
    frames: Vec<HashMap<String, (Type, VarRef)>>,
}

impl Scope {
    fn new() -> Self {
        Scope {
            frames: vec![HashMap::new()],
        }
    }

    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn declare(&mut self, name: &str, ty: Type, r: VarRef, pos: Pos) -> Result<(), CompileError> {
        let top = self.frames.last_mut().expect("scope stack never empty");
        if top.contains_key(name) {
            return Err(CompileError::new(
                pos,
                format!("redeclaration of `{name}` in the same scope"),
            ));
        }
        top.insert(name.to_string(), (ty, r));
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<(Type, VarRef)> {
        self.frames.iter().rev().find_map(|f| f.get(name).copied())
    }
}

struct Checker {
    expr_types: HashMap<u32, Type>,
    resolutions: HashMap<u32, VarRef>,
    local_arrays: Vec<LocalArray>,
    n_slots: usize,
}

fn check_kernel(def: &KernelDef) -> Result<CheckedKernel, CompileError> {
    let mut ck = Checker {
        expr_types: HashMap::new(),
        resolutions: HashMap::new(),
        local_arrays: Vec::new(),
        n_slots: 0,
    };
    let mut scope = Scope::new();
    let mut value_params = Vec::new();
    let mut buffer_params = Vec::new();
    let mut param_order = Vec::new();

    for p in &def.params {
        match p.ty {
            Type::Ptr(AddrSpace::Global, base, is_const) => {
                let idx = buffer_params.len();
                scope.declare(&p.name, p.ty, VarRef::Buffer(idx), def.pos)?;
                buffer_params.push(BufferParam {
                    name: p.name.clone(),
                    base,
                    is_const,
                });
                param_order.push(true);
            }
            Type::Ptr(AddrSpace::Local, ..) => {
                return Err(CompileError::new(
                    def.pos,
                    "__local pointer parameters are not supported; declare local arrays in the body",
                ));
            }
            Type::Void => {
                return Err(CompileError::new(
                    def.pos,
                    format!("parameter `{}` has void type", p.name),
                ))
            }
            ty => {
                let slot = ck.n_slots;
                ck.n_slots += 1;
                scope.declare(&p.name, ty, VarRef::Value(slot), def.pos)?;
                value_params.push(ValueParam {
                    name: p.name.clone(),
                    ty,
                    slot,
                });
                param_order.push(false);
            }
        }
    }

    ck.block(&def.body, &mut scope)?;

    Ok(CheckedKernel {
        def: def.clone(),
        expr_types: ck.expr_types,
        resolutions: ck.resolutions,
        value_params,
        buffer_params,
        param_order,
        local_arrays: ck.local_arrays,
        n_slots: ck.n_slots,
    })
}

impl Checker {
    fn block(&mut self, stmts: &[Stmt], scope: &mut Scope) -> Result<(), CompileError> {
        for s in stmts {
            self.stmt(s, scope)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt, scope: &mut Scope) -> Result<(), CompileError> {
        match s {
            Stmt::Empty | Stmt::Return(_) => Ok(()),
            Stmt::Decl {
                pos,
                ty,
                name,
                array_len,
                init,
                addr_space,
            } => {
                if let Some(len_expr) = array_len {
                    let base = ty
                        .base()
                        .ok_or_else(|| CompileError::new(*pos, "array of void"))?;
                    if ty.width() != 1 {
                        return Err(CompileError::new(
                            *pos,
                            "arrays of vector types are not supported",
                        ));
                    }
                    let len = const_int(len_expr).ok_or_else(|| {
                        CompileError::new(
                            *pos,
                            "array length must be an integer constant expression",
                        )
                    })?;
                    if len <= 0 {
                        return Err(CompileError::new(
                            *pos,
                            format!("array length {len} must be positive"),
                        ));
                    }
                    let space = addr_space.unwrap_or(AddrSpace::Local);
                    if space != AddrSpace::Local {
                        return Err(CompileError::new(*pos, "only __local arrays are supported"));
                    }
                    let idx = self.local_arrays.len();
                    self.local_arrays.push(LocalArray {
                        name: name.clone(),
                        base,
                        len: len as usize,
                    });
                    scope.declare(
                        name,
                        Type::Ptr(AddrSpace::Local, base, false),
                        VarRef::LocalArr(idx),
                        *pos,
                    )
                } else {
                    if *ty == Type::Void {
                        return Err(CompileError::new(*pos, "cannot declare void variable"));
                    }
                    if let Some(e) = init {
                        let ety = self.expr(e, scope)?;
                        self.require_assignable(*ty, ety, e.pos)?;
                    }
                    let slot = self.n_slots;
                    self.n_slots += 1;
                    scope.declare(name, *ty, VarRef::Value(slot), *pos)
                }
            }
            Stmt::Assign { pos, lhs, rhs } => {
                let lty = self.lvalue(lhs, scope)?;
                let rty = self.expr(rhs, scope)?;
                self.require_assignable(lty, rty, *pos)
            }
            Stmt::Expr(e) => {
                let _ = self.expr(e, scope)?;
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                scope.push();
                self.stmt(init, scope)?;
                let cty = self.expr(cond, scope)?;
                self.require_condition(cty, cond.pos)?;
                self.stmt(step, scope)?;
                scope.push();
                self.block(body, scope)?;
                scope.pop();
                scope.pop();
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                let cty = self.expr(cond, scope)?;
                self.require_condition(cty, cond.pos)?;
                scope.push();
                self.block(body, scope)?;
                scope.pop();
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let cty = self.expr(cond, scope)?;
                self.require_condition(cty, cond.pos)?;
                scope.push();
                self.block(then_body, scope)?;
                scope.pop();
                scope.push();
                self.block(else_body, scope)?;
                scope.pop();
                Ok(())
            }
        }
    }

    fn require_condition(&self, ty: Type, pos: Pos) -> Result<(), CompileError> {
        match ty {
            Type::Scalar(Base::Bool) | Type::Scalar(Base::Int) | Type::Scalar(Base::Uint) => Ok(()),
            other => Err(CompileError::new(
                pos,
                format!("condition has type {other:?}, expected scalar bool/int"),
            )),
        }
    }

    fn require_assignable(&self, lhs: Type, rhs: Type, pos: Pos) -> Result<(), CompileError> {
        if lhs == rhs {
            return Ok(());
        }
        match (lhs, rhs) {
            // Implicit int → float/double widening.
            (Type::Scalar(l), Type::Scalar(r)) if l.is_fp() && r.is_int() => Ok(()),
            // float literal / scalar into double.
            (Type::Scalar(Base::Double), Type::Scalar(Base::Float)) => Ok(()),
            (Type::Scalar(Base::Int), Type::Scalar(Base::Uint))
            | (Type::Scalar(Base::Uint), Type::Scalar(Base::Int)) => Ok(()),
            _ => Err(CompileError::new(
                pos,
                format!("cannot assign {rhs:?} to {lhs:?} without an explicit cast"),
            )),
        }
    }

    /// Type-check an lvalue expression (must also be a valid store target).
    fn lvalue(&mut self, e: &Expr, scope: &mut Scope) -> Result<Type, CompileError> {
        match &e.kind {
            ExprKind::Var(_) => {
                let ty = self.expr(e, scope)?;
                if matches!(ty, Type::Ptr(..)) {
                    return Err(CompileError::new(e.pos, "cannot assign to a pointer"));
                }
                Ok(ty)
            }
            ExprKind::Index(..) | ExprKind::Swizzle(..) => self.expr(e, scope),
            _ => Err(CompileError::new(e.pos, "expression is not assignable")),
        }
    }

    fn expr(&mut self, e: &Expr, scope: &mut Scope) -> Result<Type, CompileError> {
        let ty = self.infer(e, scope)?;
        self.expr_types.insert(e.id, ty);
        Ok(ty)
    }

    fn infer(&mut self, e: &Expr, scope: &mut Scope) -> Result<Type, CompileError> {
        match &e.kind {
            ExprKind::IntLit(_) => Ok(Type::INT),
            ExprKind::FloatLit(_, is_f32) => Ok(Type::Scalar(if *is_f32 {
                Base::Float
            } else {
                Base::Double
            })),
            ExprKind::Var(name) => {
                let (ty, r) = scope.lookup(name).ok_or_else(|| {
                    CompileError::new(e.pos, format!("undeclared identifier `{name}`"))
                })?;
                self.resolutions.insert(e.id, r);
                Ok(ty)
            }
            ExprKind::Un(op, inner) => {
                let t = self.expr(inner, scope)?;
                match op {
                    UnOp::Neg => match t {
                        Type::Scalar(b) | Type::Vector(b, _) if b.is_fp() || b.is_int() => Ok(t),
                        other => Err(CompileError::new(e.pos, format!("cannot negate {other:?}"))),
                    },
                    UnOp::Not => match t {
                        Type::Scalar(Base::Bool)
                        | Type::Scalar(Base::Int)
                        | Type::Scalar(Base::Uint) => Ok(Type::BOOL),
                        other => Err(CompileError::new(
                            e.pos,
                            format!("cannot apply ! to {other:?}"),
                        )),
                    },
                }
            }
            ExprKind::Bin(op, l, r) => {
                let lt = self.expr(l, scope)?;
                let rt = self.expr(r, scope)?;
                self.bin_type(*op, lt, rt, e.pos)
            }
            ExprKind::Ternary(c, a, b) => {
                let ct = self.expr(c, scope)?;
                self.require_condition(ct, c.pos)?;
                let at = self.expr(a, scope)?;
                let bt = self.expr(b, scope)?;
                promote(at, bt).ok_or_else(|| {
                    CompileError::new(
                        e.pos,
                        format!("ternary arms have incompatible types {at:?} / {bt:?}"),
                    )
                })
            }
            ExprKind::Index(base, idx) => {
                let bt = self.expr(base, scope)?;
                let it = self.expr(idx, scope)?;
                if !matches!(it, Type::Scalar(Base::Int) | Type::Scalar(Base::Uint)) {
                    return Err(CompileError::new(idx.pos, "array index must be an integer"));
                }
                match bt {
                    Type::Ptr(_, b, _) => Ok(Type::Scalar(b)),
                    other => Err(CompileError::new(
                        e.pos,
                        format!("cannot index into {other:?}"),
                    )),
                }
            }
            ExprKind::Swizzle(base, lane) => {
                let bt = self.expr(base, scope)?;
                match bt {
                    Type::Vector(b, w) if *lane < w => Ok(Type::Scalar(b)),
                    Type::Vector(_, w) => Err(CompileError::new(
                        e.pos,
                        format!("component {lane} out of range for width-{w} vector"),
                    )),
                    other => Err(CompileError::new(
                        e.pos,
                        format!("cannot swizzle {other:?}"),
                    )),
                }
            }
            ExprKind::Cast(ty, args) => self.cast_type(*ty, args, e.pos, scope),
            ExprKind::Call(name, args) => self.call_type(name, args, e.pos, scope),
        }
    }

    fn bin_type(&self, op: BinOp, lt: Type, rt: Type, pos: Pos) -> Result<Type, CompileError> {
        if op.is_logic() {
            for t in [lt, rt] {
                if !matches!(
                    t,
                    Type::Scalar(Base::Bool) | Type::Scalar(Base::Int) | Type::Scalar(Base::Uint)
                ) {
                    return Err(CompileError::new(
                        pos,
                        format!("logical operand has type {t:?}"),
                    ));
                }
            }
            return Ok(Type::BOOL);
        }
        if op.is_cmp() {
            let p = promote(lt, rt).ok_or_else(|| {
                CompileError::new(pos, format!("cannot compare {lt:?} with {rt:?}"))
            })?;
            if p.width() != 1 {
                return Err(CompileError::new(
                    pos,
                    "vector comparisons are not supported",
                ));
            }
            return Ok(Type::BOOL);
        }
        if op.int_only() {
            for t in [lt, rt] {
                if !matches!(t, Type::Scalar(b) if b.is_int()) {
                    return Err(CompileError::new(
                        pos,
                        format!("operator requires integers, got {t:?}"),
                    ));
                }
            }
            return Ok(Type::INT);
        }
        promote(lt, rt).ok_or_else(|| {
            CompileError::new(pos, format!("incompatible operands {lt:?} and {rt:?}"))
        })
    }

    fn cast_type(
        &mut self,
        ty: Type,
        args: &[Expr],
        pos: Pos,
        scope: &mut Scope,
    ) -> Result<Type, CompileError> {
        let mut arg_tys = Vec::with_capacity(args.len());
        for a in args {
            arg_tys.push(self.expr(a, scope)?);
        }
        match ty {
            Type::Scalar(_) => {
                if args.len() != 1 {
                    return Err(CompileError::new(
                        pos,
                        "scalar cast takes exactly one argument",
                    ));
                }
                if !matches!(arg_tys[0], Type::Scalar(_)) {
                    return Err(CompileError::new(pos, "scalar cast of a non-scalar"));
                }
                Ok(ty)
            }
            Type::Vector(_, w) => {
                if args.len() == 1 {
                    match arg_tys[0] {
                        Type::Scalar(_) => Ok(ty), // broadcast
                        Type::Vector(_, aw) if aw == w => Ok(ty),
                        other => Err(CompileError::new(
                            pos,
                            format!("cannot convert {other:?} to {ty:?}"),
                        )),
                    }
                } else if args.len() == w as usize {
                    for t in &arg_tys {
                        if !matches!(t, Type::Scalar(_)) {
                            return Err(CompileError::new(
                                pos,
                                "vector constructor arguments must be scalars",
                            ));
                        }
                    }
                    Ok(ty)
                } else {
                    Err(CompileError::new(
                        pos,
                        format!(
                            "vector constructor for width {w} got {} arguments",
                            args.len()
                        ),
                    ))
                }
            }
            _ => Err(CompileError::new(pos, "cannot cast to this type")),
        }
    }

    fn call_type(
        &mut self,
        name: &str,
        args: &[Expr],
        pos: Pos,
        scope: &mut Scope,
    ) -> Result<Type, CompileError> {
        let mut tys = Vec::with_capacity(args.len());
        for a in args {
            tys.push(self.expr(a, scope)?);
        }
        let arity = |n: usize| -> Result<(), CompileError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(CompileError::new(
                    pos,
                    format!("{name} takes {n} argument(s), got {}", args.len()),
                ))
            }
        };
        match name {
            "get_global_id" | "get_local_id" | "get_group_id" | "get_global_size"
            | "get_local_size" | "get_num_groups" => {
                arity(1)?;
                if !matches!(tys[0], Type::Scalar(b) if b.is_int()) {
                    return Err(CompileError::new(pos, "dimension index must be an integer"));
                }
                Ok(Type::INT)
            }
            "barrier" => {
                arity(1)?;
                Ok(Type::Void)
            }
            "mad" | "fma" => {
                arity(3)?;
                let t = promote(promote(tys[0], tys[1]).unwrap_or(tys[0]), tys[2]).ok_or_else(
                    || CompileError::new(pos, format!("incompatible mad operands {tys:?}")),
                )?;
                if !t.base().map(Base::is_fp).unwrap_or(false) {
                    return Err(CompileError::new(
                        pos,
                        "mad/fma requires floating-point operands",
                    ));
                }
                Ok(t)
            }
            "min" | "max" => {
                arity(2)?;
                promote(tys[0], tys[1])
                    .ok_or_else(|| CompileError::new(pos, format!("incompatible {name} operands")))
            }
            "fmin" | "fmax" => {
                arity(2)?;
                let t = promote(tys[0], tys[1]).ok_or_else(|| {
                    CompileError::new(pos, format!("incompatible {name} operands"))
                })?;
                if !t.base().map(Base::is_fp).unwrap_or(false) {
                    return Err(CompileError::new(
                        pos,
                        format!("{name} requires floating point"),
                    ));
                }
                Ok(t)
            }
            "clamp" => {
                arity(3)?;
                let t01 = promote(tys[0], tys[1]).ok_or_else(|| {
                    CompileError::new(pos, "incompatible clamp operands".to_string())
                })?;
                promote(t01, tys[2]).ok_or_else(|| {
                    CompileError::new(pos, "incompatible clamp operands".to_string())
                })
            }
            "fabs" | "sqrt" | "native_recip" | "exp" | "log" => {
                arity(1)?;
                if !tys[0].base().map(Base::is_fp).unwrap_or(false) {
                    return Err(CompileError::new(
                        pos,
                        format!("{name} requires floating point"),
                    ));
                }
                Ok(tys[0])
            }
            _ => {
                if let Some(w) = vload_width(name) {
                    arity(2)?;
                    let base = match tys[1] {
                        Type::Ptr(_, b, _) if b.is_fp() => b,
                        other => {
                            return Err(CompileError::new(
                                pos,
                                format!("vload pointer has type {other:?}"),
                            ))
                        }
                    };
                    if !matches!(tys[0], Type::Scalar(b) if b.is_int()) {
                        return Err(CompileError::new(pos, "vload offset must be an integer"));
                    }
                    return Ok(Type::Vector(base, w));
                }
                if let Some(w) = vstore_width(name) {
                    arity(3)?;
                    let base = match tys[2] {
                        Type::Ptr(_, b, false) => b,
                        Type::Ptr(_, _, true) => {
                            return Err(CompileError::new(pos, "vstore into a const pointer"))
                        }
                        other => {
                            return Err(CompileError::new(
                                pos,
                                format!("vstore pointer has type {other:?}"),
                            ))
                        }
                    };
                    if tys[0] != Type::Vector(base, w) {
                        return Err(CompileError::new(
                            pos,
                            format!("vstore{w} value has type {:?}, pointer is {base:?}", tys[0]),
                        ));
                    }
                    if !matches!(tys[1], Type::Scalar(b) if b.is_int()) {
                        return Err(CompileError::new(pos, "vstore offset must be an integer"));
                    }
                    return Ok(Type::Void);
                }
                Err(CompileError::new(pos, format!("unknown function `{name}`")))
            }
        }
    }
}

/// Usual arithmetic conversions for the subset: int < uint < float <
/// double; scalars broadcast against vectors of any width.
fn promote(a: Type, b: Type) -> Option<Type> {
    fn rank(b: Base) -> u8 {
        match b {
            Base::Bool => 0,
            Base::Int => 1,
            Base::Uint => 2,
            Base::Float => 3,
            Base::Double => 4,
        }
    }
    let (ab, bb) = (a.base()?, b.base()?);
    if matches!(a, Type::Ptr(..)) || matches!(b, Type::Ptr(..)) {
        return None;
    }
    let base = if rank(ab) >= rank(bb) { ab } else { bb };
    match (a.width(), b.width()) {
        (1, 1) => Some(Type::Scalar(base)),
        (w, 1) | (1, w) => Some(Type::Vector(base, w)),
        (w1, w2) if w1 == w2 => Some(Type::Vector(base, w1)),
        _ => None,
    }
}

/// Width of a `vloadN` builtin name.
fn vload_width(name: &str) -> Option<u8> {
    match name {
        "vload2" => Some(2),
        "vload4" => Some(4),
        "vload8" => Some(8),
        "vload16" => Some(16),
        _ => None,
    }
}

/// Width of a `vstoreN` builtin name.
fn vstore_width(name: &str) -> Option<u8> {
    match name {
        "vstore2" => Some(2),
        "vstore4" => Some(4),
        "vstore8" => Some(8),
        "vstore16" => Some(16),
        _ => None,
    }
}

/// Evaluate an integer constant expression (used for array lengths).
pub fn const_int(e: &Expr) -> Option<i64> {
    match &e.kind {
        ExprKind::IntLit(v) => Some(*v),
        ExprKind::Un(UnOp::Neg, inner) => Some(-const_int(inner)?),
        ExprKind::Bin(op, l, r) => {
            let (a, b) = (const_int(l)?, const_int(r)?);
            match op {
                BinOp::Add => Some(a + b),
                BinOp::Sub => Some(a - b),
                BinOp::Mul => Some(a * b),
                BinOp::Div if b != 0 => Some(a / b),
                BinOp::Rem if b != 0 => Some(a % b),
                BinOp::Shl => Some(a << b),
                BinOp::Shr => Some(a >> b),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<CheckedUnit, CompileError> {
        check(&parse(src)?)
    }

    #[test]
    fn checks_valid_kernel() {
        let cu = check_src(
            r#"
            __kernel void k(__global const double* a, __global double* c, int n, double alpha) {
                int i = get_global_id(0);
                if (i < n) { c[i] = alpha * a[i]; }
            }
            "#,
        )
        .unwrap();
        let k = &cu.kernels[0];
        assert_eq!(k.buffer_params.len(), 2);
        assert_eq!(k.value_params.len(), 2);
        assert_eq!(k.param_order, vec![true, true, false, false]);
        assert!(k.n_slots >= 3); // n, alpha, i
    }

    #[test]
    fn rejects_undeclared_identifier() {
        let err = check_src("__kernel void k(__global int* x){ x[0] = y; }").unwrap_err();
        assert!(err.message.contains("undeclared"), "{err}");
    }

    #[test]
    fn rejects_type_mismatch_without_cast() {
        let err =
            check_src("__kernel void k(__global int* x){ double d = 1.0; x[0] = d; }").unwrap_err();
        assert!(err.message.contains("cast"), "{err}");
    }

    #[test]
    fn allows_int_to_double_promotion() {
        assert!(check_src("__kernel void k(__global double* x){ x[0] = 1; }").is_ok());
    }

    #[test]
    fn local_array_lengths_fold() {
        let cu = check_src(
            r#"
            __kernel void k(__global double* x){
                __local double Alm[96*48/2];
                Alm[0] = x[0];
                barrier(1);
                x[0] = Alm[1];
            }
            "#,
        )
        .unwrap();
        assert_eq!(cu.kernels[0].local_arrays[0].len, 96 * 48 / 2);
    }

    #[test]
    fn rejects_non_constant_array_length() {
        let err = check_src(
            "__kernel void k(__global double* x, int n){ __local double a[n]; x[0]=a[0]; }",
        )
        .unwrap_err();
        assert!(err.message.contains("constant"), "{err}");
    }

    #[test]
    fn rejects_store_through_const_pointer_via_vstore() {
        let err = check_src(
            r#"__kernel void k(__global const float* x){
                float4 v = (float4)(0.0f);
                vstore4(v, 0, x);
            }"#,
        )
        .unwrap_err();
        assert!(err.message.contains("const"), "{err}");
    }

    #[test]
    fn vload_infers_vector_type() {
        let cu = check_src(
            r#"__kernel void k(__global const double* a, __global double* c){
                double2 v = vload2(0, a);
                vstore2(v, 0, c);
            }"#,
        )
        .unwrap();
        assert_eq!(cu.kernels.len(), 1);
    }

    #[test]
    fn swizzle_out_of_range_is_rejected() {
        let err = check_src(
            r#"__kernel void k(__global float* c){
                float2 v = (float2)(1.0f, 2.0f);
                c[0] = v.s5;
            }"#,
        )
        .unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
    }

    #[test]
    fn mad_requires_floats() {
        let err =
            check_src("__kernel void k(__global int* x){ x[0] = mad(1, 2, 3); }").unwrap_err();
        assert!(err.message.contains("floating-point"), "{err}");
    }

    #[test]
    fn vector_scalar_broadcast_in_arithmetic() {
        assert!(check_src(
            r#"__kernel void k(__global float* c){
                float4 v = (float4)(1.0f);
                float4 w = v * 2.0f;
                vstore4(w, 0, c);
            }"#,
        )
        .is_ok());
    }

    #[test]
    fn mismatched_vector_widths_rejected() {
        let err = check_src(
            r#"__kernel void k(__global float* c){
                float4 v = (float4)(1.0f);
                float2 w = (float2)(1.0f);
                float2 z = v * w;
                vstore2(z, 0, c);
            }"#,
        )
        .unwrap_err();
        assert!(err.message.contains("incompatible"), "{err}");
    }

    #[test]
    fn unknown_function_is_rejected() {
        let err =
            check_src("__kernel void k(__global int* x){ x[0] = frobnicate(1); }").unwrap_err();
        assert!(err.message.contains("unknown function"), "{err}");
    }

    #[test]
    fn redeclaration_in_same_scope_rejected() {
        let err = check_src("__kernel void k(__global int* x){ int a = 1; int a = 2; x[0] = a; }")
            .unwrap_err();
        assert!(err.message.contains("redeclaration"), "{err}");
    }

    #[test]
    fn shadowing_in_inner_scope_allowed() {
        assert!(check_src(
            r#"__kernel void k(__global int* x){
                int a = 1;
                for (int i = 0; i < 4; i += 1) { int a = i; x[a] = a; }
                x[0] = a;
            }"#,
        )
        .is_ok());
    }

    #[test]
    fn const_int_folds_arithmetic() {
        // Smoke-test the folder through source; (96*48)/2 - 16 = 2288.
        let cu = check_src(
            r#"__kernel void k(__global double* x){
                __local double a[(96*48)/2 - 16];
                a[0] = x[0];
                barrier(1);
                x[0] = a[0];
            }"#,
        )
        .unwrap();
        assert_eq!(cu.kernels[0].local_arrays[0].len, 96 * 48 / 2 - 16);
    }
}
