//! A miniature OpenCL C implementation: enough of the language to compile
//! and execute the kernels the `clgemm` GEMM code generator emits.
//!
//! The paper's auto-tuner counts only kernels that survive *code
//! generation, compilation and testing*. To reproduce that pipeline
//! without a vendor OpenCL implementation, this crate provides one:
//!
//! * [`lexer`] — tokeniser with source positions;
//! * [`ast`] / [`parser`] — recursive-descent parser for the supported
//!   subset (kernels, typed declarations, `for`/`if`, expressions, vector
//!   types `float2/4/8`, `double2/4/8`, address-space qualifiers);
//! * [`check`] — semantic analysis and type checking with OpenCL's
//!   implicit scalar conversions;
//! * [`lower`] — lowering of the checked AST to a compact register
//!   bytecode;
//! * [`vm`] — the reference work-group executor: work-items run
//!   round-robin between barriers, local memory is shared per
//!   work-group, barrier divergence and same-phase local-memory races
//!   are detected and reported as runtime errors (our analogue of a
//!   kernel that "fails testing");
//! * [`fastvm`] — typed SoA register banks, fused superinstructions and
//!   parallel work-group execution, bit-for-bit equivalent to [`vm`]
//!   (select with [`vm::ExecOptions::reference`]);
//! * [`ir`] — the default engine: a typed SSA compiler pipeline
//!   (constant folding, CSE, DCE, loop unrolling) emitting
//!   pre-scheduled per-work-group trace code, with [`fastvm`] as the
//!   fallback for kernels it declines;
//! * [`program`] — the public compile-and-launch API used by
//!   `clgemm-sim`.
//!
//! Supported builtins: work-item functions (`get_global_id`, …),
//! `barrier`, `mad`/`fma`, `min`/`max`/`fabs`, `vloadN`/`vstoreN`, and
//! vector constructor casts like `(double2)(x, y)`.

pub mod ast;
pub mod check;
pub mod disasm;
pub mod error;
pub mod fastvm;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod program;
pub mod vm;

pub use disasm::{disassemble, disassemble_fast, disassemble_ir};
pub use error::{CompileError, RuntimeError};
pub use program::{Arg, BufData, Engine, ExecOptions, Kernel, NdRange, Program};
