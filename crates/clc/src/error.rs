//! Error types for the OpenCL C frontend and the work-group VM.

/// A position in the kernel source (1-based line/column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Compile-time failure: lexing, parsing, or semantic analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    pub pos: Pos,
    pub message: String,
}

impl CompileError {
    pub fn new(pos: Pos, message: impl Into<String>) -> Self {
        CompileError {
            pos,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Run-time failure inside the VM. These correspond to kernels the paper
/// would count as "failed in testing".
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Out-of-bounds access on a global buffer.
    GlobalOob {
        buffer: String,
        index: i64,
        len: usize,
    },
    /// Out-of-bounds access on a local (shared) array.
    LocalOob {
        array: String,
        index: i64,
        len: usize,
    },
    /// Work-items of one group reached different barriers (undefined
    /// behaviour in OpenCL; a hard error here).
    BarrierDivergence { detail: String },
    /// Two work-items touched the same local-memory cell in the same
    /// barrier phase, at least one writing.
    LocalRace {
        array: String,
        index: usize,
        writer: usize,
        other: usize,
    },
    /// Two distinct work-groups touched the same global-buffer element
    /// during one launch, at least one writing. Generated kernels write
    /// disjoint tiles per group; this guards the parallel group engine.
    GlobalRace {
        buffer: String,
        index: usize,
        group: usize,
        other: usize,
    },
    /// Argument list does not match the kernel signature.
    BadArguments(String),
    /// NDRange is invalid (e.g. global size not a multiple of local size —
    /// required in OpenCL 1.x, which the paper targets).
    BadNdRange(String),
    /// Division by zero or similar arithmetic fault in integer ops.
    Arithmetic(String),
    /// Internal VM invariant violation (a bug in the lowering, not the
    /// kernel).
    Internal(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::GlobalOob { buffer, index, len } => {
                write!(f, "global buffer {buffer:?} access {index} out of bounds (len {len})")
            }
            RuntimeError::LocalOob { array, index, len } => {
                write!(f, "local array {array:?} access {index} out of bounds (len {len})")
            }
            RuntimeError::BarrierDivergence { detail } => {
                write!(f, "barrier divergence: {detail}")
            }
            RuntimeError::LocalRace { array, index, writer, other } => write!(
                f,
                "data race on local array {array:?}[{index}] between work-items {writer} and {other}"
            ),
            RuntimeError::GlobalRace { buffer, index, group, other } => write!(
                f,
                "data race on global buffer {buffer:?}[{index}] between work-groups {group} and {other}"
            ),
            RuntimeError::BadArguments(m) => write!(f, "bad kernel arguments: {m}"),
            RuntimeError::BadNdRange(m) => write!(f, "bad NDRange: {m}"),
            RuntimeError::Arithmetic(m) => write!(f, "arithmetic fault: {m}"),
            RuntimeError::Internal(m) => write!(f, "internal VM error: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_usefully() {
        let e = CompileError::new(Pos { line: 3, col: 7 }, "unexpected token");
        assert_eq!(e.to_string(), "compile error at 3:7: unexpected token");
        let r = RuntimeError::LocalRace {
            array: "Alm".into(),
            index: 5,
            writer: 1,
            other: 2,
        };
        assert!(r.to_string().contains("Alm"));
        assert!(r.to_string().contains("work-items 1 and 2"));
    }
}
