//! Abstract syntax tree and the type system of the OpenCL C subset.

use crate::error::Pos;

/// Scalar element types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Base {
    Int,
    Uint,
    Float,
    Double,
    Bool,
}

impl Base {
    /// The OpenCL C spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Base::Int => "int",
            Base::Uint => "uint",
            Base::Float => "float",
            Base::Double => "double",
            Base::Bool => "bool",
        }
    }

    /// `true` for `float`/`double`.
    #[must_use]
    pub fn is_fp(self) -> bool {
        matches!(self, Base::Float | Base::Double)
    }

    /// `true` for `int`/`uint`.
    #[must_use]
    pub fn is_int(self) -> bool {
        matches!(self, Base::Int | Base::Uint)
    }
}

/// Address space of a pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrSpace {
    Global,
    Local,
}

/// The full type of an expression or variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// Scalar value.
    Scalar(Base),
    /// Vector of 2, 4 or 8 elements (the widths the paper's `vw`
    /// parameter ranges over).
    Vector(Base, u8),
    /// Pointer into a buffer (kernel argument) or local array.
    Ptr(AddrSpace, Base, /* is_const */ bool),
    /// Statement-like expressions (`barrier(...)`).
    Void,
}

impl Type {
    /// Scalar `int`.
    pub const INT: Type = Type::Scalar(Base::Int);
    /// Scalar `bool`.
    pub const BOOL: Type = Type::Scalar(Base::Bool);

    /// Element base type for scalars and vectors.
    #[must_use]
    pub fn base(self) -> Option<Base> {
        match self {
            Type::Scalar(b) | Type::Vector(b, _) => Some(b),
            Type::Ptr(_, b, _) => Some(b),
            Type::Void => None,
        }
    }

    /// Vector width (1 for scalars).
    #[must_use]
    pub fn width(self) -> u8 {
        match self {
            Type::Vector(_, w) => w,
            _ => 1,
        }
    }

    /// The OpenCL C spelling of a value type (panics on pointers; those
    /// are only spelled in parameter lists).
    #[must_use]
    pub fn cl_name(self) -> String {
        match self {
            Type::Scalar(b) => b.name().to_string(),
            Type::Vector(b, w) => format!("{}{}", b.name(), w),
            Type::Void => "void".to_string(),
            Type::Ptr(..) => panic!("pointer types are spelled in declarators"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinOp {
    /// `true` for comparison operators (result type `bool`).
    #[must_use]
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// `true` for logical and/or.
    #[must_use]
    pub fn is_logic(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// `true` for integer-only operators.
    #[must_use]
    pub fn int_only(self) -> bool {
        matches!(
            self,
            BinOp::Rem | BinOp::BitAnd | BinOp::BitOr | BinOp::BitXor | BinOp::Shl | BinOp::Shr
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// An expression with its source position. Types are attached by the
/// checker in a side table keyed by `id`.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub id: u32,
    pub pos: Pos,
    pub kind: ExprKind,
}

/// Expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    IntLit(i64),
    FloatLit(f64, /* f32 suffix */ bool),
    Var(String),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Un(UnOp, Box<Expr>),
    /// `cond ? a : b`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Function or builtin call.
    Call(String, Vec<Expr>),
    /// `ptr[idx]` or `localArray[idx]`.
    Index(Box<Expr>, Box<Expr>),
    /// Vector component access: `.x/.y/.z/.w` or `.s0`..`.s7`.
    Swizzle(Box<Expr>, u8),
    /// `(type)(e)` scalar cast, or `(type)(e0, e1, ...)` vector
    /// constructor.
    Cast(Type, Vec<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `ty name = init;` or `ty name[len];` (local arrays carry the
    /// address space).
    Decl {
        pos: Pos,
        ty: Type,
        name: String,
        /// Constant array length for `__local`/`__private` arrays.
        array_len: Option<Expr>,
        init: Option<Expr>,
        addr_space: Option<AddrSpace>,
    },
    /// `lhs = rhs;` or compound assignment desugared by the parser.
    Assign { pos: Pos, lhs: Expr, rhs: Expr },
    /// Bare expression (calls with side effects: `barrier(...)`,
    /// `vstore...`).
    Expr(Expr),
    /// `for (init; cond; step) body` — init/step are statements.
    For {
        pos: Pos,
        init: Box<Stmt>,
        cond: Expr,
        step: Box<Stmt>,
        body: Vec<Stmt>,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        pos: Pos,
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// `while (cond) body`
    While {
        pos: Pos,
        cond: Expr,
        body: Vec<Stmt>,
    },
    /// `return;`
    Return(Pos),
    /// Empty statement `;`.
    Empty,
}

/// A kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: String,
    pub ty: Type,
}

/// One `__kernel` function.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDef {
    pub name: String,
    pub params: Vec<Param>,
    pub body: Vec<Stmt>,
    pub pos: Pos,
    /// `reqd_work_group_size(x, y, z)` attribute if present.
    pub reqd_wg_size: Option<[u32; 3]>,
}

/// A translation unit: one or more kernels.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Unit {
    pub kernels: Vec<KernelDef>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(Type::Scalar(Base::Double).cl_name(), "double");
        assert_eq!(Type::Vector(Base::Float, 4).cl_name(), "float4");
        assert_eq!(Type::Vector(Base::Double, 2).width(), 2);
        assert_eq!(Type::Scalar(Base::Int).width(), 1);
    }

    #[test]
    fn base_classification() {
        assert!(Base::Float.is_fp());
        assert!(!Base::Int.is_fp());
        assert!(Base::Uint.is_int());
        assert!(!Base::Bool.is_int());
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Le.is_cmp());
        assert!(BinOp::And.is_logic());
        assert!(BinOp::Rem.int_only());
        assert!(!BinOp::Add.int_only());
    }
}
