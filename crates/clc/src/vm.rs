//! The work-group virtual machine.
//!
//! Executes lowered kernels with real OpenCL work-group semantics:
//!
//! * work-items of a group run round-robin between barriers (each runs
//!   until it hits a [`Instr::Barrier`] or returns);
//! * all work-items must arrive at the *same* static barrier site —
//!   divergence is an error, as it is undefined behaviour on real
//!   devices;
//! * local memory is shared per group; optional race detection flags two
//!   work-items touching the same cell in the same barrier phase with at
//!   least one write;
//! * all buffer and local accesses are bounds-checked.
//!
//! Dynamic instruction counts are collected in [`DynStats`]; the
//! integration suite uses them to validate the code generator's
//! analytical cost model against what the kernel actually executes.

use crate::ast::{Base, BinOp, UnOp};
use crate::check::LocalArray;
use crate::error::RuntimeError;
use crate::lower::{CompiledKernel, Instr, MathFunc, WiFunc};

/// A runtime value: scalar or vector, int/bool/float/double.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    I(i64),
    B(bool),
    F32(f32),
    F64(f64),
    /// Vector of `f32` with explicit width (lanes beyond width are zero).
    V32([f32; 16], u8),
    /// Vector of `f64` with explicit width.
    V64([f64; 16], u8),
}

impl Value {
    /// Build a float vector.
    #[must_use]
    pub fn v32(parts: &[f32]) -> Value {
        let mut a = [0.0f32; 16];
        a[..parts.len()].copy_from_slice(parts);
        Value::V32(a, parts.len() as u8)
    }

    /// Build a double vector.
    #[must_use]
    pub fn v64(parts: &[f64]) -> Value {
        let mut a = [0.0f64; 16];
        a[..parts.len()].copy_from_slice(parts);
        Value::V64(a, parts.len() as u8)
    }

    fn as_i(self) -> Result<i64, RuntimeError> {
        match self {
            Value::I(v) => Ok(v),
            Value::B(b) => Ok(b as i64),
            other => Err(RuntimeError::Internal(format!(
                "expected int, got {other:?}"
            ))),
        }
    }

    fn as_b(self) -> Result<bool, RuntimeError> {
        match self {
            Value::B(b) => Ok(b),
            Value::I(v) => Ok(v != 0),
            other => Err(RuntimeError::Internal(format!(
                "expected bool, got {other:?}"
            ))),
        }
    }
}

/// Shared local-memory storage for one work-group.
#[derive(Debug, Clone)]
pub enum LocalBuf {
    F32(Vec<f32>),
    F64(Vec<f64>),
    I32(Vec<i64>),
}

impl LocalBuf {
    pub(crate) fn new(info: &LocalArray) -> LocalBuf {
        match info.base {
            Base::Float => LocalBuf::F32(vec![0.0; info.len]),
            Base::Double => LocalBuf::F64(vec![0.0; info.len]),
            _ => LocalBuf::I32(vec![0; info.len]),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            LocalBuf::F32(v) => v.len(),
            LocalBuf::F64(v) => v.len(),
            LocalBuf::I32(v) => v.len(),
        }
    }

    /// Zero contents in place (group re-initialisation without realloc).
    pub(crate) fn zero(&mut self) {
        match self {
            LocalBuf::F32(v) => v.fill(0.0),
            LocalBuf::F64(v) => v.fill(0.0),
            LocalBuf::I32(v) => v.fill(0),
        }
    }

    /// Does the storage class match the declared array's base type?
    pub(crate) fn base_matches(&self, info: &LocalArray) -> bool {
        matches!(
            (self, info.base),
            (LocalBuf::F32(_), Base::Float)
                | (LocalBuf::F64(_), Base::Double)
                | (LocalBuf::I32(_), Base::Int | Base::Uint | Base::Bool)
        )
    }
}

/// Host-visible global buffer contents.
#[derive(Debug, Clone, PartialEq)]
pub enum BufData {
    F32(Vec<f32>),
    F64(Vec<f64>),
    I32(Vec<i32>),
}

impl BufData {
    /// Element count.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            BufData::F32(v) => v.len(),
            BufData::F64(v) => v.len(),
            BufData::I32(v) => v.len(),
        }
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element base type of the buffer.
    #[must_use]
    pub fn base(&self) -> Base {
        match self {
            BufData::F32(_) => Base::Float,
            BufData::F64(_) => Base::Double,
            BufData::I32(_) => Base::Int,
        }
    }
}

/// Dynamic (executed) instruction counts for one launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DynStats {
    /// Scalar multiply-adds (vector MADs count `width` each).
    pub mads: u64,
    /// Other executed ALU operations (scalar-equivalent).
    pub alu: u64,
    /// Global load/store instructions.
    pub mem_global_instrs: u64,
    /// Bytes moved to/from global memory.
    pub mem_global_bytes: u64,
    /// Local load/store instructions.
    pub mem_local_instrs: u64,
    /// Bytes moved to/from local memory.
    pub mem_local_bytes: u64,
    /// Barrier events (one per work-group arrival).
    pub barriers: u64,
    /// Total executed instructions.
    pub instrs: u64,
}

impl DynStats {
    pub(crate) fn add(&mut self, other: &DynStats) {
        self.mads += other.mads;
        self.alu += other.alu;
        self.mem_global_instrs += other.mem_global_instrs;
        self.mem_global_bytes += other.mem_global_bytes;
        self.mem_local_instrs += other.mem_local_instrs;
        self.mem_local_bytes += other.mem_local_bytes;
        self.barriers += other.barriers;
        self.instrs += other.instrs;
    }
}

/// NDRange geometry shared by every work-item of a launch.
#[derive(Debug, Clone, Copy)]
pub struct Geometry {
    pub global: [usize; 2],
    pub local: [usize; 2],
    pub groups: [usize; 2],
}

/// Which interpreter executes a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Pre-scheduled trace code from the SSA compiler pipeline (see
    /// the `ir` module): per-op dispatch is paid once per work-group
    /// instead of once per work-item step. Falls back to [`Engine::Fast`]
    /// for kernels the compiler declines (e.g. work-item-divergent
    /// branches).
    #[default]
    Compiled,
    /// Typed-register-bank engine with fused superinstructions and
    /// parallel work-group execution (see the `fastvm` module). Falls
    /// back to the reference interpreter for kernels the register-class
    /// assignment pass cannot type.
    Fast,
    /// The original one-`Value`-at-a-time interpreter: the bit-for-bit
    /// oracle the fast path is property-tested against.
    Reference,
}

/// Execution options.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Detect same-phase local-memory races and (for multi-group
    /// launches) inter-group global races (slower; on by default in
    /// tests).
    pub detect_races: bool,
    /// Abort a work-item after this many executed instructions per
    /// barrier phase (guards against non-terminating kernels).
    pub step_limit: u64,
    /// Engine selection; [`Engine::Compiled`] by default (overridable
    /// at runtime with the `CLGEMM_CLC_ENGINE` environment variable —
    /// see [`crate::program::Kernel::launch`]).
    pub engine: Engine,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            detect_races: true,
            step_limit: 500_000_000,
            engine: Engine::Compiled,
        }
    }
}

impl ExecOptions {
    /// Default options, but forcing the reference interpreter — the
    /// escape hatch when the fast path is in doubt.
    #[must_use]
    pub fn reference() -> Self {
        ExecOptions {
            engine: Engine::Reference,
            ..Default::default()
        }
    }
}

pub(crate) enum WiStop {
    Barrier(u32),
    Done,
}

struct WiState {
    regs: Vec<Value>,
    pc: usize,
    done: bool,
}

pub(crate) struct RaceTable {
    write_phase: Vec<u32>,
    writer: Vec<u32>,
    read_phase: Vec<u32>,
    reader: Vec<u32>,
}

impl RaceTable {
    pub(crate) fn new(len: usize) -> RaceTable {
        RaceTable {
            write_phase: vec![u32::MAX; len],
            writer: vec![u32::MAX; len],
            read_phase: vec![u32::MAX; len],
            reader: vec![u32::MAX; len],
        }
    }

    /// Forget all recorded accesses (start of a new group).
    pub(crate) fn clear(&mut self) {
        self.write_phase.fill(u32::MAX);
        self.writer.fill(u32::MAX);
        self.read_phase.fill(u32::MAX);
        self.reader.fill(u32::MAX);
    }

    /// Number of elements covered by the table.
    pub(crate) fn len(&self) -> usize {
        self.writer.len()
    }

    /// A barrier orders earlier accesses: forget the phase marks.
    pub(crate) fn new_phase(&mut self) {
        self.write_phase.fill(u32::MAX);
        self.read_phase.fill(u32::MAX);
    }

    /// Record a read of `[i, i+width)` by work-item `wi` in `phase`;
    /// on a same-phase conflict returns `(index, writer, other)` with
    /// the error attribution the reference interpreter reports.
    pub(crate) fn on_read(
        &mut self,
        i: usize,
        width: u8,
        wi: u32,
        phase: u32,
    ) -> Result<(), (usize, u32, u32)> {
        for k in i..i + width as usize {
            if self.write_phase[k] == phase && self.writer[k] != wi {
                return Err((k, self.writer[k], wi));
            }
            self.read_phase[k] = phase;
            self.reader[k] = wi;
        }
        Ok(())
    }

    /// Record a write; same conflict contract as [`RaceTable::on_read`].
    pub(crate) fn on_write(
        &mut self,
        i: usize,
        width: u8,
        wi: u32,
        phase: u32,
    ) -> Result<(), (usize, u32, u32)> {
        for k in i..i + width as usize {
            if self.write_phase[k] == phase && self.writer[k] != wi {
                return Err((k, self.writer[k], wi));
            }
            if self.read_phase[k] == phase && self.reader[k] != wi {
                return Err((k, wi, self.reader[k]));
            }
            self.write_phase[k] = phase;
            self.writer[k] = wi;
        }
        Ok(())
    }
}

/// Inter-group race tables over the launch's global buffers, at element
/// granularity. Shared across the parallel group engine's threads, so
/// the slots are relaxed atomics; the detector is order-insensitive —
/// any overlapping write/anything pair from two distinct groups is
/// reported no matter which thread gets there first.
pub struct GlobalRaceTables {
    tables: Vec<GlobalTable>,
}

struct GlobalTable {
    writer: Vec<std::sync::atomic::AtomicU32>,
    reader: Vec<std::sync::atomic::AtomicU32>,
}

const NO_GROUP: u32 = u32::MAX;

impl GlobalRaceTables {
    /// Fresh tables sized to the launch's buffers.
    #[must_use]
    pub fn new(bufs: &[BufData]) -> GlobalRaceTables {
        use std::sync::atomic::AtomicU32;
        GlobalRaceTables {
            tables: bufs
                .iter()
                .map(|b| GlobalTable {
                    writer: (0..b.len()).map(|_| AtomicU32::new(NO_GROUP)).collect(),
                    reader: (0..b.len()).map(|_| AtomicU32::new(NO_GROUP)).collect(),
                })
                .collect(),
        }
    }

    /// Record a read of `[i, i+width)` by group `g`; returns
    /// `(index, other_group)` if a distinct group wrote the cell.
    pub(crate) fn on_read(
        &self,
        buf: usize,
        i: usize,
        width: u8,
        g: u32,
    ) -> Result<(), (usize, u32)> {
        use std::sync::atomic::Ordering::Relaxed;
        let t = &self.tables[buf];
        for k in i..i + width as usize {
            let w = t.writer[k].load(Relaxed);
            if w != NO_GROUP && w != g {
                return Err((k, w));
            }
            t.reader[k].store(g, Relaxed);
        }
        Ok(())
    }

    /// Record a write; conflicts with any access from a distinct group.
    pub(crate) fn on_write(
        &self,
        buf: usize,
        i: usize,
        width: u8,
        g: u32,
    ) -> Result<(), (usize, u32)> {
        use std::sync::atomic::Ordering::Relaxed;
        let t = &self.tables[buf];
        for k in i..i + width as usize {
            // Claim the writer slot with a CAS so that when two groups
            // race to write the same cell, exactly one wins and the
            // other errors *before* its payload store reaches the
            // buffer — a write/write race can never silently corrupt
            // the output even on the parallel engine.
            match t.writer[k].compare_exchange(NO_GROUP, g, Relaxed, Relaxed) {
                Ok(_) => {}
                Err(w) if w == g => {}
                Err(w) => return Err((k, w)),
            }
            let r = t.reader[k].load(Relaxed);
            if r != NO_GROUP && r != g {
                return Err((k, r));
            }
        }
        Ok(())
    }
}

/// Reusable per-thread execution state for the reference interpreter:
/// one register arena (shared across work-items of a group, re-seeded
/// between groups) plus the group's local buffers and race tables.
/// Allocated once per launch (per worker thread) instead of once per
/// work-item per group.
#[derive(Default)]
pub struct RefArena {
    states: Vec<WiState>,
    locals: Vec<LocalBuf>,
    races: Vec<RaceTable>,
}

impl RefArena {
    /// An empty arena; sized lazily on first group.
    #[must_use]
    pub fn new() -> RefArena {
        RefArena::default()
    }

    /// (Re-)seed for one group of `nwi` work-items.
    fn reset(
        &mut self,
        kernel: &CompiledKernel,
        nwi: usize,
        init_regs: &[Value],
        detect_races: bool,
    ) {
        let shape_ok = self.states.len() == nwi
            && self
                .states
                .first()
                .is_none_or(|s| s.regs.len() == kernel.n_regs);
        if !shape_ok {
            self.states = (0..nwi)
                .map(|_| WiState {
                    regs: vec![Value::I(0); kernel.n_regs],
                    pc: 0,
                    done: false,
                })
                .collect();
        }
        for st in &mut self.states {
            st.regs.fill(Value::I(0));
            st.regs[..init_regs.len()].copy_from_slice(init_regs);
            st.pc = 0;
            st.done = false;
        }
        let arrays = &kernel.checked.local_arrays;
        let locals_ok = self.locals.len() == arrays.len()
            && self
                .locals
                .iter()
                .zip(arrays)
                .all(|(l, a)| l.len() == a.len && l.base_matches(a));
        if locals_ok {
            for l in &mut self.locals {
                l.zero();
            }
        } else {
            self.locals = arrays.iter().map(LocalBuf::new).collect();
        }
        let want_races = if detect_races { arrays.len() } else { 0 };
        if self.races.len() == want_races
            && self
                .races
                .iter()
                .zip(arrays)
                .all(|(r, a)| r.writer.len() == a.len)
        {
            for r in &mut self.races {
                r.clear();
            }
        } else if detect_races {
            self.races = arrays.iter().map(|a| RaceTable::new(a.len)).collect();
        } else {
            self.races.clear();
        }
    }
}

/// Run one work-group to completion.
///
/// `init_regs` seeds each work-item's register file (value parameters in
/// their slots). Returns dynamic stats for the group.
#[allow(clippy::too_many_arguments)]
pub fn run_group(
    kernel: &CompiledKernel,
    group: [usize; 2],
    geom: &Geometry,
    init_regs: &[Value],
    bufs: &mut [BufData],
    opts: &ExecOptions,
) -> Result<DynStats, RuntimeError> {
    let mut arena = RefArena::new();
    let linear = (group[1] * geom.groups[0] + group[0]) as u32;
    run_group_in(
        kernel, group, linear, geom, init_regs, bufs, opts, None, &mut arena,
    )
}

/// [`run_group`] with a caller-owned arena and optional inter-group race
/// tables — the form the launch loop uses so allocations amortise across
/// groups.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_group_in(
    kernel: &CompiledKernel,
    group: [usize; 2],
    group_linear: u32,
    geom: &Geometry,
    init_regs: &[Value],
    bufs: &mut [BufData],
    opts: &ExecOptions,
    grace: Option<&GlobalRaceTables>,
    arena: &mut RefArena,
) -> Result<DynStats, RuntimeError> {
    let nwi = geom.local[0] * geom.local[1];
    arena.reset(kernel, nwi, init_regs, opts.detect_races);
    let RefArena {
        states,
        locals,
        races,
    } = arena;

    let mut stats = DynStats::default();
    let mut phase: u32 = 0;
    loop {
        let mut arrived: Option<u32> = None;
        let mut n_done = 0usize;
        let mut n_barrier = 0usize;
        #[allow(clippy::needless_range_loop)] // states[wi] is re-borrowed mutably below
        for wi in 0..nwi {
            if states[wi].done {
                n_done += 1;
                continue;
            }
            let lid = [wi % geom.local[0], wi / geom.local[0]];
            let stop = exec_until_stop(
                kernel,
                &mut states[wi],
                wi as u32,
                lid,
                group,
                group_linear,
                geom,
                locals,
                races,
                bufs,
                phase,
                opts,
                grace,
                &mut stats,
            )?;
            match stop {
                WiStop::Done => {
                    states[wi].done = true;
                    n_done += 1;
                }
                WiStop::Barrier(site) => {
                    n_barrier += 1;
                    match arrived {
                        None => arrived = Some(site),
                        Some(prev) if prev == site => {}
                        Some(prev) => {
                            return Err(RuntimeError::BarrierDivergence {
                                detail: format!(
                                "work-item {wi} reached barrier site {site}, others reached {prev}"
                            ),
                            })
                        }
                    }
                }
            }
        }
        if n_barrier > 0 {
            if n_done > 0 {
                return Err(RuntimeError::BarrierDivergence {
                    detail: format!(
                        "{n_barrier} work-item(s) waiting at a barrier while {n_done} returned"
                    ),
                });
            }
            stats.barriers += 1;
            phase += 1;
            for rt in races.iter_mut() {
                // New phase: previous accesses are now ordered by the
                // barrier; reset the tables.
                rt.new_phase();
            }
            continue;
        }
        debug_assert_eq!(n_done, nwi);
        break;
    }
    Ok(stats)
}

#[allow(clippy::too_many_arguments)]
fn exec_until_stop(
    kernel: &CompiledKernel,
    st: &mut WiState,
    wi: u32,
    lid: [usize; 2],
    group: [usize; 2],
    group_linear: u32,
    geom: &Geometry,
    locals: &mut [LocalBuf],
    races: &mut [RaceTable],
    bufs: &mut [BufData],
    phase: u32,
    opts: &ExecOptions,
    grace: Option<&GlobalRaceTables>,
    stats: &mut DynStats,
) -> Result<WiStop, RuntimeError> {
    let code = &kernel.code;
    let mut steps: u64 = 0;
    let mut local = DynStats::default();
    loop {
        steps += 1;
        if steps > opts.step_limit {
            return Err(RuntimeError::Internal(format!(
                "work-item exceeded step limit {} (non-terminating kernel?)",
                opts.step_limit
            )));
        }
        let instr = &code[st.pc];
        st.pc += 1;
        local.instrs += 1;
        match instr {
            Instr::Const { dst, val } => st.regs[*dst] = *val,
            Instr::Mov { dst, src } => st.regs[*dst] = st.regs[*src],
            Instr::Bin { op, dst, a, b } => {
                local.alu += 1;
                st.regs[*dst] = bin_op(*op, st.regs[*a], st.regs[*b])?;
            }
            Instr::Un { op, dst, a } => {
                local.alu += 1;
                st.regs[*dst] = un_op(*op, st.regs[*a])?;
            }
            Instr::Convert { dst, src, base } => st.regs[*dst] = convert(st.regs[*src], *base)?,
            Instr::Broadcast { dst, src, width } => {
                st.regs[*dst] = broadcast(st.regs[*src], *width)?
            }
            Instr::BuildVec { dst, base, parts } => {
                st.regs[*dst] = build_vec(*base, parts, &st.regs)?
            }
            Instr::Extract { dst, src, lane } => st.regs[*dst] = extract(st.regs[*src], *lane)?,
            Instr::InsertLane { vec, src, lane } => {
                let v = insert_lane(st.regs[*vec], st.regs[*src], *lane)?;
                st.regs[*vec] = v;
            }
            Instr::Mad { dst, a, b, c } => {
                let r = mad(st.regs[*a], st.regs[*b], st.regs[*c])?;
                local.mads += match r {
                    Value::V32(_, w) | Value::V64(_, w) => w as u64,
                    _ => 1,
                };
                st.regs[*dst] = r;
            }
            Instr::Math {
                f,
                dst,
                args,
                n_args,
            } => {
                local.alu += 1;
                st.regs[*dst] = math(
                    *f,
                    st.regs[args[0]],
                    st.regs[args[1]],
                    st.regs[args[2]],
                    *n_args,
                )?;
            }
            Instr::Wi { f, dst, dim } => {
                let d = st.regs[*dim].as_i()? as usize;
                if d > 2 {
                    return Err(RuntimeError::Internal(format!(
                        "dimension {d} out of range"
                    )));
                }
                let val = if d >= 2 {
                    match f {
                        WiFunc::GlobalSize | WiFunc::LocalSize | WiFunc::NumGroups => 1,
                        _ => 0,
                    }
                } else {
                    match f {
                        WiFunc::GlobalId => group[d] * geom.local[d] + lid[d],
                        WiFunc::LocalId => lid[d],
                        WiFunc::GroupId => group[d],
                        WiFunc::GlobalSize => geom.global[d],
                        WiFunc::LocalSize => geom.local[d],
                        WiFunc::NumGroups => geom.groups[d],
                    }
                };
                st.regs[*dst] = Value::I(val as i64);
            }
            Instr::LoadGlobal {
                dst,
                buf,
                idx,
                width,
            } => {
                let i = st.regs[*idx].as_i()?;
                st.regs[*dst] = load_global(kernel, bufs, *buf, i, *width, grace, group_linear)?;
                local.mem_global_instrs += 1;
                local.mem_global_bytes += global_bytes(&bufs[*buf], *width);
            }
            Instr::StoreGlobal {
                buf,
                idx,
                src,
                width,
            } => {
                let i = st.regs[*idx].as_i()?;
                store_global(
                    kernel,
                    bufs,
                    *buf,
                    i,
                    st.regs[*src],
                    *width,
                    grace,
                    group_linear,
                )?;
                local.mem_global_instrs += 1;
                local.mem_global_bytes += global_bytes(&bufs[*buf], *width);
            }
            Instr::LoadLocal {
                dst,
                arr,
                idx,
                width,
            } => {
                let i = st.regs[*idx].as_i()?;
                st.regs[*dst] = load_local(kernel, locals, races, *arr, i, *width, wi, phase)?;
                local.mem_local_instrs += 1;
                local.mem_local_bytes += local_bytes(&locals[*arr], *width);
            }
            Instr::StoreLocal {
                arr,
                idx,
                src,
                width,
            } => {
                let i = st.regs[*idx].as_i()?;
                store_local(
                    kernel,
                    locals,
                    races,
                    *arr,
                    i,
                    st.regs[*src],
                    *width,
                    wi,
                    phase,
                )?;
                local.mem_local_instrs += 1;
                local.mem_local_bytes += local_bytes(&locals[*arr], *width);
            }
            Instr::Jump { target } => st.pc = *target,
            Instr::JumpIfFalse { cond, target } => {
                if !st.regs[*cond].as_b()? {
                    st.pc = *target;
                }
            }
            Instr::Select { dst, cond, a, b } => {
                st.regs[*dst] = if st.regs[*cond].as_b()? {
                    st.regs[*a]
                } else {
                    st.regs[*b]
                };
            }
            Instr::Barrier { site } => {
                stats.add(&local);
                return Ok(WiStop::Barrier(*site));
            }
            Instr::Ret => {
                stats.add(&local);
                return Ok(WiStop::Done);
            }
        }
    }
}

fn global_bytes(buf: &BufData, width: u8) -> u64 {
    let elem = match buf {
        BufData::F32(_) | BufData::I32(_) => 4,
        BufData::F64(_) => 8,
    };
    elem * width as u64
}

fn local_bytes(buf: &LocalBuf, width: u8) -> u64 {
    let elem = match buf {
        LocalBuf::F32(_) => 4,
        LocalBuf::F64(_) | LocalBuf::I32(_) => 8,
    };
    elem * width as u64
}

fn check_bounds(
    kernel: &CompiledKernel,
    buf_idx: usize,
    idx: i64,
    width: u8,
    len: usize,
) -> Result<usize, RuntimeError> {
    if idx < 0 || (idx as usize) + width as usize > len {
        return Err(RuntimeError::GlobalOob {
            buffer: kernel.checked.buffer_params[buf_idx].name.clone(),
            index: idx,
            len,
        });
    }
    Ok(idx as usize)
}

#[allow(clippy::too_many_arguments)]
fn load_global(
    kernel: &CompiledKernel,
    bufs: &[BufData],
    buf: usize,
    idx: i64,
    width: u8,
    grace: Option<&GlobalRaceTables>,
    group: u32,
) -> Result<Value, RuntimeError> {
    let i = check_bounds(kernel, buf, idx, width, bufs[buf].len())?;
    if let Some(g) = grace {
        if let Err((k, other)) = g.on_read(buf, i, width, group) {
            return Err(global_race_err(kernel, buf, k, group, other));
        }
    }
    Ok(match (&bufs[buf], width) {
        (BufData::F32(v), 1) => Value::F32(v[i]),
        (BufData::F64(v), 1) => Value::F64(v[i]),
        (BufData::I32(v), 1) => Value::I(v[i] as i64),
        (BufData::F32(v), w) => Value::v32(&v[i..i + w as usize]),
        (BufData::F64(v), w) => Value::v64(&v[i..i + w as usize]),
        (BufData::I32(_), _) => {
            return Err(RuntimeError::Internal(
                "vector loads from int buffers unsupported".into(),
            ))
        }
    })
}

pub(crate) fn local_race_err(
    kernel: &CompiledKernel,
    arr: usize,
    index: usize,
    writer: u32,
    other: u32,
) -> RuntimeError {
    RuntimeError::LocalRace {
        array: kernel.checked.local_arrays[arr].name.clone(),
        index,
        writer: writer as usize,
        other: other as usize,
    }
}

pub(crate) fn global_race_err(
    kernel: &CompiledKernel,
    buf: usize,
    index: usize,
    group: u32,
    other: u32,
) -> RuntimeError {
    RuntimeError::GlobalRace {
        buffer: kernel.checked.buffer_params[buf].name.clone(),
        index,
        group: group as usize,
        other: other as usize,
    }
}

#[allow(clippy::too_many_arguments)]
fn store_global(
    kernel: &CompiledKernel,
    bufs: &mut [BufData],
    buf: usize,
    idx: i64,
    val: Value,
    width: u8,
    grace: Option<&GlobalRaceTables>,
    group: u32,
) -> Result<(), RuntimeError> {
    let i = check_bounds(kernel, buf, idx, width, bufs[buf].len())?;
    if let Some(g) = grace {
        if let Err((k, other)) = g.on_write(buf, i, width, group) {
            return Err(global_race_err(kernel, buf, k, group, other));
        }
    }
    match (&mut bufs[buf], val, width) {
        (BufData::F32(v), Value::F32(x), 1) => v[i] = x,
        (BufData::F64(v), Value::F64(x), 1) => v[i] = x,
        (BufData::I32(v), Value::I(x), 1) => v[i] = x as i32,
        (BufData::I32(v), Value::B(x), 1) => v[i] = x as i32,
        (BufData::F32(v), Value::V32(a, w), width) if w == width => {
            v[i..i + w as usize].copy_from_slice(&a[..w as usize])
        }
        (BufData::F64(v), Value::V64(a, w), width) if w == width => {
            v[i..i + w as usize].copy_from_slice(&a[..w as usize])
        }
        (b, v, w) => {
            return Err(RuntimeError::Internal(format!(
                "store type mismatch: {v:?} (width {w}) into {:?} buffer",
                b.base()
            )))
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn load_local(
    kernel: &CompiledKernel,
    locals: &[LocalBuf],
    races: &mut [RaceTable],
    arr: usize,
    idx: i64,
    width: u8,
    wi: u32,
    phase: u32,
) -> Result<Value, RuntimeError> {
    let len = locals[arr].len();
    if idx < 0 || (idx as usize) + width as usize > len {
        return Err(RuntimeError::LocalOob {
            array: kernel.checked.local_arrays[arr].name.clone(),
            index: idx,
            len,
        });
    }
    let i = idx as usize;
    if let Some(rt) = races.get_mut(arr) {
        if let Err((k, writer, other)) = rt.on_read(i, width, wi, phase) {
            return Err(local_race_err(kernel, arr, k, writer, other));
        }
    }
    Ok(match (&locals[arr], width) {
        (LocalBuf::F32(v), 1) => Value::F32(v[i]),
        (LocalBuf::F64(v), 1) => Value::F64(v[i]),
        (LocalBuf::I32(v), 1) => Value::I(v[i]),
        (LocalBuf::F32(v), w) => Value::v32(&v[i..i + w as usize]),
        (LocalBuf::F64(v), w) => Value::v64(&v[i..i + w as usize]),
        (LocalBuf::I32(_), _) => {
            return Err(RuntimeError::Internal(
                "vector loads from int local arrays unsupported".into(),
            ))
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn store_local(
    kernel: &CompiledKernel,
    locals: &mut [LocalBuf],
    races: &mut [RaceTable],
    arr: usize,
    idx: i64,
    val: Value,
    width: u8,
    wi: u32,
    phase: u32,
) -> Result<(), RuntimeError> {
    let len = locals[arr].len();
    if idx < 0 || (idx as usize) + width as usize > len {
        return Err(RuntimeError::LocalOob {
            array: kernel.checked.local_arrays[arr].name.clone(),
            index: idx,
            len,
        });
    }
    let i = idx as usize;
    if let Some(rt) = races.get_mut(arr) {
        if let Err((k, writer, other)) = rt.on_write(i, width, wi, phase) {
            return Err(local_race_err(kernel, arr, k, writer, other));
        }
    }
    match (&mut locals[arr], val, width) {
        (LocalBuf::F32(v), Value::F32(x), 1) => v[i] = x,
        (LocalBuf::F64(v), Value::F64(x), 1) => v[i] = x,
        (LocalBuf::I32(v), Value::I(x), 1) => v[i] = x,
        (LocalBuf::F32(v), Value::V32(a, w), width) if w == width => {
            v[i..i + w as usize].copy_from_slice(&a[..w as usize])
        }
        (LocalBuf::F64(v), Value::V64(a, w), width) if w == width => {
            v[i..i + w as usize].copy_from_slice(&a[..w as usize])
        }
        (_, v, w) => {
            return Err(RuntimeError::Internal(format!(
                "local store type mismatch: {v:?} width {w}"
            )))
        }
    }
    Ok(())
}

// ---- value operations ----------------------------------------------------

macro_rules! vec_zip {
    ($a:expr, $b:expr, $wa:expr, $f:expr) => {{
        let mut out = [Default::default(); 16];
        for k in 0..($wa as usize) {
            out[k] = $f($a[k], $b[k]);
        }
        (out, $wa)
    }};
}

pub(crate) fn bin_op(op: BinOp, a: Value, b: Value) -> Result<Value, RuntimeError> {
    use Value::*;
    // Comparisons on scalars.
    if op.is_cmp() {
        let r = match (a, b) {
            (I(x), I(y)) => cmp_ord(op, x.cmp(&y)),
            (F32(x), F32(y)) => cmp_f(op, x as f64, y as f64),
            (F64(x), F64(y)) => cmp_f(op, x, y),
            (B(x), B(y)) => cmp_ord(op, x.cmp(&y)),
            _ => {
                return Err(RuntimeError::Internal(format!(
                    "bad comparison {a:?} {op:?} {b:?}"
                )))
            }
        };
        return Ok(B(r));
    }
    if op.is_logic() {
        let (x, y) = (a.as_b()?, b.as_b()?);
        return Ok(B(match op {
            BinOp::And => x && y,
            BinOp::Or => x || y,
            _ => unreachable!(),
        }));
    }
    Ok(match (a, b) {
        (I(x), I(y)) => I(match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return Err(RuntimeError::Arithmetic("integer division by zero".into()));
                }
                x.wrapping_div(y)
            }
            BinOp::Rem => {
                if y == 0 {
                    return Err(RuntimeError::Arithmetic("integer remainder by zero".into()));
                }
                x.wrapping_rem(y)
            }
            BinOp::BitAnd => x & y,
            BinOp::BitOr => x | y,
            BinOp::BitXor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32),
            BinOp::Shr => x.wrapping_shr(y as u32),
            _ => return Err(RuntimeError::Internal(format!("bad int op {op:?}"))),
        }),
        (F32(x), F32(y)) => F32(f_arith(op, x as f64, y as f64)? as f32),
        (F64(x), F64(y)) => F64(f_arith(op, x, y)?),
        (V32(x, w), V32(y, w2)) if w == w2 => {
            let mut out = [0.0f32; 16];
            for k in 0..w as usize {
                out[k] = f_arith(op, x[k] as f64, y[k] as f64)? as f32;
            }
            V32(out, w)
        }
        (V64(x, w), V64(y, w2)) if w == w2 => {
            let (out, w) = {
                let mut out = [0.0f64; 16];
                for k in 0..w as usize {
                    out[k] = f_arith(op, x[k], y[k])?;
                }
                (out, w)
            };
            V64(out, w)
        }
        _ => {
            return Err(RuntimeError::Internal(format!(
                "operand mismatch {a:?} {op:?} {b:?}"
            )))
        }
    })
}

fn f_arith(op: BinOp, x: f64, y: f64) -> Result<f64, RuntimeError> {
    Ok(match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        _ => return Err(RuntimeError::Internal(format!("bad float op {op:?}"))),
    })
}

fn cmp_ord(op: BinOp, o: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Lt => o == Less,
        BinOp::Gt => o == Greater,
        BinOp::Le => o != Greater,
        BinOp::Ge => o != Less,
        BinOp::Eq => o == Equal,
        BinOp::Ne => o != Equal,
        _ => unreachable!(),
    }
}

fn cmp_f(op: BinOp, x: f64, y: f64) -> bool {
    match op {
        BinOp::Lt => x < y,
        BinOp::Gt => x > y,
        BinOp::Le => x <= y,
        BinOp::Ge => x >= y,
        BinOp::Eq => x == y,
        BinOp::Ne => x != y,
        _ => unreachable!(),
    }
}

pub(crate) fn un_op(op: UnOp, a: Value) -> Result<Value, RuntimeError> {
    use Value::*;
    Ok(match (op, a) {
        (UnOp::Neg, I(x)) => I(-x),
        (UnOp::Neg, F32(x)) => F32(-x),
        (UnOp::Neg, F64(x)) => F64(-x),
        (UnOp::Neg, V32(x, w)) => {
            let (out, w) = vec_zip!(x, x, w, |v: f32, _| -v);
            V32(out, w)
        }
        (UnOp::Neg, V64(x, w)) => {
            let (out, w) = vec_zip!(x, x, w, |v: f64, _| -v);
            V64(out, w)
        }
        (UnOp::Not, v) => B(!v.as_b()?),
        (op, v) => return Err(RuntimeError::Internal(format!("bad unary {op:?} on {v:?}"))),
    })
}

pub(crate) fn convert(v: Value, base: Base) -> Result<Value, RuntimeError> {
    use Value::*;
    Ok(match (v, base) {
        (I(x), Base::Float) => F32(x as f32),
        (I(x), Base::Double) => F64(x as f64),
        (I(x), Base::Int | Base::Uint) => I(x),
        (I(x), Base::Bool) => B(x != 0),
        (B(x), Base::Int | Base::Uint) => I(x as i64),
        (B(x), Base::Float) => F32(x as u8 as f32),
        (B(x), Base::Double) => F64(x as u8 as f64),
        (F32(x), Base::Double) => F64(x as f64),
        (F32(x), Base::Float) => F32(x),
        (F32(x), Base::Int | Base::Uint) => I(x as i64),
        (F64(x), Base::Float) => F32(x as f32),
        (F64(x), Base::Double) => F64(x),
        (F64(x), Base::Int | Base::Uint) => I(x as i64),
        (V32(x, w), Base::Double) => {
            let mut out = [0.0f64; 16];
            for k in 0..w as usize {
                out[k] = x[k] as f64;
            }
            V64(out, w)
        }
        (V64(x, w), Base::Float) => {
            let mut out = [0.0f32; 16];
            for k in 0..w as usize {
                out[k] = x[k] as f32;
            }
            V32(out, w)
        }
        (V32(x, w), Base::Float) => V32(x, w),
        (V64(x, w), Base::Double) => V64(x, w),
        (v, b) => {
            return Err(RuntimeError::Internal(format!(
                "bad convert {v:?} to {b:?}"
            )))
        }
    })
}

pub(crate) fn broadcast(v: Value, width: u8) -> Result<Value, RuntimeError> {
    Ok(match v {
        Value::F32(x) => Value::V32([x; 16], width),
        Value::F64(x) => Value::V64([x; 16], width),
        Value::I(x) => Value::V64([x as f64; 16], width),
        other => {
            return Err(RuntimeError::Internal(format!(
                "cannot broadcast {other:?}"
            )))
        }
    })
}

fn build_vec(base: Base, parts: &[usize], regs: &[Value]) -> Result<Value, RuntimeError> {
    match base {
        Base::Float => {
            let mut out = [0.0f32; 16];
            for (k, r) in parts.iter().enumerate() {
                out[k] = match regs[*r] {
                    Value::F32(x) => x,
                    other => {
                        return Err(RuntimeError::Internal(format!("bad vector part {other:?}")))
                    }
                };
            }
            Ok(Value::V32(out, parts.len() as u8))
        }
        Base::Double => {
            let mut out = [0.0f64; 16];
            for (k, r) in parts.iter().enumerate() {
                out[k] = match regs[*r] {
                    Value::F64(x) => x,
                    other => {
                        return Err(RuntimeError::Internal(format!("bad vector part {other:?}")))
                    }
                };
            }
            Ok(Value::V64(out, parts.len() as u8))
        }
        other => Err(RuntimeError::Internal(format!(
            "vectors of {other:?} unsupported"
        ))),
    }
}

pub(crate) fn extract(v: Value, lane: u8) -> Result<Value, RuntimeError> {
    match v {
        Value::V32(x, w) if lane < w => Ok(Value::F32(x[lane as usize])),
        Value::V64(x, w) if lane < w => Ok(Value::F64(x[lane as usize])),
        other => Err(RuntimeError::Internal(format!(
            "bad extract lane {lane} from {other:?}"
        ))),
    }
}

pub(crate) fn insert_lane(vec: Value, src: Value, lane: u8) -> Result<Value, RuntimeError> {
    match (vec, src) {
        (Value::V32(mut x, w), Value::F32(s)) if lane < w => {
            x[lane as usize] = s;
            Ok(Value::V32(x, w))
        }
        (Value::V64(mut x, w), Value::F64(s)) if lane < w => {
            x[lane as usize] = s;
            Ok(Value::V64(x, w))
        }
        (v, s) => Err(RuntimeError::Internal(format!(
            "bad insert of {s:?} into {v:?}"
        ))),
    }
}

pub(crate) fn mad(a: Value, b: Value, c: Value) -> Result<Value, RuntimeError> {
    use Value::*;
    Ok(match (a, b, c) {
        (F32(x), F32(y), F32(z)) => F32(x.mul_add(y, z)),
        (F64(x), F64(y), F64(z)) => F64(x.mul_add(y, z)),
        (V32(x, w), V32(y, w2), V32(z, w3)) if w == w2 && w == w3 => {
            let mut out = [0.0f32; 16];
            for k in 0..w as usize {
                out[k] = x[k].mul_add(y[k], z[k]);
            }
            V32(out, w)
        }
        (V64(x, w), V64(y, w2), V64(z, w3)) if w == w2 && w == w3 => {
            let mut out = [0.0f64; 16];
            for k in 0..w as usize {
                out[k] = x[k].mul_add(y[k], z[k]);
            }
            V64(out, w)
        }
        (a, b, c) => return Err(RuntimeError::Internal(format!("bad mad {a:?} {b:?} {c:?}"))),
    })
}

pub(crate) fn math(
    f: MathFunc,
    a: Value,
    b: Value,
    c: Value,
    n_args: u8,
) -> Result<Value, RuntimeError> {
    use Value::*;
    if n_args == 3 {
        // clamp(x, lo, hi)
        return Ok(match (f, a, b, c) {
            (MathFunc::Clamp, I(x), I(lo), I(hi)) => I(x.clamp(lo, hi)),
            (MathFunc::Clamp, F32(x), F32(lo), F32(hi)) => F32(x.clamp(lo, hi)),
            (MathFunc::Clamp, F64(x), F64(lo), F64(hi)) => F64(x.clamp(lo, hi)),
            (f, a, b, c) => {
                return Err(RuntimeError::Internal(format!(
                    "bad math {f:?} {a:?} {b:?} {c:?}"
                )))
            }
        });
    }
    if n_args == 2 {
        return Ok(match (f, a, b) {
            (MathFunc::Min, I(x), I(y)) => I(x.min(y)),
            (MathFunc::Max, I(x), I(y)) => I(x.max(y)),
            (MathFunc::Min | MathFunc::Fmin, F32(x), F32(y)) => F32(x.min(y)),
            (MathFunc::Max | MathFunc::Fmax, F32(x), F32(y)) => F32(x.max(y)),
            (MathFunc::Min | MathFunc::Fmin, F64(x), F64(y)) => F64(x.min(y)),
            (MathFunc::Max | MathFunc::Fmax, F64(x), F64(y)) => F64(x.max(y)),
            (f, a, b) => {
                return Err(RuntimeError::Internal(format!(
                    "bad math {f:?} {a:?} {b:?}"
                )))
            }
        });
    }
    Ok(match (f, a) {
        (MathFunc::Fabs, F32(x)) => F32(x.abs()),
        (MathFunc::Fabs, F64(x)) => F64(x.abs()),
        (MathFunc::Sqrt, F32(x)) => F32(x.sqrt()),
        (MathFunc::Sqrt, F64(x)) => F64(x.sqrt()),
        (MathFunc::Exp, F32(x)) => F32(x.exp()),
        (MathFunc::Exp, F64(x)) => F64(x.exp()),
        (MathFunc::Log, F32(x)) => F32(x.ln()),
        (MathFunc::Log, F64(x)) => F64(x.ln()),
        (MathFunc::NativeRecip, F32(x)) => F32(1.0 / x),
        (MathFunc::NativeRecip, F64(x)) => F64(1.0 / x),
        (f, a) => return Err(RuntimeError::Internal(format!("bad math {f:?} {a:?}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_constructors() {
        assert_eq!(
            Value::v32(&[1.0, 2.0]),
            Value::V32(
                {
                    let mut a = [0.0; 16];
                    a[0] = 1.0;
                    a[1] = 2.0;
                    a
                },
                2
            )
        );
        assert!(matches!(Value::v64(&[1.0; 4]), Value::V64(_, 4)));
    }

    #[test]
    fn int_division_by_zero_is_caught() {
        assert!(matches!(
            bin_op(BinOp::Div, Value::I(1), Value::I(0)),
            Err(RuntimeError::Arithmetic(_))
        ));
    }

    #[test]
    fn float_ops_round_at_storage_precision() {
        // f32 arithmetic is done in f64 then rounded to f32, matching a
        // single-precision unit with correctly rounded results.
        let r = bin_op(BinOp::Add, Value::F32(1e8), Value::F32(1.0)).unwrap();
        assert_eq!(r, Value::F32(1e8)); // absorbed in f32
        let r = bin_op(BinOp::Add, Value::F64(1e8), Value::F64(1.0)).unwrap();
        assert_eq!(r, Value::F64(100000001.0));
    }

    #[test]
    fn vector_mad_counts_all_lanes() {
        let a = Value::v64(&[1.0, 2.0]);
        let r = mad(a, a, a).unwrap();
        assert_eq!(r, Value::v64(&[2.0, 6.0]));
    }

    #[test]
    fn conversions() {
        assert_eq!(convert(Value::I(3), Base::Double).unwrap(), Value::F64(3.0));
        assert_eq!(convert(Value::F64(2.9), Base::Int).unwrap(), Value::I(2));
        assert_eq!(
            convert(Value::F32(1.5), Base::Double).unwrap(),
            Value::F64(1.5)
        );
    }

    #[test]
    fn extract_and_insert() {
        let v = Value::v64(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(extract(v, 2).unwrap(), Value::F64(3.0));
        let v2 = insert_lane(v, Value::F64(9.0), 1).unwrap();
        assert_eq!(extract(v2, 1).unwrap(), Value::F64(9.0));
        assert!(extract(v, 4).is_err());
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            bin_op(BinOp::Lt, Value::I(1), Value::I(2)).unwrap(),
            Value::B(true)
        );
        assert_eq!(
            bin_op(BinOp::Ge, Value::F64(2.0), Value::F64(2.0)).unwrap(),
            Value::B(true)
        );
        assert_eq!(
            bin_op(BinOp::Ne, Value::F32(1.0), Value::F32(1.0)).unwrap(),
            Value::B(false)
        );
    }
}
