//! Bytecode disassembler.
//!
//! Renders a lowered kernel as readable text — one instruction per line
//! with jump-target labels — so generator authors can inspect what their
//! OpenCL C actually lowered to. The `codegen_dump` example and compiler
//! debugging both use this.

use crate::lower::{CompiledKernel, Instr, MathFunc, WiFunc};
use std::collections::BTreeSet;
use std::fmt::Write as _;

fn wi_name(f: WiFunc) -> &'static str {
    match f {
        WiFunc::GlobalId => "get_global_id",
        WiFunc::LocalId => "get_local_id",
        WiFunc::GroupId => "get_group_id",
        WiFunc::GlobalSize => "get_global_size",
        WiFunc::LocalSize => "get_local_size",
        WiFunc::NumGroups => "get_num_groups",
    }
}

fn math_name(f: MathFunc) -> &'static str {
    match f {
        MathFunc::Min => "min",
        MathFunc::Max => "max",
        MathFunc::Fmin => "fmin",
        MathFunc::Fmax => "fmax",
        MathFunc::Clamp => "clamp",
        MathFunc::Fabs => "fabs",
        MathFunc::Sqrt => "sqrt",
        MathFunc::NativeRecip => "native_recip",
        MathFunc::Exp => "exp",
        MathFunc::Log => "log",
    }
}

/// Disassemble a compiled kernel into human-readable text.
#[must_use]
pub fn disassemble(k: &CompiledKernel) -> String {
    // Collect jump targets so they can be labelled.
    let mut targets = BTreeSet::new();
    for instr in &k.code {
        match instr {
            Instr::Jump { target } | Instr::JumpIfFalse { target, .. } => {
                targets.insert(*target);
            }
            _ => {}
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "kernel {} ({} regs, {} barrier sites)",
        k.name, k.n_regs, k.n_barrier_sites
    );
    for (i, a) in k.checked.local_arrays.iter().enumerate() {
        let _ = writeln!(out, "  local[{i}] {} {}[{}]", a.base.name(), a.name, a.len);
    }
    for (b, p) in k.checked.buffer_params.iter().enumerate() {
        let _ = writeln!(
            out,
            "  buffer[{b}] {}{}* {}",
            if p.is_const { "const " } else { "" },
            p.base.name(),
            p.name
        );
    }
    for (pc, instr) in k.code.iter().enumerate() {
        if targets.contains(&pc) {
            let _ = writeln!(out, "L{pc}:");
        }
        let text = match instr {
            Instr::Const { dst, val } => format!("r{dst} = const {val:?}"),
            Instr::Mov { dst, src } => format!("r{dst} = r{src}"),
            Instr::Bin { op, dst, a, b } => format!("r{dst} = r{a} {op:?} r{b}"),
            Instr::Un { op, dst, a } => format!("r{dst} = {op:?} r{a}"),
            Instr::Convert { dst, src, base } => {
                format!("r{dst} = convert<{}> r{src}", base.name())
            }
            Instr::Broadcast { dst, src, width } => format!("r{dst} = broadcast{width} r{src}"),
            Instr::BuildVec { dst, base, parts } => {
                let regs: Vec<String> = parts.iter().map(|r| format!("r{r}")).collect();
                format!(
                    "r{dst} = ({}{})({})",
                    base.name(),
                    parts.len(),
                    regs.join(", ")
                )
            }
            Instr::Extract { dst, src, lane } => format!("r{dst} = r{src}.s{lane:x}"),
            Instr::InsertLane { vec, src, lane } => format!("r{vec}.s{lane:x} = r{src}"),
            Instr::Mad { dst, a, b, c } => format!("r{dst} = mad(r{a}, r{b}, r{c})"),
            Instr::Math {
                f,
                dst,
                args,
                n_args,
            } => {
                let regs: Vec<String> = args
                    .iter()
                    .take(*n_args as usize)
                    .map(|r| format!("r{r}"))
                    .collect();
                format!("r{dst} = {}({})", math_name(*f), regs.join(", "))
            }
            Instr::Wi { f, dst, dim } => format!("r{dst} = {}(r{dim})", wi_name(*f)),
            Instr::LoadGlobal {
                dst,
                buf,
                idx,
                width,
            } => {
                format!("r{dst} = gload{width} buffer[{buf}][r{idx}]")
            }
            Instr::StoreGlobal {
                buf,
                idx,
                src,
                width,
            } => {
                format!("gstore{width} buffer[{buf}][r{idx}] = r{src}")
            }
            Instr::LoadLocal {
                dst,
                arr,
                idx,
                width,
            } => {
                format!("r{dst} = lload{width} local[{arr}][r{idx}]")
            }
            Instr::StoreLocal {
                arr,
                idx,
                src,
                width,
            } => {
                format!("lstore{width} local[{arr}][r{idx}] = r{src}")
            }
            Instr::Jump { target } => format!("jump L{target}"),
            Instr::JumpIfFalse { cond, target } => format!("jumpz r{cond} L{target}"),
            Instr::Barrier { site } => format!("barrier #{site}"),
            Instr::Select { dst, cond, a, b } => format!("r{dst} = r{cond} ? r{a} : r{b}"),
            Instr::Ret => "ret".to_string(),
        };
        let _ = writeln!(out, "  {pc:>4}  {text}");
    }
    out
}

/// Disassemble a kernel's fast-engine plan: typed bank sizes, fused
/// superinstruction count, and one typed op per line. Returns `None`
/// when the kernel did not specialise (it runs on the reference
/// interpreter instead).
#[must_use]
pub fn disassemble_fast(k: &CompiledKernel) -> Option<String> {
    use crate::fastvm::FOp;
    let fk = k.fast.as_ref()?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fast plan {} ({} ops, {} fused; banks: {} i64, {} f32, {} f64, {} v32 lanes, {} v64 lanes)",
        k.name,
        fk.op_count(),
        fk.fused_count(),
        fk.n_int,
        fk.n_f32,
        fk.n_f64,
        fk.v32_lanes,
        fk.v64_lanes,
    );
    for (pc, op) in fk.ops.iter().enumerate() {
        let fused = matches!(
            op,
            FOp::CmpJzI { .. }
                | FOp::CmpJz32 { .. }
                | FOp::CmpJz64 { .. }
                | FOp::IConstCmpJz { .. }
                | FOp::IConstBin { .. }
                | FOp::MulAdd32 { .. }
                | FOp::MulAdd64 { .. }
                | FOp::VMulAdd32 { .. }
                | FOp::VMulAdd64 { .. }
                | FOp::LdG32To64 { .. }
                | FOp::LdG64To32 { .. }
        );
        let mark = if fused { "*" } else { " " };
        let _ = writeln!(out, "  {pc:>4} {mark} {op:?}");
    }
    Some(out)
}

/// Disassemble the compiled-engine artefacts for a kernel: the
/// optimised SSA function followed by the pre-scheduled trace plan,
/// exactly as `Engine::Compiled` will execute it. This is the text the
/// golden-file check in CI diffs.
///
/// # Errors
/// The IR pipeline's decline reason when it rejects the kernel (such
/// kernels run on the fast VM instead).
pub fn disassemble_ir(k: &CompiledKernel) -> Result<String, String> {
    let (f, plan) = crate::ir::compile_parts(k)?;
    let mut out = String::new();
    let _ = writeln!(out, "ir {}:", k.name);
    out.push_str(&crate::ir::print::print_func(&f));
    let _ = writeln!(out, "trace {}:", k.name);
    out.push_str(&crate::ir::print::print_plan(&plan));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::lower::lower;
    use crate::parser::parse;

    fn compile(src: &str) -> CompiledKernel {
        lower(&check(&parse(src).unwrap()).unwrap())
            .unwrap()
            .remove(0)
    }

    #[test]
    fn disassembly_lists_header_and_instructions() {
        let k = compile(
            r#"__kernel void k(__global const double* a, __global double* c, int n) {
                int i = get_global_id(0);
                if (i < n) { c[i] = mad(a[i], 2.0, 1.0); }
            }"#,
        );
        let d = disassemble(&k);
        assert!(d.starts_with("kernel k ("), "{d}");
        assert!(d.contains("buffer[0] const double* a"));
        assert!(d.contains("buffer[1] double* c"));
        assert!(d.contains("get_global_id"));
        assert!(d.contains("mad("));
        assert!(d.contains("gload1"));
        assert!(d.contains("gstore1"));
        assert!(d.contains("ret"));
    }

    #[test]
    fn jump_targets_are_labelled() {
        let k = compile(
            r#"__kernel void k(__global int* x, int n) {
                for (int i = 0; i < n; i += 1) { x[i] = i; }
            }"#,
        );
        let d = disassemble(&k);
        assert!(d.contains("jumpz"), "{d}");
        assert!(d.contains("jump L"), "{d}");
        // Every referenced label must be defined.
        for line in d.lines() {
            if let Some(idx) = line.find("jump L").or_else(|| line.find("jumpz ")) {
                let tail = &line[idx..];
                if let Some(lpos) = tail.find('L') {
                    let label: String = tail[lpos + 1..]
                        .chars()
                        .take_while(char::is_ascii_digit)
                        .collect();
                    assert!(
                        d.contains(&format!("L{label}:")),
                        "undefined label L{label} in:\n{d}"
                    );
                }
            }
        }
    }

    #[test]
    fn local_arrays_and_barriers_shown() {
        let k = compile(
            r#"__kernel void k(__global double* x) {
                __local double t[16];
                t[get_local_id(0)] = x[get_global_id(0)];
                barrier(1);
                x[get_global_id(0)] = t[0];
            }"#,
        );
        let d = disassemble(&k);
        assert!(d.contains("local[0] double t[16]"));
        assert!(d.contains("barrier #0"));
        assert!(d.contains("lstore1"));
        assert!(d.contains("lload1"));
    }

    #[test]
    fn fast_plan_disassembly_marks_fused_ops() {
        let k = compile(
            r#"__kernel void k(__global const float* a, __global float* c, int n) {
                int i = get_global_id(0);
                float acc = 0.0f;
                for (int j = 0; j < n; j = j + 1) {
                    acc = acc + a[i*n + j] * a[i*n + j];
                }
                c[i] = acc;
            }"#,
        );
        let d = disassemble_fast(&k).expect("kernel should specialise");
        assert!(d.starts_with("fast plan k ("), "{d}");
        assert!(d.contains("fused"), "{d}");
        // At least one fused op, rendered with the `*` marker.
        assert!(d.lines().any(|l| l.contains(" * ")), "{d}");
    }

    #[test]
    fn ir_disassembly_shows_ssa_and_trace() {
        let k = compile(
            r#"__kernel void k(__global const float* a, __global float* c, int n) {
                int i = get_global_id(0);
                float acc = 0.0f;
                for (int j = 0; j < n; j = j + 1) { acc = acc + a[i]; }
                c[i] = acc * 2.0f + 1.0f;
            }"#,
        );
        let d = disassemble_ir(&k).expect("compiled engine should accept kernel");
        assert!(d.starts_with("ir k:"), "{d}");
        assert!(d.contains("b0("), "{d}");
        assert!(d.contains("trace k:"), "{d}");
        assert!(d.contains("group g"), "{d}");
        assert!(d.contains("ret"), "{d}");
    }

    #[test]
    fn vector_ops_render() {
        let k = compile(
            r#"__kernel void k(__global const float* a, __global float* c) {
                float4 v = vload4(0, a);
                float s = v.s2;
                vstore4((float4)(s, s, s, s), 0, c);
            }"#,
        );
        let d = disassemble(&k);
        assert!(d.contains("gload4"));
        assert!(d.contains(".s2"));
        assert!(d.contains("(float4)("));
        assert!(d.contains("gstore4"));
    }
}
