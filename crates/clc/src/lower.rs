//! Lowering of the checked AST to register bytecode.
//!
//! The VM is a simple register machine: each work-item owns a register
//! file of [`Value`]s; declared variables and value
//! parameters occupy fixed slots, temporaries are bump-allocated. Control
//! flow becomes jumps; `barrier(...)` becomes a [`Instr::Barrier`] with a
//! per-site id so the VM can detect barrier divergence between
//! work-items.

use crate::ast::*;
use crate::check::{CheckedKernel, CheckedUnit, VarRef};
use crate::error::{CompileError, Pos};
use crate::vm::Value;
use std::collections::HashMap;

/// A virtual register index.
pub type Reg = usize;

/// Work-item index-space query functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WiFunc {
    GlobalId,
    LocalId,
    GroupId,
    GlobalSize,
    LocalSize,
    NumGroups,
}

/// Math builtins with a uniform register signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MathFunc {
    Min,
    Max,
    Fmin,
    Fmax,
    Clamp,
    Fabs,
    Sqrt,
    NativeRecip,
    Exp,
    Log,
}

/// One bytecode instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = constant`.
    Const { dst: Reg, val: Value },
    /// `dst = src`.
    Mov { dst: Reg, src: Reg },
    /// `dst = a op b` (operands already width/base-matched by lowering).
    Bin { op: BinOp, dst: Reg, a: Reg, b: Reg },
    /// `dst = op a`.
    Un { op: UnOp, dst: Reg, a: Reg },
    /// Scalar/vector numeric conversion to `base` keeping width.
    Convert { dst: Reg, src: Reg, base: Base },
    /// Scalar → vector broadcast.
    Broadcast { dst: Reg, src: Reg, width: u8 },
    /// Assemble a vector from scalar parts.
    BuildVec {
        dst: Reg,
        base: Base,
        parts: Vec<Reg>,
    },
    /// `dst = src.lane` (scalar extract).
    Extract { dst: Reg, src: Reg, lane: u8 },
    /// `vec.lane = src` in place.
    InsertLane { vec: Reg, src: Reg, lane: u8 },
    /// Fused multiply-add `dst = a*b + c`, elementwise.
    Mad { dst: Reg, a: Reg, b: Reg, c: Reg },
    /// Math builtin (1–3 register operands).
    Math {
        f: MathFunc,
        dst: Reg,
        args: [Reg; 3],
        n_args: u8,
    },
    /// Index-space query; `dim` register holds the dimension.
    Wi { f: WiFunc, dst: Reg, dim: Reg },
    /// Load `width` consecutive elements from global buffer `buf` at
    /// element index in `idx`.
    LoadGlobal {
        dst: Reg,
        buf: usize,
        idx: Reg,
        width: u8,
    },
    /// Store to a global buffer.
    StoreGlobal {
        buf: usize,
        idx: Reg,
        src: Reg,
        width: u8,
    },
    /// Load from a local array.
    LoadLocal {
        dst: Reg,
        arr: usize,
        idx: Reg,
        width: u8,
    },
    /// Store to a local array.
    StoreLocal {
        arr: usize,
        idx: Reg,
        src: Reg,
        width: u8,
    },
    /// Unconditional jump to instruction index.
    Jump { target: usize },
    /// Jump when the bool in `cond` is false.
    JumpIfFalse { cond: Reg, target: usize },
    /// Work-group barrier; `site` identifies the static barrier location.
    Barrier { site: u32 },
    /// `dst = cond ? a : b` (both arms already evaluated — arms in the
    /// subset are side-effect free).
    Select { dst: Reg, cond: Reg, a: Reg, b: Reg },
    /// Kernel return.
    Ret,
}

/// A lowered kernel ready for execution.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    pub name: String,
    pub code: Vec<Instr>,
    pub n_regs: usize,
    pub n_barrier_sites: u32,
    pub checked: CheckedKernel,
    /// Instruction positions for runtime diagnostics.
    pub positions: Vec<Pos>,
    /// Typed/fused plan for the fast engine, when the register-class
    /// assignment pass types every register; `None` falls back to the
    /// reference interpreter.
    pub fast: Option<crate::fastvm::FastKernel>,
    /// Pre-scheduled trace plan from the SSA compiler pipeline, for the
    /// default [`crate::vm::Engine::Compiled`]; `None` falls back to
    /// the fast engine.
    pub trace: Option<crate::ir::trace::TracePlan>,
    /// Why the trace compiler declined this kernel, when it did.
    pub trace_decline: Option<String>,
}

/// Static storage class of a virtual register, assigned at compile time
/// so the fast engine can keep registers in typed per-class banks and
/// never match on [`Value`] variants in its inner loop. Booleans live in
/// the integer bank as 0/1 — every reference-interpreter coercion
/// (`as_b`, bool→float converts, bool comparisons) is value-identical
/// under that encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegClass {
    /// `i64` scalars and bools.
    Int,
    F32,
    F64,
    /// `f32` vector of the given width.
    V32(u8),
    /// `f64` vector of the given width.
    V64(u8),
}

/// Infer one storage class per register by forward dataflow over the
/// bytecode, seeded from value-parameter types. Returns `None` when any
/// register would need two classes (the fast engine then falls back to
/// the reference interpreter). Registers never written keep the
/// reference interpreter's implicit `I(0)` and class `Int`.
#[must_use]
pub fn assign_classes(k: &CompiledKernel) -> Option<Vec<RegClass>> {
    let mut cls: Vec<Option<RegClass>> = vec![None; k.n_regs];
    for p in &k.checked.value_params {
        let c = match p.ty {
            Type::Scalar(Base::Int | Base::Uint | Base::Bool) => RegClass::Int,
            Type::Scalar(Base::Float) => RegClass::F32,
            Type::Scalar(Base::Double) => RegClass::F64,
            _ => return None,
        };
        cls[p.slot] = Some(c);
    }
    // Forward passes to a fixpoint: each pass may resolve classes that
    // feed later (or, through loops, earlier) instructions.
    for _ in 0..k.code.len() + 2 {
        let mut changed = false;
        for ins in &k.code {
            let Some((dst, c)) = dst_class(ins, &cls, &k.checked) else {
                continue;
            };
            match cls[dst] {
                None => {
                    cls[dst] = Some(c);
                    changed = true;
                }
                Some(prev) if prev != c => return None,
                Some(_) => {}
            }
        }
        if !changed {
            break;
        }
    }
    let filled: Vec<Option<RegClass>> = cls
        .iter()
        .map(|c| Some(c.unwrap_or(RegClass::Int)))
        .collect();
    // Verification sweep with the Int defaults in place: a default must
    // not contradict any write site.
    for ins in &k.code {
        if let Some((dst, c)) = dst_class(ins, &filled, &k.checked) {
            if filled[dst] != Some(c) {
                return None;
            }
        }
    }
    Some(filled.into_iter().map(|c| c.expect("filled")).collect())
}

/// The class an instruction's destination takes, given (possibly still
/// unknown) operand classes. `None` means "no destination", "operands
/// not yet classified", or "statically ill-typed" — the last is fine
/// here because the fast engine's specialiser re-validates every
/// operand and refuses ill-typed code (which the reference interpreter
/// then rejects at runtime, keeping both paths' behaviour identical).
fn dst_class(ins: &Instr, cls: &[Option<RegClass>], ck: &CheckedKernel) -> Option<(Reg, RegClass)> {
    use RegClass as C;
    let mem_class = |base: Base, width: u8| -> Option<C> {
        match (base, width) {
            (Base::Float, 1) => Some(C::F32),
            (Base::Double, 1) => Some(C::F64),
            (Base::Int | Base::Uint | Base::Bool, 1) => Some(C::Int),
            (Base::Float, w) => Some(C::V32(w)),
            (Base::Double, w) => Some(C::V64(w)),
            _ => None,
        }
    };
    match ins {
        Instr::Const { dst, val } => {
            let c = match val {
                Value::I(_) | Value::B(_) => C::Int,
                Value::F32(_) => C::F32,
                Value::F64(_) => C::F64,
                Value::V32(_, w) => C::V32(*w),
                Value::V64(_, w) => C::V64(*w),
            };
            Some((*dst, c))
        }
        Instr::Mov { dst, src } => Some((*dst, cls[*src]?)),
        Instr::Bin { op, dst, a, .. } => {
            if op.is_cmp() || op.is_logic() || op.int_only() {
                Some((*dst, C::Int))
            } else {
                Some((*dst, cls[*a]?))
            }
        }
        Instr::Un { op, dst, a } => match op {
            UnOp::Not => Some((*dst, C::Int)),
            UnOp::Neg => Some((*dst, cls[*a]?)),
        },
        Instr::Convert { dst, src, base } => {
            let c = match (cls[*src]?, base) {
                (C::Int | C::F32 | C::F64, Base::Float) => C::F32,
                (C::Int | C::F32 | C::F64, Base::Double) => C::F64,
                (C::Int | C::F32 | C::F64, Base::Int | Base::Uint) => C::Int,
                (C::Int, Base::Bool) => C::Int,
                (C::V32(w), Base::Double) => C::V64(w),
                (C::V32(w), Base::Float) => C::V32(w),
                (C::V64(w), Base::Float) => C::V32(w),
                (C::V64(w), Base::Double) => C::V64(w),
                _ => return None,
            };
            Some((*dst, c))
        }
        Instr::Broadcast { dst, src, width } => {
            let c = match cls[*src]? {
                C::F32 => C::V32(*width),
                // The reference interpreter broadcasts ints to double
                // vectors; mirror that quirk.
                C::F64 | C::Int => C::V64(*width),
                _ => return None,
            };
            Some((*dst, c))
        }
        Instr::BuildVec { dst, base, parts } => {
            let c = match base {
                Base::Float => C::V32(parts.len() as u8),
                Base::Double => C::V64(parts.len() as u8),
                _ => return None,
            };
            Some((*dst, c))
        }
        Instr::Extract { dst, src, .. } => {
            let c = match cls[*src]? {
                C::V32(_) => C::F32,
                C::V64(_) => C::F64,
                _ => return None,
            };
            Some((*dst, c))
        }
        Instr::Mad { dst, a, .. } => Some((*dst, cls[*a]?)),
        Instr::Math { dst, args, .. } => Some((*dst, cls[args[0]]?)),
        Instr::Wi { dst, .. } => Some((*dst, C::Int)),
        Instr::LoadGlobal {
            dst, buf, width, ..
        } => Some((*dst, mem_class(ck.buffer_params[*buf].base, *width)?)),
        Instr::LoadLocal {
            dst, arr, width, ..
        } => Some((*dst, mem_class(ck.local_arrays[*arr].base, *width)?)),
        Instr::Select { dst, a, .. } => Some((*dst, cls[*a]?)),
        Instr::InsertLane { .. }
        | Instr::StoreGlobal { .. }
        | Instr::StoreLocal { .. }
        | Instr::Jump { .. }
        | Instr::JumpIfFalse { .. }
        | Instr::Barrier { .. }
        | Instr::Ret => None,
    }
}

/// Lower every kernel of a checked unit.
pub fn lower(unit: &CheckedUnit) -> Result<Vec<CompiledKernel>, CompileError> {
    unit.kernels.iter().map(lower_kernel).collect()
}

struct Lowerer<'a> {
    ck: &'a CheckedKernel,
    code: Vec<Instr>,
    positions: Vec<Pos>,
    next_reg: Reg,
    barrier_sites: u32,
    /// Map from value-variable declaration site to slot; the checker
    /// already numbered them, but resolution of *uses* happens through
    /// `resolutions`, so lowering keeps its own scope map mirroring the
    /// checker's scoping.
    scopes: Vec<HashMap<String, Reg>>,
}

fn lower_kernel(ck: &CheckedKernel) -> Result<CompiledKernel, CompileError> {
    let mut lw = Lowerer {
        ck,
        code: Vec::new(),
        positions: Vec::new(),
        next_reg: ck.n_slots,
        barrier_sites: 0,
        scopes: vec![HashMap::new()],
    };
    for p in &ck.value_params {
        lw.scopes[0].insert(p.name.clone(), p.slot);
    }
    let body = ck.def.body.clone();
    lw.block(&body)?;
    lw.emit(Instr::Ret, ck.def.pos);
    let mut k = CompiledKernel {
        name: ck.def.name.clone(),
        n_regs: lw.next_reg,
        n_barrier_sites: lw.barrier_sites,
        code: lw.code,
        positions: lw.positions,
        checked: ck.clone(),
        fast: None,
        trace: None,
        trace_decline: None,
    };
    k.fast = crate::fastvm::specialize(&k);
    match crate::ir::compile(&k) {
        Ok(plan) => k.trace = Some(plan),
        Err(reason) => k.trace_decline = Some(reason),
    }
    Ok(k)
}

impl<'a> Lowerer<'a> {
    fn emit(&mut self, i: Instr, pos: Pos) -> usize {
        self.code.push(i);
        self.positions.push(pos);
        self.code.len() - 1
    }

    fn fresh(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn ty_of(&self, e: &Expr) -> Type {
        *self
            .ck
            .expr_types
            .get(&e.id)
            .expect("checker typed every expression")
    }

    fn slot_of_var(&self, name: &str) -> Option<Reg> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Empty => Ok(()),
            Stmt::Return(pos) => {
                self.emit(Instr::Ret, *pos);
                Ok(())
            }
            Stmt::Decl {
                pos,
                ty,
                name,
                array_len,
                init,
                ..
            } => {
                if array_len.is_some() {
                    // Local arrays were registered by the checker; nothing
                    // to execute. Record the name → array resolution is in
                    // `resolutions` at use sites.
                    return Ok(());
                }
                let slot = self.fresh_decl_slot(name);
                if let Some(e) = init {
                    let r = self.expr_as(e, *ty)?;
                    self.emit(Instr::Mov { dst: slot, src: r }, *pos);
                } else {
                    // Zero-initialise so reads of uninitialised variables
                    // are deterministic (stricter than C; helps testing).
                    let val = zero_of(*ty).ok_or_else(|| {
                        CompileError::new(*pos, "cannot declare variable of this type")
                    })?;
                    self.emit(Instr::Const { dst: slot, val }, *pos);
                }
                Ok(())
            }
            Stmt::Assign { pos, lhs, rhs } => self.assign(lhs, rhs, *pos),
            Stmt::Expr(e) => {
                let _ = self.expr(e)?;
                Ok(())
            }
            Stmt::If {
                pos,
                cond,
                then_body,
                else_body,
            } => {
                let c = self.expr_cond(cond)?;
                let jf = self.emit(Instr::JumpIfFalse { cond: c, target: 0 }, *pos);
                self.scopes.push(HashMap::new());
                self.block(then_body)?;
                self.scopes.pop();
                if else_body.is_empty() {
                    let end = self.code.len();
                    self.patch_jump(jf, end);
                } else {
                    let jend = self.emit(Instr::Jump { target: 0 }, *pos);
                    let else_start = self.code.len();
                    self.patch_jump(jf, else_start);
                    self.scopes.push(HashMap::new());
                    self.block(else_body)?;
                    self.scopes.pop();
                    let end = self.code.len();
                    self.patch_jump(jend, end);
                }
                Ok(())
            }
            Stmt::While { pos, cond, body } => {
                let loop_head = self.code.len();
                let c = self.expr_cond(cond)?;
                let jf = self.emit(Instr::JumpIfFalse { cond: c, target: 0 }, *pos);
                self.scopes.push(HashMap::new());
                self.block(body)?;
                self.scopes.pop();
                self.emit(Instr::Jump { target: loop_head }, *pos);
                let end = self.code.len();
                self.patch_jump(jf, end);
                Ok(())
            }
            Stmt::For {
                pos,
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                self.stmt(init)?;
                let loop_head = self.code.len();
                let c = self.expr_cond(cond)?;
                let jf = self.emit(Instr::JumpIfFalse { cond: c, target: 0 }, *pos);
                self.scopes.push(HashMap::new());
                self.block(body)?;
                self.scopes.pop();
                self.stmt(step)?;
                self.emit(Instr::Jump { target: loop_head }, *pos);
                let end = self.code.len();
                self.patch_jump(jf, end);
                self.scopes.pop();
                Ok(())
            }
        }
    }

    fn fresh_decl_slot(&mut self, name: &str) -> Reg {
        let slot = self.fresh();
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), slot);
        slot
    }

    fn patch_jump(&mut self, at: usize, target: usize) {
        match &mut self.code[at] {
            Instr::Jump { target: t } | Instr::JumpIfFalse { target: t, .. } => *t = target,
            other => panic!("patching non-jump {other:?}"),
        }
    }

    fn assign(&mut self, lhs: &Expr, rhs: &Expr, pos: Pos) -> Result<(), CompileError> {
        let lty = self.ty_of(lhs);
        match &lhs.kind {
            ExprKind::Var(name) => {
                let slot = self
                    .slot_of_var(name)
                    .ok_or_else(|| CompileError::new(pos, format!("no slot for `{name}`")))?;
                let r = self.expr_as(rhs, lty)?;
                self.emit(Instr::Mov { dst: slot, src: r }, pos);
                Ok(())
            }
            ExprKind::Index(base, idx) => {
                let r = self.expr_as(rhs, lty)?;
                let i = self.expr(idx)?;
                match self.target_of(base)? {
                    MemTarget::Global(buf) => {
                        self.emit(
                            Instr::StoreGlobal {
                                buf,
                                idx: i,
                                src: r,
                                width: 1,
                            },
                            pos,
                        );
                    }
                    MemTarget::Local(arr) => {
                        self.emit(
                            Instr::StoreLocal {
                                arr,
                                idx: i,
                                src: r,
                                width: 1,
                            },
                            pos,
                        );
                    }
                }
                Ok(())
            }
            ExprKind::Swizzle(vec_expr, lane) => {
                let ExprKind::Var(name) = &vec_expr.kind else {
                    return Err(CompileError::new(
                        pos,
                        "can only assign components of variables",
                    ));
                };
                let slot = self
                    .slot_of_var(name)
                    .ok_or_else(|| CompileError::new(pos, format!("no slot for `{name}`")))?;
                let r = self.expr_as(rhs, lty)?;
                self.emit(
                    Instr::InsertLane {
                        vec: slot,
                        src: r,
                        lane: *lane,
                    },
                    pos,
                );
                Ok(())
            }
            _ => Err(CompileError::new(pos, "expression is not assignable")),
        }
    }

    /// Resolve the buffer/local-array a pointer expression denotes.
    fn target_of(&self, e: &Expr) -> Result<MemTarget, CompileError> {
        match &e.kind {
            ExprKind::Var(_) => match self.ck.resolutions.get(&e.id) {
                Some(VarRef::Buffer(b)) => Ok(MemTarget::Global(*b)),
                Some(VarRef::LocalArr(a)) => Ok(MemTarget::Local(*a)),
                _ => Err(CompileError::new(e.pos, "expected a pointer")),
            },
            _ => Err(CompileError::new(
                e.pos,
                "pointer expressions must be simple names",
            )),
        }
    }

    /// Evaluate an expression into a fresh register.
    fn expr(&mut self, e: &Expr) -> Result<Reg, CompileError> {
        let ty = self.ty_of(e);
        match &e.kind {
            ExprKind::IntLit(v) => {
                let dst = self.fresh();
                self.emit(
                    Instr::Const {
                        dst,
                        val: Value::I(*v),
                    },
                    e.pos,
                );
                Ok(dst)
            }
            ExprKind::FloatLit(v, is_f32) => {
                let dst = self.fresh();
                let val = if *is_f32 {
                    Value::F32(*v as f32)
                } else {
                    Value::F64(*v)
                };
                self.emit(Instr::Const { dst, val }, e.pos);
                Ok(dst)
            }
            ExprKind::Var(name) => match self.ck.resolutions.get(&e.id) {
                Some(VarRef::Value(_)) => self
                    .slot_of_var(name)
                    .ok_or_else(|| CompileError::new(e.pos, format!("no slot for `{name}`"))),
                Some(VarRef::Buffer(_)) | Some(VarRef::LocalArr(_)) => Err(CompileError::new(
                    e.pos,
                    "pointers can only be indexed or passed to vload/vstore",
                )),
                None => Err(CompileError::new(e.pos, format!("unresolved `{name}`"))),
            },
            ExprKind::Un(op, inner) => {
                let a = self.expr(inner)?;
                let dst = self.fresh();
                self.emit(Instr::Un { op: *op, dst, a }, e.pos);
                Ok(dst)
            }
            ExprKind::Bin(op, l, r) => {
                let lt = self.ty_of(l);
                let rt = self.ty_of(r);
                // Comparison/logical results are bool; arithmetic operands
                // are promoted to the result type.
                let operand_ty = if op.is_cmp() {
                    promoted(lt, rt)
                } else if op.is_logic() || op.int_only() {
                    Type::INT
                } else {
                    ty
                };
                let a = self.expr_as(l, operand_ty)?;
                let b = self.expr_as(r, operand_ty)?;
                let dst = self.fresh();
                self.emit(Instr::Bin { op: *op, dst, a, b }, e.pos);
                Ok(dst)
            }
            ExprKind::Ternary(c, x, y) => {
                let cr = self.expr_cond(c)?;
                let a = self.expr_as(x, ty)?;
                let b = self.expr_as(y, ty)?;
                let dst = self.fresh();
                self.emit(
                    Instr::Select {
                        dst,
                        cond: cr,
                        a,
                        b,
                    },
                    e.pos,
                );
                Ok(dst)
            }
            ExprKind::Index(base, idx) => {
                let i = self.expr(idx)?;
                let dst = self.fresh();
                match self.target_of(base)? {
                    MemTarget::Global(buf) => {
                        self.emit(
                            Instr::LoadGlobal {
                                dst,
                                buf,
                                idx: i,
                                width: 1,
                            },
                            e.pos,
                        );
                    }
                    MemTarget::Local(arr) => {
                        self.emit(
                            Instr::LoadLocal {
                                dst,
                                arr,
                                idx: i,
                                width: 1,
                            },
                            e.pos,
                        );
                    }
                }
                Ok(dst)
            }
            ExprKind::Swizzle(base, lane) => {
                let src = self.expr(base)?;
                let dst = self.fresh();
                self.emit(
                    Instr::Extract {
                        dst,
                        src,
                        lane: *lane,
                    },
                    e.pos,
                );
                Ok(dst)
            }
            ExprKind::Cast(to, args) => self.cast(*to, args, e.pos),
            ExprKind::Call(name, args) => self.call(name, args, ty, e.pos),
        }
    }

    /// Evaluate and convert to exactly `want`.
    fn expr_as(&mut self, e: &Expr, want: Type) -> Result<Reg, CompileError> {
        let have = self.ty_of(e);
        let r = self.expr(e)?;
        self.coerce(r, have, want, e.pos)
    }

    fn coerce(&mut self, r: Reg, have: Type, want: Type, pos: Pos) -> Result<Reg, CompileError> {
        if have == want {
            return Ok(r);
        }
        let (hb, wb) = (have.base(), want.base());
        let (hw, ww) = (have.width(), want.width());
        let mut cur = r;
        let mut cur_base = hb.ok_or_else(|| CompileError::new(pos, "cannot convert void"))?;
        let want_base = wb.ok_or_else(|| CompileError::new(pos, "cannot convert to void"))?;
        if cur_base != want_base {
            let dst = self.fresh();
            self.emit(
                Instr::Convert {
                    dst,
                    src: cur,
                    base: want_base,
                },
                pos,
            );
            cur = dst;
            cur_base = want_base;
        }
        let _ = cur_base;
        if hw == ww {
            Ok(cur)
        } else if hw == 1 {
            let dst = self.fresh();
            self.emit(
                Instr::Broadcast {
                    dst,
                    src: cur,
                    width: ww,
                },
                pos,
            );
            Ok(dst)
        } else {
            Err(CompileError::new(
                pos,
                format!("cannot narrow width {hw} to {ww}"),
            ))
        }
    }

    /// Evaluate a condition to a bool register (int conditions compare
    /// against zero).
    fn expr_cond(&mut self, e: &Expr) -> Result<Reg, CompileError> {
        let ty = self.ty_of(e);
        let r = self.expr(e)?;
        match ty {
            Type::Scalar(Base::Bool) => Ok(r),
            Type::Scalar(b) if b.is_int() => {
                let zero = self.fresh();
                self.emit(
                    Instr::Const {
                        dst: zero,
                        val: Value::I(0),
                    },
                    e.pos,
                );
                let dst = self.fresh();
                self.emit(
                    Instr::Bin {
                        op: BinOp::Ne,
                        dst,
                        a: r,
                        b: zero,
                    },
                    e.pos,
                );
                Ok(dst)
            }
            other => Err(CompileError::new(
                e.pos,
                format!("bad condition type {other:?}"),
            )),
        }
    }

    fn cast(&mut self, to: Type, args: &[Expr], pos: Pos) -> Result<Reg, CompileError> {
        match to {
            Type::Scalar(_) => {
                let have = self.ty_of(&args[0]);
                let r = self.expr(&args[0])?;
                self.coerce(r, have, to, pos)
            }
            Type::Vector(base, w) => {
                if args.len() == 1 {
                    let have = self.ty_of(&args[0]);
                    let r = self.expr(&args[0])?;
                    self.coerce(r, have, Type::Vector(base, w.min(have.width().max(w))), pos)
                } else {
                    let mut parts = Vec::with_capacity(args.len());
                    for a in args {
                        let want = Type::Scalar(base);
                        parts.push(self.expr_as(a, want)?);
                    }
                    let dst = self.fresh();
                    self.emit(Instr::BuildVec { dst, base, parts }, pos);
                    Ok(dst)
                }
            }
            _ => Err(CompileError::new(pos, "bad cast target")),
        }
    }

    fn call(
        &mut self,
        name: &str,
        args: &[Expr],
        result: Type,
        pos: Pos,
    ) -> Result<Reg, CompileError> {
        let wi = match name {
            "get_global_id" => Some(WiFunc::GlobalId),
            "get_local_id" => Some(WiFunc::LocalId),
            "get_group_id" => Some(WiFunc::GroupId),
            "get_global_size" => Some(WiFunc::GlobalSize),
            "get_local_size" => Some(WiFunc::LocalSize),
            "get_num_groups" => Some(WiFunc::NumGroups),
            _ => None,
        };
        if let Some(f) = wi {
            let dim = self.expr(&args[0])?;
            let dst = self.fresh();
            self.emit(Instr::Wi { f, dst, dim }, pos);
            return Ok(dst);
        }
        match name {
            "barrier" => {
                let site = self.barrier_sites;
                self.barrier_sites += 1;
                self.emit(Instr::Barrier { site }, pos);
                // Void: hand back a dummy register no one will read.
                Ok(self.fresh())
            }
            "mad" | "fma" => {
                let a = self.expr_as(&args[0], result)?;
                let b = self.expr_as(&args[1], result)?;
                let c = self.expr_as(&args[2], result)?;
                let dst = self.fresh();
                self.emit(Instr::Mad { dst, a, b, c }, pos);
                Ok(dst)
            }
            "min" | "max" | "fmin" | "fmax" => {
                let a = self.expr_as(&args[0], result)?;
                let b = self.expr_as(&args[1], result)?;
                let dst = self.fresh();
                let f = match name {
                    "min" => MathFunc::Min,
                    "max" => MathFunc::Max,
                    "fmin" => MathFunc::Fmin,
                    _ => MathFunc::Fmax,
                };
                self.emit(
                    Instr::Math {
                        f,
                        dst,
                        args: [a, b, b],
                        n_args: 2,
                    },
                    pos,
                );
                Ok(dst)
            }
            "clamp" => {
                let x = self.expr_as(&args[0], result)?;
                let lo = self.expr_as(&args[1], result)?;
                let hi = self.expr_as(&args[2], result)?;
                let dst = self.fresh();
                self.emit(
                    Instr::Math {
                        f: MathFunc::Clamp,
                        dst,
                        args: [x, lo, hi],
                        n_args: 3,
                    },
                    pos,
                );
                Ok(dst)
            }
            "fabs" | "sqrt" | "native_recip" | "exp" | "log" => {
                let a = self.expr(&args[0])?;
                let dst = self.fresh();
                let f = match name {
                    "fabs" => MathFunc::Fabs,
                    "sqrt" => MathFunc::Sqrt,
                    "exp" => MathFunc::Exp,
                    "log" => MathFunc::Log,
                    _ => MathFunc::NativeRecip,
                };
                self.emit(
                    Instr::Math {
                        f,
                        dst,
                        args: [a, a, a],
                        n_args: 1,
                    },
                    pos,
                );
                Ok(dst)
            }
            _ if name.starts_with("vload") => {
                let width = result.width();
                let off = self.expr(&args[0])?;
                // Element index = offset * width.
                let wreg = self.fresh();
                self.emit(
                    Instr::Const {
                        dst: wreg,
                        val: Value::I(width as i64),
                    },
                    pos,
                );
                let idx = self.fresh();
                self.emit(
                    Instr::Bin {
                        op: BinOp::Mul,
                        dst: idx,
                        a: off,
                        b: wreg,
                    },
                    pos,
                );
                let dst = self.fresh();
                match self.target_of(&args[1])? {
                    MemTarget::Global(buf) => {
                        self.emit(
                            Instr::LoadGlobal {
                                dst,
                                buf,
                                idx,
                                width,
                            },
                            pos,
                        );
                    }
                    MemTarget::Local(arr) => {
                        self.emit(
                            Instr::LoadLocal {
                                dst,
                                arr,
                                idx,
                                width,
                            },
                            pos,
                        );
                    }
                }
                Ok(dst)
            }
            _ if name.starts_with("vstore") => {
                let vty = self.ty_of(&args[0]);
                let width = vty.width();
                let src = self.expr(&args[0])?;
                let off = self.expr(&args[1])?;
                let wreg = self.fresh();
                self.emit(
                    Instr::Const {
                        dst: wreg,
                        val: Value::I(width as i64),
                    },
                    pos,
                );
                let idx = self.fresh();
                self.emit(
                    Instr::Bin {
                        op: BinOp::Mul,
                        dst: idx,
                        a: off,
                        b: wreg,
                    },
                    pos,
                );
                match self.target_of(&args[2])? {
                    MemTarget::Global(buf) => {
                        self.emit(
                            Instr::StoreGlobal {
                                buf,
                                idx,
                                src,
                                width,
                            },
                            pos,
                        );
                    }
                    MemTarget::Local(arr) => {
                        self.emit(
                            Instr::StoreLocal {
                                arr,
                                idx,
                                src,
                                width,
                            },
                            pos,
                        );
                    }
                }
                Ok(self.fresh())
            }
            other => Err(CompileError::new(
                pos,
                format!("unlowerable call `{other}`"),
            )),
        }
    }
}

enum MemTarget {
    Global(usize),
    Local(usize),
}

/// Zero value of a declarable type.
fn zero_of(ty: Type) -> Option<Value> {
    match ty {
        Type::Scalar(Base::Int) | Type::Scalar(Base::Uint) => Some(Value::I(0)),
        Type::Scalar(Base::Bool) => Some(Value::B(false)),
        Type::Scalar(Base::Float) => Some(Value::F32(0.0)),
        Type::Scalar(Base::Double) => Some(Value::F64(0.0)),
        Type::Vector(Base::Float, w) => Some(Value::v32(&vec![0.0; w as usize])),
        Type::Vector(Base::Double, w) => Some(Value::v64(&vec![0.0; w as usize])),
        _ => None,
    }
}

/// The checker's promotion, re-derived for operand typing.
fn promoted(a: Type, b: Type) -> Type {
    fn rank(b: Base) -> u8 {
        match b {
            Base::Bool => 0,
            Base::Int => 1,
            Base::Uint => 2,
            Base::Float => 3,
            Base::Double => 4,
        }
    }
    let (ab, bb) = (a.base().unwrap_or(Base::Int), b.base().unwrap_or(Base::Int));
    let base = if rank(ab) >= rank(bb) { ab } else { bb };
    let w = a.width().max(b.width());
    if w == 1 {
        Type::Scalar(base)
    } else {
        Type::Vector(base, w)
    }
}

/// Count static instruction-class frequencies of a compiled kernel —
/// used by tests and by the simulator's instruction-level statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrMix {
    pub mads: usize,
    pub mem_global: usize,
    pub mem_local: usize,
    pub branches: usize,
    pub barriers: usize,
    pub alu: usize,
}

/// Compute the static instruction mix.
#[must_use]
pub fn instr_mix(k: &CompiledKernel) -> InstrMix {
    let mut m = InstrMix::default();
    for i in &k.code {
        match i {
            Instr::Mad { .. } => m.mads += 1,
            Instr::LoadGlobal { .. } | Instr::StoreGlobal { .. } => m.mem_global += 1,
            Instr::LoadLocal { .. } | Instr::StoreLocal { .. } => m.mem_local += 1,
            Instr::Jump { .. } | Instr::JumpIfFalse { .. } => m.branches += 1,
            Instr::Barrier { .. } => m.barriers += 1,
            Instr::Bin { .. } | Instr::Un { .. } | Instr::Math { .. } | Instr::Select { .. } => {
                m.alu += 1
            }
            _ => {}
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::parser::parse;

    fn compile(src: &str) -> Vec<CompiledKernel> {
        lower(&check(&parse(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn lowers_minimal_kernel() {
        let ks = compile(
            r#"__kernel void k(__global const float* a, __global float* c, int n) {
                int i = get_global_id(0);
                if (i < n) { c[i] = a[i]; }
            }"#,
        );
        let k = &ks[0];
        assert_eq!(k.name, "k");
        assert!(k.code.iter().any(|i| matches!(i, Instr::LoadGlobal { .. })));
        assert!(k
            .code
            .iter()
            .any(|i| matches!(i, Instr::StoreGlobal { .. })));
        assert!(matches!(k.code.last(), Some(Instr::Ret)));
    }

    #[test]
    fn loop_produces_backward_jump() {
        let ks = compile(
            r#"__kernel void k(__global int* x, int n) {
                for (int i = 0; i < n; i += 1) { x[i] = i; }
            }"#,
        );
        let has_back_jump = ks[0]
            .code
            .iter()
            .enumerate()
            .any(|(at, i)| matches!(i, Instr::Jump { target } if *target < at));
        assert!(has_back_jump, "for loop must jump backwards");
    }

    #[test]
    fn barrier_sites_are_numbered() {
        let ks = compile(
            r#"__kernel void k(__global double* x) {
                __local double a[8];
                a[0] = x[0];
                barrier(1);
                x[0] = a[0];
                barrier(1);
            }"#,
        );
        assert_eq!(ks[0].n_barrier_sites, 2);
        let sites: Vec<u32> = ks[0]
            .code
            .iter()
            .filter_map(|i| match i {
                Instr::Barrier { site } => Some(*site),
                _ => None,
            })
            .collect();
        assert_eq!(sites, vec![0, 1]);
    }

    #[test]
    fn int_to_double_inserts_convert() {
        let ks = compile("__kernel void k(__global double* x){ x[0] = 1 + 2; }");
        assert!(ks[0].code.iter().any(|i| matches!(
            i,
            Instr::Convert {
                base: Base::Double,
                ..
            }
        )));
    }

    #[test]
    fn scalar_vector_mul_inserts_broadcast() {
        let ks = compile(
            r#"__kernel void k(__global float* c){
                float4 v = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
                float4 w = v * 2.0f;
                vstore4(w, 0, c);
            }"#,
        );
        assert!(ks[0]
            .code
            .iter()
            .any(|i| matches!(i, Instr::Broadcast { width: 4, .. })));
    }

    #[test]
    fn mad_lowered_to_fused_instr() {
        let ks = compile(
            r#"__kernel void k(__global double* x){
                double a = x[0];
                x[1] = mad(a, a, a);
            }"#,
        );
        assert!(ks[0].code.iter().any(|i| matches!(i, Instr::Mad { .. })));
    }

    #[test]
    fn vload_scales_offset_by_width() {
        let ks = compile(
            r#"__kernel void k(__global const double* a, __global double* c){
                double2 v = vload2(3, a);
                vstore2(v, 3, c);
            }"#,
        );
        let mix = instr_mix(&ks[0]);
        assert_eq!(mix.mem_global, 2);
        // offset multiplication present
        assert!(ks[0]
            .code
            .iter()
            .any(|i| matches!(i, Instr::Bin { op: BinOp::Mul, .. })));
    }

    #[test]
    fn instr_mix_counts() {
        let ks = compile(
            r#"__kernel void k(__global double* x) {
                __local double a[4];
                a[0] = x[0];
                barrier(1);
                double s = 0.0;
                for (int i = 0; i < 4; i += 1) { s = mad(a[0], 2.0, s); }
                x[0] = s;
            }"#,
        );
        let m = instr_mix(&ks[0]);
        assert_eq!(m.barriers, 1);
        assert_eq!(m.mads, 1);
        assert!(m.branches >= 2);
        assert!(m.mem_local >= 2);
    }
}
