//! The public compile-and-launch API.
//!
//! ```
//! use clgemm_clc::{Program, Arg, BufData, NdRange, ExecOptions};
//!
//! let src = r#"
//!     __kernel void scale(__global const float* x, __global float* y, float a, int n) {
//!         int i = get_global_id(0);
//!         if (i < n) { y[i] = a * x[i]; }
//!     }
//! "#;
//! let program = Program::compile(src).unwrap();
//! let kernel = program.kernel("scale").unwrap();
//! let mut bufs = vec![
//!     BufData::F32(vec![1.0, 2.0, 3.0, 4.0]),
//!     BufData::F32(vec![0.0; 4]),
//! ];
//! kernel
//!     .launch(
//!         NdRange::d1(4, 2),
//!         &[Arg::Buf(0), Arg::Buf(1), Arg::F32(10.0), Arg::I32(4)],
//!         &mut bufs,
//!         &ExecOptions::default(),
//!     )
//!     .unwrap();
//! assert_eq!(bufs[1], BufData::F32(vec![10.0, 20.0, 30.0, 40.0]));
//! ```

use crate::ast::{Base, Type};
use crate::check::check;
use crate::error::{CompileError, RuntimeError};
use crate::lower::{lower, CompiledKernel};
use crate::parser::parse;
use crate::vm::{run_group_in, DynStats, Geometry, GlobalRaceTables, RefArena, Value};

pub use crate::vm::{BufData, Engine, ExecOptions};

/// Process-wide engine override from `CLGEMM_CLC_ENGINE`, probed once
/// (mirroring `CLGEMM_SIMD`). Unknown or unset values mean "no
/// override".
fn engine_override() -> Option<Engine> {
    static OVERRIDE: std::sync::OnceLock<Option<Engine>> = std::sync::OnceLock::new();
    *OVERRIDE.get_or_init(|| match std::env::var("CLGEMM_CLC_ENGINE").ok()?.as_str() {
        "reference" => Some(Engine::Reference),
        "fast" => Some(Engine::Fast),
        "compiled" => Some(Engine::Compiled),
        _ => None,
    })
}

/// Bridge one launch's [`DynStats`] (and, on the fast path, the plan's
/// fusion outcome) into the global metrics registry. Every counter is
/// created at the point of first non-zero use so a workload that never
/// hits a barrier (say) does not register a dead `vm_barriers_total`.
fn record_launch_metrics(stats: &DynStats, engine: &str, fast: Option<&crate::fastvm::FastKernel>) {
    if !clgemm_trace::enabled() {
        return;
    }
    let reg = clgemm_trace::Registry::global();
    reg.counter_labeled("vm_launches_total", &[("engine", engine)])
        .inc();
    for (name, v) in [
        ("vm_instrs_total", stats.instrs),
        ("vm_mads_total", stats.mads),
        ("vm_mem_global_bytes_total", stats.mem_global_bytes),
        ("vm_barriers_total", stats.barriers),
    ] {
        if v > 0 {
            reg.counter(name).add(v);
        }
    }
    if let Some(fk) = fast {
        let ops = reg.counter("vm_plan_ops_total");
        let fused = reg.counter("vm_fused_ops_total");
        ops.add(fk.op_count() as u64);
        fused.add(fk.fused_count() as u64);
        let total = ops.get();
        if total > 0 {
            // Cumulative fraction of plan ops covered by fused
            // superinstructions across all fast launches so far.
            reg.gauge("vm_fusion_ratio")
                .set(fused.get() as f64 / total as f64);
        }
    }
}

/// A kernel launch argument, in declared parameter order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arg {
    I32(i32),
    F32(f32),
    F64(f64),
    /// Index into the `bufs` slice passed to `launch`.
    Buf(usize),
}

/// A 2-D NDRange (the paper only uses two-dimensional index spaces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdRange {
    pub global: [usize; 2],
    pub local: [usize; 2],
}

impl NdRange {
    /// A 1-D range expressed in the 2-D form.
    #[must_use]
    pub fn d1(global: usize, local: usize) -> NdRange {
        NdRange {
            global: [global, 1],
            local: [local, 1],
        }
    }

    /// A 2-D range.
    #[must_use]
    pub fn d2(global: [usize; 2], local: [usize; 2]) -> NdRange {
        NdRange { global, local }
    }

    fn validate(&self) -> Result<(), RuntimeError> {
        for d in 0..2 {
            if self.local[d] == 0 || self.global[d] == 0 {
                return Err(RuntimeError::BadNdRange(format!(
                    "zero extent in dimension {d} (global {:?}, local {:?})",
                    self.global, self.local
                )));
            }
            // OpenCL 1.x rule, which the paper's kernels rely on.
            if !self.global[d].is_multiple_of(self.local[d]) {
                return Err(RuntimeError::BadNdRange(format!(
                    "global size {} not a multiple of local size {} in dimension {d}",
                    self.global[d], self.local[d]
                )));
            }
        }
        Ok(())
    }
}

/// A compiled OpenCL C program.
#[derive(Debug, Clone)]
pub struct Program {
    source: String,
    kernels: Vec<CompiledKernel>,
}

impl Program {
    /// Compile source: preprocess → lex → parse → check → lower.
    pub fn compile(src: &str) -> Result<Program, CompileError> {
        let unit = parse(src)?;
        let checked = check(&unit)?;
        let kernels = lower(&checked)?;
        Ok(Program {
            source: src.to_string(),
            kernels,
        })
    }

    /// The original source text.
    #[must_use]
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Names of all kernels in the program.
    pub fn kernel_names(&self) -> impl Iterator<Item = &str> {
        self.kernels.iter().map(|k| k.name.as_str())
    }

    /// Look up a kernel by name.
    #[must_use]
    pub fn kernel(&self, name: &str) -> Option<Kernel<'_>> {
        self.kernels
            .iter()
            .find(|k| k.name == name)
            .map(|inner| Kernel { inner })
    }
}

/// A handle to one compiled kernel.
#[derive(Debug, Clone, Copy)]
pub struct Kernel<'a> {
    inner: &'a CompiledKernel,
}

impl<'a> Kernel<'a> {
    /// Kernel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The lowered form (for instruction-mix inspection).
    #[must_use]
    pub fn compiled(&self) -> &'a CompiledKernel {
        self.inner
    }

    /// Total local-memory bytes the kernel statically allocates per
    /// work-group.
    #[must_use]
    pub fn local_mem_bytes(&self) -> usize {
        self.inner
            .checked
            .local_arrays
            .iter()
            .map(|a| {
                a.len
                    * match a.base {
                        Base::Float => 4,
                        _ => 8,
                    }
            })
            .sum()
    }

    /// Execute the kernel over the NDRange. With the default
    /// [`Engine::Compiled`] the work-groups run pre-scheduled trace
    /// code from the SSA compiler pipeline (falling back to the fast
    /// plan for declined kernels); [`Engine::Fast`] runs the typed
    /// per-work-item plan (falling back to the reference interpreter
    /// when the kernel did not specialise); [`Engine::Reference`] runs
    /// groups sequentially through the original interpreter. All
    /// engines produce bit-identical buffers and stats. Work-items
    /// within a group always run with true barrier semantics.
    ///
    /// The `CLGEMM_CLC_ENGINE=reference|fast|compiled` environment
    /// variable overrides the requested engine process-wide (probed
    /// once, like `CLGEMM_SIMD`); unknown values are ignored.
    ///
    /// # Errors
    /// Compile-quality argument/NDRange errors and all VM runtime errors
    /// (bounds, divergence, races).
    pub fn launch(
        &self,
        nd: NdRange,
        args: &[Arg],
        bufs: &mut [BufData],
        opts: &ExecOptions,
    ) -> Result<DynStats, RuntimeError> {
        nd.validate()?;
        let _span = clgemm_trace::span!("clc.launch", (nd.global[0] * nd.global[1]) as u64);
        if let Some(req) = self.inner.checked.def.reqd_wg_size {
            if nd.local != [req[0] as usize, req[1] as usize] || req[2] != 1 {
                return Err(RuntimeError::BadNdRange(format!(
                    "kernel requires work-group size {req:?}, launch uses {:?}",
                    nd.local
                )));
            }
        }
        let init_regs = self.marshal(args, bufs)?;
        let geom = Geometry {
            global: nd.global,
            local: nd.local,
            groups: [nd.global[0] / nd.local[0], nd.global[1] / nd.local[1]],
        };
        let requested = engine_override().unwrap_or(opts.engine);
        if requested == Engine::Compiled {
            if let Some(plan) = &self.inner.trace {
                let r = crate::ir::engine::launch(self.inner, plan, &geom, &init_regs, bufs, opts);
                if let Ok(stats) = &r {
                    record_launch_metrics(stats, "compiled", None);
                }
                return r;
            }
        }
        if requested != Engine::Reference {
            if let Some(fk) = &self.inner.fast {
                let r = crate::fastvm::launch(self.inner, fk, &geom, &init_regs, bufs, opts);
                if let Ok(stats) = &r {
                    record_launch_metrics(stats, "fast", Some(fk));
                }
                return r;
            }
        }
        let engine = if requested != Engine::Reference {
            // A faster engine was requested but the kernel neither
            // compiled nor specialised.
            "fallback"
        } else {
            "reference"
        };
        let n_groups = geom.groups[0] * geom.groups[1];
        let grace = (opts.detect_races && n_groups > 1).then(|| GlobalRaceTables::new(bufs));
        let mut arena = RefArena::new();
        let mut stats = DynStats::default();
        for gy in 0..geom.groups[1] {
            for gx in 0..geom.groups[0] {
                let linear = (gy * geom.groups[0] + gx) as u32;
                let s = run_group_in(
                    self.inner,
                    [gx, gy],
                    linear,
                    &geom,
                    &init_regs,
                    bufs,
                    opts,
                    grace.as_ref(),
                    &mut arena,
                )?;
                stats.add(&s);
            }
        }
        record_launch_metrics(&stats, engine, None);
        Ok(stats)
    }

    /// Validate arguments against the signature and produce the initial
    /// register file (value parameters in their slots). Buffer arguments
    /// are checked for index validity and element-type agreement.
    fn marshal(&self, args: &[Arg], bufs: &[BufData]) -> Result<Vec<Value>, RuntimeError> {
        let ck = &self.inner.checked;
        if args.len() != ck.param_order.len() {
            return Err(RuntimeError::BadArguments(format!(
                "kernel `{}` takes {} arguments, got {}",
                self.inner.name,
                ck.param_order.len(),
                args.len()
            )));
        }
        let mut init = vec![Value::I(0); ck.n_slots];
        let mut buf_i = 0usize;
        let mut val_i = 0usize;
        for (k, is_buf) in ck.param_order.iter().enumerate() {
            if *is_buf {
                let bp = &ck.buffer_params[buf_i];
                match args[k] {
                    Arg::Buf(idx) => {
                        let data = bufs.get(idx).ok_or_else(|| {
                            RuntimeError::BadArguments(format!(
                                "argument {k} references buffer {idx}, only {} provided",
                                bufs.len()
                            ))
                        })?;
                        if data.base() != bp.base {
                            return Err(RuntimeError::BadArguments(format!(
                                "parameter `{}` is a {:?} pointer but buffer {idx} holds {:?}",
                                bp.name,
                                bp.base,
                                data.base()
                            )));
                        }
                        if idx != buf_i {
                            // Buffers must be passed in parameter order:
                            // the VM addresses them by parameter index.
                            return Err(RuntimeError::BadArguments(format!(
                                "buffer argument {k} must use Buf({buf_i}) (buffers are positional)"
                            )));
                        }
                    }
                    other => {
                        return Err(RuntimeError::BadArguments(format!(
                            "parameter `{}` needs a buffer, got {other:?}",
                            bp.name
                        )))
                    }
                }
                buf_i += 1;
            } else {
                let vp = &ck.value_params[val_i];
                let v = match (vp.ty, args[k]) {
                    (Type::Scalar(Base::Int | Base::Uint), Arg::I32(x)) => Value::I(x as i64),
                    (Type::Scalar(Base::Float), Arg::F32(x)) => Value::F32(x),
                    (Type::Scalar(Base::Double), Arg::F64(x)) => Value::F64(x),
                    (ty, got) => {
                        return Err(RuntimeError::BadArguments(format!(
                            "parameter `{}` has type {ty:?}, got {got:?}",
                            vp.name
                        )))
                    }
                };
                init[vp.slot] = v;
                val_i += 1;
            }
        }
        Ok(init)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f64s(b: &BufData) -> &[f64] {
        match b {
            BufData::F64(v) => v,
            other => panic!("expected f64 buffer, got {other:?}"),
        }
    }

    #[test]
    fn scale_kernel_end_to_end() {
        let src = r#"
            __kernel void scale(__global const double* x, __global double* y, double a, int n) {
                int i = get_global_id(0);
                if (i < n) { y[i] = a * x[i]; }
            }
        "#;
        let p = Program::compile(src).unwrap();
        let k = p.kernel("scale").unwrap();
        let mut bufs = vec![
            BufData::F64(vec![1.0, 2.0, 3.0, 4.0]),
            BufData::F64(vec![0.0; 4]),
        ];
        let stats = k
            .launch(
                NdRange::d1(4, 2),
                &[Arg::Buf(0), Arg::Buf(1), Arg::F64(3.0), Arg::I32(4)],
                &mut bufs,
                &ExecOptions::default(),
            )
            .unwrap();
        assert_eq!(f64s(&bufs[1]), &[3.0, 6.0, 9.0, 12.0]);
        assert!(stats.instrs > 0);
        assert_eq!(stats.mem_global_instrs, 8); // 4 loads + 4 stores
    }

    #[test]
    fn two_dimensional_ids() {
        let src = r#"
            __kernel void fill(__global double* y, int w) {
                int i = get_global_id(0);
                int j = get_global_id(1);
                y[j*w + i] = (double)(10*j + i);
            }
        "#;
        let p = Program::compile(src).unwrap();
        let mut bufs = vec![BufData::F64(vec![0.0; 12])];
        p.kernel("fill")
            .unwrap()
            .launch(
                NdRange::d2([4, 3], [2, 1]),
                &[Arg::Buf(0), Arg::I32(4)],
                &mut bufs,
                &ExecOptions::default(),
            )
            .unwrap();
        let want: Vec<f64> = (0..3)
            .flat_map(|j| (0..4).map(move |i| (10 * j + i) as f64))
            .collect();
        assert_eq!(f64s(&bufs[0]), &want[..]);
    }

    #[test]
    fn local_memory_with_barrier_shares_data() {
        let src = r#"
            __kernel void share(__global const double* x, __global double* y) {
                __local double buf[4];
                int l = get_local_id(0);
                int g = get_global_id(0);
                buf[l] = x[g];
                barrier(1);
                int peer = 3 - l;
                y[g] = buf[peer];
            }
        "#;
        let p = Program::compile(src).unwrap();
        let mut bufs = vec![
            BufData::F64(vec![1.0, 2.0, 3.0, 4.0]),
            BufData::F64(vec![0.0; 4]),
        ];
        p.kernel("share")
            .unwrap()
            .launch(
                NdRange::d1(4, 4),
                &[Arg::Buf(0), Arg::Buf(1)],
                &mut bufs,
                &ExecOptions::default(),
            )
            .unwrap();
        assert_eq!(f64s(&bufs[1]), &[4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn same_phase_local_race_is_detected() {
        // Work-items write buf[0] concurrently without a barrier.
        let src = r#"
            __kernel void race(__global double* y) {
                __local double buf[2];
                int l = get_local_id(0);
                buf[0] = (double)l;
                barrier(1);
                y[get_global_id(0)] = buf[0];
            }
        "#;
        let p = Program::compile(src).unwrap();
        let mut bufs = vec![BufData::F64(vec![0.0; 2])];
        let err = p
            .kernel("race")
            .unwrap()
            .launch(
                NdRange::d1(2, 2),
                &[Arg::Buf(0)],
                &mut bufs,
                &ExecOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::LocalRace { .. }), "{err}");
        // With race detection off the same kernel "works" (last writer
        // wins deterministically in this VM).
        let mut bufs = vec![BufData::F64(vec![0.0; 2])];
        let opts = ExecOptions {
            detect_races: false,
            ..Default::default()
        };
        p.kernel("race")
            .unwrap()
            .launch(NdRange::d1(2, 2), &[Arg::Buf(0)], &mut bufs, &opts)
            .unwrap();
    }

    #[test]
    fn barrier_divergence_is_detected() {
        let src = r#"
            __kernel void div(__global double* y) {
                int l = get_local_id(0);
                if (l == 0) { barrier(1); }
                y[get_global_id(0)] = (double)l;
            }
        "#;
        let p = Program::compile(src).unwrap();
        let mut bufs = vec![BufData::F64(vec![0.0; 2])];
        let err = p
            .kernel("div")
            .unwrap()
            .launch(
                NdRange::d1(2, 2),
                &[Arg::Buf(0)],
                &mut bufs,
                &ExecOptions::default(),
            )
            .unwrap_err();
        assert!(
            matches!(err, RuntimeError::BarrierDivergence { .. }),
            "{err}"
        );
    }

    #[test]
    fn out_of_bounds_global_access_is_caught() {
        let src = r#"
            __kernel void oob(__global double* y) {
                y[get_global_id(0) + 100] = 1.0;
            }
        "#;
        let p = Program::compile(src).unwrap();
        let mut bufs = vec![BufData::F64(vec![0.0; 4])];
        let err = p
            .kernel("oob")
            .unwrap()
            .launch(
                NdRange::d1(4, 4),
                &[Arg::Buf(0)],
                &mut bufs,
                &ExecOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::GlobalOob { .. }), "{err}");
    }

    #[test]
    fn vector_load_store_round_trip() {
        let src = r#"
            __kernel void vcopy(__global const float* x, __global float* y) {
                int i = get_global_id(0);
                float4 v = vload4(i, x);
                v = v * 2.0f;
                vstore4(v, i, y);
            }
        "#;
        let p = Program::compile(src).unwrap();
        let mut bufs = vec![
            BufData::F32((0..8).map(|i| i as f32).collect()),
            BufData::F32(vec![0.0; 8]),
        ];
        p.kernel("vcopy")
            .unwrap()
            .launch(
                NdRange::d1(2, 1),
                &[Arg::Buf(0), Arg::Buf(1)],
                &mut bufs,
                &ExecOptions::default(),
            )
            .unwrap();
        match &bufs[1] {
            BufData::F32(v) => assert_eq!(v, &vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mismatched_ndrange_is_rejected() {
        let src = "__kernel void k(__global double* y){ y[0] = 1.0; }";
        let p = Program::compile(src).unwrap();
        let mut bufs = vec![BufData::F64(vec![0.0; 1])];
        let err = p
            .kernel("k")
            .unwrap()
            .launch(
                NdRange::d1(5, 2),
                &[Arg::Buf(0)],
                &mut bufs,
                &ExecOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::BadNdRange(_)), "{err}");
    }

    #[test]
    fn wrong_argument_type_is_rejected() {
        let src = "__kernel void k(__global double* y, double a){ y[0] = a; }";
        let p = Program::compile(src).unwrap();
        let mut bufs = vec![BufData::F64(vec![0.0; 1])];
        let err = p
            .kernel("k")
            .unwrap()
            .launch(
                NdRange::d1(1, 1),
                &[Arg::Buf(0), Arg::F32(1.0)],
                &mut bufs,
                &ExecOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::BadArguments(_)), "{err}");
    }

    #[test]
    fn wrong_buffer_precision_is_rejected() {
        let src = "__kernel void k(__global double* y){ y[0] = 1.0; }";
        let p = Program::compile(src).unwrap();
        let mut bufs = vec![BufData::F32(vec![0.0; 1])];
        let err = p
            .kernel("k")
            .unwrap()
            .launch(
                NdRange::d1(1, 1),
                &[Arg::Buf(0)],
                &mut bufs,
                &ExecOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::BadArguments(_)), "{err}");
    }

    #[test]
    fn reqd_work_group_size_is_enforced() {
        let src = r#"
            __kernel __attribute__((reqd_work_group_size(2, 2, 1)))
            void k(__global double* y){ y[get_global_id(0)] = 1.0; }
        "#;
        let p = Program::compile(src).unwrap();
        let mut bufs = vec![BufData::F64(vec![0.0; 4])];
        let err = p
            .kernel("k")
            .unwrap()
            .launch(
                NdRange::d2([4, 4], [4, 4]),
                &[Arg::Buf(0)],
                &mut bufs,
                &ExecOptions::default(),
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::BadNdRange(_)), "{err}");
        p.kernel("k")
            .unwrap()
            .launch(
                NdRange::d2([4, 2], [2, 2]),
                &[Arg::Buf(0)],
                &mut bufs,
                &ExecOptions::default(),
            )
            .unwrap();
    }

    #[test]
    fn missing_kernel_returns_none() {
        let p = Program::compile("__kernel void k(__global int* x){ x[0]=1; }").unwrap();
        assert!(p.kernel("nope").is_none());
        assert_eq!(p.kernel_names().collect::<Vec<_>>(), vec!["k"]);
    }

    #[test]
    fn stats_count_barriers_per_group() {
        let src = r#"
            __kernel void b(__global double* y) {
                __local double t[2];
                t[get_local_id(0)] = 0.0;
                barrier(1);
                y[get_global_id(0)] = t[get_local_id(0)];
            }
        "#;
        let p = Program::compile(src).unwrap();
        let mut bufs = vec![BufData::F64(vec![0.0; 8])];
        let stats = p
            .kernel("b")
            .unwrap()
            .launch(
                NdRange::d1(8, 2),
                &[Arg::Buf(0)],
                &mut bufs,
                &ExecOptions::default(),
            )
            .unwrap();
        assert_eq!(stats.barriers, 4); // one per work-group, 4 groups
    }
}
