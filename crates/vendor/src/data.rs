//! The published vendor measurements (Table III and Figs. 9–11).

use crate::model::VendorLib;
use clgemm_device::{DeviceId, Vendor};

/// Identifier for one modelled baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VendorId {
    /// AMD APPML clBLAS 1.8.291 (Tahiti/Cayman rows of Table III).
    ClBlas,
    /// NVIDIA CUBLAS in CUDA 5.0 RC (Kepler).
    Cublas5,
    /// NVIDIA CUBLAS in CUDA 4.1.28 (Fermi).
    Cublas4,
    /// MAGMA 1.2.1 on Fermi (Fig. 10).
    Magma,
    /// Intel MKL 2011.10.319 (Sandy Bridge).
    Mkl,
    /// AMD ACML 5.1.0 (Bulldozer).
    Acml,
    /// ATLAS 3.10.0 auto-tuned C kernels on Sandy Bridge (Fig. 11,
    /// DGEMM only).
    Atlas,
}

/// The vendor library rows of Table III for a device, in the order the
/// paper presents them, plus the extra curves of Figs. 10–11.
#[must_use]
pub fn libraries_for(device: DeviceId) -> Vec<VendorLib> {
    match device {
        DeviceId::Tahiti => vec![VendorLib::new(
            "AMD clBLAS 1.8.291",
            [647.0, 731.0, 549.0, 650.0],
            [2468.0, 2489.0, 1476.0, 2281.0],
            // Fig. 9: clBLAS needs no packing pass, so it ramps well
            // before our routine and wins at small sizes.
            400.0,
            2.2,
        )],
        DeviceId::Cayman => vec![VendorLib::new(
            "AMD clBLAS 1.8.291",
            [329.0, 336.0, 302.0, 329.0],
            [1071.0, 1011.0, 662.0, 1021.0],
            400.0,
            2.2,
        )],
        DeviceId::Kepler => vec![VendorLib::new(
            "CUBLAS 5.0 RC",
            [124.0, 122.0, 122.0, 122.0],
            [1371.0, 1417.0, 1227.0, 1361.0],
            // Fig. 10: CUBLAS reaches its plateau quickly (~N=1000).
            450.0,
            2.5,
        )],
        DeviceId::Fermi => vec![
            VendorLib::new(
                "CUBLAS 4.1.28",
                [405.0, 406.0, 408.0, 405.0],
                [830.0, 942.0, 920.0, 889.0],
                450.0,
                2.5,
            ),
            VendorLib::new(
                "MAGMA 1.2.1",
                // Fig. 10: MAGMA tracks slightly below CUBLAS DGEMM and
                // near our SGEMM on Fermi.
                [362.0, 362.0, 360.0, 360.0],
                [855.0, 860.0, 850.0, 852.0],
                520.0,
                2.4,
            ),
        ],
        DeviceId::SandyBridge => vec![
            VendorLib::new(
                "Intel MKL 2011.10.319",
                [138.0, 139.0, 138.0, 138.0],
                [282.0, 285.0, 281.0, 283.0],
                // Fig. 11: MKL is near-flat from N≈512.
                260.0,
                2.0,
            ),
            VendorLib::new(
                "ATLAS 3.10.0",
                // Fig. 11 (DGEMM only): above ours, below MKL.
                [105.0, 104.0, 104.0, 104.0],
                [0.0; 4],
                300.0,
                2.0,
            ),
        ],
        DeviceId::Bulldozer => vec![VendorLib::new(
            "AMD ACML 5.1.0",
            [50.0, 50.0, 50.0, 50.0],
            [103.0, 101.0, 103.0, 101.0],
            260.0,
            2.0,
        )],
        DeviceId::Cypress => vec![
            // §IV-C comparison points on the HD 5870.
            VendorLib::new("Nakasato IL kernels", [498.0; 4], [0.0; 4], 600.0, 2.2),
            VendorLib::new("Du et al. OpenCL", [308.0; 4], [0.0; 4], 700.0, 2.0),
        ],
    }
}

/// The authors' *previous* implementation (MCSoC-12) on Tahiti — the
/// third series of Fig. 9: DGEMM peaked at 848 GFlop/s and SGEMM at
/// 2646 GFlop/s before the improvements this paper introduces.
#[must_use]
pub fn previous_study() -> VendorLib {
    VendorLib::new(
        "Our previous study (MCSoC-12)",
        // Kernel maxima were 848 (DGEMM) and 2646 (SGEMM); the routine
        // asymptotes a little below that after copy overhead.
        [818.0, 820.0, 815.0, 818.0],
        [2560.0, 2575.0, 2550.0, 2560.0],
        // Same copy-based routine: slow ramp like the current one.
        1000.0,
        1.9,
    )
}

/// The vendor whose library a device's Table III row uses (reporting
/// convenience).
#[must_use]
pub fn platform_vendor(device: DeviceId) -> Vendor {
    device.spec().vendor
}

#[cfg(test)]
mod tests {
    use super::*;
    use clgemm_blas::scalar::Precision;
    use clgemm_blas::GemmType;

    #[test]
    fn every_table1_device_has_a_baseline() {
        for id in DeviceId::TABLE1 {
            let libs = libraries_for(id);
            assert!(!libs.is_empty(), "{id}");
            assert!(libs[0].supports(Precision::F64));
        }
    }

    #[test]
    fn table3_values_are_wired_in() {
        let clblas = &libraries_for(DeviceId::Tahiti)[0];
        assert_eq!(clblas.max_gflops(Precision::F64, GemmType::NT), 731.0);
        assert_eq!(clblas.max_gflops(Precision::F32, GemmType::TN), 1476.0);
        let mkl = &libraries_for(DeviceId::SandyBridge)[0];
        assert_eq!(mkl.max_gflops(Precision::F64, GemmType::NN), 138.0);
    }

    #[test]
    fn atlas_is_dgemm_only() {
        let libs = libraries_for(DeviceId::SandyBridge);
        let atlas = libs.iter().find(|l| l.name.contains("ATLAS")).unwrap();
        assert!(atlas.supports(Precision::F64));
        assert!(!atlas.supports(Precision::F32));
    }

    #[test]
    fn fermi_has_both_cublas_and_magma() {
        let names: Vec<_> = libraries_for(DeviceId::Fermi)
            .iter()
            .map(|l| l.name.clone())
            .collect();
        assert!(names.iter().any(|n| n.contains("CUBLAS")));
        assert!(names.iter().any(|n| n.contains("MAGMA")));
    }

    #[test]
    fn clblas_tn_is_the_weak_type() {
        // Table III: clBLAS SGEMM TN (1476) is far below NT (2489) on
        // Tahiti — while our implementation is type-insensitive. The
        // report uses this to reproduce the §IV-B observation.
        let clblas = &libraries_for(DeviceId::Tahiti)[0];
        let nt = clblas.max_gflops(Precision::F32, GemmType::NT);
        let tn = clblas.max_gflops(Precision::F32, GemmType::TN);
        assert!(nt / tn > 1.5);
    }

    #[test]
    fn previous_study_is_slower_than_current_paper_numbers() {
        let prev = previous_study();
        assert!(prev.max_gflops(Precision::F64, GemmType::NN) < 852.0);
        assert!(prev.max_gflops(Precision::F32, GemmType::NN) < 2989.0);
    }

    #[test]
    fn cypress_comparison_points_exist() {
        let libs = libraries_for(DeviceId::Cypress);
        assert_eq!(libs.len(), 2);
        assert!(
            libs[0].max_gflops(Precision::F64, GemmType::NN)
                > libs[1].max_gflops(Precision::F64, GemmType::NN)
        );
    }
}
