//! Calibrated vendor-library baselines.
//!
//! The paper compares its tuned GEMM against six vendor/third-party
//! libraries: AMD APPML clBLAS 1.8.291, NVIDIA CUBLAS 4.1.28 and 5.0 RC,
//! MAGMA 1.2.1, Intel MKL 2011.10.319, AMD ACML 5.1.0 and ATLAS 3.10.0 —
//! plus its own previous implementation (MCSoC-12). We cannot run those
//! closed binaries on simulated devices, so each library is modelled as a
//! saturation curve anchored to the *published* measurements (Table III
//! maxima per GEMM type, and the Figs. 9–11 ramp shapes).
//!
//! This preserves exactly what the evaluation needs from the vendor side:
//! who wins at large `N`, by what factor, and where the small-`N`
//! crossover falls (vendor libraries have no packing overhead, so they
//! ramp up faster than the paper's copy-then-multiply routine).

pub mod data;
pub mod model;

pub use data::{libraries_for, previous_study, VendorId};
pub use model::VendorLib;
