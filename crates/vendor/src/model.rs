//! The vendor performance-curve model.

use clgemm_blas::scalar::Precision;
use clgemm_blas::GemmType;
use std::collections::BTreeMap;

/// One library on one device: per-(precision, type) asymptotic maxima and
/// a ramp describing how quickly the library approaches them.
#[derive(Debug, Clone)]
pub struct VendorLib {
    /// Display name, e.g. `"clBLAS 1.8.291"`.
    pub name: String,
    /// Asymptotic GFlop/s per `(precision, type)` — the Table III values.
    maxima: BTreeMap<String, f64>,
    /// Size at which the library reaches half its asymptote.
    pub n_half: f64,
    /// Ramp sharpness (larger = steeper approach to the asymptote).
    pub sharpness: f64,
}

fn key(precision: Precision, ty: GemmType) -> String {
    format!("{precision}/{ty}")
}

impl VendorLib {
    /// Build from per-type maxima in Table III order (NN, NT, TN, TT).
    #[must_use]
    pub fn new(
        name: &str,
        dgemm: [f64; 4],
        sgemm: [f64; 4],
        n_half: f64,
        sharpness: f64,
    ) -> VendorLib {
        let mut maxima = BTreeMap::new();
        for (vals, prec) in [(dgemm, Precision::F64), (sgemm, Precision::F32)] {
            for (ty, v) in GemmType::ALL.iter().zip(vals) {
                maxima.insert(key(prec, *ty), v);
            }
        }
        VendorLib {
            name: name.to_string(),
            maxima,
            n_half,
            sharpness,
        }
    }

    /// The library's asymptotic (large-`N`) GFlop/s for a routine.
    #[must_use]
    pub fn max_gflops(&self, precision: Precision, ty: GemmType) -> f64 {
        self.maxima.get(&key(precision, ty)).copied().unwrap_or(0.0)
    }

    /// Modelled GFlop/s at square size `n`: a logistic ramp in `log N`,
    /// the classic shape of library GEMM curves (fixed per-call overhead
    /// plus tiling inefficiency at small sizes).
    #[must_use]
    pub fn gflops(&self, precision: Precision, ty: GemmType, n: usize) -> f64 {
        let max = self.max_gflops(precision, ty);
        if n == 0 {
            return 0.0;
        }
        let x = (self.n_half / n as f64).powf(self.sharpness);
        max / (1.0 + x)
    }

    /// `true` when the library supports the precision at all.
    #[must_use]
    pub fn supports(&self, precision: Precision) -> bool {
        GemmType::ALL
            .iter()
            .any(|ty| self.max_gflops(precision, *ty) > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> VendorLib {
        VendorLib::new(
            "test",
            [100.0, 101.0, 102.0, 103.0],
            [200.0, 201.0, 202.0, 203.0],
            512.0,
            2.0,
        )
    }

    #[test]
    fn maxima_per_type() {
        let l = lib();
        assert_eq!(l.max_gflops(Precision::F64, GemmType::NN), 100.0);
        assert_eq!(l.max_gflops(Precision::F64, GemmType::TT), 103.0);
        assert_eq!(l.max_gflops(Precision::F32, GemmType::TN), 202.0);
    }

    #[test]
    fn curve_is_monotone_and_saturates() {
        let l = lib();
        let mut last = 0.0;
        for n in [64, 128, 256, 512, 1024, 2048, 4096, 8192] {
            let g = l.gflops(Precision::F64, GemmType::NN, n);
            assert!(g >= last, "curve must be monotone");
            last = g;
        }
        // Half the asymptote at n_half.
        let at_half = l.gflops(Precision::F64, GemmType::NN, 512);
        assert!((at_half - 50.0).abs() < 1.0, "{at_half}");
        // Within 10 % of the asymptote by 8x n_half.
        assert!(last > 90.0);
    }

    #[test]
    fn zero_size_gives_zero() {
        assert_eq!(lib().gflops(Precision::F64, GemmType::NN, 0), 0.0);
    }

    #[test]
    fn unsupported_precision_detected() {
        let l = VendorLib::new("dgemm-only", [10.0; 4], [0.0; 4], 256.0, 2.0);
        assert!(l.supports(Precision::F64));
        assert!(!l.supports(Precision::F32));
    }
}
