//! Routine-layer host data path bench: the reference pipeline (serial
//! packing, `run_native`, fresh allocations) vs the fast engine
//! (parallel packing, panel microkernel, reusable workspace).
//!
//! Full runs time each phase in isolation (pack, stage, merge, kernel —
//! old vs new) plus whole `gemm_with` calls for both precisions, a
//! register-tile shape sweep across every shape the SIMD-aware selector
//! can pick, and a flagship 1024³ f32 NN case once per engine. Results
//! land in `BENCH_routine.json` at the repo root with pairwise speedups
//! and the tiles the host selector chose (the sweep is how the
//! selector's candidate-table ordering is validated).
//!
//! Smoke mode (`CLGEMM_BENCH_SMOKE=1`, used by CI) is the regression
//! gate: the fast engine must not be slower than the reference on a
//! mid-size call; steady-state repeat calls — including hybrid
//! direct-path traffic — must perform **zero** workspace growths; the
//! checked-in `BENCH_routine.json` must record the selected tiles; and
//! the flagship fast time must stay within slack of that baseline.

use clgemm::executor::{run_native, run_native_fast, Tile};
use clgemm::params::{small_test_params, tahiti_dgemm_best};
use clgemm::routine::{GemmOptions, GemmPath, HybridGemm, TunedGemm};
use clgemm::tile::TileSelector;
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::pack::{
    merge_c, merge_c_par, pack_into, pack_into_par, pack_operand, stage_c, stage_c_into_par,
    PackSpec,
};
use clgemm_blas::scalar::{Precision, Scalar};
use clgemm_blas::workspace::{Workspace, WorkspaceScalar};
use clgemm_blas::{GemmType, Trans};
use clgemm_device::DeviceId;
use clgemm_shim::bench::{fmt_secs, Harness};
use clgemm_shim::json::Json;
use clgemm_shim::simd::SimdLevel;
use std::time::Instant;

fn tuned() -> TunedGemm {
    TunedGemm::new(
        DeviceId::Tahiti.spec(),
        small_test_params(Precision::F64),
        small_test_params(Precision::F32),
    )
}

fn matrices<T: WorkspaceScalar>(m: usize, n: usize, k: usize) -> (Matrix<T>, Matrix<T>, Matrix<T>) {
    (
        Matrix::test_pattern(m, k, StorageOrder::ColMajor, 1),
        Matrix::test_pattern(k, n, StorageOrder::ColMajor, 2),
        Matrix::test_pattern(m, n, StorageOrder::ColMajor, 3),
    )
}

/// One whole-routine call through the chosen engine.
fn call<T: WorkspaceScalar>(
    tg: &TunedGemm,
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &mut Matrix<T>,
    ws: &mut Workspace,
    opts: &GemmOptions,
) {
    tg.gemm_with(
        GemmType::NN,
        T::from_f64(1.25),
        a,
        b,
        T::from_f64(-0.5),
        c,
        ws,
        opts,
    );
}

fn time_once(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

fn prec_tag<T: Scalar>() -> &'static str {
    if T::PREC_TAG == 'D' {
        "f64"
    } else {
        "f32"
    }
}

/// Phase-split benches for one precision at one size.
fn bench_phases<T: WorkspaceScalar>(h: &mut Harness, m: usize, n: usize, k: usize) {
    let p = small_test_params(if T::PREC_TAG == 'D' {
        Precision::F64
    } else {
        Precision::F32
    });
    let (a, _b, c) = matrices::<T>(m, n, k);
    let spec = PackSpec {
        trans: Trans::Yes,
        layout: p.layout_a,
        wwg: p.mwg,
        kwg: p.kwg,
    };
    let (oracle, dims) = pack_operand(&a, spec, k, m);
    let tag = prec_tag::<T>();

    let mut buf = vec![T::ZERO; dims.len()];
    h.bench(&format!("routine/pack_{tag}_reference"), || {
        pack_into(&a, spec, k, m, &mut buf, dims);
    });
    h.bench(&format!("routine/pack_{tag}_fast"), || {
        pack_into_par(&a, spec, k, m, &mut buf, dims);
    });
    assert_eq!(buf, oracle, "parallel pack diverged during bench");

    let staged_oracle = stage_c(&c, p.mwg, p.nwg);
    let mut staged = vec![T::ZERO; staged_oracle.len()];
    h.bench(&format!("routine/stage_{tag}_reference"), || {
        std::hint::black_box(stage_c(&c, p.mwg, p.nwg));
    });
    h.bench(&format!("routine/stage_{tag}_fast"), || {
        stage_c_into_par(&c, p.mwg, p.nwg, &mut staged);
    });
    assert_eq!(staged, staged_oracle, "parallel stage diverged");

    let mut out = c.clone();
    h.bench(&format!("routine/merge_{tag}_reference"), || {
        merge_c(&staged, p.mwg, p.nwg, &mut out);
    });
    h.bench(&format!("routine/merge_{tag}_fast"), || {
        merge_c_par(&staged, p.mwg, p.nwg, &mut out);
    });

    // Kernel phase: packed operands for a square padded problem.
    let spec_b = PackSpec {
        trans: Trans::No,
        layout: p.layout_b,
        wwg: p.nwg,
        kwg: p.kwg,
    };
    let b_src = Matrix::<T>::test_pattern(k, n, StorageOrder::ColMajor, 4);
    let (pa, da) = pack_operand(&a, spec, k, m);
    let (pb, db) = pack_operand(&b_src, spec_b, k, n);
    let (mp, np, kp) = (da.width, db.width, da.k);
    let mut ck = vec![T::ZERO; mp * np];
    let alpha = T::from_f64(1.25);
    let beta = T::from_f64(-0.5);
    h.bench(&format!("routine/kernel_{tag}_reference"), || {
        run_native(
            mp, np, kp, alpha, &pa, da, p.layout_a, &pb, db, p.layout_b, beta, &mut ck,
        );
    });
    let tile = TileSelector::host()
        .select(p.precision, (p.mwi(), p.nwi()), mp, np)
        .tile;
    h.bench(&format!("routine/kernel_{tag}_fast"), || {
        run_native_fast(
            mp, np, kp, alpha, &pa, da, p.layout_a, &pb, db, p.layout_b, beta, &mut ck, tile,
        );
    });
}

/// Register-tile shape sweep: the union of every shape the selector's
/// candidate tables can pick, timed on the packed kernel problem. This
/// is the measurement that orders (and re-orders) those tables.
fn bench_tile_sweep<T: WorkspaceScalar>(h: &mut Harness, m: usize, n: usize, k: usize) {
    const SWEEP: [(usize, usize); 18] = [
        (2, 2),
        (6, 2),
        (8, 2),
        (2, 4),
        (4, 4),
        (8, 4),
        (12, 4),
        (16, 4),
        (8, 6),
        (2, 8),
        (4, 8),
        (8, 8),
        (16, 8),
        (8, 12),
        (2, 16),
        (4, 16),
        (8, 16),
        (16, 16),
    ];
    let p = small_test_params(if T::PREC_TAG == 'D' {
        Precision::F64
    } else {
        Precision::F32
    });
    let tag = prec_tag::<T>();
    let a = Matrix::<T>::test_pattern(m, k, StorageOrder::ColMajor, 1);
    let b = Matrix::<T>::test_pattern(k, n, StorageOrder::ColMajor, 4);
    let spec_a = PackSpec {
        trans: Trans::Yes,
        layout: p.layout_a,
        wwg: p.mwg,
        kwg: p.kwg,
    };
    let spec_b = PackSpec {
        trans: Trans::No,
        layout: p.layout_b,
        wwg: p.nwg,
        kwg: p.kwg,
    };
    let (pa, da) = pack_operand(&a, spec_a, k, m);
    let (pb, db) = pack_operand(&b, spec_b, k, n);
    let (mp, np, kp) = (da.width, db.width, da.k);
    let mut ck = vec![T::ZERO; mp * np];
    let alpha = T::from_f64(1.25);
    let beta = T::from_f64(-0.5);
    for (mr, nr) in SWEEP {
        let tile = Tile::new(mr, nr).expect("sweep shapes are within the register budget");
        h.bench(&format!("routine/tile_{mr}x{nr}_{tag}"), || {
            run_native_fast(
                mp, np, kp, alpha, &pa, da, p.layout_a, &pb, db, p.layout_b, beta, &mut ck, tile,
            );
        });
    }
}

/// Whole-call benches for one precision at one size.
fn bench_calls<T: WorkspaceScalar>(h: &mut Harness, m: usize, n: usize, k: usize) {
    let tg = tuned();
    let (a, b, c0) = matrices::<T>(m, n, k);
    let tag = prec_tag::<T>();
    let mut ws = Workspace::new();
    let mut c = c0.clone();
    h.bench(&format!("routine/call_{tag}_reference"), || {
        call(&tg, &a, &b, &mut c, &mut ws, &GemmOptions::reference());
    });
    h.bench(&format!("routine/call_{tag}_fast"), || {
        call(&tg, &a, &b, &mut c, &mut ws, &GemmOptions::default());
    });
}

fn main() {
    let mut h = Harness::from_env();
    let smoke = h.smoke;

    if smoke {
        // CI regression gate 1: fast call no slower than reference.
        let tg = tuned();
        let (m, n, k) = (320, 320, 320);
        let (a, b, c0) = matrices::<f32>(m, n, k);
        let mut ws = Workspace::new();
        let mut c = c0.clone();
        let fast = time_once(|| call(&tg, &a, &b, &mut c, &mut ws, &GemmOptions::default()));
        let mut c = c0.clone();
        let reference = time_once(|| {
            call(
                &tg,
                &a,
                &b,
                &mut c,
                &mut Workspace::new(),
                &GemmOptions::reference(),
            )
        });
        println!(
            "routine smoke gate (nn_f32 {m}^3): fast {} vs reference {} ({:.2}x)",
            fmt_secs(fast),
            fmt_secs(reference),
            reference / fast
        );
        assert!(
            fast <= reference,
            "fast host path ({}) slower than reference ({})",
            fmt_secs(fast),
            fmt_secs(reference)
        );
        // CI regression gate 2: steady-state calls allocate nothing.
        let grows = ws.grows();
        assert!(grows > 0, "first fast call must size the workspace");
        let mut c = c0.clone();
        call(&tg, &a, &b, &mut c, &mut ws, &GemmOptions::default());
        assert_eq!(
            ws.grows(),
            grows,
            "steady-state repeat call grew the workspace"
        );
        println!("routine smoke gate: steady-state workspace growths = 0");

        // CI regression gate 3: hybrid direct-path traffic rides the
        // shared gemm_with/Workspace plumbing and never grows the pool.
        let hybrid = HybridGemm::new(TunedGemm::new(
            DeviceId::Tahiti.spec(),
            tahiti_dgemm_best(),
            small_test_params(Precision::F32),
        ));
        let mut hws = Workspace::new();
        let (ha, hb, hc0) = matrices::<f64>(48, 48, 48);
        for _ in 0..3 {
            let mut hc = hc0.clone();
            let (path, _) = hybrid.gemm_with(
                GemmType::NN,
                2.0,
                &ha,
                &hb,
                0.5,
                &mut hc,
                &mut hws,
                &GemmOptions::default(),
            );
            assert_eq!(path, GemmPath::Direct, "48^3 must prefer the direct path");
        }
        assert_eq!(hws.grows(), 0, "direct-path traffic grew the workspace");
        println!("routine smoke gate: direct-path workspace growths = 0");

        // CI regression gate 4: the checked-in bench record must name
        // the tiles the selector chose.
        let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_routine.json");
        let doc =
            Json::parse(&std::fs::read_to_string(json_path).expect("read BENCH_routine.json"))
                .expect("parse BENCH_routine.json");
        let tiles = doc
            .get("selected_tile")
            .and_then(Json::as_arr)
            .expect("BENCH_routine.json must record the selected tiles");
        assert!(!tiles.is_empty(), "selected_tile must list both precisions");
        for t in tiles {
            assert!(
                t.get("selected").and_then(Json::as_str).is_some(),
                "each selected_tile entry names its tile"
            );
        }
        println!(
            "routine smoke gate: {} selected tiles recorded in BENCH_routine.json",
            tiles.len()
        );

        // CI regression gate 5: warm flagship fast time within slack of
        // the checked-in baseline (catches microkernel regressions that
        // the fast-vs-reference gate alone would miss).
        let baseline = doc
            .get("results")
            .and_then(Json::as_arr)
            .expect("results array")
            .iter()
            .find(|e| {
                e.get("name").and_then(Json::as_str) == Some("routine/flagship_nn_f32_1024_fast")
            })
            .and_then(|e| e.get("seconds").and_then(Json::as_f64))
            .expect("flagship baseline in BENCH_routine.json");
        let (m, n, k) = (1024, 1024, 1024);
        let (a, b, c0) = matrices::<f32>(m, n, k);
        let mut ws = Workspace::new();
        let mut c = c0.clone();
        call(&tg, &a, &b, &mut c, &mut ws, &GemmOptions::default());
        // Best of three: one-shot timings on a shared CI box are noisy
        // and the gate must only trip on real regressions.
        let flagship = (0..3)
            .map(|_| {
                let mut c = c0.clone();
                time_once(|| call(&tg, &a, &b, &mut c, &mut ws, &GemmOptions::default()))
            })
            .fold(f64::INFINITY, f64::min);
        // Generous slack: CI machines are noisy; this catches 2x-class
        // regressions, not jitter.
        let limit = baseline * 1.75;
        println!(
            "routine smoke gate (flagship 1024^3 f32): {} vs baseline {} (limit {})",
            fmt_secs(flagship),
            fmt_secs(baseline),
            fmt_secs(limit)
        );
        assert!(
            flagship <= limit,
            "flagship fast path regressed: {} > {} (baseline {} x 1.75)",
            fmt_secs(flagship),
            fmt_secs(limit),
            fmt_secs(baseline)
        );

        // CI regression gate 6: observability overhead, two claims.
        //
        // (a) Tracing *disabled* (the default, what the flagship above
        // ran with) must cost the routine under 5% of a flagship call.
        // A wall-clock diff against the checked-in baseline cannot
        // resolve 5% on a shared box (session-to-session jitter here
        // exceeds it), so measure the cost directly: time the exact
        // per-call instrumentation bundle — the spans, histogram
        // observations and counter bumps one `gemm_with` performs —
        // and bound its share of the measured flagship time. The
        // bundle is deliberately over-counted (double the real ops).
        let reg = clgemm_trace::Registry::new();
        let gate_hist = reg.histogram("gate_seconds", 1e-9);
        let gate_counter = reg.counter("gate_total");
        const ROUNDS: u32 = 100_000;
        let t = Instant::now();
        for i in 0..ROUNDS {
            // One gemm_with records ~7 spans, 5 histogram observations
            // and ~2 counter bumps; charge 14/10/4.
            for _ in 0..14 {
                let _s = clgemm_trace::span!("bench.gate", u64::from(i));
            }
            for _ in 0..10 {
                gate_hist.observe_value(1.5e-4);
            }
            for _ in 0..4 {
                gate_counter.inc();
            }
        }
        let per_call = t.elapsed().as_secs_f64() / f64::from(ROUNDS);
        let disabled_limit = flagship * 0.05;
        println!(
            "routine smoke gate (tracing off): {} instrumentation per call \
             vs limit {} (flagship x 0.05)",
            fmt_secs(per_call),
            fmt_secs(disabled_limit)
        );
        assert!(
            per_call <= disabled_limit,
            "disabled instrumentation costs more than 5% of a flagship call: {} > {}",
            fmt_secs(per_call),
            fmt_secs(disabled_limit)
        );

        // (b) Tracing *enabled* must stay within 15% of the disabled
        // path. Interleave the two configurations in the same session
        // and compare minima, so machine load cancels instead of
        // masquerading as overhead.
        // Symmetric sampling (same round count per configuration) so
        // neither side gets extra chances at a lucky minimum.
        let mut disabled_min = f64::INFINITY;
        let mut traced_min = f64::INFINITY;
        for _ in 0..4 {
            clgemm_trace::set_enabled(true);
            let mut c = c0.clone();
            traced_min = traced_min.min(time_once(|| {
                call(&tg, &a, &b, &mut c, &mut ws, &GemmOptions::default())
            }));
            clgemm_trace::set_enabled(false);
            let mut c = c0.clone();
            disabled_min = disabled_min.min(time_once(|| {
                call(&tg, &a, &b, &mut c, &mut ws, &GemmOptions::default())
            }));
        }
        let enabled_limit = disabled_min * 1.15;
        println!(
            "routine smoke gate (tracing on): {} vs limit {} \
             (disabled {} x 1.15, {} span drops)",
            fmt_secs(traced_min),
            fmt_secs(enabled_limit),
            fmt_secs(disabled_min),
            clgemm_trace::ring::dropped_events()
        );
        assert!(
            traced_min <= enabled_limit,
            "enabled tracing costs more than 15%: {} > {}",
            fmt_secs(traced_min),
            fmt_secs(enabled_limit)
        );
        return;
    }

    // Full grid: phase splits, whole calls and the register-tile shape
    // sweep, both precisions.
    let (m, n, k) = (256, 256, 256);
    bench_phases::<f32>(&mut h, m, n, k);
    bench_phases::<f64>(&mut h, m, n, k);
    bench_calls::<f32>(&mut h, m, n, k);
    bench_calls::<f64>(&mut h, m, n, k);
    bench_tile_sweep::<f32>(&mut h, m, n, k);
    bench_tile_sweep::<f64>(&mut h, m, n, k);
    let mut rows: Vec<(String, f64)> = h.results().to_vec();

    // Flagship: 1024³ f32 NN, one whole call per engine.
    {
        let tg = tuned();
        let (m, n, k) = (1024, 1024, 1024);
        let (a, b, c0) = matrices::<f32>(m, n, k);
        let mut ws = Workspace::new();
        let mut c = c0.clone();
        // Warm the workspace so the flagship fast call measures the
        // steady-state (zero-allocation) path.
        call(&tg, &a, &b, &mut c, &mut ws, &GemmOptions::default());
        // Best of three: this row is the baseline the smoke gates
        // compare against, so it must be a stable minimum rather than
        // one scheduler-jittered shot.
        let fast = (0..3)
            .map(|_| {
                let mut c = c0.clone();
                time_once(|| call(&tg, &a, &b, &mut c, &mut ws, &GemmOptions::default()))
            })
            .fold(f64::INFINITY, f64::min);
        println!("routine/flagship_nn_f32_1024_fast: {}", fmt_secs(fast));
        let mut c = c0.clone();
        let reference = time_once(|| {
            call(
                &tg,
                &a,
                &b,
                &mut c,
                &mut Workspace::new(),
                &GemmOptions::reference(),
            )
        });
        println!(
            "routine/flagship_nn_f32_1024_reference: {} (fast speedup {:.2}x)",
            fmt_secs(reference),
            reference / fast
        );
        rows.push(("routine/flagship_nn_f32_1024_fast".into(), fast));
        rows.push(("routine/flagship_nn_f32_1024_reference".into(), reference));

        // Observability overhead row: the same flagship call with span
        // and metric recording switched on (the smoke gate bounds the
        // ratio of this row to the plain fast row).
        clgemm_trace::set_enabled(true);
        let traced = (0..3)
            .map(|_| {
                let mut c = c0.clone();
                time_once(|| call(&tg, &a, &b, &mut c, &mut ws, &GemmOptions::default()))
            })
            .fold(f64::INFINITY, f64::min);
        clgemm_trace::set_enabled(false);
        println!(
            "routine/flagship_nn_f32_1024_fast_traced: {} (overhead {:.1}%)",
            fmt_secs(traced),
            100.0 * (traced / fast - 1.0)
        );
        rows.push(("routine/flagship_nn_f32_1024_fast_traced".into(), traced));
    }

    // Record results and pairwise speedups at the repo root.
    let mut entries: Vec<Json> = Vec::new();
    for (name, secs) in &rows {
        entries.push(Json::obj(vec![
            ("name", Json::Str(name.clone())),
            ("seconds", Json::Num(*secs)),
        ]));
    }
    let mut speedups: Vec<Json> = Vec::new();
    for (name, secs) in &rows {
        if let Some(base) = name.strip_suffix("_fast") {
            let ref_name = format!("{base}_reference");
            if let Some((_, ref_secs)) = rows.iter().find(|(n, _)| *n == ref_name) {
                if *secs > 0.0 {
                    speedups.push(Json::obj(vec![
                        ("case", Json::Str(base.to_string())),
                        ("speedup", Json::Num(ref_secs / secs)),
                    ]));
                }
            }
        }
    }
    // Record what the host selector chose for the tuned blockings (the
    // smoke gate asserts this section exists and names concrete tiles).
    let level = SimdLevel::detect();
    let selector = TileSelector::host();
    let mut selected: Vec<Json> = Vec::new();
    for precision in [Precision::F32, Precision::F64] {
        let p = small_test_params(precision);
        let d = selector.select(precision, (p.mwi(), p.nwi()), 1024, 1024);
        selected.push(Json::obj(vec![
            ("precision", Json::Str(precision.to_string())),
            ("simd", Json::Str(level.tag().to_string())),
            ("lanes", Json::Num(d.lanes as f64)),
            ("tuned", Json::Str(format!("{}x{}", d.tuned.0, d.tuned.1))),
            ("selected", Json::Str(d.tile.to_string())),
            ("reason", Json::Str(d.reason.tag().to_string())),
        ]));
    }
    let doc = Json::obj(vec![
        ("bench", Json::Str("routine".into())),
        ("simd", Json::Str(level.tag().to_string())),
        ("results", Json::Arr(entries)),
        ("fast_vs_reference", Json::Arr(speedups)),
        ("selected_tile", Json::Arr(selected)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_routine.json");
    std::fs::write(path, doc.to_string_compact()).expect("write BENCH_routine.json");
    println!("wrote {path}");
}
