//! Routine-layer host data path bench: the reference pipeline (serial
//! packing, `run_native`, fresh allocations) vs the fast engine
//! (parallel packing, panel microkernel, reusable workspace).
//!
//! Full runs time each phase in isolation (pack, stage, merge, kernel —
//! old vs new) plus whole `gemm_with` calls for both precisions, and a
//! flagship 1024³ f32 NN case once per engine. Results land in
//! `BENCH_routine.json` at the repo root with pairwise speedups.
//!
//! Smoke mode (`CLGEMM_BENCH_SMOKE=1`, used by CI) is the regression
//! gate: the fast engine must not be slower than the reference on a
//! mid-size call, and a steady-state repeat call must perform **zero**
//! workspace growths.

use clgemm::executor::{run_native, run_native_fast};
use clgemm::params::small_test_params;
use clgemm::routine::{GemmOptions, TunedGemm};
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::pack::{
    merge_c, merge_c_par, pack_into, pack_into_par, pack_operand, stage_c, stage_c_into_par,
    PackSpec,
};
use clgemm_blas::scalar::{Precision, Scalar};
use clgemm_blas::workspace::{Workspace, WorkspaceScalar};
use clgemm_blas::{GemmType, Trans};
use clgemm_device::DeviceId;
use clgemm_shim::bench::{fmt_secs, Harness};
use clgemm_shim::json::Json;
use std::time::Instant;

fn tuned() -> TunedGemm {
    TunedGemm::new(
        DeviceId::Tahiti.spec(),
        small_test_params(Precision::F64),
        small_test_params(Precision::F32),
    )
}

fn matrices<T: WorkspaceScalar>(m: usize, n: usize, k: usize) -> (Matrix<T>, Matrix<T>, Matrix<T>) {
    (
        Matrix::test_pattern(m, k, StorageOrder::ColMajor, 1),
        Matrix::test_pattern(k, n, StorageOrder::ColMajor, 2),
        Matrix::test_pattern(m, n, StorageOrder::ColMajor, 3),
    )
}

/// One whole-routine call through the chosen engine.
fn call<T: WorkspaceScalar>(
    tg: &TunedGemm,
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &mut Matrix<T>,
    ws: &mut Workspace,
    opts: &GemmOptions,
) {
    tg.gemm_with(
        GemmType::NN,
        T::from_f64(1.25),
        a,
        b,
        T::from_f64(-0.5),
        c,
        ws,
        opts,
    );
}

fn time_once(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

fn prec_tag<T: Scalar>() -> &'static str {
    if T::PREC_TAG == 'D' {
        "f64"
    } else {
        "f32"
    }
}

/// Phase-split benches for one precision at one size.
fn bench_phases<T: WorkspaceScalar>(h: &mut Harness, m: usize, n: usize, k: usize) {
    let p = small_test_params(if T::PREC_TAG == 'D' {
        Precision::F64
    } else {
        Precision::F32
    });
    let (a, _b, c) = matrices::<T>(m, n, k);
    let spec = PackSpec {
        trans: Trans::Yes,
        layout: p.layout_a,
        wwg: p.mwg,
        kwg: p.kwg,
    };
    let (oracle, dims) = pack_operand(&a, spec, k, m);
    let tag = prec_tag::<T>();

    let mut buf = vec![T::ZERO; dims.len()];
    h.bench(&format!("routine/pack_{tag}_reference"), || {
        pack_into(&a, spec, k, m, &mut buf, dims);
    });
    h.bench(&format!("routine/pack_{tag}_fast"), || {
        pack_into_par(&a, spec, k, m, &mut buf, dims);
    });
    assert_eq!(buf, oracle, "parallel pack diverged during bench");

    let staged_oracle = stage_c(&c, p.mwg, p.nwg);
    let mut staged = vec![T::ZERO; staged_oracle.len()];
    h.bench(&format!("routine/stage_{tag}_reference"), || {
        std::hint::black_box(stage_c(&c, p.mwg, p.nwg));
    });
    h.bench(&format!("routine/stage_{tag}_fast"), || {
        stage_c_into_par(&c, p.mwg, p.nwg, &mut staged);
    });
    assert_eq!(staged, staged_oracle, "parallel stage diverged");

    let mut out = c.clone();
    h.bench(&format!("routine/merge_{tag}_reference"), || {
        merge_c(&staged, p.mwg, p.nwg, &mut out);
    });
    h.bench(&format!("routine/merge_{tag}_fast"), || {
        merge_c_par(&staged, p.mwg, p.nwg, &mut out);
    });

    // Kernel phase: packed operands for a square padded problem.
    let spec_b = PackSpec {
        trans: Trans::No,
        layout: p.layout_b,
        wwg: p.nwg,
        kwg: p.kwg,
    };
    let b_src = Matrix::<T>::test_pattern(k, n, StorageOrder::ColMajor, 4);
    let (pa, da) = pack_operand(&a, spec, k, m);
    let (pb, db) = pack_operand(&b_src, spec_b, k, n);
    let (mp, np, kp) = (da.width, db.width, da.k);
    let mut ck = vec![T::ZERO; mp * np];
    let alpha = T::from_f64(1.25);
    let beta = T::from_f64(-0.5);
    h.bench(&format!("routine/kernel_{tag}_reference"), || {
        run_native(
            mp, np, kp, alpha, &pa, da, p.layout_a, &pb, db, p.layout_b, beta, &mut ck,
        );
    });
    h.bench(&format!("routine/kernel_{tag}_fast"), || {
        run_native_fast(
            mp,
            np,
            kp,
            alpha,
            &pa,
            da,
            p.layout_a,
            &pb,
            db,
            p.layout_b,
            beta,
            &mut ck,
            p.mwi(),
            p.nwi(),
        );
    });
}

/// Whole-call benches for one precision at one size.
fn bench_calls<T: WorkspaceScalar>(h: &mut Harness, m: usize, n: usize, k: usize) {
    let tg = tuned();
    let (a, b, c0) = matrices::<T>(m, n, k);
    let tag = prec_tag::<T>();
    let mut ws = Workspace::new();
    let mut c = c0.clone();
    h.bench(&format!("routine/call_{tag}_reference"), || {
        call(&tg, &a, &b, &mut c, &mut ws, &GemmOptions::reference());
    });
    h.bench(&format!("routine/call_{tag}_fast"), || {
        call(&tg, &a, &b, &mut c, &mut ws, &GemmOptions::default());
    });
}

fn main() {
    let mut h = Harness::from_env();
    let smoke = h.smoke;

    if smoke {
        // CI regression gate 1: fast call no slower than reference.
        let tg = tuned();
        let (m, n, k) = (320, 320, 320);
        let (a, b, c0) = matrices::<f32>(m, n, k);
        let mut ws = Workspace::new();
        let mut c = c0.clone();
        let fast = time_once(|| call(&tg, &a, &b, &mut c, &mut ws, &GemmOptions::default()));
        let mut c = c0.clone();
        let reference = time_once(|| {
            call(
                &tg,
                &a,
                &b,
                &mut c,
                &mut Workspace::new(),
                &GemmOptions::reference(),
            )
        });
        println!(
            "routine smoke gate (nn_f32 {m}^3): fast {} vs reference {} ({:.2}x)",
            fmt_secs(fast),
            fmt_secs(reference),
            reference / fast
        );
        assert!(
            fast <= reference,
            "fast host path ({}) slower than reference ({})",
            fmt_secs(fast),
            fmt_secs(reference)
        );
        // CI regression gate 2: steady-state calls allocate nothing.
        let grows = ws.grows();
        assert!(grows > 0, "first fast call must size the workspace");
        let mut c = c0.clone();
        call(&tg, &a, &b, &mut c, &mut ws, &GemmOptions::default());
        assert_eq!(
            ws.grows(),
            grows,
            "steady-state repeat call grew the workspace"
        );
        println!("routine smoke gate: steady-state workspace growths = 0");
        return;
    }

    // Full grid: phase splits and whole calls, both precisions.
    let (m, n, k) = (256, 256, 256);
    bench_phases::<f32>(&mut h, m, n, k);
    bench_phases::<f64>(&mut h, m, n, k);
    bench_calls::<f32>(&mut h, m, n, k);
    bench_calls::<f64>(&mut h, m, n, k);
    let mut rows: Vec<(String, f64)> = h.results().to_vec();

    // Flagship: 1024³ f32 NN, one whole call per engine.
    {
        let tg = tuned();
        let (m, n, k) = (1024, 1024, 1024);
        let (a, b, c0) = matrices::<f32>(m, n, k);
        let mut ws = Workspace::new();
        let mut c = c0.clone();
        // Warm the workspace so the flagship fast call measures the
        // steady-state (zero-allocation) path.
        call(&tg, &a, &b, &mut c, &mut ws, &GemmOptions::default());
        let mut c = c0.clone();
        let fast = time_once(|| call(&tg, &a, &b, &mut c, &mut ws, &GemmOptions::default()));
        println!("routine/flagship_nn_f32_1024_fast: {}", fmt_secs(fast));
        let mut c = c0.clone();
        let reference = time_once(|| {
            call(
                &tg,
                &a,
                &b,
                &mut c,
                &mut Workspace::new(),
                &GemmOptions::reference(),
            )
        });
        println!(
            "routine/flagship_nn_f32_1024_reference: {} (fast speedup {:.2}x)",
            fmt_secs(reference),
            reference / fast
        );
        rows.push(("routine/flagship_nn_f32_1024_fast".into(), fast));
        rows.push(("routine/flagship_nn_f32_1024_reference".into(), reference));
    }

    // Record results and pairwise speedups at the repo root.
    let mut entries: Vec<Json> = Vec::new();
    for (name, secs) in &rows {
        entries.push(Json::obj(vec![
            ("name", Json::Str(name.clone())),
            ("seconds", Json::Num(*secs)),
        ]));
    }
    let mut speedups: Vec<Json> = Vec::new();
    for (name, secs) in &rows {
        if let Some(base) = name.strip_suffix("_fast") {
            let ref_name = format!("{base}_reference");
            if let Some((_, ref_secs)) = rows.iter().find(|(n, _)| *n == ref_name) {
                if *secs > 0.0 {
                    speedups.push(Json::obj(vec![
                        ("case", Json::Str(base.to_string())),
                        ("speedup", Json::Num(ref_secs / secs)),
                    ]));
                }
            }
        }
    }
    let doc = Json::obj(vec![
        ("bench", Json::Str("routine".into())),
        ("results", Json::Arr(entries)),
        ("fast_vs_reference", Json::Arr(speedups)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_routine.json");
    std::fs::write(path, doc.to_string_compact()).expect("write BENCH_routine.json");
    println!("wrote {path}");
}
