//! Ablation benches for the system's own machinery: code generation,
//! OpenCL C compilation, VM execution, operand packing, and the native
//! executor. These are the design choices DESIGN.md calls out; tracking
//! their cost keeps the tuner's "tens of thousands of variants per
//! device" budget honest.

use clgemm::codegen::{generate, KERNEL_NAME};
use clgemm::executor::run_native;
use clgemm_bench::{bench_paper_params, bench_small_params};
use clgemm_blas::layout::{BlockLayout, PackedDims};
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::pack::{pack_operand, PackSpec};
use clgemm_blas::Trans;
use clgemm_clc::{Arg, BufData, ExecOptions, Program};
use clgemm_shim::bench::Harness;

/// Code generation throughput (string emission only).
fn ablation_codegen(h: &mut Harness) {
    let p = bench_paper_params();
    h.bench("ablation_codegen/generate_paper_kernel", || {
        generate(&p).unwrap().source.len()
    });
}

/// Full OpenCL C frontend: preprocess → lex → parse → check → lower.
fn ablation_compile(h: &mut Harness) {
    let src = generate(&bench_paper_params()).unwrap().source;
    h.bench("ablation_compile/compile_paper_kernel", || {
        Program::compile(&src).unwrap()
    });
}

/// VM execution of a small generated kernel (the functional-verification
/// cost per candidate).
fn ablation_vm(h: &mut Harness) {
    let p = bench_small_params();
    let gen = generate(&p).unwrap();
    let prog = Program::compile(&gen.source).unwrap();
    let kernel = prog.kernel(KERNEL_NAME).unwrap();
    let (m, n, k) = (p.mwg, p.nwg, p.kwg * 2);
    let a = vec![1.0f32; k * m];
    let bmat = vec![1.0f32; k * n];
    let c0 = vec![0.0f32; m * n];
    let nd = gen.ndrange(m, n);
    h.bench("ablation_vm/vm_exec_16x16x16", || {
        let mut bufs = vec![
            BufData::F32(a.clone()),
            BufData::F32(bmat.clone()),
            BufData::F32(c0.clone()),
        ];
        let args = [
            Arg::Buf(0),
            Arg::Buf(1),
            Arg::Buf(2),
            Arg::I32(m as i32),
            Arg::I32(n as i32),
            Arg::I32(k as i32),
            Arg::F32(1.0),
            Arg::F32(0.0),
        ];
        let opts = ExecOptions {
            detect_races: false,
            ..Default::default()
        };
        kernel.launch(nd, &args, &mut bufs, &opts).unwrap()
    });
}

/// Operand packing (real data movement, the §III-D copy step).
fn ablation_pack(h: &mut Harness) {
    let n = 512usize;
    let x = Matrix::<f64>::test_pattern(n, n, StorageOrder::ColMajor, 1);
    for layout in BlockLayout::ALL {
        let spec = PackSpec {
            trans: Trans::Yes,
            layout,
            wwg: 64,
            kwg: 16,
        };
        h.bench(&format!("ablation_pack/pack_512_{}", layout.tag()), || {
            pack_operand(&x, spec, n, n).0.len()
        });
    }
}

/// The native executor (correctness-oracle throughput).
fn ablation_native_gemm(h: &mut Harness) {
    let n = 256usize;
    let dims = PackedDims::new(n, n, 64, 16).unwrap();
    let a = vec![1.0f64; dims.len()];
    let b = vec![2.0f64; dims.len()];
    h.bench("ablation_native_gemm/run_native_256", || {
        let mut cbuf = vec![0.0f64; n * n];
        run_native(
            n,
            n,
            n,
            1.0,
            &a,
            dims,
            BlockLayout::Cbl,
            &b,
            dims,
            BlockLayout::Cbl,
            0.0,
            &mut cbuf,
        );
        cbuf[0]
    });
}

fn main() {
    let mut h = Harness::from_env();
    ablation_codegen(&mut h);
    ablation_compile(&mut h);
    ablation_vm(&mut h);
    ablation_pack(&mut h);
    ablation_native_gemm(&mut h);
}
