//! Ablation benches for the system's own machinery: code generation,
//! OpenCL C compilation, VM execution, operand packing, and the native
//! executor. These are the design choices DESIGN.md calls out; tracking
//! their cost keeps the tuner's "tens of thousands of variants per
//! device" budget honest.

use clgemm::codegen::{generate, KERNEL_NAME};
use clgemm::executor::run_native;
use clgemm_bench::{bench_paper_params, bench_small_params};
use clgemm_blas::layout::{BlockLayout, PackedDims};
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::pack::{pack_operand, PackSpec};
use clgemm_blas::Trans;
use clgemm_clc::{Arg, BufData, ExecOptions, Program};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// Code generation throughput (string emission only).
fn ablation_codegen(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_codegen");
    let p = bench_paper_params();
    g.bench_function("generate_paper_kernel", |b| b.iter(|| black_box(generate(&p).unwrap().source.len())));
    g.finish();
}

/// Full OpenCL C frontend: preprocess → lex → parse → check → lower.
fn ablation_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_compile");
    let src = generate(&bench_paper_params()).unwrap().source;
    g.throughput(Throughput::Bytes(src.len() as u64));
    g.bench_function("compile_paper_kernel", |b| {
        b.iter(|| black_box(Program::compile(&src).unwrap()))
    });
    g.finish();
}

/// VM execution of a small generated kernel (the functional-verification
/// cost per candidate).
fn ablation_vm(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_vm");
    g.sample_size(10);
    let p = bench_small_params();
    let gen = generate(&p).unwrap();
    let prog = Program::compile(&gen.source).unwrap();
    let kernel = prog.kernel(KERNEL_NAME).unwrap();
    let (m, n, k) = (p.mwg, p.nwg, p.kwg * 2);
    let flops = (2 * m * n * k) as u64;
    g.throughput(Throughput::Elements(flops));
    let a = vec![1.0f32; k * m];
    let bmat = vec![1.0f32; k * n];
    let c0 = vec![0.0f32; m * n];
    let nd = gen.ndrange(m, n);
    g.bench_function("vm_exec_16x16x16", |b| {
        b.iter(|| {
            let mut bufs = vec![
                BufData::F32(a.clone()),
                BufData::F32(bmat.clone()),
                BufData::F32(c0.clone()),
            ];
            let args = [
                Arg::Buf(0),
                Arg::Buf(1),
                Arg::Buf(2),
                Arg::I32(m as i32),
                Arg::I32(n as i32),
                Arg::I32(k as i32),
                Arg::F32(1.0),
                Arg::F32(0.0),
            ];
            let opts = ExecOptions { detect_races: false, ..Default::default() };
            black_box(kernel.launch(nd, &args, &mut bufs, &opts).unwrap());
        })
    });
    g.finish();
}

/// Operand packing (real data movement, the §III-D copy step).
fn ablation_pack(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_pack");
    let n = 512usize;
    let x = Matrix::<f64>::test_pattern(n, n, StorageOrder::ColMajor, 1);
    g.throughput(Throughput::Bytes((n * n * 8) as u64));
    for layout in BlockLayout::ALL {
        g.bench_function(format!("pack_512_{}", layout.tag()), |b| {
            let spec = PackSpec { trans: Trans::Yes, layout, wwg: 64, kwg: 16 };
            b.iter(|| black_box(pack_operand(&x, spec, n, n).0.len()))
        });
    }
    g.finish();
}

/// The native executor (correctness-oracle throughput).
fn ablation_native_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_native_gemm");
    g.sample_size(10);
    let n = 256usize;
    let dims = PackedDims::new(n, n, 64, 16).unwrap();
    let a = vec![1.0f64; dims.len()];
    let b_ = vec![2.0f64; dims.len()];
    g.throughput(Throughput::Elements((2 * n * n * n) as u64));
    g.bench_function("run_native_256", |bch| {
        bch.iter(|| {
            let mut cbuf = vec![0.0f64; n * n];
            run_native(
                n,
                n,
                n,
                1.0,
                &a,
                dims,
                BlockLayout::Cbl,
                &b_,
                dims,
                BlockLayout::Cbl,
                0.0,
                &mut cbuf,
            );
            black_box(cbuf[0])
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_codegen,
    ablation_compile,
    ablation_vm,
    ablation_pack,
    ablation_native_gemm
);
criterion_main!(benches);
