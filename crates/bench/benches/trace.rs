//! Observability primitive costs: what one span, one counter bump, one
//! histogram observation and one registry snapshot cost, with tracing
//! off and on. These are the numbers DESIGN.md §Observability quotes
//! and the basis for the routine bench's 5%/15% overhead gates —
//! a span must be a handful of nanoseconds when disabled, tens when
//! enabled, or instrumenting the serving hot path would be a lie.
//!
//! Results land in `BENCH_trace.json` at the repo root. Smoke mode
//! additionally asserts the ordering that makes the instrumentation
//! safe to leave in: a disabled span costs no more than an enabled one.

use clgemm_shim::bench::{fmt_secs, Harness};
use clgemm_shim::json::Json;
use clgemm_trace::Registry;
use std::time::Instant;

fn per_op(iters: u32, f: impl Fn(u64)) -> f64 {
    let t = Instant::now();
    for i in 0..iters {
        f(u64::from(i));
    }
    t.elapsed().as_secs_f64() / f64::from(iters)
}

fn main() {
    let mut h = Harness::from_env();
    let reg = Registry::new();
    let counter = reg.counter("bench_ops_total");
    let hist = reg.histogram("bench_latency_seconds", 1e-9);
    for i in 0..64 {
        hist.observe(i * 1000);
    }

    if h.smoke {
        // Quick sanity with fixed small loops: the disabled fast path
        // must not cost more than the enabled one (it does strictly
        // less work), and neither may be pathological (> 2 µs/op says
        // a lock or allocation crept into the span path).
        clgemm_trace::set_enabled(false);
        let disabled = per_op(20_000, |i| {
            let _s = clgemm_trace::span!("bench.smoke", i);
        });
        clgemm_trace::set_enabled(true);
        let enabled = per_op(20_000, |i| {
            let _s = clgemm_trace::span!("bench.smoke", i);
        });
        clgemm_trace::set_enabled(false);
        println!(
            "trace smoke gate: span disabled {} / enabled {} per op",
            fmt_secs(disabled),
            fmt_secs(enabled)
        );
        assert!(
            disabled <= enabled * 1.5,
            "disabled span ({}) should not out-cost enabled span ({})",
            fmt_secs(disabled),
            fmt_secs(enabled)
        );
        assert!(
            enabled < 2e-6,
            "enabled span cost {} per op — recording is no longer lock-free?",
            fmt_secs(enabled)
        );
        counter.add(1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("bench_ops_total"), Some(1));
        println!("trace smoke gate: snapshot coherent");
        return;
    }

    clgemm_trace::set_enabled(false);
    h.bench("trace/span_disabled", || {
        let _s = clgemm_trace::span!("bench.span", 1);
    });
    clgemm_trace::set_enabled(true);
    h.bench("trace/span_enabled", || {
        let _s = clgemm_trace::span!("bench.span", 1);
    });
    h.bench("trace/event_enabled", || {
        clgemm_trace::event!("bench.event", 2);
    });
    clgemm_trace::set_enabled(false);

    h.bench("trace/counter_add", || counter.add(1));
    h.bench("trace/hist_observe", || hist.observe(12_345));
    h.bench("trace/registry_snapshot", || reg.snapshot());
    h.bench("trace/prometheus_render", || {
        reg.snapshot().to_prometheus().len()
    });

    let rows = h.results().to_vec();
    let entries: Vec<Json> = rows
        .iter()
        .map(|(name, secs)| {
            Json::obj(vec![
                ("name", Json::Str(name.clone())),
                ("seconds", Json::Num(*secs)),
            ])
        })
        .collect();
    let overhead = {
        let get = |n: &str| rows.iter().find(|(name, _)| name == n).map(|(_, s)| *s);
        match (get("trace/span_disabled"), get("trace/span_enabled")) {
            (Some(off), Some(on)) if off > 0.0 => Json::Num(on / off),
            _ => Json::Null,
        }
    };
    let doc = Json::obj(vec![
        ("bench", Json::Str("trace".into())),
        ("results", Json::Arr(entries)),
        ("span_enabled_over_disabled", overhead),
        (
            "dropped_events",
            Json::Num(clgemm_trace::ring::dropped_events() as f64),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    std::fs::write(path, doc.to_string_compact()).expect("write BENCH_trace.json");
    println!("wrote {path}");
}
