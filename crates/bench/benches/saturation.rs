//! Saturation bench: serving behaviour at and past capacity.
//!
//! A deterministic two-tenant workload (virtual-time execution, seeded
//! operands) runs once at 1× capacity and once at 2×. At 1× every
//! request meets its deadline; at 2× admission control and the in-batch
//! guard shed what cannot finish in time while weighted-fair queueing
//! keeps both tenants served and idempotent coalescing absorbs
//! duplicate submissions. Smoke mode (`CLGEMM_BENCH_SMOKE=1`, used by
//! CI) gates graceful degradation: served throughput and tail latency
//! must not collapse at 2×, overload must shed (rather than queue
//! without bound), conservation must hold (every submission is either
//! answered or counted shed), and the coalescing hit-rate must be
//! positive. Full runs write `BENCH_saturation.json` at the repo root.

use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::GemmType;
use clgemm_device::DeviceId;
use clgemm_serve::{GemmPayload, GemmRequest, GemmServer, Outcome, ServeConfig};
use clgemm_shim::json::Json;
use clgemm_shim::Rng;
use clgemm_trace::Registry;
use std::collections::HashMap;

/// Rounds of arrivals; the drain quota equals one round's 1× arrivals,
/// so 1× is served round by round while 2× builds a backlog.
const ROUNDS: usize = 6;
/// Requests per tenant per round at 1× load.
const BASE_PER_ROUND: usize = 6;
const QUOTA: usize = 2 * BASE_PER_ROUND;

struct LoadStats {
    load: usize,
    submitted: usize,
    completed: usize,
    shed_admit: u64,
    shed_late: u64,
    coalesce_hits: u64,
    makespan: f64,
    p50_done: f64,
    p99_done: f64,
    goodput_gflops: f64,
    inter_completed: u64,
    bulk_completed: u64,
}

fn request(rng: &mut Rng, n: usize, tenant: &str) -> GemmRequest {
    let order = StorageOrder::ColMajor;
    GemmRequest::new(
        GemmType::NN,
        GemmPayload::F64 {
            alpha: 1.0,
            a: Matrix::test_pattern(n, n, order, rng.next_u64()),
            b: Matrix::test_pattern(n, n, order, rng.next_u64()),
            beta: 0.5,
            c: Matrix::test_pattern(n, n, order, rng.next_u64()),
        },
    )
    .with_tenant(tenant)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

/// Serve `load`× the base workload; `deadline` is an absolute virtual
/// deadline applied to every request (None = pre-pass to size it). At
/// load ≥ 2 every eighth request per tenant duplicates its predecessor
/// bit-for-bit, standing in for retries and fan-in duplicates.
fn run_load(load: usize, deadline: Option<f64>) -> LoadStats {
    let mut server = GemmServer::new(
        vec![DeviceId::Tahiti.spec(), DeviceId::Cayman.spec()],
        ServeConfig {
            queue_capacity: 400,
            drain_quota: QUOTA,
            tenant_weights: vec![("inter".into(), 4), ("bulk".into(), 1)],
            registry: Some(Registry::new()),
            // Keep the run bit-deterministic: background refinement
            // lands at wall-clock-dependent drains and would perturb
            // the modelled timeline between runs.
            background_refine: false,
            ..Default::default()
        },
    );
    let mut rng = Rng::new(0x5A7);
    let sizes = [48usize, 64, 96];
    let mut submitted = 0usize;
    let mut tenant_of: HashMap<u64, &'static str> = HashMap::new();
    let mut done: Vec<f64> = Vec::new();
    let mut flops_served = 0.0f64;
    let mut completed = 0usize;

    // Returns how many responses (any outcome) the drain produced —
    // zero means the queue is truly empty, since shed requests are
    // answered with `MissedDeadline` responses too.
    let absorb = |server: &mut GemmServer,
                  done: &mut Vec<f64>,
                  flops: &mut f64,
                  completed: &mut usize|
     -> usize {
        let responses = server.take_responses();
        let n = responses.len();
        for r in responses {
            if r.outcome == Outcome::Completed {
                *completed += 1;
                done.push(r.done_at);
                *flops += r.run.gflops * r.run.total * 1e9;
            }
        }
        n
    };

    for _round in 0..ROUNDS {
        for tenant in ["inter", "bulk"] {
            let mut last: Option<GemmRequest> = None;
            for i in 0..BASE_PER_ROUND * load {
                let req = match (&last, load >= 2 && i % 8 == 7) {
                    (Some(prev), true) => prev.clone(),
                    _ => {
                        let n = sizes[rng.range(0, sizes.len())];
                        let fresh = request(&mut rng, n, tenant);
                        last = Some(fresh.clone());
                        fresh
                    }
                };
                let req = match deadline {
                    Some(d) => req.with_deadline(d),
                    None => req,
                };
                submitted += 1;
                if let Ok(id) = server.submit(req) {
                    tenant_of.insert(id, tenant);
                }
                // A rejected submission was shed at admission — counted
                // in the server stats, nothing further to do.
            }
        }
        server.drain();
        absorb(&mut server, &mut done, &mut flops_served, &mut completed);
    }
    // Flush the backlog (quota-limited, so keep draining until a drain
    // produces no responses at all).
    loop {
        server.drain();
        if absorb(&mut server, &mut done, &mut flops_served, &mut completed) == 0 {
            break;
        }
    }

    let stats = server.stats();
    assert_eq!(
        stats.rejected_queue_full, 0,
        "the queue must be sized for the workload"
    );
    // Conservation: every submission is answered or counted shed.
    assert_eq!(
        submitted as u64,
        completed as u64 + stats.rejected_deadline_admit + stats.rejected_deadline_late,
        "submissions must balance completions + sheds"
    );

    let makespan = server
        .workers()
        .iter()
        .map(clgemm_sim::DeviceWorker::busy_until)
        .fold(0.0, f64::max);
    done.sort_by(f64::total_cmp);
    LoadStats {
        load,
        submitted,
        completed,
        shed_admit: stats.rejected_deadline_admit,
        shed_late: stats.rejected_deadline_late,
        coalesce_hits: stats.coalesce_hits,
        makespan,
        p50_done: percentile(&done, 0.50),
        p99_done: percentile(&done, 0.99),
        goodput_gflops: if makespan > 0.0 {
            flops_served / makespan / 1e9
        } else {
            0.0
        },
        inter_completed: stats.per_tenant.get("inter").map_or(0, |t| t.completed),
        bulk_completed: stats.per_tenant.get("bulk").map_or(0, |t| t.completed),
    }
}

fn print_row(s: &LoadStats) {
    println!(
        "saturation/{}x: {} submitted, {} completed ({} shed at admit, {} late), \
         {} coalesced, makespan {:.3} ms, p50/p99 done {:.3}/{:.3} ms, {:.1} GFlop/s goodput, \
         inter:bulk completed {}:{}",
        s.load,
        s.submitted,
        s.completed,
        s.shed_admit,
        s.shed_late,
        s.coalesce_hits,
        s.makespan * 1e3,
        s.p50_done * 1e3,
        s.p99_done * 1e3,
        s.goodput_gflops,
        s.inter_completed,
        s.bulk_completed,
    );
}

fn main() {
    let smoke = std::env::var_os("CLGEMM_BENCH_SMOKE").is_some_and(|v| v == "1");

    // Pre-pass: virtual makespan of the 1× workload with no deadlines
    // sizes the deadline budget every request gets in the real runs.
    let budget = 1.3 * run_load(1, None).makespan;
    println!(
        "saturation/deadline budget: {:.3} ms of virtual time",
        budget * 1e3
    );

    let at_1x = run_load(1, Some(budget));
    let at_2x = run_load(2, Some(budget));
    print_row(&at_1x);
    print_row(&at_2x);

    if smoke {
        // Gate 1: within capacity, nothing is shed and all complete.
        assert_eq!(
            at_1x.completed, at_1x.submitted,
            "1x load must complete everything inside the deadline budget"
        );
        // Gate 2: past capacity the server sheds — it does not pretend.
        assert!(
            at_2x.shed_admit + at_2x.shed_late > 0,
            "2x load must shed work it cannot finish in time"
        );
        assert!(
            at_2x.shed_admit > 0,
            "overload must be caught at admission, not only in-batch"
        );
        // Gate 3: graceful degradation — served throughput and the tail
        // must not collapse under 2x load.
        assert!(
            at_2x.completed as f64 >= 0.75 * at_1x.completed as f64,
            "2x completions ({}) collapsed vs 1x ({})",
            at_2x.completed,
            at_1x.completed
        );
        assert!(
            at_2x.goodput_gflops >= 0.75 * at_1x.goodput_gflops,
            "2x goodput ({:.1}) collapsed vs 1x ({:.1})",
            at_2x.goodput_gflops,
            at_1x.goodput_gflops
        );
        assert!(
            at_2x.p99_done <= 3.0 * at_1x.p99_done.max(f64::EPSILON),
            "2x p99 completion ({:.4}s) blew past 3x the 1x tail ({:.4}s)",
            at_2x.p99_done,
            at_1x.p99_done
        );
        // Gate 4: duplicates coalesce instead of recomputing.
        assert!(
            at_2x.coalesce_hits > 0,
            "duplicate submissions must share executions"
        );
        // Gate 5: weighted fairness under overload — the light tenant
        // is not starved, the heavy tenant is not inverted.
        assert!(at_2x.bulk_completed > 0, "bulk tenant starved at 2x");
        assert!(
            at_2x.inter_completed >= at_2x.bulk_completed,
            "4:1 weights inverted: inter {} < bulk {}",
            at_2x.inter_completed,
            at_2x.bulk_completed
        );
        println!("saturation smoke gates: overload sheds, throughput holds, duplicates coalesce");
        return;
    }

    let row = |s: &LoadStats| {
        Json::obj(vec![
            ("load", Json::Num(s.load as f64)),
            ("submitted", Json::Num(s.submitted as f64)),
            ("completed", Json::Num(s.completed as f64)),
            ("shed_at_admission", Json::Num(s.shed_admit as f64)),
            ("shed_in_batch", Json::Num(s.shed_late as f64)),
            ("coalesce_hits", Json::Num(s.coalesce_hits as f64)),
            ("virtual_makespan_seconds", Json::Num(s.makespan)),
            ("p50_done_seconds", Json::Num(s.p50_done)),
            ("p99_done_seconds", Json::Num(s.p99_done)),
            ("goodput_gflops", Json::Num(s.goodput_gflops)),
            ("inter_completed", Json::Num(s.inter_completed as f64)),
            ("bulk_completed", Json::Num(s.bulk_completed as f64)),
        ])
    };
    let doc = Json::obj(vec![
        ("bench", Json::Str("saturation".into())),
        ("deadline_budget_seconds", Json::Num(budget)),
        ("tenant_weights", Json::Str("inter:4, bulk:1".into())),
        ("loads", Json::Arr(vec![row(&at_1x), row(&at_2x)])),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_saturation.json");
    std::fs::write(path, doc.to_string_compact()).expect("write BENCH_saturation.json");
    println!("wrote {path}");
}
