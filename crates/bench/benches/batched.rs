//! Strided-batched GEMM bench: one `gemm_batch` call vs a loop of
//! single `gemm` calls over the same entries, across batch sizes and
//! shapes, plus the direct-vs-packed crossover sweep that sets
//! [`DIRECT_BATCH_MAX`].
//!
//! Full runs produce `BENCH_batched.json` at the repo root: GFlop/s for
//! batched and looped variants at batch 1/8/64 × 32³/128³/512³ f32 (and
//! an f16 convert-on-pack row), and forced direct vs forced packed
//! timings across the crossover edge sweep. Smoke mode
//! (`CLGEMM_BENCH_SMOKE=1`, used by CI) is the regression gate: batched
//! must beat the looped single calls by ≥ 2× at batch 64 / 128³ f32,
//! the direct path must beat the packed path at 32³, and repeated
//! batched calls must perform zero steady-state workspace growths.

use clgemm::batched::{BatchOptions, BatchPath};
use clgemm::params::small_test_params;
use clgemm::routine::{GemmOptions, TunedGemm};
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::scalar::{Precision, Scalar, StorageScalar};
use clgemm_blas::workspace::{Workspace, WorkspaceScalar};
use clgemm_blas::{BatchWorkspace, GemmBatch, GemmType, F16};
use clgemm_shim::bench::fmt_secs;
use clgemm_shim::json::Json;
use std::time::Instant;

fn tuned() -> TunedGemm {
    TunedGemm::new(
        clgemm_device::DeviceId::Tahiti.spec(),
        small_test_params(Precision::F64),
        small_test_params(Precision::F32),
    )
}

fn fill<S: StorageScalar>(slab: &mut [S], seed: usize) {
    for (i, cell) in slab.iter_mut().enumerate() {
        *cell = S::from_f64(((i * 7 + seed * 13) % 16) as f64 * 0.25 - 2.125);
    }
}

fn time_once(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| time_once(&mut f))
        .fold(f64::INFINITY, f64::min)
}

/// Slabs + workspaces for one `batch × edge³` f-storage scenario.
struct Scenario<S: StorageScalar> {
    desc: GemmBatch,
    a: Vec<S>,
    b: Vec<S>,
    c: Vec<S>,
    ws: BatchWorkspace,
}

impl<S: StorageScalar> Scenario<S>
where
    S::Acc: WorkspaceScalar,
{
    fn new(batch: usize, edge: usize) -> Scenario<S> {
        let desc = GemmBatch::packed(GemmType::NN, batch, edge, edge, edge);
        let n = batch * edge * edge;
        let mut a = vec![S::default(); n];
        let mut b = vec![S::default(); n];
        let mut c = vec![S::default(); n];
        fill(&mut a, 1);
        fill(&mut b, 2);
        fill(&mut c, 3);
        Scenario {
            desc,
            a,
            b,
            c,
            ws: BatchWorkspace::new(),
        }
    }

    /// One batched call (`beta = 0`, so C can be reused across reps).
    fn batched(&mut self, tg: &TunedGemm, opts: &BatchOptions) {
        tg.gemm_batch_with(
            &self.desc,
            S::Acc::from_f64(1.0),
            &self.a,
            &self.b,
            S::Acc::from_f64(0.0),
            &mut self.c,
            &mut self.ws,
            opts,
        )
        .expect("bench descriptor is valid");
    }
}

/// The looped-single baseline: one routine `gemm` call per entry on
/// widened matrices, staging through a reusable workspace — exactly
/// what a caller without the batched entry point would write.
struct Looped<T: WorkspaceScalar> {
    entries: Vec<(Matrix<T>, Matrix<T>, Matrix<T>)>,
    ws: Workspace,
}

impl<T: WorkspaceScalar> Looped<T> {
    fn new(batch: usize, edge: usize) -> Looped<T> {
        let entries = (0..batch)
            .map(|i| {
                (
                    Matrix::test_pattern(edge, edge, StorageOrder::ColMajor, i as u64),
                    Matrix::test_pattern(edge, edge, StorageOrder::ColMajor, i as u64 + 1),
                    Matrix::zeros(edge, edge, StorageOrder::ColMajor),
                )
            })
            .collect();
        Looped {
            entries,
            ws: Workspace::new(),
        }
    }

    fn run(&mut self, tg: &TunedGemm) {
        let opts = GemmOptions::default();
        for (a, b, c) in &mut self.entries {
            tg.gemm_with(
                GemmType::NN,
                T::from_f64(1.0),
                a,
                b,
                T::from_f64(0.0),
                c,
                &mut self.ws,
                &opts,
            );
        }
    }
}

fn gflops(batch: usize, edge: usize, secs: f64) -> f64 {
    2.0 * batch as f64 * (edge * edge * edge) as f64 / secs / 1e9
}

fn main() {
    let smoke = std::env::var_os("CLGEMM_BENCH_SMOKE").is_some_and(|v| v == "1");
    let tg = tuned();
    let auto = BatchOptions::default();

    if smoke {
        // CI gate 1: one batched call beats the loop of single calls by
        // at least 2x at batch 64 / 128^3 f32 — the regime the batched
        // entry point exists for.
        let (batch, edge) = (64, 128);
        let mut sc = Scenario::<f32>::new(batch, edge);
        let mut lp = Looped::<f32>::new(batch, edge);
        sc.batched(&tg, &auto); // warm the direct path
        lp.run(&tg); // warm the looped workspace
        let batched = best_of(3, || sc.batched(&tg, &auto));
        let looped = best_of(3, || lp.run(&tg));
        println!(
            "batched smoke gate ({batch}x{edge}^3 f32): batched {} vs looped {} ({:.2}x)",
            fmt_secs(batched),
            fmt_secs(looped),
            looped / batched
        );
        assert!(
            batched * 2.0 <= looped,
            "batched call ({}) must be at least 2x the looped singles ({})",
            fmt_secs(batched),
            fmt_secs(looped)
        );

        // CI gate 2: below the crossover the direct path must win.
        let mut sc = Scenario::<f32>::new(64, 32);
        let direct_opts = BatchOptions {
            force_path: Some(BatchPath::Direct),
        };
        let packed_opts = BatchOptions {
            force_path: Some(BatchPath::Packed),
        };
        sc.batched(&tg, &packed_opts); // warm the packed workspace
        let direct = best_of(3, || sc.batched(&tg, &direct_opts));
        let packed = best_of(3, || sc.batched(&tg, &packed_opts));
        println!(
            "batched smoke gate (64x32^3 f32 crossover): direct {} vs packed {} ({:.2}x)",
            fmt_secs(direct),
            fmt_secs(packed),
            packed / direct
        );
        assert!(
            direct <= packed,
            "direct path ({}) must beat the packed path ({}) at 32^3",
            fmt_secs(direct),
            fmt_secs(packed)
        );

        // CI gate 3: steady-state batched calls allocate nothing. The
        // packed scenario above is already warm; repeats must not grow.
        let grows = sc.ws.grows();
        assert!(grows > 0, "packed warm-up must size the pools");
        for _ in 0..3 {
            sc.batched(&tg, &packed_opts);
        }
        assert_eq!(
            sc.ws.grows(),
            grows,
            "steady-state batched calls grew the workspace"
        );
        // The direct path never touches the workspace at all.
        let mut direct_ws = Scenario::<f32>::new(8, 32);
        direct_ws.batched(&tg, &auto);
        assert_eq!(direct_ws.ws.grows(), 0, "direct path must not stage");
        println!("batched smoke gate: steady-state workspace growths = 0");

        // CI gate 4: the checked-in record carries both tables.
        let json_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batched.json");
        let doc =
            Json::parse(&std::fs::read_to_string(json_path).expect("read BENCH_batched.json"))
                .expect("parse BENCH_batched.json");
        let grid = doc
            .get("batched_vs_looped")
            .and_then(Json::as_arr)
            .expect("batched_vs_looped table");
        assert!(grid.len() >= 9, "batch x shape grid must be recorded");
        let crossover = doc
            .get("crossover")
            .and_then(Json::as_arr)
            .expect("crossover table");
        assert!(crossover.len() >= 6, "crossover sweep must be recorded");
        println!(
            "batched smoke gate: {} grid rows, {} crossover rows in BENCH_batched.json",
            grid.len(),
            crossover.len()
        );
        return;
    }

    // ---- full run: batched vs looped grid --------------------------------
    let mut grid: Vec<Json> = Vec::new();
    for &batch in &[1usize, 8, 64] {
        for &edge in &[32usize, 128, 512] {
            // Keep the heaviest cells affordable on one core.
            let reps = if batch * edge * edge * edge > 1 << 27 {
                2
            } else {
                5
            };
            let mut sc = Scenario::<f32>::new(batch, edge);
            let mut lp = Looped::<f32>::new(batch, edge);
            sc.batched(&tg, &auto);
            lp.run(&tg);
            let batched = best_of(reps, || sc.batched(&tg, &auto));
            let looped = best_of(reps, || lp.run(&tg));
            let path = if edge <= clgemm::batched::DIRECT_BATCH_MAX {
                "direct"
            } else {
                "packed"
            };
            println!(
                "batched/{batch}x{edge}_f32: batched {} ({:.2} GFlop/s, {path}) vs looped {} ({:.2} GFlop/s) -> {:.2}x",
                fmt_secs(batched),
                gflops(batch, edge, batched),
                fmt_secs(looped),
                gflops(batch, edge, looped),
                looped / batched
            );
            grid.push(Json::obj(vec![
                ("batch", Json::Num(batch as f64)),
                ("edge", Json::Num(edge as f64)),
                ("storage", Json::Str("f32".into())),
                ("path", Json::Str(path.into())),
                ("batched_seconds", Json::Num(batched)),
                ("looped_seconds", Json::Num(looped)),
                ("batched_gflops", Json::Num(gflops(batch, edge, batched))),
                ("looped_gflops", Json::Num(gflops(batch, edge, looped))),
                ("speedup", Json::Num(looped / batched)),
            ]));
        }
    }
    // Convert-on-pack row: f16 storage at batch 8 / 128^3, both paths.
    {
        let (batch, edge) = (8usize, 128usize);
        let mut sc = Scenario::<F16>::new(batch, edge);
        sc.batched(&tg, &auto);
        let direct = best_of(3, || sc.batched(&tg, &auto));
        let packed_opts = BatchOptions {
            force_path: Some(BatchPath::Packed),
        };
        sc.batched(&tg, &packed_opts);
        let packed = best_of(3, || sc.batched(&tg, &packed_opts));
        println!(
            "batched/{batch}x{edge}_f16: direct {} vs packed(widen) {}",
            fmt_secs(direct),
            fmt_secs(packed)
        );
        grid.push(Json::obj(vec![
            ("batch", Json::Num(batch as f64)),
            ("edge", Json::Num(edge as f64)),
            ("storage", Json::Str("f16".into())),
            ("path", Json::Str("direct".into())),
            ("batched_seconds", Json::Num(direct)),
            ("packed_seconds", Json::Num(packed)),
            ("batched_gflops", Json::Num(gflops(batch, edge, direct))),
        ]));
    }

    // ---- crossover sweep: forced direct vs forced packed ------------------
    let direct_opts = BatchOptions {
        force_path: Some(BatchPath::Direct),
    };
    let packed_opts = BatchOptions {
        force_path: Some(BatchPath::Packed),
    };
    let mut crossover: Vec<Json> = Vec::new();
    for &edge in &[16usize, 32, 48, 64, 96, 128, 160, 192, 256, 384, 512] {
        let batch = 16usize;
        let reps = if edge >= 384 { 2 } else { 3 };
        let mut sc = Scenario::<f32>::new(batch, edge);
        sc.batched(&tg, &packed_opts); // size the pools outside timing
        let direct = best_of(reps, || sc.batched(&tg, &direct_opts));
        let packed = best_of(reps, || sc.batched(&tg, &packed_opts));
        println!(
            "batched/crossover_{edge}: direct {} vs packed {} ({})",
            fmt_secs(direct),
            fmt_secs(packed),
            if direct <= packed {
                "direct wins"
            } else {
                "packed wins"
            }
        );
        crossover.push(Json::obj(vec![
            ("edge", Json::Num(edge as f64)),
            ("batch", Json::Num(batch as f64)),
            ("direct_seconds", Json::Num(direct)),
            ("packed_seconds", Json::Num(packed)),
            ("direct_gflops", Json::Num(gflops(batch, edge, direct))),
            ("packed_gflops", Json::Num(gflops(batch, edge, packed))),
        ]));
    }

    let doc = Json::obj(vec![
        ("bench", Json::Str("batched".into())),
        (
            "direct_batch_max",
            Json::Num(clgemm::batched::DIRECT_BATCH_MAX as f64),
        ),
        ("batched_vs_looped", Json::Arr(grid)),
        ("crossover", Json::Arr(crossover)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batched.json");
    std::fs::write(path, doc.to_string_compact()).expect("write BENCH_batched.json");
    println!("wrote {path}");
}
