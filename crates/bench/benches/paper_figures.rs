//! Benches for the Figs. 9–11 sweep generators.

use clgemm::routine::TunedGemm;
use clgemm_bench::{bench_paper_params, bench_small_params};
use clgemm_blas::scalar::Precision;
use clgemm_blas::GemmType;
use clgemm_device::DeviceId;
use clgemm_shim::bench::Harness;
use clgemm_vendor::{libraries_for, previous_study};

fn sweep(tg: &TunedGemm, dp: bool) -> f64 {
    let mut acc = 0.0;
    for n in (512..=6144).step_by(512) {
        acc += tg.predict(dp, GemmType::NN, n, n, n).gflops;
    }
    acc
}

/// Fig. 9: the Tahiti routine sweep plus the clBLAS/previous-study
/// comparison curves.
fn fig9_tahiti(h: &mut Harness) {
    let tg = TunedGemm::new(
        DeviceId::Tahiti.spec(),
        bench_paper_params(),
        bench_small_params(),
    );
    h.bench("fig9_tahiti/ours_sweep_dgemm", || sweep(&tg, true));
    let clblas = libraries_for(DeviceId::Tahiti).remove(0);
    let prev = previous_study();
    h.bench("fig9_tahiti/vendor_curves", || {
        let mut acc = 0.0;
        for n in (512..=6144).step_by(512) {
            acc += clblas.gflops(Precision::F64, GemmType::NN, n);
            acc += prev.gflops(Precision::F64, GemmType::NN, n);
        }
        acc
    });
}

/// Fig. 10: NVIDIA routine sweeps on both GPUs.
fn fig10_nvidia(h: &mut Harness) {
    for id in [DeviceId::Fermi, DeviceId::Kepler] {
        // Representative winner parameters re-used across devices to keep
        // the bench self-contained; real sweeps come from `repro fig10`.
        let tg = TunedGemm::new(id.spec(), bench_paper_params(), bench_small_params());
        h.bench(&format!("fig10_nvidia/ours_sweep_{}", id.name()), || {
            sweep(&tg, false)
        });
    }
}

/// Fig. 11: the Sandy Bridge sweep plus MKL/ATLAS curves.
fn fig11_sandybridge(h: &mut Harness) {
    let tg = TunedGemm::new(
        DeviceId::SandyBridge.spec(),
        bench_paper_params(),
        bench_small_params(),
    );
    h.bench("fig11_sandybridge/ours_sweep_dgemm", || sweep(&tg, true));
    let libs = libraries_for(DeviceId::SandyBridge);
    h.bench("fig11_sandybridge/mkl_atlas_curves", || {
        let mut acc = 0.0;
        for lib in &libs {
            for n in (512..=5120).step_by(512) {
                acc += lib.gflops(Precision::F64, GemmType::NN, n);
            }
        }
        acc
    });
}

fn main() {
    let mut h = Harness::from_env();
    fig9_tahiti(&mut h);
    fig10_nvidia(&mut h);
    fig11_sandybridge(&mut h);
}
