//! Benches for the Figs. 9–11 sweep generators.

use clgemm::routine::TunedGemm;
use clgemm_bench::{bench_paper_params, bench_small_params};
use clgemm_blas::scalar::Precision;
use clgemm_blas::GemmType;
use clgemm_device::DeviceId;
use clgemm_vendor::{libraries_for, previous_study};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn sweep(tg: &TunedGemm, dp: bool) -> f64 {
    let mut acc = 0.0;
    for n in (512..=6144).step_by(512) {
        acc += tg.predict(dp, GemmType::NN, n, n, n).gflops;
    }
    acc
}

/// Fig. 9: the Tahiti routine sweep plus the clBLAS/previous-study
/// comparison curves.
fn fig9_tahiti(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_tahiti");
    let tg = TunedGemm::new(DeviceId::Tahiti.spec(), bench_paper_params(), bench_small_params());
    g.bench_function("ours_sweep_dgemm", |b| b.iter(|| black_box(sweep(&tg, true))));
    let clblas = libraries_for(DeviceId::Tahiti).remove(0);
    let prev = previous_study();
    g.bench_function("vendor_curves", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in (512..=6144).step_by(512) {
                acc += clblas.gflops(Precision::F64, GemmType::NN, n);
                acc += prev.gflops(Precision::F64, GemmType::NN, n);
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// Fig. 10: NVIDIA routine sweeps on both GPUs.
fn fig10_nvidia(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_nvidia");
    for id in [DeviceId::Fermi, DeviceId::Kepler] {
        // Representative winner parameters re-used across devices to keep
        // the bench self-contained; real sweeps come from `repro fig10`.
        let tg = TunedGemm::new(id.spec(), bench_paper_params(), bench_small_params());
        g.bench_with_input(BenchmarkId::new("ours_sweep", id.name()), &tg, |b, tg| {
            b.iter(|| black_box(sweep(tg, false)))
        });
    }
    g.finish();
}

/// Fig. 11: the Sandy Bridge sweep plus MKL/ATLAS curves.
fn fig11_sandybridge(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_sandybridge");
    let tg = TunedGemm::new(DeviceId::SandyBridge.spec(), bench_paper_params(), bench_small_params());
    g.bench_function("ours_sweep_dgemm", |b| b.iter(|| black_box(sweep(&tg, true))));
    let libs = libraries_for(DeviceId::SandyBridge);
    g.bench_function("mkl_atlas_curves", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for lib in &libs {
                for n in (512..=5120).step_by(512) {
                    acc += lib.gflops(Precision::F64, GemmType::NN, n);
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, fig9_tahiti, fig10_nvidia, fig11_sandybridge);
criterion_main!(benches);
