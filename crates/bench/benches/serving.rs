//! Serving-layer throughput: wall-clock requests/second through the
//! whole submit → batch → place → execute path, and the simulated
//! aggregate GFLOP/s the placed workload achieves, as functions of the
//! batch-size cap and the device-pool size.

use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::GemmType;
use clgemm_device::DeviceId;
use clgemm_serve::{GemmPayload, GemmRequest, GemmServer, ServeConfig};
use clgemm_shim::bench::Harness;
use clgemm_shim::Rng;

const REQUESTS: usize = 32;

fn workload() -> Vec<GemmRequest> {
    let mut rng = Rng::new(9);
    let popular = [48usize, 96, 120];
    (0..REQUESTS)
        .map(|_| {
            let n = popular[rng.range(0, popular.len())];
            GemmRequest::new(
                GemmType::ALL[rng.range(0, 4)],
                GemmPayload::F64 {
                    alpha: 1.0,
                    a: Matrix::test_pattern(n, n, StorageOrder::ColMajor, rng.next_u64()),
                    b: Matrix::test_pattern(n, n, StorageOrder::ColMajor, rng.next_u64()),
                    beta: 0.5,
                    c: Matrix::test_pattern(n, n, StorageOrder::ColMajor, rng.next_u64()),
                },
            )
        })
        .collect()
}

/// Serve the whole workload once; returns `(flops, virtual_makespan)`.
fn serve_once(workload: &[GemmRequest], n_devices: usize, max_batch: usize) -> (f64, f64) {
    let devices: Vec<_> = DeviceId::ALL
        .iter()
        .take(n_devices)
        .map(|id| id.spec())
        .collect();
    let mut server = GemmServer::new(
        devices,
        ServeConfig {
            max_batch,
            queue_capacity: REQUESTS,
            ..Default::default()
        },
    );
    for req in workload {
        server
            .submit(req.clone())
            .expect("queue sized for the workload");
    }
    server.drain();
    let flops: f64 = server
        .take_responses()
        .iter()
        .map(|r| r.run.gflops * r.run.total * 1e9)
        .sum();
    let makespan = server
        .workers()
        .iter()
        .map(clgemm_sim::DeviceWorker::busy_until)
        .fold(0.0, f64::max);
    (flops, makespan)
}

/// Derived throughput lines (wall-clock rate skipped in smoke mode,
/// where the harness records no timing).
fn report(name: &str, wall: f64, flops: f64, makespan: f64) {
    if wall > 0.0 {
        println!(
            "  {name}: {:.0} requests/s wall-clock",
            REQUESTS as f64 / wall
        );
    }
    println!(
        "  {name}: {:.1} simulated GFLOP/s aggregate",
        flops / makespan / 1e9
    );
}

fn main() {
    let mut h = Harness::from_env();
    let workload = workload();

    // Requests/second and simulated GFLOP/s vs the batch-size cap.
    for max_batch in [1usize, 2, 4, 8] {
        let name = format!("serving/3dev_batch{max_batch}");
        h.bench(&name, || serve_once(&workload, 3, max_batch));
        let (flops, makespan) = serve_once(&workload, 3, max_batch);
        let wall = h.results().last().expect("just benched").1;
        report(&name, wall, flops, makespan);
    }

    // ... and vs the device-pool size.
    for n_devices in [1usize, 2, 4, 7] {
        let name = format!("serving/{n_devices}dev_batch4");
        h.bench(&name, || serve_once(&workload, n_devices, 4));
        let (flops, makespan) = serve_once(&workload, n_devices, 4);
        let wall = h.results().last().expect("just benched").1;
        report(&name, wall, flops, makespan);
    }
}
