//! Interpreter wall-clock bench: reference engine vs the fast engine
//! (typed register banks + fused superinstructions + parallel
//! work-groups) on functional GEMM launches.
//!
//! Grid: 3 algorithms × 2 precisions × {small, large} NDRange, both
//! engines per cell, plus a flagship 1024³ f32 BA case. Full runs write
//! `BENCH_interp.json` at the repo root with per-case seconds and
//! fast-vs-reference speedups.
//!
//! Smoke mode (`CLGEMM_BENCH_SMOKE=1`, used by CI) times the large BA
//! f32 case once per engine and **exits non-zero if the fast engine is
//! slower than the reference interpreter** — a regression gate for the
//! fast path. The flagship case only runs when `CLGEMM_INTERP_FLAGSHIP=1`
//! (it interprets a full 1024³ GEMM on the reference engine).

use clgemm::codegen::{generate, KERNEL_NAME};
use clgemm::params::{small_test_params, Algorithm, KernelParams};
use clgemm_blas::layout::PackedDims;
use clgemm_blas::scalar::Precision;
use clgemm_clc::{Arg, BufData, Engine, ExecOptions, NdRange, Program};
use clgemm_shim::bench::{fmt_secs, Harness};
use clgemm_shim::json::Json;
use std::time::Instant;

struct Case {
    prog: Program,
    nd: NdRange,
    args: Vec<Arg>,
    bufs: Vec<BufData>,
}

fn fill(len: usize, prec: Precision, salt: usize) -> BufData {
    match prec {
        Precision::F32 => BufData::F32(
            (0..len)
                .map(|i| ((i * 37 + salt) % 23) as f32 / 23.0 - 0.5)
                .collect(),
        ),
        Precision::F64 => BufData::F64(
            (0..len)
                .map(|i| ((i * 53 + salt) % 29) as f64 / 29.0 - 0.5)
                .collect(),
        ),
    }
}

fn build_case(p: &KernelParams, m: usize, n: usize, k: usize) -> Case {
    let gen = generate(p).expect("generate");
    let prog = Program::compile(&gen.source).expect("compile");
    let a_dims = PackedDims::new(k, m, p.mwg, p.kwg).expect("a dims");
    let b_dims = PackedDims::new(k, n, p.nwg, p.kwg).expect("b dims");
    let bufs = vec![
        fill(a_dims.len(), p.precision, 11),
        fill(b_dims.len(), p.precision, 7),
        fill(m * n, p.precision, 5),
    ];
    let mut args = vec![
        Arg::Buf(0),
        Arg::Buf(1),
        Arg::Buf(2),
        Arg::I32(m as i32),
        Arg::I32(n as i32),
        Arg::I32(k as i32),
    ];
    match p.precision {
        Precision::F32 => {
            args.push(Arg::F32(0.75));
            args.push(Arg::F32(-0.5));
        }
        Precision::F64 => {
            args.push(Arg::F64(0.75));
            args.push(Arg::F64(-0.5));
        }
    }
    Case {
        prog,
        nd: gen.ndrange(m, n),
        args,
        bufs,
    }
}

fn launch(case: &mut Case, engine: Engine) -> u64 {
    let opts = ExecOptions {
        engine,
        ..Default::default()
    };
    let kernel = case.prog.kernel(KERNEL_NAME).expect("kernel");
    let stats = kernel
        .launch(case.nd, &case.args, &mut case.bufs, &opts)
        .expect("launch");
    stats.instrs
}

/// One timed run (not harness-batched) — for the flagship case and the
/// smoke-mode regression gate, where a single launch is representative.
fn time_once(case: &mut Case, engine: Engine) -> f64 {
    let t = Instant::now();
    std::hint::black_box(launch(case, engine));
    t.elapsed().as_secs_f64()
}

fn params_for(algorithm: Algorithm, precision: Precision) -> KernelParams {
    let mut p = small_test_params(precision);
    p.algorithm = algorithm;
    // DB/PL need the operands staged through local memory.
    if algorithm != Algorithm::Ba {
        p.local_a = true;
        p.local_b = true;
    }
    p
}

fn algo_tag(a: Algorithm) -> &'static str {
    match a {
        Algorithm::Ba => "ba",
        Algorithm::Pl => "pl",
        Algorithm::Db => "db",
    }
}

fn prec_tag(p: Precision) -> &'static str {
    match p {
        Precision::F32 => "f32",
        Precision::F64 => "f64",
    }
}

fn main() {
    let mut h = Harness::from_env();
    let smoke = h.smoke;

    // Smoke mode: the CI regression gate. One launch per engine on the
    // large BA f32 case; the fast path must not be slower.
    if smoke {
        let p = params_for(Algorithm::Ba, Precision::F32);
        let (m, n, k) = (128, 128, 128);
        let mut case = build_case(&p, m, n, k);
        let fast = time_once(&mut case, Engine::Fast);
        let reference = time_once(&mut case, Engine::Reference);
        println!(
            "interp smoke gate (ba_f32 {m}x{n}x{k}): fast {} vs reference {} ({:.2}x)",
            fmt_secs(fast),
            fmt_secs(reference),
            reference / fast
        );
        assert!(
            fast <= reference,
            "fast engine ({}) slower than reference ({}) on the large-GEMM case",
            fmt_secs(fast),
            fmt_secs(reference)
        );
        return;
    }

    // Full grid: 3 algorithms × 2 precisions × {small, large}, both
    // engines per cell.
    let mut rows: Vec<(String, f64)> = Vec::new();
    for algorithm in Algorithm::ALL {
        for precision in [Precision::F32, Precision::F64] {
            let p = params_for(algorithm, precision);
            for (size_tag, m, n, k) in [("small", 32, 32, 16), ("large", 128, 128, 128)] {
                let mut case = build_case(&p, m, n, k);
                for engine in [Engine::Reference, Engine::Fast] {
                    let name = format!(
                        "interp/{}_{}_{}_{}",
                        algo_tag(algorithm),
                        prec_tag(precision),
                        size_tag,
                        if engine == Engine::Fast {
                            "fast"
                        } else {
                            "reference"
                        }
                    );
                    h.bench(&name, || launch(&mut case, engine));
                }
            }
        }
    }
    rows.extend(h.results().iter().cloned());

    // Flagship: 1024³ f32 BA functional launch, one run per engine
    // (the acceptance case for the fast engine's ≥5× target). Gated
    // behind an env var — the reference run interprets ~10¹⁰ bytecode
    // steps.
    if std::env::var_os("CLGEMM_INTERP_FLAGSHIP").is_some_and(|v| v == "1") {
        let p = params_for(Algorithm::Ba, Precision::F32);
        let (m, n, k) = (1024, 1024, 1024);
        let mut case = build_case(&p, m, n, k);
        let fast = time_once(&mut case, Engine::Fast);
        println!("interp/flagship_ba_f32_1024_fast: {}", fmt_secs(fast));
        let reference = time_once(&mut case, Engine::Reference);
        println!(
            "interp/flagship_ba_f32_1024_reference: {} (fast speedup {:.2}x)",
            fmt_secs(reference),
            reference / fast
        );
        rows.push(("interp/flagship_ba_f32_1024_fast".into(), fast));
        rows.push(("interp/flagship_ba_f32_1024_reference".into(), reference));
    }

    // Record results (and pairwise speedups) at the repo root.
    let mut entries: Vec<Json> = Vec::new();
    for (name, secs) in &rows {
        entries.push(Json::obj(vec![
            ("name", Json::Str(name.clone())),
            ("seconds", Json::Num(*secs)),
        ]));
    }
    let mut speedups: Vec<Json> = Vec::new();
    for (name, secs) in &rows {
        if let Some(base) = name.strip_suffix("_fast") {
            let ref_name = format!("{base}_reference");
            if let Some((_, ref_secs)) = rows.iter().find(|(n, _)| *n == ref_name) {
                if *secs > 0.0 {
                    speedups.push(Json::obj(vec![
                        ("case", Json::Str(base.to_string())),
                        ("speedup", Json::Num(ref_secs / secs)),
                    ]));
                }
            }
        }
    }
    let doc = Json::obj(vec![
        ("bench", Json::Str("interp".into())),
        ("results", Json::Arr(entries)),
        ("fast_vs_reference", Json::Arr(speedups)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_interp.json");
    std::fs::write(path, doc.to_string_compact()).expect("write BENCH_interp.json");
    println!("wrote {path}");
}
