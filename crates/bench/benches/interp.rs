//! Interpreter wall-clock bench: the reference engine vs the fast
//! engine (typed register banks + fused superinstructions + parallel
//! work-groups) vs the compiled engine (SSA pipeline → pre-scheduled
//! trace code) on functional GEMM launches.
//!
//! Grid: 3 algorithms × 2 precisions × {small, large} NDRange, all
//! three engines per cell, plus a flagship 1024³ f32 BA case. Full runs
//! write `BENCH_interp.json` at the repo root with per-case seconds,
//! fast-vs-reference and compiled-vs-fast speedups.
//!
//! Smoke mode (`CLGEMM_BENCH_SMOKE=1`, used by CI) times the large BA
//! f32 case once per engine and **exits non-zero** if the fast engine
//! is slower than the reference interpreter or the compiled engine
//! falls below a conservative speedup floor over the fast engine — the
//! regression gates for both accelerated paths. The flagship case only
//! runs when `CLGEMM_INTERP_FLAGSHIP=1` (it interprets a full 1024³
//! GEMM on the reference engine).

use clgemm::codegen::{generate, KERNEL_NAME};
use clgemm::params::{small_test_params, Algorithm, KernelParams};
use clgemm_blas::layout::PackedDims;
use clgemm_blas::scalar::Precision;
use clgemm_clc::{Arg, BufData, Engine, ExecOptions, NdRange, Program};
use clgemm_shim::bench::{fmt_secs, Harness};
use clgemm_shim::json::Json;
use std::time::Instant;

/// Smoke-gate floor for compiled over fast on the large BA f32 case.
/// Measured ≥8× on the development machine; 2× absorbs CI noise while
/// still catching a compiled path that has degraded to interpretation
/// speed.
const COMPILED_VS_FAST_FLOOR: f64 = 2.0;

struct Case {
    prog: Program,
    nd: NdRange,
    args: Vec<Arg>,
    bufs: Vec<BufData>,
}

fn fill(len: usize, prec: Precision, salt: usize) -> BufData {
    match prec {
        Precision::F32 => BufData::F32(
            (0..len)
                .map(|i| ((i * 37 + salt) % 23) as f32 / 23.0 - 0.5)
                .collect(),
        ),
        Precision::F64 => BufData::F64(
            (0..len)
                .map(|i| ((i * 53 + salt) % 29) as f64 / 29.0 - 0.5)
                .collect(),
        ),
    }
}

fn build_case(p: &KernelParams, m: usize, n: usize, k: usize) -> Case {
    let gen = generate(p).expect("generate");
    let prog = Program::compile(&gen.source).expect("compile");
    let a_dims = PackedDims::new(k, m, p.mwg, p.kwg).expect("a dims");
    let b_dims = PackedDims::new(k, n, p.nwg, p.kwg).expect("b dims");
    let bufs = vec![
        fill(a_dims.len(), p.precision, 11),
        fill(b_dims.len(), p.precision, 7),
        fill(m * n, p.precision, 5),
    ];
    let mut args = vec![
        Arg::Buf(0),
        Arg::Buf(1),
        Arg::Buf(2),
        Arg::I32(m as i32),
        Arg::I32(n as i32),
        Arg::I32(k as i32),
    ];
    match p.precision {
        Precision::F32 => {
            args.push(Arg::F32(0.75));
            args.push(Arg::F32(-0.5));
        }
        Precision::F64 => {
            args.push(Arg::F64(0.75));
            args.push(Arg::F64(-0.5));
        }
    }
    Case {
        prog,
        nd: gen.ndrange(m, n),
        args,
        bufs,
    }
}

fn launch(case: &mut Case, engine: Engine) -> u64 {
    let opts = ExecOptions {
        engine,
        // Race detection is a validation tool (on by default in tests,
        // where the engines suite compares all three engines under it);
        // this bench times the engines themselves, so it is off — for
        // every engine alike.
        detect_races: false,
        ..Default::default()
    };
    let kernel = case.prog.kernel(KERNEL_NAME).expect("kernel");
    let stats = kernel
        .launch(case.nd, &case.args, &mut case.bufs, &opts)
        .expect("launch");
    stats.instrs
}

/// One timed run (not harness-batched) — for the flagship case and the
/// smoke-mode regression gate, where a single launch is representative.
fn time_once(case: &mut Case, engine: Engine) -> f64 {
    let t = Instant::now();
    std::hint::black_box(launch(case, engine));
    t.elapsed().as_secs_f64()
}

fn params_for(algorithm: Algorithm, precision: Precision) -> KernelParams {
    let mut p = small_test_params(precision);
    p.algorithm = algorithm;
    // DB/PL need the operands staged through local memory.
    if algorithm != Algorithm::Ba {
        p.local_a = true;
        p.local_b = true;
    }
    p
}

fn algo_tag(a: Algorithm) -> &'static str {
    match a {
        Algorithm::Ba => "ba",
        Algorithm::Pl => "pl",
        Algorithm::Db => "db",
    }
}

fn prec_tag(p: Precision) -> &'static str {
    match p {
        Precision::F32 => "f32",
        Precision::F64 => "f64",
    }
}

fn engine_tag(e: Engine) -> &'static str {
    match e {
        Engine::Reference => "reference",
        Engine::Fast => "fast",
        Engine::Compiled => "compiled",
    }
}

const ENGINES: [Engine; 3] = [Engine::Reference, Engine::Fast, Engine::Compiled];

fn main() {
    let mut h = Harness::from_env();
    let smoke = h.smoke;

    // Smoke mode: the CI regression gates. One launch per engine on the
    // large BA f32 case; the fast path must not be slower than the
    // reference, and the compiled path must clear its floor over fast.
    if smoke {
        let p = params_for(Algorithm::Ba, Precision::F32);
        let (m, n, k) = (128, 128, 128);
        let mut case = build_case(&p, m, n, k);
        let compiled = time_once(&mut case, Engine::Compiled);
        let fast = time_once(&mut case, Engine::Fast);
        let reference = time_once(&mut case, Engine::Reference);
        println!(
            "interp smoke gate (ba_f32 {m}x{n}x{k}): compiled {} / fast {} / reference {} \
             (fast {:.2}x over reference, compiled {:.2}x over fast)",
            fmt_secs(compiled),
            fmt_secs(fast),
            fmt_secs(reference),
            reference / fast,
            fast / compiled
        );
        assert!(
            fast <= reference,
            "fast engine ({}) slower than reference ({}) on the large-GEMM case",
            fmt_secs(fast),
            fmt_secs(reference)
        );
        assert!(
            fast / compiled >= COMPILED_VS_FAST_FLOOR,
            "compiled engine ({}) below the {COMPILED_VS_FAST_FLOOR}x floor over fast ({})",
            fmt_secs(compiled),
            fmt_secs(fast)
        );
        return;
    }

    // Full grid: 3 algorithms × 2 precisions × {small, large}, all
    // three engines per cell.
    let mut rows: Vec<(String, f64)> = Vec::new();
    for algorithm in Algorithm::ALL {
        for precision in [Precision::F32, Precision::F64] {
            let p = params_for(algorithm, precision);
            for (size_tag, m, n, k) in [("small", 32, 32, 16), ("large", 128, 128, 128)] {
                let mut case = build_case(&p, m, n, k);
                for engine in ENGINES {
                    let name = format!(
                        "interp/{}_{}_{}_{}",
                        algo_tag(algorithm),
                        prec_tag(precision),
                        size_tag,
                        engine_tag(engine)
                    );
                    h.bench(&name, || launch(&mut case, engine));
                }
            }
        }
    }
    rows.extend(h.results().iter().cloned());

    // Flagship: 1024³ f32 BA functional launch, one run per engine (the
    // acceptance case for the compiled engine's ≥10× target over the
    // fast engine). Gated behind an env var — the reference run
    // interprets ~10¹⁰ bytecode steps.
    if std::env::var_os("CLGEMM_INTERP_FLAGSHIP").is_some_and(|v| v == "1") {
        let p = params_for(Algorithm::Ba, Precision::F32);
        let (m, n, k) = (1024, 1024, 1024);
        let mut case = build_case(&p, m, n, k);
        let compiled = time_once(&mut case, Engine::Compiled);
        println!(
            "interp/flagship_ba_f32_1024_compiled: {}",
            fmt_secs(compiled)
        );
        let fast = time_once(&mut case, Engine::Fast);
        println!(
            "interp/flagship_ba_f32_1024_fast: {} (compiled speedup {:.2}x)",
            fmt_secs(fast),
            fast / compiled
        );
        let reference = time_once(&mut case, Engine::Reference);
        println!(
            "interp/flagship_ba_f32_1024_reference: {} (fast speedup {:.2}x)",
            fmt_secs(reference),
            reference / fast
        );
        rows.push(("interp/flagship_ba_f32_1024_compiled".into(), compiled));
        rows.push(("interp/flagship_ba_f32_1024_fast".into(), fast));
        rows.push(("interp/flagship_ba_f32_1024_reference".into(), reference));
    }

    // Record results (and pairwise speedups) at the repo root.
    let mut entries: Vec<Json> = Vec::new();
    for (name, secs) in &rows {
        entries.push(Json::obj(vec![
            ("name", Json::Str(name.clone())),
            ("seconds", Json::Num(*secs)),
        ]));
    }
    let secs_of = |name: &str| rows.iter().find(|(n, _)| n == name).map(|(_, s)| *s);
    let ratio_rows = |num_suffix: &str, den_suffix: &str| -> Vec<Json> {
        let mut out = Vec::new();
        for (name, secs) in &rows {
            if let Some(base) = name.strip_suffix(num_suffix) {
                if let Some(den) = secs_of(&format!("{base}{den_suffix}")) {
                    if *secs > 0.0 {
                        out.push(Json::obj(vec![
                            ("case", Json::Str(base.trim_end_matches('_').to_string())),
                            ("speedup", Json::Num(den / secs)),
                        ]));
                    }
                }
            }
        }
        out
    };
    let doc = Json::obj(vec![
        ("bench", Json::Str("interp".into())),
        ("results", Json::Arr(entries)),
        (
            "fast_vs_reference",
            Json::Arr(ratio_rows("_fast", "_reference")),
        ),
        (
            "compiled_vs_fast",
            Json::Arr(ratio_rows("_compiled", "_fast")),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_interp.json");
    std::fs::write(path, doc.to_string_compact()).expect("write BENCH_interp.json");
    println!("wrote {path}");
}
