//! Benches for Table I, Fig. 7, Table II, Fig. 8 and Table III.
//!
//! Each group measures the machinery that regenerates the corresponding
//! paper artefact (the artefacts themselves come from
//! `cargo run -p clgemm-report --bin repro`).

use clgemm::params::Algorithm;
use clgemm::profile::launch_profile;
use clgemm::routine::TunedGemm;
use clgemm::tuner::search::measure_gflops;
use clgemm::tuner::{tune, SearchOpts, SearchSpace};
use clgemm_bench::{bench_device, bench_paper_params, bench_small_params};
use clgemm_blas::scalar::Precision;
use clgemm_blas::GemmType;
use clgemm_device::{estimate, occupancy, DeviceId};
use clgemm_shim::bench::Harness;
use std::hint::black_box;

/// Table I: device model construction and occupancy calculation — the
/// primitive every measurement rests on.
fn table1_profiles(h: &mut Harness) {
    h.bench("table1_profiles/build_all_specs", || {
        for id in DeviceId::ALL {
            black_box(id.spec());
        }
    });
    let dev = bench_device();
    h.bench("table1_profiles/occupancy", || {
        occupancy(&dev, black_box(256), black_box(80), black_box(12288))
    });
}

/// Fig. 7: a single kernel "measurement" (profile + timing model), the
/// unit of work stage 1 of the search performs hundreds of thousands of
/// times.
fn fig7_kernel_perf(h: &mut Harness) {
    let p = bench_paper_params();
    for id in [DeviceId::Tahiti, DeviceId::Fermi, DeviceId::SandyBridge] {
        let dev = id.spec();
        h.bench(&format!("fig7_kernel_perf/measure_{}", id.name()), || {
            measure_gflops(&p, &dev, black_box(4608))
        });
    }
    let dev = bench_device();
    let prof = launch_profile(&p, &dev, 4608, 4608, 4608);
    h.bench("fig7_kernel_perf/timing_model_only", || {
        estimate(&dev, &prof)
    });
}

/// Table II: the search stages on a thinned space (enumeration + stage-1
/// measurement + stage-2 sweep).
fn table2_best_kernels(h: &mut Harness) {
    let dev = bench_device();
    let space = SearchSpace::smoke(&dev);
    h.bench("table2_best_kernels/enumerate_smoke", || {
        space.enumerate(&dev, Precision::F64).len()
    });
    let opts = SearchOpts {
        top_k: 8,
        max_sweep_points: 6,
        verify_winner: false,
        ..Default::default()
    };
    h.bench("table2_best_kernels/smoke_search_dgemm", || {
        tune(&dev, Precision::F64, &space, &opts).best.gflops
    });
}

/// Fig. 8: algorithm-restricted searches.
fn fig8_algorithms(h: &mut Harness) {
    let dev = bench_device();
    let opts = SearchOpts {
        top_k: 5,
        max_sweep_points: 4,
        verify_winner: false,
        ..Default::default()
    };
    for alg in Algorithm::ALL {
        let space = SearchSpace::smoke(&dev).with_algorithm(alg);
        h.bench(
            &format!("fig8_algorithms/restricted_search_{}", alg.tag()),
            || tune(&dev, Precision::F32, &space, &opts).best.gflops,
        );
    }
}

/// Table III: full-routine prediction for every GEMM type.
fn table3_routines(h: &mut Harness) {
    let tg = TunedGemm::new(bench_device(), bench_paper_params(), bench_small_params());
    h.bench("table3_routines/predict_all_types_4096", || {
        let mut acc = 0.0;
        for ty in GemmType::ALL {
            acc += tg.predict(true, ty, 4096, 4096, 4096).gflops;
        }
        acc
    });
}

fn main() {
    let mut h = Harness::from_env();
    table1_profiles(&mut h);
    fig7_kernel_perf(&mut h);
    table2_best_kernels(&mut h);
    fig8_algorithms(&mut h);
    table3_routines(&mut h);
}
