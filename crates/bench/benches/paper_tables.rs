//! Benches for Table I, Fig. 7, Table II, Fig. 8 and Table III.
//!
//! Each group measures the machinery that regenerates the corresponding
//! paper artefact (the artefacts themselves come from
//! `cargo run -p clgemm-report --bin repro`).

use clgemm::params::Algorithm;
use clgemm::profile::launch_profile;
use clgemm::routine::TunedGemm;
use clgemm::tuner::search::measure_gflops;
use clgemm::tuner::{tune, SearchOpts, SearchSpace};
use clgemm_bench::{bench_device, bench_paper_params, bench_small_params};
use clgemm_blas::scalar::Precision;
use clgemm_blas::GemmType;
use clgemm_device::{estimate, occupancy, DeviceId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Table I: device model construction and occupancy calculation — the
/// primitive every measurement rests on.
fn table1_profiles(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_profiles");
    g.bench_function("build_all_specs", |b| {
        b.iter(|| {
            for id in DeviceId::ALL {
                black_box(id.spec());
            }
        })
    });
    let dev = bench_device();
    g.bench_function("occupancy", |b| {
        b.iter(|| black_box(occupancy(&dev, black_box(256), black_box(80), black_box(12288))))
    });
    g.finish();
}

/// Fig. 7: a single kernel "measurement" (profile + timing model), the
/// unit of work stage 1 of the search performs hundreds of thousands of
/// times.
fn fig7_kernel_perf(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_kernel_perf");
    let p = bench_paper_params();
    for id in [DeviceId::Tahiti, DeviceId::Fermi, DeviceId::SandyBridge] {
        let dev = id.spec();
        g.bench_with_input(BenchmarkId::new("measure", id.name()), &dev, |b, dev| {
            b.iter(|| black_box(measure_gflops(&p, dev, black_box(4608))))
        });
    }
    let dev = bench_device();
    let prof = launch_profile(&p, &dev, 4608, 4608, 4608);
    g.bench_function("timing_model_only", |b| b.iter(|| black_box(estimate(&dev, &prof))));
    g.finish();
}

/// Table II: the search stages on a thinned space (enumeration + stage-1
/// measurement + stage-2 sweep).
fn table2_best_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_best_kernels");
    g.sample_size(10);
    let dev = bench_device();
    let space = SearchSpace::smoke(&dev);
    g.bench_function("enumerate_smoke", |b| {
        b.iter(|| black_box(space.enumerate(&dev, Precision::F64)).len())
    });
    let opts = SearchOpts { top_k: 8, max_sweep_points: 6, verify_winner: false, ..Default::default() };
    g.bench_function("smoke_search_dgemm", |b| {
        b.iter(|| black_box(tune(&dev, Precision::F64, &space, &opts)).best.gflops)
    });
    g.finish();
}

/// Fig. 8: algorithm-restricted searches.
fn fig8_algorithms(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_algorithms");
    g.sample_size(10);
    let dev = bench_device();
    let opts = SearchOpts { top_k: 5, max_sweep_points: 4, verify_winner: false, ..Default::default() };
    for alg in Algorithm::ALL {
        g.bench_with_input(BenchmarkId::new("restricted_search", alg.tag()), &alg, |b, alg| {
            let space = SearchSpace::smoke(&dev).with_algorithm(*alg);
            b.iter(|| black_box(tune(&dev, Precision::F32, &space, &opts)).best.gflops)
        });
    }
    g.finish();
}

/// Table III: full-routine prediction for every GEMM type.
fn table3_routines(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_routines");
    let tg = TunedGemm::new(bench_device(), bench_paper_params(), bench_small_params());
    g.bench_function("predict_all_types_4096", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for ty in GemmType::ALL {
                acc += tg.predict(true, ty, 4096, 4096, 4096).gflops;
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    table1_profiles,
    fig7_kernel_perf,
    table2_best_kernels,
    fig8_algorithms,
    table3_routines
);
criterion_main!(benches);
