//! Analytical-predictor bench: stage-1 pruning power and serve
//! cold-start latency.
//!
//! Full runs produce `BENCH_predict.json` at the repo root: per
//! `(device, precision)` the full stage-1 candidate count, the count
//! surviving the analytical feasible set, the prune ratio, the best
//! model GFlop/s on each side, and the serve cold-start latency with
//! the predictor against the legacy synchronous tuning path. Smoke
//! mode (`CLGEMM_BENCH_SMOKE=1`, used by CI) is the regression gate:
//! the feasible set must shrink stage 1 by ≥ 10× on EVERY built-in
//! profile while keeping the searched winner within 2%, and a
//! predictor cold start must beat a synchronous tune-on-miss cold
//! start outright.

use clgemm::params::KernelParams;
use clgemm::predict::FeasibleSet;
use clgemm::tuner::search::measure_gflops;
use clgemm::tuner::SearchSpace;
use clgemm_blas::matrix::{Matrix, StorageOrder};
use clgemm_blas::scalar::Precision;
use clgemm_blas::GemmType;
use clgemm_device::{DeviceId, DeviceKind, DeviceSpec};
use clgemm_serve::{GemmPayload, GemmRequest, GemmServer, ServeConfig};
use clgemm_shim::bench::fmt_secs;
use clgemm_shim::json::Json;
use clgemm_trace::Registry;
use std::time::Instant;

/// Smallest stage-1 size ≥ `base` that `p`'s blocking divides.
fn padded(p: &KernelParams, base: usize) -> usize {
    fn gcd(a: usize, b: usize) -> usize {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let lcm = |a: usize, b: usize| a / gcd(a, b) * b;
    let step = lcm(lcm(p.mwg, p.nwg), p.k_multiple());
    base.div_ceil(step) * step
}

struct PruneRow {
    device: DeviceId,
    precision: Precision,
    full: usize,
    kept: usize,
    ratio: f64,
    full_best: f64,
    kept_best: f64,
}

/// Stage-1 pruning on one `(device, precision)`: full space vs the
/// analytical feasible subset, both scored by the tuner's own stage-1
/// model at the stage-1 base size.
fn prune_row(device: DeviceId, precision: Precision) -> PruneRow {
    let dev: DeviceSpec = device.spec();
    let base = match dev.kind {
        DeviceKind::Gpu => 4096,
        DeviceKind::Cpu => 1536,
    };
    let space = SearchSpace::for_device(&dev);
    let candidates = space.enumerate(&dev, precision);
    let feasible = FeasibleSet::derive(&dev, precision);
    let kept: Vec<&KernelParams> = candidates.iter().filter(|p| feasible.admits(p)).collect();
    let score = |p: &KernelParams| measure_gflops(p, &dev, padded(p, base)).unwrap_or(0.0);
    let full_best = candidates.iter().map(score).fold(0.0f64, f64::max);
    let kept_best = kept.iter().map(|p| score(p)).fold(0.0f64, f64::max);
    PruneRow {
        device,
        precision,
        full: candidates.len(),
        kept: kept.len(),
        ratio: candidates.len() as f64 / kept.len().max(1) as f64,
        full_best,
        kept_best,
    }
}

fn dgemm_request(s: usize) -> GemmRequest {
    let order = StorageOrder::ColMajor;
    GemmRequest::new(
        GemmType::NN,
        GemmPayload::F64 {
            alpha: 1.0,
            a: Matrix::test_pattern(s, s, order, 1),
            b: Matrix::test_pattern(s, s, order, 2),
            beta: 0.0,
            c: Matrix::zeros(s, s, order),
        },
    )
}

/// Time a fresh server's first drain — the cold-start path — under the
/// given miss-resolution policy. Isolated registry: the bench must not
/// pollute (or race on) the process-global one.
fn cold_start_once(predict: bool, tune_misses: bool) -> f64 {
    let mut server = GemmServer::new(
        vec![DeviceId::Tahiti.spec()],
        ServeConfig {
            predict,
            tune_misses,
            background_refine: false,
            tuning_db: None,
            registry: Some(Registry::new()),
            ..Default::default()
        },
    );
    server.submit(dgemm_request(100)).expect("queue has room");
    let t = Instant::now();
    server.drain();
    t.elapsed().as_secs_f64()
}

/// Best of five fresh servers (each rep is a genuine cold start; the
/// minimum strips scheduler noise from the ~ms-scale measurement).
fn cold_start_secs(predict: bool, tune_misses: bool) -> f64 {
    cold_start_once(predict, tune_misses); // warm allocators & thread pool
    (0..5)
        .map(|_| cold_start_once(predict, tune_misses))
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let smoke = std::env::var_os("CLGEMM_BENCH_SMOKE").is_some_and(|v| v == "1");

    let mut rows: Vec<PruneRow> = Vec::new();
    for device in DeviceId::ALL {
        for precision in [Precision::F32, Precision::F64] {
            rows.push(prune_row(device, precision));
        }
    }
    for r in &rows {
        println!(
            "predict/prune {:?} {:?}: {} -> {} candidates ({:.1}x), best {:.1} -> {:.1} GFlop/s",
            r.device, r.precision, r.full, r.kept, r.ratio, r.full_best, r.kept_best
        );
    }

    // Cold-start latency: predictor vs the legacy synchronous search.
    let predicted = cold_start_secs(true, false);
    let synced = cold_start_secs(false, true);
    println!(
        "predict/cold-start: predicted {} vs synchronous tune {} ({:.1}x)",
        fmt_secs(predicted),
        fmt_secs(synced),
        synced / predicted
    );

    if smoke {
        // CI gate 1: ≥ 10x stage-1 shrink on every profile, winner
        // preserved within 2% — the whole point of the feasible set.
        for r in &rows {
            assert!(
                r.ratio >= 10.0,
                "{:?} {:?}: prune ratio {:.1}x below the 10x gate",
                r.device,
                r.precision,
                r.ratio
            );
            assert!(
                r.kept_best >= 0.98 * r.full_best,
                "{:?} {:?}: pruned winner {:.1} lost >2% vs {:.1}",
                r.device,
                r.precision,
                r.kept_best,
                r.full_best
            );
        }
        println!(
            "predict smoke gate: all {} profiles prune >= 10x",
            rows.len()
        );

        // CI gate 2: a predicted cold start runs no synchronous search,
        // so it must beat the tune-on-miss cold start outright.
        assert!(
            predicted < synced,
            "predicted cold start ({}) must beat the synchronous tuner ({})",
            fmt_secs(predicted),
            fmt_secs(synced)
        );
        println!("predict smoke gate: cold start beats synchronous tuning");
        return;
    }

    let doc = Json::obj(vec![
        ("bench", Json::Str("predict".into())),
        (
            "prune",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("device", Json::Str(format!("{:?}", r.device))),
                            ("precision", Json::Str(format!("{:?}", r.precision))),
                            ("stage1_full", Json::Num(r.full as f64)),
                            ("stage1_pruned", Json::Num(r.kept as f64)),
                            ("ratio", Json::Num(r.ratio)),
                            ("full_best_gflops", Json::Num(r.full_best)),
                            ("pruned_best_gflops", Json::Num(r.kept_best)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "cold_start",
            Json::obj(vec![
                ("predicted_seconds", Json::Num(predicted)),
                ("synchronous_tune_seconds", Json::Num(synced)),
                ("speedup", Json::Num(synced / predicted)),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_predict.json");
    std::fs::write(path, doc.to_string_compact()).expect("write BENCH_predict.json");
    println!("wrote {path}");
}
