//! Shared fixtures for the Criterion benchmark harness.
//!
//! The benches are organised one-per-paper-artefact:
//!
//! * `paper_tables` — Table I (occupancy/profile construction), Table II
//!   (the search stages), Table III (routine prediction across types),
//!   Fig. 7 (kernel measurement) and Fig. 8 (algorithm-restricted
//!   search);
//! * `paper_figures` — the Figs. 9–11 sweep generators including vendor
//!   curves;
//! * `pipeline` — ablation benches for the machinery itself: code
//!   generation, OpenCL C compilation, VM execution, operand packing and
//!   the native executor.
//!
//! Each paper table/figure can be regenerated with
//! `cargo run -p clgemm-report --bin repro`; here we measure the *cost*
//! of regenerating them, so performance regressions in the tuner or
//! simulator show up in CI.

use clgemm::params::{small_test_params, tahiti_dgemm_best, KernelParams};
use clgemm_blas::scalar::Precision;
use clgemm_device::{DeviceId, DeviceSpec};

/// The standard benchmark device.
#[must_use]
pub fn bench_device() -> DeviceSpec {
    DeviceId::Tahiti.spec()
}

/// A small kernel parameter set that runs quickly in the VM.
#[must_use]
pub fn bench_small_params() -> KernelParams {
    small_test_params(Precision::F32)
}

/// The paper's Tahiti DGEMM winner (Table II), used as a representative
/// "big" kernel for profile/codegen benches.
#[must_use]
pub fn bench_paper_params() -> KernelParams {
    tahiti_dgemm_best()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_valid() {
        bench_small_params().validate().unwrap();
        bench_paper_params().validate().unwrap();
        assert_eq!(bench_device().code_name, "Tahiti");
    }
}
