//! An OpenCL-like runtime over the simulated devices.
//!
//! Mirrors the host-side object model the paper describes in §II —
//! platform → devices → context → command queue → buffers → programs →
//! kernels → NDRange launches — backed by:
//!
//! * the [`clgemm_clc`] compiler/VM for *functional* execution (true
//!   work-group semantics, race detection, bounds checks), and
//! * the [`clgemm_device`] analytic timing model for *performance*
//!   "measurement" (a deterministic stand-in for wall-clock timing on the
//!   paper's hardware).
//!
//! A [`CommandQueue`] keeps a virtual clock: every enqueued operation
//! advances it by the model's estimate, and [`Event`]s expose
//! start/end times the way OpenCL profiling events do. The tuner
//! "measures" kernels by reading those events.

pub mod copy;
pub mod error;
pub mod runtime;
pub mod transfer;
pub mod worker;

pub use copy::{copy_time, pack_time, CopyCost};
pub use error::ClError;
pub use runtime::{
    BufferId, CommandQueue, Context, Event, ExecMode, KernelArg, Platform, SimDevice, SimProgram,
};
pub use transfer::{gflops_with_transfers, transfer_time, Direction};
pub use worker::DeviceWorker;
