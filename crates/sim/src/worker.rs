//! Per-device workers for schedulers layered above the runtime.
//!
//! A [`DeviceWorker`] pairs a [`SimDevice`] with its own
//! [`CommandQueue`], so a multi-device scheduler (the serving layer)
//! can track each device's virtual-clock load independently and place
//! work on the least-loaded one.

use crate::runtime::{CommandQueue, Event, SimDevice};
use clgemm_device::DeviceSpec;

/// A simulated device plus the command queue all its work goes through.
#[derive(Debug)]
pub struct DeviceWorker {
    device: SimDevice,
    queue: CommandQueue,
}

impl DeviceWorker {
    /// A fresh worker with an idle queue.
    #[must_use]
    pub fn new(spec: DeviceSpec) -> DeviceWorker {
        DeviceWorker {
            device: SimDevice::new(spec),
            queue: CommandQueue::new(),
        }
    }

    /// The underlying device specification.
    #[must_use]
    pub fn spec(&self) -> &DeviceSpec {
        self.device.spec()
    }

    /// The simulated device itself (for contexts/programs).
    #[must_use]
    pub fn device(&self) -> &SimDevice {
        &self.device
    }

    /// Virtual time at which this worker's queue drains — its load.
    #[must_use]
    pub fn busy_until(&self) -> f64 {
        self.queue.finish()
    }

    /// Charge `seconds` of modelled work to this worker's queue.
    pub fn submit(&mut self, name: &str, seconds: f64) -> &Event {
        self.queue.enqueue_modelled(name, seconds)
    }

    /// All operations this worker has executed, in order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        self.queue.events()
    }

    /// The worker's command queue.
    #[must_use]
    pub fn queue(&self) -> &CommandQueue {
        &self.queue
    }

    /// Mutable access to the queue for callers that drive launches
    /// directly (contexts, programs).
    pub fn queue_mut(&mut self) -> &mut CommandQueue {
        &mut self.queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clgemm_device::DeviceId;

    #[test]
    fn worker_tracks_virtual_load() {
        let mut w = DeviceWorker::new(DeviceId::Tahiti.spec());
        assert_eq!(w.busy_until(), 0.0);
        w.submit("gemm-batch-0", 0.25);
        w.submit("gemm-batch-1", 0.5);
        assert!((w.busy_until() - 0.75).abs() < 1e-12);
        assert_eq!(w.events().len(), 2);
        assert_eq!(w.events()[1].start, 0.25);
        assert_eq!(w.spec().code_name, "Tahiti");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_cost_is_rejected() {
        let mut w = DeviceWorker::new(DeviceId::Fermi.spec());
        w.submit("bad", -1.0);
    }
}
