//! Platform / context / queue / buffer / program objects.

use crate::error::ClError;
use clgemm_clc::vm::DynStats;
use clgemm_clc::{Arg, BufData, ExecOptions, NdRange, Program};
use clgemm_device::{estimate, DeviceId, DeviceSpec, KernelLaunchProfile, TimingEstimate};

/// The simulated OpenCL platform: all built-in devices.
#[derive(Debug, Clone)]
pub struct Platform {
    devices: Vec<SimDevice>,
}

impl Platform {
    /// Platform exposing the six Table I processors.
    #[must_use]
    pub fn table1() -> Platform {
        Platform {
            devices: DeviceId::TABLE1
                .iter()
                .map(|id| SimDevice::new(id.spec()))
                .collect(),
        }
    }

    /// Platform exposing every built-in profile (incl. Cypress).
    #[must_use]
    pub fn all() -> Platform {
        Platform {
            devices: DeviceId::ALL
                .iter()
                .map(|id| SimDevice::new(id.spec()))
                .collect(),
        }
    }

    /// Devices on the platform.
    #[must_use]
    pub fn devices(&self) -> &[SimDevice] {
        &self.devices
    }

    /// Find a device by code name.
    #[must_use]
    pub fn device(&self, name: &str) -> Option<&SimDevice> {
        self.devices
            .iter()
            .find(|d| d.spec().code_name.eq_ignore_ascii_case(name))
    }
}

/// A device handle.
#[derive(Debug, Clone)]
pub struct SimDevice {
    spec: DeviceSpec,
}

impl SimDevice {
    /// Wrap a specification (built-in or custom) as a device.
    #[must_use]
    pub fn new(spec: DeviceSpec) -> SimDevice {
        SimDevice { spec }
    }

    /// The device specification.
    #[must_use]
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Create a context on this device.
    #[must_use]
    pub fn create_context(&self) -> Context {
        Context {
            device: self.spec.clone(),
            bufs: Vec::new(),
            mem_used: 0,
        }
    }
}

/// Handle to a device buffer, typed by element precision at creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(usize);

/// A context: owns device buffers and tracks memory usage against the
/// device's global memory capacity.
#[derive(Debug)]
pub struct Context {
    device: DeviceSpec,
    bufs: Vec<BufData>,
    mem_used: usize,
}

impl Context {
    /// The device this context belongs to.
    #[must_use]
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Bytes currently allocated.
    #[must_use]
    pub fn mem_used(&self) -> usize {
        self.mem_used
    }

    fn alloc(&mut self, data: BufData, bytes: usize) -> Result<BufferId, ClError> {
        let cap = self.device.global_mem_bytes();
        if self.mem_used + bytes > cap {
            return Err(ClError::OutOfMemory {
                requested: bytes,
                available: cap - self.mem_used,
            });
        }
        self.mem_used += bytes;
        self.bufs.push(data);
        Ok(BufferId(self.bufs.len() - 1))
    }

    /// Allocate an `f64` buffer of `len` elements, zero-filled.
    pub fn create_buffer_f64(&mut self, len: usize) -> Result<BufferId, ClError> {
        self.alloc(BufData::F64(vec![0.0; len]), len * 8)
    }

    /// Allocate an `f32` buffer of `len` elements, zero-filled.
    pub fn create_buffer_f32(&mut self, len: usize) -> Result<BufferId, ClError> {
        self.alloc(BufData::F32(vec![0.0; len]), len * 4)
    }

    /// Write host data into a buffer (`clEnqueueWriteBuffer`, blocking).
    pub fn write_f64(&mut self, id: BufferId, data: &[f64]) -> Result<(), ClError> {
        match self.bufs.get_mut(id.0) {
            Some(BufData::F64(v)) if v.len() == data.len() => {
                v.copy_from_slice(data);
                Ok(())
            }
            Some(BufData::F64(v)) => Err(ClError::InvalidBuffer(format!(
                "length mismatch: buffer {} vs host {}",
                v.len(),
                data.len()
            ))),
            _ => Err(ClError::InvalidBuffer("not an f64 buffer".into())),
        }
    }

    /// Write host data into an `f32` buffer.
    pub fn write_f32(&mut self, id: BufferId, data: &[f32]) -> Result<(), ClError> {
        match self.bufs.get_mut(id.0) {
            Some(BufData::F32(v)) if v.len() == data.len() => {
                v.copy_from_slice(data);
                Ok(())
            }
            Some(BufData::F32(v)) => Err(ClError::InvalidBuffer(format!(
                "length mismatch: buffer {} vs host {}",
                v.len(),
                data.len()
            ))),
            _ => Err(ClError::InvalidBuffer("not an f32 buffer".into())),
        }
    }

    /// Read a buffer back (`clEnqueueReadBuffer`, blocking).
    pub fn read_f64(&self, id: BufferId) -> Result<&[f64], ClError> {
        match self.bufs.get(id.0) {
            Some(BufData::F64(v)) => Ok(v),
            _ => Err(ClError::InvalidBuffer("not an f64 buffer".into())),
        }
    }

    /// Read an `f32` buffer back.
    pub fn read_f32(&self, id: BufferId) -> Result<&[f32], ClError> {
        match self.bufs.get(id.0) {
            Some(BufData::F32(v)) => Ok(v),
            _ => Err(ClError::InvalidBuffer("not an f32 buffer".into())),
        }
    }

    /// Free a buffer (handles stay valid indices; freed slots become
    /// zero-length).
    pub fn release(&mut self, id: BufferId) -> Result<(), ClError> {
        match self.bufs.get_mut(id.0) {
            Some(b) => {
                let bytes = match b {
                    BufData::F32(v) => v.len() * 4,
                    BufData::F64(v) => v.len() * 8,
                    BufData::I32(v) => v.len() * 4,
                };
                self.mem_used -= bytes;
                *b = BufData::F32(Vec::new());
                Ok(())
            }
            None => Err(ClError::InvalidBuffer(format!("no buffer {id:?}"))),
        }
    }

    /// Build a program for this context's device (`clBuildProgram`).
    pub fn build_program(&self, source: &str) -> Result<SimProgram, ClError> {
        let program = Program::compile(source)?;
        Ok(SimProgram { program })
    }
}

/// A built program.
#[derive(Debug, Clone)]
pub struct SimProgram {
    program: Program,
}

impl SimProgram {
    /// The underlying compiled program.
    #[must_use]
    pub fn inner(&self) -> &Program {
        &self.program
    }

    /// Kernel names in the program.
    pub fn kernel_names(&self) -> impl Iterator<Item = &str> {
        self.program.kernel_names()
    }
}

/// Kernel launch argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelArg {
    I32(i32),
    F32(f32),
    F64(f64),
    Buf(BufferId),
}

/// How to execute an enqueued kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Run the kernel in the VM (functional result) and, when a profile
    /// is supplied, also produce a timing estimate.
    Functional { detect_races: bool },
    /// Skip execution; only run the timing model (requires a profile).
    /// This is how the tuner "measures" tens of thousands of kernels.
    TimingOnly,
}

/// A completed operation with OpenCL-profiling-style timestamps (virtual
/// seconds since queue creation).
#[derive(Debug, Clone)]
pub struct Event {
    /// Kernel or operation name.
    pub name: String,
    /// Queue-relative start time in seconds.
    pub start: f64,
    /// Queue-relative end time in seconds.
    pub end: f64,
    /// Timing-model detail, when a profile was supplied.
    pub estimate: Option<TimingEstimate>,
    /// Dynamic instruction statistics, when the kernel actually ran.
    pub stats: Option<DynStats>,
}

impl Event {
    /// Duration in seconds.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.end - self.start
    }
}

/// An in-order command queue with a virtual clock.
#[derive(Debug, Default)]
pub struct CommandQueue {
    clock: f64,
    events: Vec<Event>,
}

impl CommandQueue {
    /// A fresh queue with the clock at zero.
    #[must_use]
    pub fn new() -> CommandQueue {
        CommandQueue::default()
    }

    /// All events recorded so far.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Virtual time consumed so far (`clFinish` + profiling).
    #[must_use]
    pub fn finish(&self) -> f64 {
        self.clock
    }

    /// Enqueue an NDRange kernel launch.
    ///
    /// `profile` feeds the timing model; it is required for
    /// [`ExecMode::TimingOnly`] and optional (but recommended) for
    /// functional runs.
    #[allow(clippy::too_many_arguments)]
    pub fn enqueue_kernel(
        &mut self,
        ctx: &mut Context,
        prog: &SimProgram,
        kernel_name: &str,
        nd: NdRange,
        args: &[KernelArg],
        profile: Option<&KernelLaunchProfile>,
        mode: ExecMode,
    ) -> Result<&Event, ClError> {
        let kernel = prog
            .program
            .kernel(kernel_name)
            .ok_or_else(|| ClError::NoSuchKernel(kernel_name.to_string()))?;

        // Device capability checks the real runtime would perform.
        let wg = nd.local[0] * nd.local[1];
        if wg > ctx.device.micro.max_wg_size {
            return Err(ClError::BadLaunch(format!(
                "work-group size {wg} exceeds device maximum {}",
                ctx.device.micro.max_wg_size
            )));
        }
        if kernel.local_mem_bytes() > ctx.device.local_mem_bytes() {
            return Err(ClError::BadLaunch(format!(
                "kernel needs {} B local memory, device has {}",
                kernel.local_mem_bytes(),
                ctx.device.local_mem_bytes()
            )));
        }

        let estimate_result = match profile {
            Some(p) => Some(estimate(&ctx.device, p)?),
            None => None,
        };

        let stats = match mode {
            ExecMode::TimingOnly => {
                if estimate_result.is_none() {
                    return Err(ClError::MissingProfile);
                }
                None
            }
            ExecMode::Functional { detect_races } => {
                let cl_args: Vec<Arg> = args
                    .iter()
                    .map(|a| match a {
                        KernelArg::I32(v) => Arg::I32(*v),
                        KernelArg::F32(v) => Arg::F32(*v),
                        KernelArg::F64(v) => Arg::F64(*v),
                        KernelArg::Buf(id) => Arg::Buf(id.0),
                    })
                    .collect();
                // The VM addresses buffers positionally among the
                // kernel's pointer parameters; remap context buffers into
                // a dense scratch slice in argument order.
                let buf_ids: Vec<usize> = args
                    .iter()
                    .filter_map(|a| match a {
                        KernelArg::Buf(id) => Some(id.0),
                        _ => None,
                    })
                    .collect();
                for id in &buf_ids {
                    if ctx.bufs.get(*id).is_none() {
                        return Err(ClError::InvalidBuffer(format!("no buffer index {id}")));
                    }
                }
                // Move the context buffers into the dense slice instead
                // of cloning them — a large GEMM launch would otherwise
                // copy all three matrices every call. Each buffer is
                // restored after the launch (error paths included).
                // Duplicate buffer arguments would make the second take
                // see an empty placeholder, so that rare case clones.
                let has_dup = buf_ids
                    .iter()
                    .enumerate()
                    .any(|(i, id)| buf_ids[..i].contains(id));
                let mut dense: Vec<BufData> = buf_ids
                    .iter()
                    .map(|id| {
                        if has_dup {
                            ctx.bufs[*id].clone()
                        } else {
                            std::mem::replace(&mut ctx.bufs[*id], BufData::F32(Vec::new()))
                        }
                    })
                    .collect();
                let mut dense_args = Vec::with_capacity(cl_args.len());
                let mut next_buf = 0usize;
                for a in cl_args {
                    dense_args.push(match a {
                        Arg::Buf(_) => {
                            let v = Arg::Buf(next_buf);
                            next_buf += 1;
                            v
                        }
                        other => other,
                    });
                }
                let opts = ExecOptions {
                    detect_races,
                    ..Default::default()
                };
                let result = kernel.launch(nd, &dense_args, &mut dense, &opts);
                // Hand the buffers back before surfacing any launch
                // error: after a failed launch their contents are
                // unspecified (as in a real CL runtime), but they must
                // not vanish from the context.
                for (slot, id) in buf_ids.iter().enumerate() {
                    ctx.bufs[*id] = std::mem::replace(&mut dense[slot], BufData::F32(Vec::new()));
                }
                Some(result?)
            }
        };

        let duration = estimate_result.as_ref().map(|e| e.seconds).unwrap_or(0.0);
        let start = self.clock;
        self.clock += duration;
        self.events.push(Event {
            name: kernel_name.to_string(),
            start,
            end: self.clock,
            estimate: estimate_result,
            stats,
        });
        Ok(self.events.last().expect("just pushed"))
    }

    /// Enqueue an operation whose cost was modelled elsewhere (the
    /// serving layer charges whole routine invocations this way without
    /// re-driving compilation through the queue).
    pub fn enqueue_modelled(&mut self, name: &str, seconds: f64) -> &Event {
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "modelled cost must be finite and >= 0"
        );
        let start = self.clock;
        self.clock += seconds;
        self.events.push(Event {
            name: name.to_string(),
            start,
            end: self.clock,
            estimate: None,
            stats: None,
        });
        self.events.last().expect("just pushed")
    }

    /// Enqueue a device-side copy with the given cost (the GEMM routine
    /// layer uses this to charge packing time).
    pub fn enqueue_copy(&mut self, name: &str, cost: crate::copy::CopyCost) -> &Event {
        let start = self.clock;
        self.clock += cost.seconds;
        self.events.push(Event {
            name: name.to_string(),
            start,
            end: self.clock,
            estimate: None,
            stats: None,
        });
        self.events.last().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAXPY: &str = r#"
        __kernel void saxpy(__global const float* x, __global float* y, float a, int n) {
            int i = get_global_id(0);
            if (i < n) { y[i] = mad(a, x[i], y[i]); }
        }
    "#;

    #[test]
    fn platform_lists_table1_devices() {
        let p = Platform::table1();
        assert_eq!(p.devices().len(), 6);
        assert!(p.device("tahiti").is_some());
        assert!(p.device("cypress").is_none());
        assert!(Platform::all().device("cypress").is_some());
    }

    #[test]
    fn functional_launch_computes_saxpy() {
        let platform = Platform::table1();
        let dev = platform.device("Tahiti").unwrap();
        let mut ctx = dev.create_context();
        let prog = ctx.build_program(SAXPY).unwrap();
        let x = ctx.create_buffer_f32(8).unwrap();
        let y = ctx.create_buffer_f32(8).unwrap();
        ctx.write_f32(x, &[1.0; 8]).unwrap();
        ctx.write_f32(y, &[2.0; 8]).unwrap();
        let mut q = CommandQueue::new();
        let ev = q
            .enqueue_kernel(
                &mut ctx,
                &prog,
                "saxpy",
                NdRange::d1(8, 4),
                &[
                    KernelArg::Buf(x),
                    KernelArg::Buf(y),
                    KernelArg::F32(3.0),
                    KernelArg::I32(8),
                ],
                None,
                ExecMode::Functional { detect_races: true },
            )
            .unwrap();
        assert!(ev.stats.is_some());
        assert_eq!(ctx.read_f32(y).unwrap(), &[5.0; 8]);
    }

    #[test]
    fn build_failure_is_reported() {
        let dev = SimDevice::new(DeviceId::Fermi.spec());
        let ctx = dev.create_context();
        let err = ctx
            .build_program("__kernel void k(__global int* x){ x[0] = }")
            .unwrap_err();
        assert!(matches!(err, ClError::BuildFailed(_)));
    }

    #[test]
    fn allocation_respects_device_memory() {
        let dev = SimDevice::new(DeviceId::Cayman.spec()); // 1 GiB
        let mut ctx = dev.create_context();
        // 2 GiB of doubles must fail.
        let err = ctx.create_buffer_f64(2 * (1 << 27)).unwrap_err();
        assert!(matches!(err, ClError::OutOfMemory { .. }));
        // Release returns memory.
        let ok = ctx.create_buffer_f64(1 << 24).unwrap();
        let used = ctx.mem_used();
        ctx.release(ok).unwrap();
        assert!(ctx.mem_used() < used);
    }

    #[test]
    fn oversize_work_group_rejected_at_enqueue() {
        let platform = Platform::table1();
        let dev = platform.device("Tahiti").unwrap(); // max wg 256
        let mut ctx = dev.create_context();
        let prog = ctx.build_program(SAXPY).unwrap();
        let x = ctx.create_buffer_f32(1024).unwrap();
        let y = ctx.create_buffer_f32(1024).unwrap();
        let mut q = CommandQueue::new();
        let err = q
            .enqueue_kernel(
                &mut ctx,
                &prog,
                "saxpy",
                NdRange::d1(1024, 512),
                &[
                    KernelArg::Buf(x),
                    KernelArg::Buf(y),
                    KernelArg::F32(1.0),
                    KernelArg::I32(1024),
                ],
                None,
                ExecMode::Functional { detect_races: true },
            )
            .unwrap_err();
        assert!(matches!(err, ClError::BadLaunch(_)), "{err}");
    }

    #[test]
    fn timing_only_requires_profile() {
        let platform = Platform::table1();
        let dev = platform.device("Kepler").unwrap();
        let mut ctx = dev.create_context();
        let prog = ctx.build_program(SAXPY).unwrap();
        let x = ctx.create_buffer_f32(8).unwrap();
        let y = ctx.create_buffer_f32(8).unwrap();
        let mut q = CommandQueue::new();
        let err = q
            .enqueue_kernel(
                &mut ctx,
                &prog,
                "saxpy",
                NdRange::d1(8, 4),
                &[
                    KernelArg::Buf(x),
                    KernelArg::Buf(y),
                    KernelArg::F32(1.0),
                    KernelArg::I32(8),
                ],
                None,
                ExecMode::TimingOnly,
            )
            .unwrap_err();
        assert_eq!(err, ClError::MissingProfile);
    }

    #[test]
    fn queue_clock_advances_with_estimates() {
        let platform = Platform::table1();
        let dev = platform.device("Tahiti").unwrap();
        let mut ctx = dev.create_context();
        let prog = ctx.build_program(SAXPY).unwrap();
        let x = ctx.create_buffer_f32(256).unwrap();
        let y = ctx.create_buffer_f32(256).unwrap();
        let profile = KernelLaunchProfile {
            double_precision: false,
            wg_size: 64,
            n_wgs: 4,
            outer_iters: 1,
            mad_ops: 1.0,
            mem_instrs: 2.0,
            overhead_ops: 4.0,
            dram_bytes: 64.0 * 8.0,
            cache_bytes: 0.0,
            lds_bytes: 0.0,
            barriers: 0.0,
            dram_bytes_once: 0.0,
            mem_instrs_once: 0.0,
            mad_ops_once: 0.0,
            coalesce_eff: 1.0,
            pow2_conflict: false,
            lds_bank_factor: 1.0,
            simd_utilization: 1.0,
            serial_latency_factor: 1.0,
            regs_per_wi: 8,
            lds_bytes_per_wg: 0,
        };
        let mut q = CommandQueue::new();
        for _ in 0..3 {
            q.enqueue_kernel(
                &mut ctx,
                &prog,
                "saxpy",
                NdRange::d1(256, 64),
                &[
                    KernelArg::Buf(x),
                    KernelArg::Buf(y),
                    KernelArg::F32(1.0),
                    KernelArg::I32(256),
                ],
                Some(&profile),
                ExecMode::TimingOnly,
            )
            .unwrap();
        }
        assert_eq!(q.events().len(), 3);
        assert!(q.finish() > 0.0);
        // Events are in order and contiguous.
        let evs = q.events();
        assert_eq!(evs[0].end, evs[1].start);
        assert!(evs[2].seconds() > 0.0);
    }

    #[test]
    fn copy_events_advance_clock() {
        let platform = Platform::table1();
        let dev = platform.device("Fermi").unwrap();
        let mut q = CommandQueue::new();
        let cost = crate::copy::copy_time(dev.spec(), 1 << 20, 1 << 20, 0.5);
        q.enqueue_copy("packA", cost);
        assert_eq!(q.events()[0].name, "packA");
        assert!(q.finish() > 0.0);
    }

    #[test]
    fn wrong_precision_write_rejected() {
        let dev = SimDevice::new(DeviceId::Tahiti.spec());
        let mut ctx = dev.create_context();
        let b = ctx.create_buffer_f32(4).unwrap();
        assert!(ctx.write_f64(b, &[0.0; 4]).is_err());
        assert!(ctx.read_f64(b).is_err());
        assert!(ctx.write_f32(b, &[0.0; 3]).is_err(), "length mismatch");
    }
}

impl CommandQueue {
    /// Enqueue a host→device write with PCIe-modelled timing, copying the
    /// data into the buffer and recording a profiled event.
    pub fn enqueue_write_f64(
        &mut self,
        ctx: &mut Context,
        id: BufferId,
        data: &[f64],
    ) -> Result<&Event, ClError> {
        ctx.write_f64(id, data)?;
        let t = crate::transfer::transfer_time(
            &ctx.device,
            std::mem::size_of_val(data),
            crate::transfer::Direction::HostToDevice,
        );
        Ok(self.push_timed("writeBuffer", t))
    }

    /// Enqueue a host→device write of `f32` data.
    pub fn enqueue_write_f32(
        &mut self,
        ctx: &mut Context,
        id: BufferId,
        data: &[f32],
    ) -> Result<&Event, ClError> {
        ctx.write_f32(id, data)?;
        let t = crate::transfer::transfer_time(
            &ctx.device,
            std::mem::size_of_val(data),
            crate::transfer::Direction::HostToDevice,
        );
        Ok(self.push_timed("writeBuffer", t))
    }

    /// Enqueue a device→host read, returning the data and advancing the
    /// virtual clock by the modelled transfer time.
    pub fn enqueue_read_f64(&mut self, ctx: &Context, id: BufferId) -> Result<Vec<f64>, ClError> {
        let data = ctx.read_f64(id)?.to_vec();
        let t = crate::transfer::transfer_time(
            &ctx.device,
            data.len() * 8,
            crate::transfer::Direction::DeviceToHost,
        );
        self.push_timed("readBuffer", t);
        Ok(data)
    }

    /// Enqueue a device→host read of `f32` data.
    pub fn enqueue_read_f32(&mut self, ctx: &Context, id: BufferId) -> Result<Vec<f32>, ClError> {
        let data = ctx.read_f32(id)?.to_vec();
        let t = crate::transfer::transfer_time(
            &ctx.device,
            data.len() * 4,
            crate::transfer::Direction::DeviceToHost,
        );
        self.push_timed("readBuffer", t);
        Ok(data)
    }

    fn push_timed(&mut self, name: &str, seconds: f64) -> &Event {
        let start = self.clock;
        self.clock += seconds;
        self.events.push(Event {
            name: name.to_string(),
            start,
            end: self.clock,
            estimate: None,
            stats: None,
        });
        self.events.last().expect("just pushed")
    }
}

#[cfg(test)]
mod transfer_tests {
    use super::*;

    #[test]
    fn write_and_read_advance_the_clock_and_move_data() {
        let platform = Platform::table1();
        let dev = platform.device("Fermi").unwrap();
        let mut ctx = dev.create_context();
        let b = ctx.create_buffer_f64(1 << 16).unwrap();
        let host: Vec<f64> = (0..1 << 16).map(|i| i as f64).collect();
        let mut q = CommandQueue::new();
        q.enqueue_write_f64(&mut ctx, b, &host).unwrap();
        let t_after_write = q.finish();
        assert!(t_after_write > 0.0, "PCIe write takes time");
        let back = q.enqueue_read_f64(&ctx, b).unwrap();
        assert_eq!(back, host);
        assert!(q.finish() > t_after_write, "read also takes time");
        assert_eq!(q.events().len(), 2);
        assert_eq!(q.events()[0].name, "writeBuffer");
        assert_eq!(q.events()[1].name, "readBuffer");
    }

    #[test]
    fn cpu_transfers_are_cheaper_than_gpu() {
        let platform = Platform::table1();
        let n = 1 << 20;
        let host = vec![0.0f32; n];
        let mut times = Vec::new();
        for name in ["Tahiti", "Sandy Bridge"] {
            let dev = platform.device(name).unwrap();
            let mut ctx = dev.create_context();
            let b = ctx.create_buffer_f32(n).unwrap();
            let mut q = CommandQueue::new();
            q.enqueue_write_f32(&mut ctx, b, &host).unwrap();
            times.push(q.finish());
        }
        assert!(
            times[1] < times[0],
            "CPU 'transfer' {} should beat PCIe {}",
            times[1],
            times[0]
        );
    }

    #[test]
    fn mismatched_write_is_rejected_without_advancing_clock() {
        let platform = Platform::table1();
        let dev = platform.device("Kepler").unwrap();
        let mut ctx = dev.create_context();
        let b = ctx.create_buffer_f32(8).unwrap();
        let mut q = CommandQueue::new();
        assert!(q.enqueue_write_f64(&mut ctx, b, &[0.0; 8]).is_err());
        assert_eq!(q.finish(), 0.0);
        assert!(q.events().is_empty());
    }
}
