//! Host ↔ device transfer cost model.
//!
//! Table I's footnote world: the paper states *"the presented performance
//! numbers do not take into account data transfer time between host and
//! OpenCL device"*. This module models those transfers (PCIe 2.0 ×16 for
//! the 2012 discrete GPUs, zero-copy for CPUs) so the report can quantify
//! what including them would do — the justification for excluding them.

use clgemm_device::{DeviceKind, DeviceSpec};

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    HostToDevice,
    DeviceToHost,
}

/// Sustained PCIe 2.0 ×16 bandwidth in GB/s (the 2012-era bus all four
/// GPUs sat on). Writes pin slightly faster than reads on most chipsets.
const PCIE2_H2D_GBS: f64 = 5.6;
const PCIE2_D2H_GBS: f64 = 5.2;
/// Per-transfer latency (driver + DMA setup) in seconds.
const PCIE_LATENCY_S: f64 = 12e-6;

/// Seconds to move `bytes` in the given direction.
///
/// CPUs are their own host: OpenCL buffers live in system memory, so a
/// "transfer" is at most a cache-friendly memcpy, modelled at the
/// device's DRAM bandwidth.
#[must_use]
pub fn transfer_time(dev: &DeviceSpec, bytes: usize, dir: Direction) -> f64 {
    match dev.kind {
        DeviceKind::Gpu => {
            let bw = match dir {
                Direction::HostToDevice => PCIE2_H2D_GBS,
                Direction::DeviceToHost => PCIE2_D2H_GBS,
            };
            PCIE_LATENCY_S + bytes as f64 / (bw * 1e9)
        }
        DeviceKind::Cpu => bytes as f64 / (dev.global_bw_gbs * 0.5 * 1e9),
    }
}

/// Effective GFlop/s of a square GEMM *including* moving A, B in and C
/// out over the bus, given the kernel-only seconds.
#[must_use]
pub fn gflops_with_transfers(
    dev: &DeviceSpec,
    n: usize,
    elem_bytes: usize,
    kernel_seconds: f64,
) -> f64 {
    let matrix = n * n * elem_bytes;
    let t = kernel_seconds
        + transfer_time(dev, 2 * matrix, Direction::HostToDevice)
        + transfer_time(dev, matrix, Direction::DeviceToHost);
    2.0 * (n as f64).powi(3) / t / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use clgemm_device::DeviceId;

    #[test]
    fn gpu_transfers_ride_pcie() {
        let dev = DeviceId::Tahiti.spec();
        let t = transfer_time(&dev, 1 << 30, Direction::HostToDevice);
        // 1 GiB at ~5.6 GB/s is ~0.19 s.
        assert!(t > 0.15 && t < 0.25, "{t}");
        let back = transfer_time(&dev, 1 << 30, Direction::DeviceToHost);
        assert!(back > t, "read-back is slower than upload");
    }

    #[test]
    fn cpu_transfers_are_cheap() {
        let gpu = DeviceId::Tahiti.spec();
        let cpu = DeviceId::SandyBridge.spec();
        let bytes = 64 << 20;
        assert!(
            transfer_time(&cpu, bytes, Direction::HostToDevice)
                < transfer_time(&gpu, bytes, Direction::HostToDevice)
        );
    }

    #[test]
    fn latency_floor_for_tiny_transfers() {
        let dev = DeviceId::Fermi.spec();
        assert!(transfer_time(&dev, 4, Direction::HostToDevice) >= PCIE_LATENCY_S);
    }

    #[test]
    fn transfers_matter_less_as_n_grows() {
        // O(N^2) transfers vs O(N^3) compute: the overhead fraction must
        // shrink — the reason the paper can justify excluding transfers
        // for its large-N numbers.
        let dev = DeviceId::Tahiti.spec();
        let kernel = |n: usize| 2.0 * (n as f64).powi(3) / 863e9; // at 863 GF
        let eff = |n: usize| gflops_with_transfers(&dev, n, 8, kernel(n)) / 863.0;
        assert!(eff(512) < eff(2048));
        assert!(eff(2048) < eff(8192));
        assert!(
            eff(8192) > 0.8,
            "at N=8192 transfers cost little: {}",
            eff(8192)
        );
        assert!(eff(512) < 0.3, "at N=512 transfers dominate: {}", eff(512));
    }
}
