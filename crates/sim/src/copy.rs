//! Device-side copy/pack cost model.
//!
//! The paper's GEMM routines copy matrices into block-major staging
//! buffers in device global memory before the fast `AᵀB` kernel runs
//! (§III-D). The copy is `O(N²)` bandwidth-bound work; charging for it is
//! what makes the full routine slow at small `N` (Figs. 9–11) while the
//! bare kernel (Fig. 7) is not. This module prices such copies.

use clgemm_device::DeviceSpec;

/// Cost breakdown of a device-side copy/pack operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyCost {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Bytes read from global memory.
    pub bytes_read: usize,
    /// Bytes written to global memory.
    pub bytes_written: usize,
}

/// Time for a device-side copy moving `bytes_read` in and `bytes_written`
/// out of global memory with the given coalescing efficiency on the read
/// stream (packing a row-major matrix into a block-major layout reads
/// strided and writes sequentially, or vice versa for transposition).
#[must_use]
pub fn copy_time(
    dev: &DeviceSpec,
    bytes_read: usize,
    bytes_written: usize,
    read_eff: f64,
) -> CopyCost {
    let bw_cycles = dev.dram_bytes_per_cycle();
    let eff = read_eff.clamp(0.05, 1.0);
    let cycles = bytes_read as f64 / (bw_cycles * eff) + bytes_written as f64 / bw_cycles;
    let launch = dev.micro.launch_overhead_us * 1e-6;
    CopyCost {
        seconds: dev.cycles_to_seconds(cycles) + launch,
        bytes_read,
        bytes_written,
    }
}

/// Time to pack one `k × width` operand (element size `elem_bytes`) into
/// a padded `kp × wp` staging buffer, including a transposition if
/// `transposed` (transposed reads have poor spatial locality → lower read
/// efficiency).
#[must_use]
pub fn pack_time(
    dev: &DeviceSpec,
    k: usize,
    width: usize,
    kp: usize,
    wp: usize,
    elem_bytes: usize,
    transposed: bool,
) -> CopyCost {
    // Layout-change copies walk the source with large strides (the user
    // matrix is column-major, the destination block-major); transposing
    // copies are strided on both sides. Measured GEMM-library packing
    // kernels reach only a few percent of peak bandwidth here, which is
    // what makes the paper's routine slow at small N (Figs. 9-11).
    let read_eff = if transposed { 0.07 } else { 0.20 };
    copy_time(dev, k * width * elem_bytes, kp * wp * elem_bytes, read_eff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clgemm_device::DeviceId;

    #[test]
    fn copy_time_scales_with_bytes() {
        let dev = DeviceId::Tahiti.spec();
        let small = copy_time(&dev, 1 << 20, 1 << 20, 1.0);
        let big = copy_time(&dev, 1 << 26, 1 << 26, 1.0);
        // Not a full 64x: the fixed launch overhead dilutes the ratio.
        assert!(
            big.seconds > small.seconds * 10.0,
            "{} vs {}",
            big.seconds,
            small.seconds
        );
    }

    #[test]
    fn transposed_packing_is_slower() {
        let dev = DeviceId::Tahiti.spec();
        let straight = pack_time(&dev, 4096, 4096, 4096, 4096, 8, false);
        let transposed = pack_time(&dev, 4096, 4096, 4096, 4096, 8, true);
        assert!(transposed.seconds > straight.seconds);
    }

    #[test]
    fn copy_cost_is_o_n2_vs_kernel_o_n3() {
        // At N=4096 on Tahiti, packing two operands must be well under
        // the ~0.15 s the DGEMM kernel itself needs — the amortisation
        // argument of §IV-B.
        let dev = DeviceId::Tahiti.spec();
        let n = 4096usize;
        let one = pack_time(&dev, n, n, n, n, 8, true);
        assert!(one.seconds < 0.02, "pack time {} too large", one.seconds);
    }

    #[test]
    fn launch_overhead_dominates_tiny_copies() {
        let dev = DeviceId::Tahiti.spec();
        let tiny = copy_time(&dev, 64, 64, 1.0);
        assert!(tiny.seconds >= dev.micro.launch_overhead_us * 1e-6);
    }
}
