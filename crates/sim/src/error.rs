//! Runtime-level error type, playing the role of OpenCL status codes.

use clgemm_clc::{CompileError, RuntimeError};
use clgemm_device::OccupancyError;

/// Anything that can go wrong between `clCreateBuffer` and `clFinish`.
#[derive(Debug, Clone, PartialEq)]
pub enum ClError {
    /// Program build failed (`CL_BUILD_PROGRAM_FAILURE`).
    BuildFailed(CompileError),
    /// Device global memory exhausted (`CL_MEM_OBJECT_ALLOCATION_FAILURE`).
    OutOfMemory { requested: usize, available: usize },
    /// Bad buffer handle or precision mismatch (`CL_INVALID_MEM_OBJECT`).
    InvalidBuffer(String),
    /// No kernel of that name in the program (`CL_INVALID_KERNEL_NAME`).
    NoSuchKernel(String),
    /// Kernel execution failed in the VM.
    Runtime(RuntimeError),
    /// The kernel cannot be scheduled on the device (resources).
    Occupancy(OccupancyError),
    /// A timing-only launch without a launch profile to feed the model.
    MissingProfile,
    /// Invalid launch geometry (`CL_INVALID_WORK_GROUP_SIZE`).
    BadLaunch(String),
}

impl std::fmt::Display for ClError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClError::BuildFailed(e) => write!(f, "program build failed: {e}"),
            ClError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "device out of memory: requested {requested} B, {available} B free"
                )
            }
            ClError::InvalidBuffer(m) => write!(f, "invalid buffer: {m}"),
            ClError::NoSuchKernel(n) => write!(f, "no kernel named {n:?}"),
            ClError::Runtime(e) => write!(f, "kernel execution failed: {e}"),
            ClError::Occupancy(e) => write!(f, "kernel cannot launch: {e}"),
            ClError::MissingProfile => {
                write!(f, "timing-only launch requires a kernel launch profile")
            }
            ClError::BadLaunch(m) => write!(f, "bad launch: {m}"),
        }
    }
}

impl std::error::Error for ClError {}

impl From<CompileError> for ClError {
    fn from(e: CompileError) -> Self {
        ClError::BuildFailed(e)
    }
}

impl From<RuntimeError> for ClError {
    fn from(e: RuntimeError) -> Self {
        ClError::Runtime(e)
    }
}

impl From<OccupancyError> for ClError {
    fn from(e: OccupancyError) -> Self {
        ClError::Occupancy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clgemm_clc::CompileError;
    use clgemm_clc::RuntimeError;

    #[test]
    fn conversions_and_display() {
        let e: ClError = CompileError::new(Default::default(), "boom").into();
        assert!(matches!(e, ClError::BuildFailed(_)));
        assert!(e.to_string().contains("boom"));

        let e: ClError = RuntimeError::BadArguments("x".into()).into();
        assert!(matches!(e, ClError::Runtime(_)));

        let e = ClError::OutOfMemory {
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("10"));
    }
}
