//! Calibration harness: run the full search per device/precision and
//! compare the winner's efficiency to the paper's Table II.
use clgemm::tuner::{tune, SearchOpts, SearchSpace};
use clgemm_blas::scalar::Precision;
use clgemm_device::DeviceId;

fn main() {
    // (device, paper DGEMM GFlop/s, paper SGEMM GFlop/s)
    let targets = [
        (DeviceId::Tahiti, 863.0, 3047.0),
        (DeviceId::Cayman, 580.0, 2167.0),
        (DeviceId::Kepler, 128.0, 1440.0),
        (DeviceId::Fermi, 370.0, 896.0),
        (DeviceId::SandyBridge, 64.0, 140.0),
        (DeviceId::Bulldozer, 37.0, 87.0),
    ];
    for (id, dgemm, sgemm) in targets {
        let dev = id.spec();
        let space = SearchSpace::for_device(&dev);
        for (prec, paper) in [(Precision::F64, dgemm), (Precision::F32, sgemm)] {
            let t0 = std::time::Instant::now();
            let res = tune(
                &dev,
                prec,
                &space,
                &SearchOpts {
                    verify_winner: false,
                    max_sweep_points: 16,
                    ..Default::default()
                },
            );
            let dt = t0.elapsed().as_secs_f64();
            println!(
                "{:12} {} model {:7.0} GF ({:4.1}%)  paper {:7.0} GF ({:4.1}%)  ratio {:.2}  cands {:6}  [{:.1}s]",
                dev.code_name, prec, res.best.gflops, 100.0*res.efficiency,
                paper, 100.0*paper/dev.peak_gflops(prec==Precision::F64),
                res.best.gflops/paper, res.candidates, dt
            );
            println!("      -> {}", res.best.params.describe());
        }
    }
}
