//! The GEMM kernel code generator (§III).
//!
//! Given a validated [`KernelParams`], emits a complete OpenCL C kernel
//! computing `C ← α·Aᵀ·B + β·C` over packed operands:
//!
//! * `A` is the packed `K × M` transposed-A operand in `layout_a`,
//! * `B` is the packed `K × N` operand in `layout_b`,
//! * `C` is the `M × N` row-major staging buffer,
//!
//! with `M % Mwg == N % Nwg == K % k_multiple() == 0` guaranteed by the
//! routine layer's padding. The generated source compiles and runs under
//! `clgemm-clc`, so the full paper pipeline — generate → compile → test →
//! measure — is exercised end to end.
//!
//! The three algorithm skeletons follow the paper's Figs. 4–6:
//! BA (load → barrier → compute → barrier), PL (prefetch next block into
//! private registers while computing, then store to local memory), and DB
//! (two local-memory buffers alternating roles, one barrier per block).

use crate::params::{Algorithm, KernelParams, StrideMode};
use clgemm_blas::layout::BlockLayout;
use clgemm_blas::scalar::Precision;
use clgemm_clc::NdRange;
use std::fmt::Write as _;

/// Name of the generated kernel function.
pub const KERNEL_NAME: &str = "gemm_atb";

/// A generated kernel: OpenCL C source plus the parameters that shaped it.
#[derive(Debug, Clone)]
pub struct GeneratedKernel {
    pub params: KernelParams,
    pub source: String,
}

impl GeneratedKernel {
    /// NDRange for a padded `m × n` problem: one work-item per
    /// `(Mwi, Nwi)` sub-tile.
    ///
    /// # Panics
    /// Panics if `m`/`n` are not multiples of the work-group blocking —
    /// the routine layer pads before launching.
    #[must_use]
    pub fn ndrange(&self, m: usize, n: usize) -> NdRange {
        let p = &self.params;
        assert_eq!(m % p.mwg, 0, "M={m} not padded to Mwg={}", p.mwg);
        assert_eq!(n % p.nwg, 0, "N={n} not padded to Nwg={}", p.nwg);
        NdRange::d2(
            [(m / p.mwg) * p.mdimc, (n / p.nwg) * p.ndimc],
            [p.mdimc, p.ndimc],
        )
    }
}

/// Generate the kernel source for a parameter set.
///
/// # Errors
/// Returns the parameter-validation error when the set is structurally
/// invalid (the paper's "failed in code generation" case).
pub fn generate(params: &KernelParams) -> Result<GeneratedKernel, crate::params::ParamError> {
    params.validate()?;
    let source = Emitter::new(params).emit();
    Ok(GeneratedKernel {
        params: *params,
        source,
    })
}

struct Emitter<'a> {
    p: &'a KernelParams,
    out: String,
    indent: usize,
}

impl<'a> Emitter<'a> {
    fn new(p: &'a KernelParams) -> Self {
        Emitter {
            p,
            out: String::with_capacity(8 * 1024),
            indent: 0,
        }
    }

    fn line(&mut self, s: impl AsRef<str>) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s.as_ref());
        self.out.push('\n');
    }

    fn open(&mut self, s: impl AsRef<str>) {
        self.line(s);
        self.indent += 1;
    }

    fn close(&mut self) {
        self.indent -= 1;
        self.line("}");
    }

    // ---- type & literal helpers -----------------------------------------

    fn t(&self) -> &'static str {
        self.p.precision.cl_name()
    }

    /// The C-tile vector type (`double2`, `float4`, …) or the scalar type
    /// when `vw == 1`.
    fn tv(&self) -> String {
        if self.p.vw == 1 {
            self.t().to_string()
        } else {
            format!("{}{}", self.t(), self.p.vw)
        }
    }

    fn zero(&self) -> &'static str {
        match self.p.precision {
            Precision::F32 => "0.0f",
            Precision::F64 => "0.0",
        }
    }

    fn vzero(&self) -> String {
        if self.p.vw == 1 {
            self.zero().to_string()
        } else {
            format!("({})({})", self.tv(), self.zero())
        }
    }

    /// Broadcast a scalar expression to the C-tile vector type.
    fn bcast(&self, e: &str) -> String {
        if self.p.vw == 1 {
            e.to_string()
        } else {
            format!("({})({})", self.tv(), e)
        }
    }

    /// Vector load of `vw` elements at element offset `off` from `ptr`
    /// (offset must be a multiple of `vw`, which the address algebra
    /// guarantees).
    fn vload(&self, off: &str, ptr: &str) -> String {
        if self.p.vw == 1 {
            format!("{ptr}[{off}]")
        } else {
            format!("vload{}(({off})/{}, {ptr})", self.p.vw, self.p.vw)
        }
    }

    fn vstore_stmt(&self, val: &str, off: &str, ptr: &str) -> String {
        if self.p.vw == 1 {
            format!("{ptr}[{off}] = {val};")
        } else {
            format!("vstore{}({val}, ({off})/{}, {ptr});", self.p.vw, self.p.vw)
        }
    }

    // ---- address algebra -------------------------------------------------
    //
    // Operand A is K x M with blocking (Mwg, Kwg); `pwg` is a multiple of
    // Kwg, `dp < Kwg` the in-block depth, `il < Mwg` the in-tile column.

    fn a_addr(&self, pwg: &str, dp: &str, il: &str) -> String {
        match self.p.layout_a {
            BlockLayout::RowMajor => format!("(({pwg}) + ({dp}))*M + gx*MWG + ({il})"),
            BlockLayout::Cbl => format!("gx*(K*MWG) + (({pwg}) + ({dp}))*MWG + ({il})"),
            BlockLayout::Rbl => {
                format!("(({pwg})/KWG)*(KWG*M) + gx*(KWG*MWG) + ({dp})*MWG + ({il})")
            }
        }
    }

    fn b_addr(&self, pwg: &str, dp: &str, jl: &str) -> String {
        match self.p.layout_b {
            BlockLayout::RowMajor => format!("(({pwg}) + ({dp}))*N + gy*NWG + ({jl})"),
            BlockLayout::Cbl => format!("gy*(K*NWG) + (({pwg}) + ({dp}))*NWG + ({jl})"),
            BlockLayout::Rbl => {
                format!("(({pwg})/KWG)*(KWG*N) + gy*(KWG*NWG) + ({dp})*NWG + ({jl})")
            }
        }
    }

    /// Row (M-direction) in-tile index of this work-item's `mi`-th row.
    fn row_il(&self, mi: usize) -> String {
        match self.p.stride_m {
            StrideMode::Unit => format!("tx*MWI + {mi}"),
            StrideMode::NonUnit => format!("tx + MDIMC*{mi}"),
        }
    }

    /// Column (N-direction) in-tile base of this work-item's `cj`-th
    /// vector chunk.
    fn col_base(&self, cj: usize) -> String {
        match self.p.stride_n {
            StrideMode::Unit => format!("(ty*NWIV + {cj})*VW"),
            StrideMode::NonUnit => format!("(ty + NDIMC*{cj})*VW"),
        }
    }

    // ---- emission ---------------------------------------------------------

    fn emit(mut self) -> String {
        let p = self.p;
        self.line("// Auto-generated GEMM kernel: C <- alpha*A^T*B + beta*C");
        self.line(format!("// {}", p.describe()));
        if p.precision == Precision::F64 {
            self.line("#pragma OPENCL EXTENSION cl_khr_fp64 : enable");
        }
        for (name, v) in [
            ("MWG", p.mwg),
            ("NWG", p.nwg),
            ("KWG", p.kwg),
            ("MDIMC", p.mdimc),
            ("NDIMC", p.ndimc),
            ("KWI", p.kwi),
            ("MDIMA", p.mdima),
            ("KDIMA", p.kdima()),
            ("KDIMB", p.kdimb()),
            ("NDIMB", p.ndimb),
            ("MWI", p.mwi()),
            ("NWI", p.nwi()),
            ("VW", p.vw),
            ("NWIV", p.nwi() / p.vw),
            ("MWIA", p.mwia()),
            ("KWIA", p.kwia()),
            ("KWIB", p.kwib()),
            ("NWIB", p.nwib()),
        ] {
            self.line(format!("#define {name} {v}"));
        }
        self.line("");
        self.line(format!(
            "__kernel __attribute__((reqd_work_group_size({}, {}, 1)))",
            p.mdimc, p.ndimc
        ));
        let t = self.t();
        self.open(format!(
            "void {KERNEL_NAME}(__global const {t}* A, __global const {t}* B, __global {t}* C, int M, int N, int K, {t} alpha, {t} beta) {{"
        ));
        self.line("int tx = get_local_id(0);");
        self.line("int ty = get_local_id(1);");
        self.line("int gx = get_group_id(0);");
        self.line("int gy = get_group_id(1);");
        if p.local_a || p.local_b {
            self.line("int w = tx + MDIMC*ty;");
        }
        if p.local_a {
            self.line("int ax = w % MDIMA;");
            self.line("int ak = w / MDIMA;");
        }
        if p.local_b {
            self.line("int bx = w % NDIMB;");
            self.line("int bk = w / NDIMB;");
        }
        let db = p.algorithm == Algorithm::Db;
        if p.local_a {
            self.line(format!("__local {t} Alm0[KWG*MWG];"));
            if db {
                self.line(format!("__local {t} Alm1[KWG*MWG];"));
            }
        }
        if p.local_b {
            self.line(format!("__local {t} Blm0[KWG*NWG];"));
            if db {
                self.line(format!("__local {t} Blm1[KWG*NWG];"));
            }
        }
        // Accumulators.
        let tv = self.tv();
        let vz = self.vzero();
        for mi in 0..p.mwi() {
            for cj in 0..p.nwi() / p.vw {
                self.line(format!("{tv} c_{mi}_{cj} = {vz};"));
            }
        }
        self.line("");

        match p.algorithm {
            Algorithm::Ba => self.emit_ba(),
            Algorithm::Pl => self.emit_pl(),
            Algorithm::Db => self.emit_db(),
        }

        self.emit_merge();
        self.close();
        self.out
    }

    fn emit_ba(&mut self) {
        let p = self.p;
        let uses_local = p.local_a || p.local_b;
        self.open("for (int pwg = 0; pwg < K; pwg += KWG) {");
        if p.local_a {
            self.emit_loader_a("pwg", "Alm0");
        }
        if p.local_b {
            self.emit_loader_b("pwg", "Blm0");
        }
        if uses_local {
            self.line("barrier(1);");
        }
        self.emit_compute_loop("pwg", "Alm0", "Blm0");
        if uses_local {
            self.line("barrier(1);");
        }
        self.close();
    }

    fn emit_pl(&mut self) {
        // Fig. 5: prologue load, then { prefetch-to-private / barrier /
        // compute / barrier / store-to-local / barrier }, epilogue compute.
        self.emit_loader_a("0", "Alm0");
        self.emit_loader_b("0", "Blm0");
        self.line("barrier(1);");
        self.open("for (int pwg = 0; pwg < K - KWG; pwg += KWG) {");
        self.emit_prefetch("pwg + KWG");
        self.line("barrier(1);");
        self.emit_compute_loop("pwg", "Alm0", "Blm0");
        self.line("barrier(1);");
        self.emit_prefetch_store("Alm0", "Blm0");
        self.line("barrier(1);");
        self.close();
        self.emit_compute_loop("K - KWG", "Alm0", "Blm0");
    }

    fn emit_db(&mut self) {
        // Full double buffering over Kwg blocks; requires K to be a
        // multiple of 2*KWG (the routine layer pads K accordingly).
        self.emit_loader_a("0", "Alm0");
        self.emit_loader_b("0", "Blm0");
        self.open("for (int pwg = 0; pwg < K - 2*KWG; pwg += 2*KWG) {");
        self.line("barrier(1);");
        self.emit_loader_a("pwg + KWG", "Alm1");
        self.emit_loader_b("pwg + KWG", "Blm1");
        self.emit_compute_loop("pwg", "Alm0", "Blm0");
        self.line("barrier(1);");
        self.emit_loader_a("pwg + 2*KWG", "Alm0");
        self.emit_loader_b("pwg + 2*KWG", "Blm0");
        self.emit_compute_loop("pwg + KWG", "Alm1", "Blm1");
        self.close();
        self.line("barrier(1);");
        self.emit_loader_a("K - KWG", "Alm1");
        self.emit_loader_b("K - KWG", "Blm1");
        self.emit_compute_loop("K - 2*KWG", "Alm0", "Blm0");
        self.line("barrier(1);");
        self.emit_compute_loop("K - KWG", "Alm1", "Blm1");
    }

    /// Loader: copy the `Kwg × Mwg` A block at depth `pwg` into `alm`.
    /// Work-items are reshaped into an `MdimA × KdimA` grid (§III-C).
    fn emit_loader_a(&mut self, pwg: &str, alm: &str) {
        let p = self.p;
        if p.loader_a_vec() {
            let chunks = p.mwg / (p.mdima * p.vw);
            for kk in 0..p.kwia() {
                for ii in 0..chunks {
                    let dp = format!("ak + KDIMA*{kk}");
                    let il = format!("(ax + MDIMA*{ii})*VW");
                    let g = self.a_addr(pwg, &dp, &il);
                    let l = format!("({dp})*MWG + {il}");
                    let val = self.vload(&g, "A");
                    self.line(self.vstore_stmt(&val, &l, alm));
                }
            }
        } else {
            for kk in 0..p.kwia() {
                for ii in 0..p.mwia() {
                    let dp = format!("ak + KDIMA*{kk}");
                    let il = format!("ax + MDIMA*{ii}");
                    let g = self.a_addr(pwg, &dp, &il);
                    self.line(format!("{alm}[({dp})*MWG + {il}] = A[{g}];"));
                }
            }
        }
    }

    fn emit_loader_b(&mut self, pwg: &str, blm: &str) {
        let p = self.p;
        if p.loader_b_vec() {
            let chunks = p.nwg / (p.ndimb * p.vw);
            for kk in 0..p.kwib() {
                for jj in 0..chunks {
                    let dp = format!("bk + KDIMB*{kk}");
                    let jl = format!("(bx + NDIMB*{jj})*VW");
                    let g = self.b_addr(pwg, &dp, &jl);
                    let l = format!("({dp})*NWG + {jl}");
                    let val = self.vload(&g, "B");
                    self.line(self.vstore_stmt(&val, &l, blm));
                }
            }
        } else {
            for kk in 0..p.kwib() {
                for jj in 0..p.nwib() {
                    let dp = format!("bk + KDIMB*{kk}");
                    let jl = format!("bx + NDIMB*{jj}");
                    let g = self.b_addr(pwg, &dp, &jl);
                    self.line(format!("{blm}[({dp})*NWG + {jl}] = B[{g}];"));
                }
            }
        }
    }

    /// PL prefetch: load this work-item's loader share of the block at
    /// `pwg_next` into private registers.
    fn emit_prefetch(&mut self, pwg_next: &str) {
        let p = self.p;
        let t = self.t();
        for kk in 0..p.kwia() {
            for ii in 0..p.mwia() {
                let dp = format!("ak + KDIMA*{kk}");
                let il = format!("ax + MDIMA*{ii}");
                let g = self.a_addr(pwg_next, &dp, &il);
                self.line(format!("{t} pa_{kk}_{ii} = A[{g}];"));
            }
        }
        for kk in 0..p.kwib() {
            for jj in 0..p.nwib() {
                let dp = format!("bk + KDIMB*{kk}");
                let jl = format!("bx + NDIMB*{jj}");
                let g = self.b_addr(pwg_next, &dp, &jl);
                self.line(format!("{t} pb_{kk}_{jj} = B[{g}];"));
            }
        }
    }

    fn emit_prefetch_store(&mut self, alm: &str, blm: &str) {
        let p = self.p;
        for kk in 0..p.kwia() {
            for ii in 0..p.mwia() {
                let dp = format!("ak + KDIMA*{kk}");
                let il = format!("ax + MDIMA*{ii}");
                self.line(format!("{alm}[({dp})*MWG + {il}] = pa_{kk}_{ii};"));
            }
        }
        for kk in 0..p.kwib() {
            for jj in 0..p.nwib() {
                let dp = format!("bk + KDIMB*{kk}");
                let jl = format!("bx + NDIMB*{jj}");
                self.line(format!("{blm}[({dp})*NWG + {jl}] = pb_{kk}_{jj};"));
            }
        }
    }

    /// The `pwi` loop over one `Kwg` block with `Kwi`-deep unrolling.
    /// `pwg` is the block's depth base (used for direct global loads);
    /// local reads index `alm`/`blm` by the in-block depth.
    fn emit_compute_loop(&mut self, pwg: &str, alm: &str, blm: &str) {
        let p = self.p;
        let t = self.t();
        let tv = self.tv();
        self.open("for (int pwi = 0; pwi < KWG; pwi += KWI) {");
        for kk in 0..p.kwi {
            let dp = format!("pwi + {kk}");
            // --- stage A into private registers -----------------------
            if p.read_a_vec() {
                let a_tv = tv.clone();
                for mc in 0..p.mwi() / p.vw {
                    let il = format!("tx*MWI + {}", mc * p.vw);
                    let src = if p.local_a {
                        self.vload(&format!("({dp})*MWG + {il}"), alm)
                    } else {
                        let g = self.a_addr(pwg, &dp, &il);
                        self.vload(&g, "A")
                    };
                    self.line(format!("{a_tv} a_{kk}_{mc} = {src};"));
                }
            } else {
                for mi in 0..p.mwi() {
                    let il = self.row_il(mi);
                    let src = if p.local_a {
                        format!("{alm}[({dp})*MWG + {il}]")
                    } else {
                        format!("A[{}]", self.a_addr(pwg, &dp, &il))
                    };
                    self.line(format!("{t} a_{kk}_{mi} = {src};"));
                }
            }
            // --- stage B ------------------------------------------------
            for cj in 0..p.nwi() / p.vw {
                let jl = self.col_base(cj);
                let src = if p.local_b {
                    self.vload(&format!("({dp})*NWG + {jl}"), blm)
                } else {
                    let g = self.b_addr(pwg, &dp, &jl);
                    self.vload(&g, "B")
                };
                self.line(format!("{tv} b_{kk}_{cj} = {src};"));
            }
            // --- multiply-accumulate -----------------------------------
            for mi in 0..p.mwi() {
                let a_scalar = if p.read_a_vec() && p.vw > 1 {
                    format!("a_{kk}_{}.s{:x}", mi / p.vw, mi % p.vw)
                } else {
                    format!("a_{kk}_{mi}")
                };
                let a_b = self.bcast(&a_scalar);
                for cj in 0..p.nwi() / p.vw {
                    self.line(format!(
                        "c_{mi}_{cj} = mad({a_b}, b_{kk}_{cj}, c_{mi}_{cj});"
                    ));
                }
            }
        }
        self.close();
    }

    /// Merge `Cpm` with the `C` tile: `C = alpha*acc + beta*C` (Fig. 4
    /// line 13).
    fn emit_merge(&mut self) {
        let p = self.p;
        let tv = self.tv();
        self.line("");
        let alpha_b = self.bcast("alpha");
        let beta_b = self.bcast("beta");
        for mi in 0..p.mwi() {
            for cj in 0..p.nwi() / p.vw {
                let row = format!("gx*MWG + {}", self.row_il(mi));
                let col = format!("gy*NWG + {}", self.col_base(cj));
                let off = format!("({row})*N + ({col})");
                let old = self.vload(&off, "C");
                self.line(format!("{tv} o_{mi}_{cj} = {old};"));
                let val = format!("mad({alpha_b}, c_{mi}_{cj}, {beta_b}*o_{mi}_{cj})");
                self.line(self.vstore_stmt(&val, &off, "C"));
            }
        }
    }
}

/// Emit and pretty-print generation statistics (source size, unrolled
/// statement counts) — handy for the `codegen_dump` example and docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceStats {
    pub lines: usize,
    pub bytes: usize,
    pub mads: usize,
}

/// Cheap textual statistics of a generated kernel.
#[must_use]
pub fn source_stats(k: &GeneratedKernel) -> SourceStats {
    SourceStats {
        lines: k.source.lines().count(),
        bytes: k.source.len(),
        mads: k.source.matches("mad(").count(),
    }
}

/// Write a kernel's source with a header comment to a string (used by
/// examples and docs).
#[must_use]
pub fn render_with_header(k: &GeneratedKernel) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "// clgemm generated kernel — {} {}",
        k.params.precision, k.params.algorithm
    );
    s.push_str(&k.source);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{small_test_params, tahiti_dgemm_best};
    use clgemm_clc::Program;

    #[test]
    fn generates_and_compiles_paper_tahiti_kernel() {
        let k = generate(&tahiti_dgemm_best()).unwrap();
        let prog = Program::compile(&k.source)
            .unwrap_or_else(|e| panic!("generated kernel must compile: {e}\n{}", k.source));
        assert!(prog.kernel(KERNEL_NAME).is_some());
    }

    #[test]
    fn generates_and_compiles_all_algorithms() {
        for alg in Algorithm::ALL {
            let mut p = small_test_params(Precision::F64);
            p.algorithm = alg;
            let k = generate(&p).unwrap();
            Program::compile(&k.source)
                .unwrap_or_else(|e| panic!("{alg} kernel must compile: {e}\n{}", k.source));
        }
    }

    #[test]
    fn generates_all_layout_combinations() {
        for la in BlockLayout::ALL {
            for lb in BlockLayout::ALL {
                let mut p = small_test_params(Precision::F32);
                p.layout_a = la;
                p.layout_b = lb;
                let k = generate(&p).unwrap();
                Program::compile(&k.source).unwrap_or_else(|e| panic!("layouts {la}/{lb}: {e}"));
            }
        }
    }

    #[test]
    fn generates_all_stride_modes() {
        for sm in [StrideMode::Unit, StrideMode::NonUnit] {
            for sn in [StrideMode::Unit, StrideMode::NonUnit] {
                let mut p = small_test_params(Precision::F64);
                p.stride_m = sm;
                p.stride_n = sn;
                let k = generate(&p).unwrap();
                Program::compile(&k.source).unwrap_or_else(|e| panic!("strides: {e}"));
            }
        }
    }

    #[test]
    fn generates_without_local_memory() {
        let mut p = small_test_params(Precision::F64);
        p.local_a = false;
        p.local_b = false;
        let k = generate(&p).unwrap();
        assert!(!k.source.contains("__local"));
        assert!(!k.source.contains("barrier"));
        Program::compile(&k.source).unwrap();
    }

    #[test]
    fn invalid_params_are_rejected_at_generation() {
        let mut p = small_test_params(Precision::F64);
        p.mwg = 17;
        assert!(generate(&p).is_err());
    }

    #[test]
    fn vector_width_appears_in_source() {
        let mut p = small_test_params(Precision::F32);
        p.vw = 4;
        p.ndimc = 4;
        p.nwg = 32; // nwi = 8, divisible by 4
        let k = generate(&p).unwrap();
        assert!(k.source.contains("vload4"), "{}", k.source);
        assert!(k.source.contains("float4"));
        Program::compile(&k.source).unwrap();
    }

    #[test]
    fn db_kernel_declares_double_buffers() {
        let mut p = small_test_params(Precision::F64);
        p.algorithm = Algorithm::Db;
        let k = generate(&p).unwrap();
        assert!(k.source.contains("Alm1"));
        assert!(k.source.contains("Blm1"));
    }

    #[test]
    fn pl_kernel_has_prefetch_registers() {
        let mut p = small_test_params(Precision::F64);
        p.algorithm = Algorithm::Pl;
        let k = generate(&p).unwrap();
        assert!(k.source.contains("pa_0_0"));
        assert!(k.source.contains("pb_0_0"));
    }

    #[test]
    fn ndrange_matches_blocking() {
        let k = generate(&small_test_params(Precision::F64)).unwrap();
        let nd = k.ndrange(32, 48);
        assert_eq!(nd.local, [4, 4]);
        assert_eq!(nd.global, [(32 / 16) * 4, (48 / 16) * 4]);
    }

    #[test]
    #[should_panic(expected = "not padded")]
    fn ndrange_rejects_unpadded_sizes() {
        let k = generate(&small_test_params(Precision::F64)).unwrap();
        let _ = k.ndrange(30, 48);
    }

    #[test]
    fn dgemm_kernel_enables_fp64_extension() {
        let k = generate(&small_test_params(Precision::F64)).unwrap();
        assert!(k.source.contains("cl_khr_fp64"));
        let k32 = generate(&small_test_params(Precision::F32)).unwrap();
        assert!(!k32.source.contains("cl_khr_fp64"));
    }

    #[test]
    fn source_stats_count_mads() {
        let p = small_test_params(Precision::F64);
        let k = generate(&p).unwrap();
        let stats = source_stats(&k);
        // mwi*nwiv*kwi mads per compute body; BA has one body.
        assert!(stats.mads >= p.mwi() * (p.nwi() / p.vw) * p.kwi);
        assert!(stats.lines > 30);
    }
}
