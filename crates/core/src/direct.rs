//! The copy-free GEMM kernel — the paper's stated future work (§V).
//!
//! The tuned routine of §IV-B packs both operands before running the
//! fast `AᵀB` kernel, so at small sizes the `O(N²)` copy dominates and
//! vendor libraries win (Figs. 9–11). The paper proposes: *"use another
//! GEMM kernel without the matrix copying [for small sizes] and combine
//! it with the current implementation"*. This module implements that
//! kernel and [`crate::routine::HybridGemm`] does the combining.
//!
//! The direct kernel:
//!
//! * reads the user's **column-major** `A` and `B` exactly as given, with
//!   the transpose folded into the index expressions per GEMM type;
//! * guards every access, so arbitrary (non-padded) `M`, `N`, `K` work;
//! * uses the same two-level blocking and `Kwi` unrolling as the packed
//!   kernel, but no local memory and no layout change;
//! * accumulates and merges with exactly the same FMA numerics, so the
//!   VM execution is bit-identical to [`run_direct_native`].

use crate::params::ParamError;
use clgemm_blas::matrix::Matrix;
use clgemm_blas::scalar::{Precision, Scalar};
use clgemm_blas::{GemmType, Trans};
use clgemm_clc::NdRange;
use clgemm_device::{DeviceSpec, KernelLaunchProfile};
use std::fmt::Write as _;

/// Name of the generated copy-free kernel.
pub const DIRECT_KERNEL_NAME: &str = "gemm_direct";

/// Parameters of the direct kernel (a deliberately smaller space than the
/// packed kernel: no layouts, no local memory, no stride modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirectParams {
    /// Work-group tile.
    pub mwg: usize,
    pub nwg: usize,
    /// Work-group shape.
    pub mdimc: usize,
    pub ndimc: usize,
    /// Unroll depth of the K loop.
    pub kwi: usize,
    /// GEMM type baked into the index expressions.
    pub ty: GemmType,
    pub precision: Precision,
}

impl DirectParams {
    /// A sensible default blocking for small problems.
    #[must_use]
    pub fn default_for(ty: GemmType, precision: Precision) -> DirectParams {
        DirectParams {
            mwg: 32,
            nwg: 32,
            mdimc: 8,
            ndimc: 8,
            kwi: 4,
            ty,
            precision,
        }
    }

    /// Work-items per group.
    #[must_use]
    pub fn wg_size(&self) -> usize {
        self.mdimc * self.ndimc
    }

    /// Rows per work-item.
    #[must_use]
    pub fn mwi(&self) -> usize {
        self.mwg / self.mdimc
    }

    /// Columns per work-item.
    #[must_use]
    pub fn nwi(&self) -> usize {
        self.nwg / self.ndimc
    }

    /// Validate divisibility and sanity.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.mwg == 0 || self.nwg == 0 || self.mdimc == 0 || self.ndimc == 0 || self.kwi == 0 {
            return Err(ParamError(
                "direct-kernel parameters must be positive".into(),
            ));
        }
        if !self.mwg.is_multiple_of(self.mdimc) || !self.nwg.is_multiple_of(self.ndimc) {
            return Err(ParamError(format!(
                "tile {}x{} not divisible by work-group shape {}x{}",
                self.mwg, self.nwg, self.mdimc, self.ndimc
            )));
        }
        if self.wg_size() > 1024 {
            return Err(ParamError(format!(
                "work-group size {} exceeds 1024",
                self.wg_size()
            )));
        }
        Ok(())
    }

    /// NDRange covering an `m × n` result (rounded up; the kernel guards).
    #[must_use]
    pub fn ndrange(&self, m: usize, n: usize) -> NdRange {
        NdRange::d2(
            [
                m.div_ceil(self.mwg) * self.mdimc,
                n.div_ceil(self.nwg) * self.ndimc,
            ],
            [self.mdimc, self.ndimc],
        )
    }

    /// Estimated register slots per work-item.
    #[must_use]
    pub fn regs_per_wi(&self) -> usize {
        let words = self.precision.bytes() / 4;
        (self.mwi() * self.nwi() + self.kwi.min(4) * (self.mwi() + self.nwi())) * words + 24
    }
}

/// A generated direct kernel.
#[derive(Debug, Clone)]
pub struct GeneratedDirect {
    pub params: DirectParams,
    pub source: String,
}

/// Index expression into column-major `A` for `op(A)[i][p]`.
fn a_idx(ta: Trans, i: &str, p: &str) -> String {
    match ta {
        Trans::No => format!("({i}) + ({p})*lda"),
        Trans::Yes => format!("({p}) + ({i})*lda"),
    }
}

/// Index expression into column-major `B` for `op(B)[p][j]`.
fn b_idx(tb: Trans, p: &str, j: &str) -> String {
    match tb {
        Trans::No => format!("({p}) + ({j})*ldb"),
        Trans::Yes => format!("({j}) + ({p})*ldb"),
    }
}

/// Generate the copy-free kernel source.
pub fn generate_direct(p: &DirectParams) -> Result<GeneratedDirect, ParamError> {
    p.validate()?;
    let t = p.precision.cl_name();
    let zero = match p.precision {
        Precision::F32 => "0.0f",
        Precision::F64 => "0.0",
    };
    let (mwi, nwi, kwi) = (p.mwi(), p.nwi(), p.kwi);
    let mut s = String::with_capacity(8 * 1024);
    fn push_line(buf: &mut String, line: &str) {
        buf.push_str(line);
        buf.push('\n');
    }
    macro_rules! w {
        ($($arg:tt)*) => { push_line(&mut s, &format!($($arg)*)) };
    }
    w!(
        "// Direct (copy-free) GEMM kernel, type {}, {}",
        p.ty,
        p.precision
    );
    if p.precision == Precision::F64 {
        w!("#pragma OPENCL EXTENSION cl_khr_fp64 : enable");
    }
    w!("#define MWG {}", p.mwg);
    w!("#define NWG {}", p.nwg);
    w!("#define MDIMC {}", p.mdimc);
    w!("#define NDIMC {}", p.ndimc);
    w!("#define MWI {mwi}");
    w!("#define NWI {nwi}");
    w!("#define KWI {kwi}");
    w!("");
    w!(
        "__kernel __attribute__((reqd_work_group_size({}, {}, 1)))",
        p.mdimc,
        p.ndimc
    );
    w!(
        "void {DIRECT_KERNEL_NAME}(__global const {t}* A, __global const {t}* B, __global {t}* C, int M, int N, int K, int lda, int ldb, int ldc, {t} alpha, {t} beta) {{"
    );
    w!("    int tx = get_local_id(0);");
    w!("    int ty = get_local_id(1);");
    w!("    int gx = get_group_id(0);");
    w!("    int gy = get_group_id(1);");
    for mi in 0..mwi {
        w!("    int row_{mi} = gx*MWG + tx*MWI + {mi};");
    }
    for cj in 0..nwi {
        w!("    int col_{cj} = gy*NWG + ty*NWI + {cj};");
    }
    for mi in 0..mwi {
        for cj in 0..nwi {
            w!("    {t} c_{mi}_{cj} = {zero};");
        }
    }
    w!("    int p = 0;");
    // Unrolled main loop.
    w!("    for (p = 0; p + KWI <= K; p += KWI) {{");
    for kk in 0..kwi {
        emit_step(&mut s, p, t, zero, &format!("p + {kk}"), &format!("{kk}"));
    }
    w!("    }}");
    // Scalar tail for K not divisible by KWI.
    w!("    for (p = p + 0; p < K; p += 1) {{");
    emit_step(&mut s, p, t, zero, "p", "t");
    w!("    }}");
    // Guarded merge into column-major C.
    for mi in 0..mwi {
        for cj in 0..nwi {
            w!("    if (row_{mi} < M && col_{cj} < N) {{");
            w!("        int off_{mi}_{cj} = row_{mi} + col_{cj}*ldc;");
            w!("        C[off_{mi}_{cj}] = mad(alpha, c_{mi}_{cj}, beta*C[off_{mi}_{cj}]);");
            w!("    }}");
        }
    }
    w!("}}");
    Ok(GeneratedDirect {
        params: *p,
        source: s,
    })
}

/// Emit one K step: guarded loads of a column of the A tile and a row of
/// the B tile, then the rank-1 MAD update.
fn emit_step(s: &mut String, p: &DirectParams, t: &str, zero: &str, p_expr: &str, tag: &str) {
    let (mwi, nwi) = (p.mwi(), p.nwi());
    for mi in 0..mwi {
        let _ = writeln!(s, "        {t} a_{tag}_{mi} = {zero};");
        let _ = writeln!(
            s,
            "        if (row_{mi} < M) {{ a_{tag}_{mi} = A[{}]; }}",
            a_idx(p.ty.ta, &format!("row_{mi}"), p_expr)
        );
    }
    for cj in 0..nwi {
        let _ = writeln!(s, "        {t} b_{tag}_{cj} = {zero};");
        let _ = writeln!(
            s,
            "        if (col_{cj} < N) {{ b_{tag}_{cj} = B[{}]; }}",
            b_idx(p.ty.tb, p_expr, &format!("col_{cj}"))
        );
    }
    for mi in 0..mwi {
        for cj in 0..nwi {
            let _ = writeln!(
                s,
                "        c_{mi}_{cj} = mad(a_{tag}_{mi}, b_{tag}_{cj}, c_{mi}_{cj});"
            );
        }
    }
}

/// Native oracle with exactly the direct kernel's numerics: ascending-`p`
/// FMA accumulation, `mad(alpha, acc, beta*C)` merge.
pub fn run_direct_native<T: Scalar>(
    ty: GemmType,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, n, k) = clgemm_blas::gemm_ref::check_shapes(ty, a, b, c);
    for j in 0..n {
        for i in 0..m {
            let mut acc = T::ZERO;
            for p in 0..k {
                acc = a.at_op(ty.ta, i, p).mul_add(b.at_op(ty.tb, p, j), acc);
            }
            let old = c.at(i, j);
            *c.at_mut(i, j) = alpha.mul_add(acc, beta * old);
        }
    }
}

/// Launch profile of the direct kernel for the timing model.
///
/// The key performance difference from the packed kernel: operand reads
/// hit the user's column-major data, so coalescing depends on the GEMM
/// type (a transposed-A read walks `lda`-strided addresses), every load
/// carries a bounds guard, and there is no data reuse through local
/// memory — redundant reads land on the cache.
#[must_use]
pub fn direct_profile(
    p: &DirectParams,
    dev: &DeviceSpec,
    m: usize,
    n: usize,
    k: usize,
) -> KernelLaunchProfile {
    let e = p.precision.bytes() as f64;
    let wg = p.wg_size() as f64;
    let (mwi, nwi, kwi) = (p.mwi() as f64, p.nwi() as f64, p.kwi as f64);
    let iters = (k as f64 / kwi).ceil().max(1.0);

    let mad_ops = mwi * nwi * kwi;
    let mem_instrs = (mwi + nwi) * kwi;
    // Guard compare+branch per load plus loop control.
    let overhead_ops = mem_instrs * 1.5 + 4.0;

    // Column-major reads: an A column is contiguous for non-transposed A
    // (work-items walk adjacent rows); transposed-A reads stride `lda`.
    // B is read by columns for non-transposed B (contiguous in p), and
    // strided otherwise. Strided streams also defeat DRAM page locality.
    let a_eff = match p.ty.ta {
        Trans::No => 1.0,
        Trans::Yes => 0.30,
    };
    let b_eff = match p.ty.tb {
        Trans::No => 0.85,
        Trans::Yes => 0.35,
    };
    let a_bytes = p.mwg as f64 * kwi * e;
    let b_bytes = p.nwg as f64 * kwi * e;
    let coalesce_eff = ((a_bytes + b_bytes) / (a_bytes / a_eff + b_bytes / b_eff)).clamp(0.01, 1.0);

    let dedup_b = (p.mdimc as f64).min(dev.micro.wavefront as f64).min(4.0);
    KernelLaunchProfile {
        double_precision: p.precision == Precision::F64,
        wg_size: p.wg_size(),
        n_wgs: m.div_ceil(p.mwg) * n.div_ceil(p.nwg),
        outer_iters: iters as usize,
        mad_ops,
        mem_instrs,
        overhead_ops,
        dram_bytes: (p.mwg + p.nwg) as f64 * kwi * e,
        cache_bytes: wg * (mwi + nwi / dedup_b) * kwi * e,
        lds_bytes: 0.0,
        barriers: 0.0,
        dram_bytes_once: (p.mwg * p.nwg) as f64 * e * 2.0,
        mem_instrs_once: mwi * nwi * 2.0,
        mad_ops_once: mwi * nwi * 2.0,
        coalesce_eff,
        pow2_conflict: false,
        lds_bank_factor: 1.0,
        simd_utilization: if dev.is_cpu() {
            // Scalar loads: the implicit vectoriser still packs the MAD
            // chain, but less effectively than explicit vectors.
            0.5
        } else {
            1.0
        },
        serial_latency_factor: 1.2,
        regs_per_wi: p.regs_per_wi(),
        lds_bytes_per_wg: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clgemm_blas::matrix::StorageOrder;
    use clgemm_clc::{Arg, BufData, ExecOptions, Program};
    use clgemm_device::DeviceId;

    fn run_vm_case(ty: GemmType, m: usize, n: usize, k: usize) {
        let p = DirectParams {
            mwg: 8,
            nwg: 8,
            mdimc: 4,
            ndimc: 4,
            kwi: 3,
            ty,
            precision: Precision::F64,
        };
        let gen = generate_direct(&p).unwrap();
        let prog = Program::compile(&gen.source)
            .unwrap_or_else(|e| panic!("direct kernel must compile: {e}\n{}", gen.source));
        let kernel = prog.kernel(DIRECT_KERNEL_NAME).unwrap();

        let (ar, ac) = match ty.ta {
            Trans::No => (m, k),
            Trans::Yes => (k, m),
        };
        let (br, bc) = match ty.tb {
            Trans::No => (k, n),
            Trans::Yes => (n, k),
        };
        let a = Matrix::<f64>::test_pattern(ar, ac, StorageOrder::ColMajor, 1);
        let b = Matrix::<f64>::test_pattern(br, bc, StorageOrder::ColMajor, 2);
        let c0 = Matrix::<f64>::test_pattern(m, n, StorageOrder::ColMajor, 3);

        let mut c_native = c0.clone();
        run_direct_native(ty, 1.25, &a, &b, -0.5, &mut c_native);

        let mut bufs = vec![
            BufData::F64(a.as_slice().to_vec()),
            BufData::F64(b.as_slice().to_vec()),
            BufData::F64(c0.as_slice().to_vec()),
        ];
        let args = [
            Arg::Buf(0),
            Arg::Buf(1),
            Arg::Buf(2),
            Arg::I32(m as i32),
            Arg::I32(n as i32),
            Arg::I32(k as i32),
            Arg::I32(ar as i32), // lda = rows of the stored matrix
            Arg::I32(br as i32),
            Arg::I32(m as i32), // ldc
            Arg::F64(1.25),
            Arg::F64(-0.5),
        ];
        kernel
            .launch(p.ndrange(m, n), &args, &mut bufs, &ExecOptions::default())
            .unwrap_or_else(|e| panic!("{ty} {m}x{n}x{k}: {e}"));
        let BufData::F64(c_vm) = &bufs[2] else {
            panic!()
        };
        for j in 0..n {
            for i in 0..m {
                let vm = c_vm[i + j * m];
                let nat = c_native.at(i, j);
                assert_eq!(
                    vm.to_bits(),
                    nat.to_bits(),
                    "{ty} mismatch at ({i},{j}): {vm} vs {nat}"
                );
            }
        }
    }

    #[test]
    fn direct_kernel_bit_exact_all_types_awkward_sizes() {
        for ty in GemmType::ALL {
            run_vm_case(ty, 13, 11, 9); // nothing divides anything
            run_vm_case(ty, 8, 8, 8); // exact tile
            run_vm_case(ty, 17, 3, 5);
        }
    }

    #[test]
    fn k_smaller_than_unroll_uses_tail_loop() {
        run_vm_case(GemmType::NN, 9, 9, 2); // K=2 < KWI=3: main loop never runs
        run_vm_case(GemmType::TT, 9, 9, 1);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let mut p = DirectParams::default_for(GemmType::NN, Precision::F32);
        p.mwg = 30; // not divisible by 8
        assert!(p.validate().is_err());
        assert!(generate_direct(&p).is_err());
    }

    #[test]
    fn direct_profile_penalises_transposed_reads() {
        let dev = DeviceId::Tahiti.spec();
        let nn = direct_profile(
            &DirectParams::default_for(GemmType::NN, Precision::F64),
            &dev,
            256,
            256,
            256,
        );
        let tt = direct_profile(
            &DirectParams::default_for(GemmType::TT, Precision::F64),
            &dev,
            256,
            256,
            256,
        );
        assert!(tt.coalesce_eff < nn.coalesce_eff);
    }

    #[test]
    fn ndrange_covers_and_guards() {
        let p = DirectParams::default_for(GemmType::NN, Precision::F32);
        let nd = p.ndrange(33, 65);
        assert_eq!(nd.global[0] / p.mdimc * p.mwg, 64); // 2 tiles of 32 cover 33
        assert_eq!(nd.global[1] / p.ndimc * p.nwg, 96); // 3 tiles cover 65
    }
}
