//! SIMD-width-aware register-tile selection for the fast host path.
//!
//! The tuned blocking `Mwi × Nwi` was chosen by the search engine for an
//! OpenCL *device*; the host microkernel in [`crate::executor`] executes
//! the same arithmetic on the CPU the process runs on, whose profitable
//! register-tile shapes follow the CPU's FMA lane count instead (the
//! paper's §III-B observation, applied to the host). The old code bridged
//! the two worlds with a silent clamp into `1..=TILE_MAX` — a tuned 32×8
//! blocking quietly executed as 16×8 with no trace in the run record.
//!
//! [`TileSelector`] replaces that clamp with an explicit, reported
//! decision: given the precision, the host lane width, the tuned
//! blocking, and the problem shape, it returns a [`TileDecision`] naming
//! the tile that will execute *and why it differs* from the tuned one
//! (if it does). The decision rides on `GemmRun` all the way to the
//! serving layer's per-worker stats.
//!
//! Selection never changes numerics: every C element sees the identical
//! ascending-depth FMA chain regardless of tile shape (see
//! [`crate::executor::run_native_fast`]), so substitution is purely a
//! performance decision and is always safe to apply.

use crate::executor::Tile;
use clgemm_blas::scalar::Precision;
use clgemm_shim::simd::SimdLevel;

/// Why the executed tile is (or is not) the tuned blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileReason {
    /// The tuned `Mwi × Nwi` fits the register budget and is
    /// lane-aligned; it executes verbatim.
    Tuned,
    /// The tuned blocking fits the register budget but its column edge
    /// does not fill the host vector, so a lane-aligned shape of similar
    /// footprint was substituted.
    LaneRealigned,
    /// The tuned blocking exceeds [`TILE_MAX`] in at least one direction
    /// (the case the old code clamped silently); a benchmark-validated
    /// shape was substituted.
    Oversize,
    /// The (padded) problem is small in every direction, so the tile came
    /// from the dedicated small-shape candidate sweep instead of the
    /// 1024³-ordered tables — the batched path's many-small-matrices
    /// regime, where fringe waste dominates panel reuse.
    SmallShape,
}

impl TileReason {
    /// Stable lowercase tag for logs and the bench JSON.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            TileReason::Tuned => "tuned",
            TileReason::LaneRealigned => "lane-realigned",
            TileReason::Oversize => "oversize",
            TileReason::SmallShape => "small-shape",
        }
    }
}

impl std::fmt::Display for TileReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// The outcome of one tile selection: what was asked for, what will
/// execute, and why they differ if they do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileDecision {
    /// The tuned `(Mwi, Nwi)` blocking the request arrived with.
    pub tuned: (usize, usize),
    /// The register tile the microkernel will execute.
    pub tile: Tile,
    /// FMA lanes per vector register at the selected precision.
    pub lanes: usize,
    /// Why `tile` equals — or does not equal — `tuned`.
    pub reason: TileReason,
}

impl TileDecision {
    /// `true` when the executed tile differs from the tuned blocking —
    /// exactly the situations the old clamp hid.
    #[must_use]
    pub fn substituted(self) -> bool {
        self.reason != TileReason::Tuned
    }
}

impl std::fmt::Display for TileDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{} -> {} ({}, {} lanes)",
            self.tuned.0, self.tuned.1, self.tile, self.reason, self.lanes
        )
    }
}

/// Candidate tiles per f-lane count, in measured preference order — the
/// `routine/tile_*` bench sweep in `crates/bench` covers exactly these
/// shapes, and its timings set this ordering (e.g. at 16 lanes the wide
/// 8×16/16×16 tiles spill registers and lose to 4×16 by over 3×). Every
/// `nr` is a multiple of the lane count so the compiler can keep whole
/// vectors of independent accumulators live; `mr` trades register
/// pressure against panel reuse.
fn candidates(lanes: usize) -> &'static [(usize, usize)] {
    match lanes {
        16 => &[(4, 16), (2, 16), (8, 16), (16, 16)],
        8 => &[(8, 8), (4, 8), (4, 16), (2, 8), (16, 8), (8, 16)],
        4 => &[(8, 8), (16, 4), (8, 12), (8, 4), (12, 4), (4, 4), (2, 4)],
        2 => &[(8, 8), (16, 4), (8, 6), (8, 4), (4, 4), (8, 2), (2, 2)],
        _ => &[(8, 8), (8, 4), (4, 8), (4, 4), (6, 2), (2, 2)],
    }
}

/// Problems whose padded `m` and `n` are both at or below this edge take
/// the small-shape candidate sweep instead of the 1024³-ordered tables.
/// Chosen to cover the batched path's direct-kernel regime (≤ 128³ runs
/// unpacked) while leaving every flagship shape on the tuned tables.
pub const SMALL_SHAPE_MAX: usize = 64;

/// Candidate tiles for small problems, same lane-alignment rules as
/// [`candidates`] but ordered by a sweep at 32³–64³: with at most a few
/// panel passes, fringe waste dominates reuse, so modest tiles that
/// divide small edges evenly come first and the wide spilly shapes are
/// gone entirely.
fn small_candidates(lanes: usize) -> &'static [(usize, usize)] {
    match lanes {
        16 => &[(4, 16), (2, 16), (1, 16)],
        8 => &[(4, 8), (2, 8), (8, 8), (1, 8)],
        4 => &[(4, 4), (8, 4), (4, 8), (2, 4), (1, 4)],
        2 => &[(4, 4), (4, 2), (2, 2), (8, 2), (1, 2)],
        _ => &[(4, 4), (2, 2), (4, 2), (1, 1)],
    }
}

/// Maps a tuned blocking to the register tile the host microkernel will
/// actually run, given the host's SIMD lane width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSelector {
    lanes_f32: usize,
    lanes_f64: usize,
}

impl TileSelector {
    /// Selector for the running host (cached hardware probe, honours the
    /// `CLGEMM_SIMD` override).
    #[must_use]
    pub fn host() -> TileSelector {
        TileSelector::for_level(SimdLevel::detect())
    }

    /// Selector for an explicit instruction-set tier.
    #[must_use]
    pub fn for_level(level: SimdLevel) -> TileSelector {
        TileSelector {
            lanes_f32: level.lanes_f32(),
            lanes_f64: level.lanes_f64(),
        }
    }

    /// Selector with explicit lane counts (tests / what-if analysis).
    #[must_use]
    pub fn with_lanes(lanes_f32: usize, lanes_f64: usize) -> TileSelector {
        TileSelector {
            lanes_f32: lanes_f32.max(1),
            lanes_f64: lanes_f64.max(1),
        }
    }

    /// FMA lanes per vector register at `precision`.
    #[must_use]
    pub fn lanes(&self, precision: Precision) -> usize {
        match precision {
            Precision::F32 => self.lanes_f32,
            Precision::F64 => self.lanes_f64,
        }
    }

    /// Choose the register tile for a tuned `Mwi × Nwi` blocking on an
    /// `m × n` (padded) problem.
    ///
    /// Small problems (both padded edges at or below
    /// [`SMALL_SHAPE_MAX`]) take the dedicated small-shape sweep — the
    /// tuned tables are ordered by timings at 1024³ and mis-rank tiles
    /// when there are only a handful of panel passes. Otherwise the
    /// tuned blocking executes verbatim when it fits the register budget
    /// *and* its column edge fills whole vectors; failing that, the
    /// first entry of the lane table that fits the problem is taken.
    /// When even the smallest candidate overhangs (tiny problems), the
    /// ragged-edge handling of the microkernel makes any shape valid, so
    /// the smallest-area entry is used.
    #[must_use]
    pub fn select(
        &self,
        precision: Precision,
        tuned: (usize, usize),
        m: usize,
        n: usize,
    ) -> TileDecision {
        let lanes = self.lanes(precision);
        if m.max(n) <= SMALL_SHAPE_MAX {
            let pick = pick_fitting(small_candidates(lanes), m, n);
            let tile = Tile::new(pick.0, pick.1).expect("candidate tables stay within TILE_MAX");
            // The sweep may land on the tuned blocking itself — that is
            // not a substitution worth flagging.
            let reason = if pick == tuned {
                TileReason::Tuned
            } else {
                TileReason::SmallShape
            };
            return TileDecision {
                tuned,
                tile,
                lanes,
                reason,
            };
        }
        let as_tile = Tile::new(tuned.0, tuned.1);
        if let Some(tile) = as_tile {
            if tile.nr() % lanes == 0 {
                return TileDecision {
                    tuned,
                    tile,
                    lanes,
                    reason: TileReason::Tuned,
                };
            }
        }
        let reason = if as_tile.is_some() {
            TileReason::LaneRealigned
        } else {
            TileReason::Oversize
        };
        let pick = pick_fitting(candidates(lanes), m, n);
        let tile = Tile::new(pick.0, pick.1).expect("candidate tables stay within TILE_MAX");
        TileDecision {
            tuned,
            tile,
            lanes,
            reason,
        }
    }
}

/// First table entry that fits the problem, else the smallest-area entry.
fn pick_fitting(table: &[(usize, usize)], m: usize, n: usize) -> (usize, usize) {
    table
        .iter()
        .copied()
        .find(|&(mr, nr)| mr <= m.max(1) && nr <= n.max(1))
        .unwrap_or_else(|| {
            table
                .iter()
                .copied()
                .min_by_key(|&(mr, nr)| mr * nr)
                .expect("candidate tables are non-empty")
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::TILE_MAX;

    #[test]
    fn tuned_blocking_runs_verbatim_when_aligned() {
        let sel = TileSelector::with_lanes(4, 2);
        let d = sel.select(Precision::F32, (8, 8), 1024, 1024);
        assert_eq!(d.reason, TileReason::Tuned);
        assert_eq!(d.tile.dims(), (8, 8));
        assert!(!d.substituted());
    }

    #[test]
    fn oversize_blocking_is_substituted_and_reported() {
        // The exact shape the old clamp silently shrank: tuned 32×8.
        let sel = TileSelector::with_lanes(8, 4);
        let d = sel.select(Precision::F32, (32, 8), 1024, 1024);
        assert_eq!(d.reason, TileReason::Oversize);
        assert!(d.substituted());
        assert!(d.tile.mr() <= TILE_MAX && d.tile.nr() <= TILE_MAX);
        assert_eq!(d.tile.nr() % 8, 0, "substitute must be lane-aligned");
        assert_eq!(d.tuned, (32, 8));
    }

    #[test]
    fn misaligned_blocking_is_realigned() {
        // 6×2 fits the budget but wastes an 8-lane vector.
        let sel = TileSelector::with_lanes(8, 4);
        let d = sel.select(Precision::F32, (6, 2), 512, 512);
        assert_eq!(d.reason, TileReason::LaneRealigned);
        assert_eq!(d.tile.nr() % 8, 0);
    }

    #[test]
    fn candidate_tables_are_valid_and_lane_aligned() {
        for lanes in [1usize, 2, 4, 8, 16] {
            for &(mr, nr) in candidates(lanes).iter().chain(small_candidates(lanes)) {
                assert!(
                    Tile::new(mr, nr).is_some(),
                    "{mr}x{nr} outside the register budget"
                );
                assert_eq!(nr % lanes, 0, "{mr}x{nr} not aligned to {lanes} lanes");
            }
        }
    }

    #[test]
    fn tiny_problems_still_get_a_tile() {
        let sel = TileSelector::with_lanes(16, 8);
        let d = sel.select(Precision::F32, (32, 32), 1, 1);
        assert!(d.tile.mr() <= TILE_MAX && d.tile.nr() <= TILE_MAX);
        assert_eq!(d.reason, TileReason::SmallShape);
        assert!(d.substituted());
    }

    #[test]
    fn small_shapes_take_the_small_sweep() {
        let sel = TileSelector::with_lanes(8, 4);
        // 64×64 padded problem: small sweep, even though the tuned 8×8
        // blocking would have run verbatim at 1024³.
        let d = sel.select(Precision::F64, (8, 8), 64, 64);
        assert_eq!(d.reason, TileReason::SmallShape);
        assert_eq!(d.tile.dims(), (4, 4));
        assert_eq!(d.tile.nr() % 4, 0);
        // One edge past the threshold: back on the tuned tables.
        let d = sel.select(Precision::F64, (8, 8), 65, 64);
        assert_eq!(d.reason, TileReason::Tuned);
        // The sweep landing on the tuned blocking is not a substitution.
        let d = sel.select(Precision::F64, (4, 4), 48, 48);
        assert_eq!(d.reason, TileReason::Tuned);
        assert_eq!(d.tile.dims(), (4, 4));
    }

    #[test]
    fn precision_selects_the_lane_bank() {
        let sel = TileSelector::with_lanes(16, 8);
        assert_eq!(sel.lanes(Precision::F32), 16);
        assert_eq!(sel.lanes(Precision::F64), 8);
        let host = TileSelector::host();
        assert!(host.lanes(Precision::F32) >= host.lanes(Precision::F64));
    }
}
