//! Analytical parameter prediction — the device model inverted.
//!
//! The three-stage search of §III-F *evaluates* the timing model over
//! tens of thousands of candidates. This module runs the same model
//! backwards: from a [`DeviceSpec`] alone it derives, in closed form,
//! which regions of the parameter space can possibly win, and emits a
//! tiny ranked enumeration (≤ [`MAX_CANDIDATES`]) of parameter sets —
//! no search required. Two artifacts come out of the inversion:
//!
//! * [`FeasibleSet`] — a per-device predicate over [`KernelParams`]
//!   whose rules are each a provable (or empirically validated)
//!   consequence of the timing model in `clgemm-device`:
//!
//!   1. **Wavefront** (GPU): `lane_eff` in the issue bound wastes the
//!      tail lanes of any work-group not a multiple of the SIMT width —
//!      an aligned sibling always issues strictly faster.
//!   2. **Vector width**: on GPUs `vw = 1` is dominated by its `vw = 2`
//!      twin (B-side instruction count halves, the §III-B A-transaction
//!      amplification `Mwi/vw` shrinks), and widths beyond the load
//!      unit (`vw·elem > max_load_bytes`) split into multiple hardware
//!      transactions — unless the kernel reads A directly with unit
//!      stride, where the model's transaction-amplification escape
//!      genuinely rewards the wider type. On CPUs any `vw` short of
//!      the native SIMD width scales `simd_utilization` (and hence the
//!      issue rate) down linearly.
//!   3. **CpuLocal**: on cache-backed devices ([`LocalMemType::GlobalBacked`])
//!      local-memory staging is charged as *extra* cache traffic plus
//!      barriers bought nothing — the key CPU observation of §IV-A.
//!   4. **RowMajor**: a row-major operand layout is weakly dominated by
//!      its block-major twin — the model only ever penalises it
//!      (coalescing efficiency, the 1.15× cache factor, and the
//!      power-of-two channel-conflict cliff fire for row-major alone).
//!   5. **StrideDup**: the timing model reads `stride_m` only; a
//!      non-unit N stride is byte-for-byte identical to its unit-N
//!      twin, so one of the pair is pure duplicate work.
//!   6. **LoaderShape**: a staged operand's loader moves exactly
//!      `Wwg·Kwg / wg` elements *regardless* of its `(dima, kdima)`
//!      shape — the shape's only model effect is whether the loader
//!      vectorises. The search space's sibling shapes therefore split
//!      into at most two classes (vector / scalar loads); within a
//!      class they are model-identical, and the vector class weakly
//!      dominates, so a single canonical representative suffices.
//!   7. **Launch / Residency**: the occupancy model either rejects the
//!      launch outright or grants it fewer resident wavefronts than
//!      `min_wavefronts`, in which case the issue `saturation` factor
//!      derates the kernel below an admitted sibling (§III-E's "not
//!      enough work-groups to hide memory latency"). Residency is the
//!      register-budget logic of `tile.rs` writ large: the register
//!      file divided by the minimum resident work-items bounds
//!      `regs_per_wi` from above.
//!
//! * [`predict`] — a closed-form candidate constructor: per-knob
//!   preference lists derived from the device constants (wavefront-
//!   aligned work-group shapes, register-budget-inverted tiles,
//!   LDS-residency-inverted `Kwg`, load-unit/SIMD-inverted `vw`),
//!   crossed, filtered through the feasible set, ranked by the timing
//!   model at the stage-1 representative size, and truncated.
//!
//! The serving layer uses [`predict_best`] to cold-start unseen shape
//! buckets with zero search, and the tuner uses [`FeasibleSet`] to
//! prune its stage-1 space (see `SearchOpts::predictor_prune`).
//! `CLGEMM_PREDICT=off` disables the serve-side predictor (see
//! [`predict_enabled`]).

use std::collections::HashSet;

use crate::params::{Algorithm, KernelParams, StrideMode};
use crate::tuner::search::{measure_gflops, stage1_n};
use clgemm_blas::layout::BlockLayout;
use clgemm_blas::scalar::Precision;
use clgemm_device::{occupancy, DeviceSpec, LocalMemType};

/// Upper bound on the ranked enumeration [`predict`] returns.
pub const MAX_CANDIDATES: usize = 16;

/// Why the feasible set excludes a parameter set. Each variant's
/// [`tag`](PruneReason::tag) labels the `tuner_pruned_total` counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruneReason {
    /// GPU work-group size not a multiple of the SIMT width.
    Wavefront,
    /// Vector width mismatched to the device's load unit / SIMD width.
    VectorWidth,
    /// Local-memory staging on a cache-backed (CPU) device.
    CpuLocal,
    /// Row-major operand layout (dominated by its block-major twin).
    RowMajor,
    /// Non-unit N stride: modelled identically to its unit-N twin.
    StrideDup,
    /// Non-canonical loader shape: a sibling shape loads the same
    /// element count at greater-or-equal vector width.
    LoaderShape,
    /// The occupancy model rejects the launch outright.
    Launch,
    /// Too few resident wavefronts to hide memory latency.
    Residency,
}

impl PruneReason {
    /// All reasons, in rule-evaluation order.
    pub const ALL: [PruneReason; 8] = [
        PruneReason::Wavefront,
        PruneReason::VectorWidth,
        PruneReason::CpuLocal,
        PruneReason::RowMajor,
        PruneReason::StrideDup,
        PruneReason::LoaderShape,
        PruneReason::Launch,
        PruneReason::Residency,
    ];

    /// Label value for the `tuner_pruned_total{reason=…}` counter.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            PruneReason::Wavefront => "wavefront",
            PruneReason::VectorWidth => "vector-width",
            PruneReason::CpuLocal => "cpu-local",
            PruneReason::RowMajor => "row-major",
            PruneReason::StrideDup => "stride-dup",
            PruneReason::LoaderShape => "loader-shape",
            PruneReason::Launch => "launch",
            PruneReason::Residency => "residency",
        }
    }

    /// Position in [`Self::ALL`] (for fixed-size tally arrays).
    #[must_use]
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|r| *r == self)
            .expect("reason is in ALL")
    }
}

/// The model-derived feasible region of the parameter space for one
/// (device, precision) pair. See the module docs for the rule list.
#[derive(Debug, Clone)]
pub struct FeasibleSet {
    dev: DeviceSpec,
    precision: Precision,
}

impl FeasibleSet {
    /// Derive the feasible set from the device description.
    #[must_use]
    pub fn derive(dev: &DeviceSpec, precision: Precision) -> FeasibleSet {
        FeasibleSet {
            dev: dev.clone(),
            precision,
        }
    }

    /// The precision this set was derived for.
    #[must_use]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Upper bound on `regs_per_wi` implied by latency hiding: the
    /// register file must hold at least `min_wavefronts · wavefront`
    /// resident work-items (the `tile.rs` register budget, inverted at
    /// device scale).
    #[must_use]
    pub fn max_regs_per_wi(&self) -> usize {
        let micro = &self.dev.micro;
        let min_wis = ((micro.min_wavefronts * micro.wavefront as f64).ceil() as usize).max(1);
        (micro.regs_per_cu / min_wis).max(1)
    }

    /// `Some(reason)` when the model proves `p` cannot win stage 1;
    /// `None` when the candidate is admitted.
    #[must_use]
    pub fn reject(&self, p: &KernelParams) -> Option<PruneReason> {
        let dev = &self.dev;
        let micro = &dev.micro;
        let elem = p.elem_bytes();
        let cpu = dev.is_cpu();

        if !cpu && !p.wg_size().is_multiple_of(micro.wavefront) {
            return Some(PruneReason::Wavefront);
        }
        if cpu {
            // Below the native SIMD width, `simd_utilization` scales
            // the issue rate down linearly — the wide twin dominates.
            let words = (elem / 4).max(1);
            if p.vw * words < micro.native_simd_lanes {
                return Some(PruneReason::VectorWidth);
            }
        } else {
            // A doubled vector width strictly dominates in the model —
            // B-side instruction count halves, the §III-B transaction
            // amplification `Mwi/vw` shrinks, nothing else moves —
            // provided the wider twin is expressible (`Nwi % vw'`),
            // stays within the load unit, and degrades neither the
            // loader vectorisation nor the compute-phase A reads.
            if self.dominated_by_wider_vw(p) {
                return Some(PruneReason::VectorWidth);
            }
            // Beyond the load unit the access splits; only the direct
            // unit-stride A path (§III-B transaction amplification)
            // still profits from the wider type.
            let direct_a_escape =
                !p.local_a && p.stride_m == StrideMode::Unit && p.mwi().is_multiple_of(p.vw);
            if p.vw * elem > micro.max_load_bytes && !direct_a_escape {
                return Some(PruneReason::VectorWidth);
            }
        }
        if dev.local_mem_type == LocalMemType::GlobalBacked && (p.local_a || p.local_b) {
            return Some(PruneReason::CpuLocal);
        }
        if p.layout_a == BlockLayout::RowMajor || p.layout_b == BlockLayout::RowMajor {
            return Some(PruneReason::RowMajor);
        }
        if p.stride_n == StrideMode::NonUnit {
            return Some(PruneReason::StrideDup);
        }
        if p.local_a {
            if let Some(best) =
                canonical_loader_dim(p.wg_size(), p.mwg, p.kwg, p.mdimc, p.vw, p.mdima)
            {
                if p.mdima != best {
                    return Some(PruneReason::LoaderShape);
                }
            }
        }
        if p.local_b {
            if let Some(best) =
                canonical_loader_dim(p.wg_size(), p.nwg, p.kwg, p.ndimc, p.vw, p.ndimb)
            {
                if p.ndimb != best {
                    return Some(PruneReason::LoaderShape);
                }
            }
        }
        match occupancy(dev, p.wg_size(), p.regs_per_wi(), p.lds_bytes()) {
            Err(_) => Some(PruneReason::Launch),
            Ok(occ) => {
                if (occ.wavefronts_per_cu as f64) < micro.min_wavefronts {
                    Some(PruneReason::Residency)
                } else {
                    None
                }
            }
        }
    }

    /// `true` when the candidate survives every rule.
    #[must_use]
    pub fn admits(&self, p: &KernelParams) -> bool {
        self.reject(p).is_none()
    }

    /// GPU vector-width domination: does the `2·vw` twin weakly beat
    /// `p` on every model term? True exactly when the twin (a) is a
    /// valid parameter set (`Nwi % 2vw`), (b) still fits the hardware
    /// load unit, (c) loses no loader vectorisation (`loader_{a,b}_vec`
    /// must not flip off), and (d) loses no compute-phase A read width
    /// (`read_a_vec` must not flip off). Everything else in the launch
    /// profile — registers, LDS, barriers, DRAM bytes, coalescing — is
    /// vw-independent.
    fn dominated_by_wider_vw(&self, p: &KernelParams) -> bool {
        let wider = p.vw * 2;
        if wider > 8 || !p.nwi().is_multiple_of(wider) {
            return false;
        }
        if wider * p.elem_bytes() > self.dev.micro.max_load_bytes {
            return false;
        }
        // A width-1 access is width-1 whether or not its `*_vec` flag
        // holds, so "degradation" can only happen from vw > 1.
        let loader_a_keeps =
            !(p.local_a && p.loader_a_vec() && p.vw > 1) || p.mwg.is_multiple_of(p.mdima * wider);
        let loader_b_keeps =
            !(p.local_b && p.loader_b_vec() && p.vw > 1) || p.nwg.is_multiple_of(p.ndimb * wider);
        let read_a_keeps = !(p.read_a_vec() && p.vw > 1) || p.mwi().is_multiple_of(wider);
        loader_a_keeps && loader_b_keeps && read_a_keeps
    }
}

/// Canonical loader shape for one staged operand. A loader moves
/// `wwg·kwg / wg` elements however the work-group is reshaped over the
/// block, so among the search space's sibling shapes `{dimc, 2·dimc}`
/// (see `tuner::space::loader_dims`) the only model-visible difference
/// is whether `wwg % (dim·vw) == 0` grants width-`vw` loads. Siblings in
/// the same class are model-identical; the vector class weakly dominates
/// the scalar one. Returns the unique representative — the smallest
/// sibling of the best class — or `None` when `dim` is not one of the
/// recognised siblings (the space's rare fallback shapes), where no
/// dominance claim is made. Registers, LDS, occupancy, and the PL
/// prefetch term (`wwg·kwg / wg` again) are all shape-independent.
fn canonical_loader_dim(
    wg: usize,
    wwg: usize,
    kwg: usize,
    dimc: usize,
    vw: usize,
    dim: usize,
) -> Option<usize> {
    let siblings: Vec<usize> = [dimc, dimc * 2]
        .into_iter()
        .filter(|&d| wg.is_multiple_of(d) && wwg.is_multiple_of(d) && kwg.is_multiple_of(wg / d))
        .collect();
    if !siblings.contains(&dim) {
        return None;
    }
    siblings
        .iter()
        .copied()
        .find(|&d| wwg.is_multiple_of(d * vw))
        .or_else(|| siblings.first().copied())
}

/// One predicted parameter set with its model-forecast performance at
/// the stage-1 representative problem size.
#[derive(Debug, Clone)]
pub struct Prediction {
    pub params: KernelParams,
    /// Model GFlop/s at the stage-1 size the tuner would have used.
    pub gflops: f64,
}

/// Stage-1 base size the ranking evaluates at (the paper's defaults).
fn rank_base(dev: &DeviceSpec) -> usize {
    if dev.is_cpu() {
        1536
    } else {
        4096
    }
}

/// Work-group shape preference list: the largest SIMT-aligned shapes
/// that fit the device (GPUs want big groups for operand reuse; CPUs
/// run one work-item per "lane" and favour modest groups).
fn wg_shapes(dev: &DeviceSpec) -> Vec<(usize, usize)> {
    if dev.is_cpu() {
        return vec![(8, 8), (4, 4), (16, 8)];
    }
    let micro = &dev.micro;
    let all = [(16, 16), (16, 8), (8, 16), (8, 8), (8, 4)];
    let mut shapes: Vec<(usize, usize)> = all
        .into_iter()
        .filter(|&(m, n)| {
            let wg = m * n;
            wg <= micro.max_wg_size && wg.is_multiple_of(micro.wavefront)
        })
        .collect();
    shapes.truncate(3);
    shapes
}

/// Work-item tile preference list, filtered by the register-budget
/// inversion: accumulators + staging must leave room for the minimum
/// resident work-item count.
fn tiles(feasible: &FeasibleSet, precision: Precision) -> Vec<(usize, usize)> {
    let words = (precision.bytes() / 4).max(1);
    let budget = feasible.max_regs_per_wi();
    // Ordered by arithmetic intensity per register, biased toward the
    // M-major rectangles the paper's winners favour.
    let all = [
        (6, 2),
        (4, 4),
        (8, 4),
        (4, 8),
        (8, 2),
        (2, 8),
        (8, 8),
        (4, 2),
        (2, 4),
        (2, 2),
    ];
    all.into_iter()
        .filter(|&(mwi, nwi)| {
            // Accumulators + minimal staging, in 32-bit slots (the
            // `regs_per_wi` formula with kwi = 2, no prefetch).
            let regs = (mwi * nwi + 2 * (mwi + nwi)) * words + 24;
            regs <= budget
        })
        .collect()
}

/// Closed-form candidate constructor: cross the per-knob inversions.
fn closed_form_candidates(dev: &DeviceSpec, precision: Precision) -> Vec<KernelParams> {
    let feasible = FeasibleSet::derive(dev, precision);
    let cpu = dev.is_cpu();
    let elem = precision.bytes();
    let micro = &dev.micro;

    // Local-memory staging plans with their algorithm options: GPUs
    // stage B (the paper's Tahiti winner) or both (enables PL); CPUs
    // stage nothing (§IV-A).
    let staging: &[(bool, bool, &[Algorithm])] = if cpu {
        &[(false, false, &[Algorithm::Ba])]
    } else {
        &[
            (false, true, &[Algorithm::Ba]),
            (true, true, &[Algorithm::Ba, Algorithm::Pl]),
            (false, false, &[Algorithm::Ba]),
        ]
    };

    // Vector widths the load unit / SIMD width admit outright, plus the
    // over-wide types the direct-A escape can still reward on GPUs.
    let vws: Vec<usize> = if cpu {
        let words = (elem / 4).max(1);
        [1usize, 2, 4, 8]
            .into_iter()
            .filter(|vw| vw * words >= micro.native_simd_lanes)
            .collect()
    } else {
        [2usize, 4, 8].into_iter().collect()
    };

    let mut out = Vec::new();
    for &(mdimc, ndimc) in &wg_shapes(dev) {
        for &(mwi, nwi) in &tiles(&feasible, precision) {
            let (mwg, nwg) = (mdimc * mwi, ndimc * nwi);
            for &kwg in &[64usize, 48, 32, 16] {
                for &kwi in &[2usize, 8] {
                    if !kwg.is_multiple_of(kwi) {
                        continue;
                    }
                    for &vw in &vws {
                        if !nwi.is_multiple_of(vw) {
                            continue;
                        }
                        for &(local_a, local_b, algs) in staging {
                            // Direct-A kernels can dodge the §III-B
                            // transaction amplification with a non-unit
                            // M stride; staged-A kernels dodge LDS bank
                            // conflicts the same way.
                            let strides: &[StrideMode] =
                                if local_a && vw * elem > micro.max_load_bytes {
                                    // Over-wide loads only pay off via the
                                    // direct-A escape; skip staged-A here.
                                    continue;
                                } else if cpu {
                                    &[StrideMode::Unit]
                                } else {
                                    &[StrideMode::Unit, StrideMode::NonUnit]
                                };
                            for &stride_m in strides {
                                for &algorithm in algs {
                                    out.push(KernelParams {
                                        mwg,
                                        nwg,
                                        kwg,
                                        mdimc,
                                        ndimc,
                                        kwi,
                                        mdima: mdimc,
                                        ndimb: ndimc,
                                        vw,
                                        stride_m,
                                        stride_n: StrideMode::Unit,
                                        local_a,
                                        local_b,
                                        layout_a: BlockLayout::Cbl,
                                        layout_b: BlockLayout::Cbl,
                                        algorithm,
                                        precision,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Predict a ranked list of at most [`MAX_CANDIDATES`] parameter sets
/// for `(dev, precision)` with no search: construct the closed-form
/// candidates, keep the feasible ones, rank them with the timing model
/// at the stage-1 representative size.
#[must_use]
pub fn predict(dev: &DeviceSpec, precision: Precision) -> Vec<Prediction> {
    let feasible = FeasibleSet::derive(dev, precision);
    let base = rank_base(dev);
    let mut seen = HashSet::new();
    let mut preds: Vec<Prediction> = closed_form_candidates(dev, precision)
        .into_iter()
        .filter(|p| p.validate().is_ok() && feasible.admits(p) && seen.insert(*p))
        .filter_map(|p| {
            let g = measure_gflops(&p, dev, stage1_n(&p, base))?;
            Some(Prediction {
                params: p,
                gflops: g,
            })
        })
        .collect();
    preds.sort_by(|a, b| b.gflops.partial_cmp(&a.gflops).expect("finite gflops"));
    preds.truncate(MAX_CANDIDATES);
    preds
}

/// The single best prediction, or `None` when no closed-form candidate
/// is feasible (does not happen on the built-in profiles; callers fall
/// back to their legacy path).
#[must_use]
pub fn predict_best(dev: &DeviceSpec, precision: Precision) -> Option<Prediction> {
    predict(dev, precision).into_iter().next()
}

/// `true` unless `CLGEMM_PREDICT` is set to `off`/`0`/`false` — the
/// serve layer consults this on cache misses (mirrors the
/// `CLGEMM_SIMD` / `CLGEMM_CLC_ENGINE` override convention, but read
/// live because misses are rare and tests toggle it).
#[must_use]
pub fn predict_enabled() -> bool {
    predict_enabled_in(std::env::var("CLGEMM_PREDICT").ok().as_deref())
}

/// Pure core of [`predict_enabled`], unit-testable without touching
/// process environment.
#[must_use]
pub fn predict_enabled_in(value: Option<&str>) -> bool {
    match value {
        None => true,
        Some(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::tahiti_dgemm_best;
    use clgemm_device::DeviceId;

    #[test]
    fn paper_tahiti_winner_is_feasible() {
        let dev = DeviceId::Tahiti.spec();
        let f = FeasibleSet::derive(&dev, Precision::F64);
        assert_eq!(f.reject(&tahiti_dgemm_best()), None);
    }

    #[test]
    fn row_major_and_duplicate_strides_are_rejected() {
        let dev = DeviceId::Tahiti.spec();
        let f = FeasibleSet::derive(&dev, Precision::F64);
        let mut p = tahiti_dgemm_best();
        p.layout_a = BlockLayout::RowMajor;
        p.layout_b = BlockLayout::RowMajor;
        assert_eq!(f.reject(&p), Some(PruneReason::RowMajor));
        let mut p = tahiti_dgemm_best();
        p.stride_n = StrideMode::NonUnit;
        assert_eq!(f.reject(&p), Some(PruneReason::StrideDup));
    }

    #[test]
    fn misaligned_work_groups_are_rejected_on_gpus() {
        let dev = DeviceId::Tahiti.spec(); // wavefront 64
        let f = FeasibleSet::derive(&dev, Precision::F64);
        let mut p = tahiti_dgemm_best();
        p.mdimc = 8;
        p.ndimc = 6;
        p.mwg = 48;
        p.nwg = 12;
        p.mdima = 8;
        p.ndimb = 6;
        assert!(p.validate().is_ok());
        assert_eq!(f.reject(&p), Some(PruneReason::Wavefront));
    }

    #[test]
    fn non_canonical_loader_shapes_are_rejected() {
        let dev = DeviceId::Tahiti.spec();
        let f = FeasibleSet::derive(&dev, Precision::F64);
        let best = tahiti_dgemm_best();
        assert_eq!(f.reject(&best), None);
        // The 2·Ndimc sibling loads the same Kwg·Nwg block at the same
        // (vectorised) width — pure duplicate work in the model.
        let mut p = best;
        p.ndimb = p.ndimc * 2;
        assert!(p.validate().is_ok());
        assert_eq!(f.reject(&p), Some(PruneReason::LoaderShape));
    }

    #[test]
    fn cpu_rules_reject_locals_and_narrow_vectors() {
        let dev = DeviceId::SandyBridge.spec(); // 8 f32 lanes
        let f = FeasibleSet::derive(&dev, Precision::F32);
        let mut p = tahiti_dgemm_best();
        p.precision = Precision::F32;
        p.local_a = false;
        p.local_b = true;
        p.vw = 8;
        p.nwg = 128; // nwi = 8, divisible by 8
        assert_eq!(f.reject(&p), Some(PruneReason::CpuLocal));
        p.local_b = false;
        p.vw = 2;
        assert_eq!(f.reject(&p), Some(PruneReason::VectorWidth));
        p.vw = 8;
        assert_eq!(f.reject(&p), None);
    }

    #[test]
    fn predictions_are_ranked_feasible_and_bounded() {
        for id in DeviceId::ALL {
            let dev = id.spec();
            for precision in [Precision::F32, Precision::F64] {
                let preds = predict(&dev, precision);
                assert!(
                    !preds.is_empty() && preds.len() <= MAX_CANDIDATES,
                    "{id:?} {precision:?}: {} predictions",
                    preds.len()
                );
                let f = FeasibleSet::derive(&dev, precision);
                for w in preds.windows(2) {
                    assert!(w[0].gflops >= w[1].gflops);
                }
                for p in &preds {
                    p.params.validate().unwrap();
                    assert!(f.admits(&p.params), "{}", p.params.describe());
                    assert!(p.gflops > 0.0);
                }
            }
        }
    }

    #[test]
    fn cpu_predictions_use_no_local_memory_and_full_simd() {
        let dev = DeviceId::SandyBridge.spec();
        for precision in [Precision::F32, Precision::F64] {
            let words = (precision.bytes() / 4).max(1);
            for p in predict(&dev, precision) {
                assert!(!p.params.local_a && !p.params.local_b);
                assert!(p.params.vw * words >= dev.micro.native_simd_lanes);
            }
        }
    }

    #[test]
    fn env_override_parsing() {
        assert!(predict_enabled_in(None));
        assert!(predict_enabled_in(Some("on")));
        assert!(predict_enabled_in(Some("1")));
        assert!(!predict_enabled_in(Some("off")));
        assert!(!predict_enabled_in(Some("OFF ")));
        assert!(!predict_enabled_in(Some("0")));
        assert!(!predict_enabled_in(Some("false")));
    }
}
