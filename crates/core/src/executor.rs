//! Native execution of generated-kernel semantics.
//!
//! All three generated algorithms accumulate each `C` element over `p` in
//! strictly ascending order with fused multiply-adds, then merge with
//! `mad(alpha, acc, beta*C)`. This module reproduces exactly that
//! arithmetic natively (thread-parallel over rows), giving a fast oracle
//! that must agree **bit-for-bit** with the `clgemm-clc` VM executing the
//! generated OpenCL C — a very strong end-to-end check on the code
//! generator, the compiler and the VM at once.

use clgemm_blas::layout::{BlockLayout, PackedDims};
use clgemm_blas::scalar::Scalar;

/// Compute `C ← α·Aᵀ·B + β·C` on packed operands with generated-kernel
/// numerics.
///
/// * `a`: packed `K × M` operand in `layout_a` with dims `a_dims`.
/// * `b`: packed `K × N` operand in `layout_b` with dims `b_dims`.
/// * `c`: row-major `M × N` buffer (stride `n`).
///
/// # Panics
/// Panics if buffer sizes disagree with the dims.
#[allow(clippy::too_many_arguments)] // deliberately BLAS-flat signature
pub fn run_native<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    a_dims: PackedDims,
    layout_a: BlockLayout,
    b: &[T],
    b_dims: PackedDims,
    layout_b: BlockLayout,
    beta: T,
    c: &mut [T],
) {
    assert_eq!(a.len(), a_dims.len(), "packed A size mismatch");
    assert_eq!(b.len(), b_dims.len(), "packed B size mismatch");
    assert_eq!(c.len(), m * n, "C size mismatch");
    assert!(a_dims.k >= k && b_dims.k >= k, "operand depth too small");
    assert!(
        a_dims.width >= m && b_dims.width >= n,
        "operand width too small"
    );

    clgemm_shim::par::par_chunks_mut(c, n, |i, row| {
        for (j, cell) in row.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for p in 0..k {
                let av = a[layout_a.offset(p, i, a_dims)];
                let bv = b[layout_b.offset(p, j, b_dims)];
                acc = av.mul_add(bv, acc);
            }
            // Generated merge: mad(alpha, acc, beta * old).
            *cell = alpha.mul_add(acc, beta * *cell);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use clgemm_blas::gemm_ref::gemm_naive;
    use clgemm_blas::matrix::{Matrix, StorageOrder};
    use clgemm_blas::pack::{pack_operand, PackSpec};
    use clgemm_blas::{GemmType, Trans};

    #[test]
    fn matches_reference_gemm_within_tolerance() {
        let (m, n, k) = (24, 16, 32);
        // op(A) = Aᵀ where A is m x k col-major: packed operand is k x m.
        let a = Matrix::<f64>::test_pattern(m, k, StorageOrder::ColMajor, 1);
        let b = Matrix::<f64>::test_pattern(k, n, StorageOrder::ColMajor, 2);
        let c0 = Matrix::<f64>::test_pattern(m, n, StorageOrder::ColMajor, 3);

        let spec_a = PackSpec {
            trans: Trans::Yes,
            layout: BlockLayout::Cbl,
            wwg: 8,
            kwg: 8,
        };
        let spec_b = PackSpec {
            trans: Trans::No,
            layout: BlockLayout::Rbl,
            wwg: 8,
            kwg: 8,
        };
        let (pa, da) = pack_operand(&a, spec_a, k, m);
        let (pb, db) = pack_operand(&b, spec_b, k, n);

        let mut c_native: Vec<f64> = (0..m * n).map(|i| c0.at(i / n, i % n)).collect();
        run_native(
            m,
            n,
            k,
            1.5,
            &pa,
            da,
            BlockLayout::Cbl,
            &pb,
            db,
            BlockLayout::Rbl,
            -0.5,
            &mut c_native,
        );

        let mut c_ref = c0.clone();
        gemm_naive(GemmType::NN, 1.5, &a, &b, -0.5, &mut c_ref);
        for i in 0..m {
            for j in 0..n {
                let diff = (c_native[i * n + j] - c_ref.at(i, j)).abs();
                assert!(diff < 1e-10, "({i},{j}): {diff}");
            }
        }
    }

    #[test]
    fn beta_zero_ignores_initial_c() {
        let (m, n, k) = (8, 8, 8);
        let dims = PackedDims::new(8, 8, 4, 4).unwrap();
        let a = vec![1.0f32; 64];
        let b = vec![2.0f32; 64];
        let mut c = vec![f32::NAN; 64];
        run_native(
            m,
            n,
            k,
            1.0,
            &a,
            dims,
            BlockLayout::RowMajor,
            &b,
            dims,
            BlockLayout::RowMajor,
            0.0,
            &mut c,
        );
        // NaN * 0 is NaN — OpenCL mad(alpha, acc, beta*C) with beta=0 and
        // C=NaN propagates NaN, so the routine layer zero-fills staged C.
        assert!(c.iter().all(|v| v.is_nan()));
        let mut c = vec![0.0f32; 64];
        run_native(
            m,
            n,
            k,
            1.0,
            &a,
            dims,
            BlockLayout::RowMajor,
            &b,
            dims,
            BlockLayout::RowMajor,
            0.0,
            &mut c,
        );
        assert!(c.iter().all(|v| (*v - 16.0).abs() < 1e-6));
    }

    #[test]
    fn padded_region_does_not_contaminate() {
        // k = 6 with padded depth 8: padding rows are zero, so using
        // k = 6 vs k = 8 over zero padding must agree.
        let (m, n) = (4, 4);
        let dims = PackedDims::new(8, 4, 4, 4).unwrap();
        let mut a = vec![0.0f64; 32];
        let mut b = vec![0.0f64; 32];
        for p in 0..6 {
            for w in 0..4 {
                a[BlockLayout::Cbl.offset(p, w, dims)] = (p + w) as f64;
                b[BlockLayout::Cbl.offset(p, w, dims)] = (p * w + 1) as f64;
            }
        }
        let mut c6 = vec![0.0f64; 16];
        let mut c8 = vec![0.0f64; 16];
        run_native(
            m,
            n,
            6,
            1.0,
            &a,
            dims,
            BlockLayout::Cbl,
            &b,
            dims,
            BlockLayout::Cbl,
            0.0,
            &mut c6,
        );
        run_native(
            m,
            n,
            8,
            1.0,
            &a,
            dims,
            BlockLayout::Cbl,
            &b,
            dims,
            BlockLayout::Cbl,
            0.0,
            &mut c8,
        );
        assert_eq!(c6, c8);
    }

    #[test]
    #[should_panic(expected = "packed A size mismatch")]
    fn size_mismatch_panics() {
        let dims = PackedDims::new(8, 8, 4, 4).unwrap();
        let a = vec![0.0f64; 10];
        let b = vec![0.0f64; 64];
        let mut c = vec![0.0f64; 64];
        run_native(
            8,
            8,
            8,
            1.0,
            &a,
            dims,
            BlockLayout::RowMajor,
            &b,
            dims,
            BlockLayout::RowMajor,
            0.0,
            &mut c,
        );
    }
}
