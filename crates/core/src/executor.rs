//! Native execution of generated-kernel semantics.
//!
//! All three generated algorithms accumulate each `C` element over `p` in
//! strictly ascending order with fused multiply-adds, then merge with
//! `mad(alpha, acc, beta*C)`. This module reproduces exactly that
//! arithmetic natively (thread-parallel over rows), giving a fast oracle
//! that must agree **bit-for-bit** with the `clgemm-clc` VM executing the
//! generated OpenCL C — a very strong end-to-end check on the code
//! generator, the compiler and the VM at once.

use clgemm_blas::layout::{BlockLayout, PackedDims};
use clgemm_blas::scalar::Scalar;

/// Compute `C ← α·Aᵀ·B + β·C` on packed operands with generated-kernel
/// numerics.
///
/// * `a`: packed `K × M` operand in `layout_a` with dims `a_dims`.
/// * `b`: packed `K × N` operand in `layout_b` with dims `b_dims`.
/// * `c`: row-major `M × N` buffer (stride `n`).
///
/// # Panics
/// Panics if buffer sizes disagree with the dims.
#[allow(clippy::too_many_arguments)] // deliberately BLAS-flat signature
pub fn run_native<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    a_dims: PackedDims,
    layout_a: BlockLayout,
    b: &[T],
    b_dims: PackedDims,
    layout_b: BlockLayout,
    beta: T,
    c: &mut [T],
) {
    assert_eq!(a.len(), a_dims.len(), "packed A size mismatch");
    assert_eq!(b.len(), b_dims.len(), "packed B size mismatch");
    assert_eq!(c.len(), m * n, "C size mismatch");
    assert!(a_dims.k >= k && b_dims.k >= k, "operand depth too small");
    assert!(
        a_dims.width >= m && b_dims.width >= n,
        "operand width too small"
    );

    clgemm_shim::par::par_chunks_mut(c, n, |i, row| {
        for (j, cell) in row.iter_mut().enumerate() {
            let mut acc = T::ZERO;
            for p in 0..k {
                let av = a[layout_a.offset(p, i, a_dims)];
                let bv = b[layout_b.offset(p, j, b_dims)];
                acc = av.mul_add(bv, acc);
            }
            // Generated merge: mad(alpha, acc, beta * old).
            *cell = alpha.mul_add(acc, beta * *cell);
        }
    });
}

/// Largest register-tile edge the fast path instantiates.
pub const TILE_MAX: usize = 16;

/// A validated register-tile shape for [`run_native_fast`].
///
/// Construction is the *only* gate: both edges must lie in
/// `1..=TILE_MAX`, so an out-of-range tuned blocking can never reach the
/// microkernel — it has to go through `clgemm::tile::TileSelector`,
/// which substitutes a lane-aligned shape and *reports* the substitution
/// instead of the silent clamp this type replaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tile {
    mr: usize,
    nr: usize,
}

impl Tile {
    /// A validated `mr × nr` tile; `None` when an edge is outside
    /// `1..=TILE_MAX`.
    #[must_use]
    pub const fn new(mr: usize, nr: usize) -> Option<Tile> {
        if mr >= 1 && mr <= TILE_MAX && nr >= 1 && nr <= TILE_MAX {
            Some(Tile { mr, nr })
        } else {
            None
        }
    }

    /// Rows of `C` per register tile.
    #[must_use]
    pub const fn mr(self) -> usize {
        self.mr
    }

    /// Columns of `C` per register tile (the vectorised direction).
    #[must_use]
    pub const fn nr(self) -> usize {
        self.nr
    }

    /// Both edges as a pair.
    #[must_use]
    pub const fn dims(self) -> (usize, usize) {
        (self.mr, self.nr)
    }
}

impl std::fmt::Display for Tile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.mr, self.nr)
    }
}

/// Fast panel-microkernel execution of the same arithmetic as
/// [`run_native`] — **bit-for-bit identical** output.
///
/// Where the reference recomputes a block-layout offset (div/mod pair)
/// for every element at every depth step, this walks CBL/RBL panels
/// contiguously: per `(layout_a, layout_b)` pair the depth stride and
/// the length of the affine run are resolved once (`BlockLayout::
/// depth_stride` / `depth_run`), base offsets are hoisted per register
/// tile, and the inner loop over `p` is pure loads + FMA into an
/// `mr × nr` accumulator tile. Bit-for-bit equality holds because each
/// `C` element still sees the exact reference operation order: ascending
/// `p`, `acc = fma(a, b, acc)`, then `mad(alpha, acc, beta·old)` — the
/// tiling only interleaves *independent* accumulators; the tile shape
/// can therefore be chosen freely (per the host SIMD width) without any
/// numerical consequence.
///
/// `tile` is a pre-validated register-tile shape, normally produced by
/// `clgemm::tile::TileSelector::select` from the tuned blocking and the
/// host vector width. Row tiles are distributed over threads.
///
/// # Panics
/// Panics if buffer sizes disagree with the dims (same contract as
/// [`run_native`]).
#[allow(clippy::too_many_arguments)] // deliberately BLAS-flat signature
pub fn run_native_fast<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    a_dims: PackedDims,
    layout_a: BlockLayout,
    b: &[T],
    b_dims: PackedDims,
    layout_b: BlockLayout,
    beta: T,
    c: &mut [T],
    tile: Tile,
) {
    assert_eq!(a.len(), a_dims.len(), "packed A size mismatch");
    assert_eq!(b.len(), b_dims.len(), "packed B size mismatch");
    assert_eq!(c.len(), m * n, "C size mismatch");
    assert!(a_dims.k >= k && b_dims.k >= k, "operand depth too small");
    assert!(
        a_dims.width >= m && b_dims.width >= n,
        "operand width too small"
    );
    let pan = Panels {
        a,
        a_dims,
        layout_a,
        b,
        b_dims,
        layout_b,
        k,
    };
    // The per-shape dispatch: every tile the selector's candidate tables
    // can produce is monomorphised here (the bench tile sweep measures
    // exactly this list); anything else takes the dynamic tile, which
    // still hoists all offset arithmetic.
    match tile.dims() {
        (2, 2) => run_tiles::<T, 2, 2>(n, alpha, beta, c, &pan),
        (4, 2) => run_tiles::<T, 4, 2>(n, alpha, beta, c, &pan),
        (2, 4) => run_tiles::<T, 2, 4>(n, alpha, beta, c, &pan),
        (4, 4) => run_tiles::<T, 4, 4>(n, alpha, beta, c, &pan),
        (6, 2) => run_tiles::<T, 6, 2>(n, alpha, beta, c, &pan),
        (2, 6) => run_tiles::<T, 2, 6>(n, alpha, beta, c, &pan),
        (8, 2) => run_tiles::<T, 8, 2>(n, alpha, beta, c, &pan),
        (2, 8) => run_tiles::<T, 2, 8>(n, alpha, beta, c, &pan),
        (8, 4) => run_tiles::<T, 8, 4>(n, alpha, beta, c, &pan),
        (4, 8) => run_tiles::<T, 4, 8>(n, alpha, beta, c, &pan),
        (8, 6) => run_tiles::<T, 8, 6>(n, alpha, beta, c, &pan),
        (8, 8) => run_tiles::<T, 8, 8>(n, alpha, beta, c, &pan),
        (12, 4) => run_tiles::<T, 12, 4>(n, alpha, beta, c, &pan),
        (8, 12) => run_tiles::<T, 8, 12>(n, alpha, beta, c, &pan),
        (16, 2) => run_tiles::<T, 16, 2>(n, alpha, beta, c, &pan),
        (2, 16) => run_tiles::<T, 2, 16>(n, alpha, beta, c, &pan),
        (16, 4) => run_tiles::<T, 16, 4>(n, alpha, beta, c, &pan),
        (4, 16) => run_tiles::<T, 4, 16>(n, alpha, beta, c, &pan),
        (16, 8) => run_tiles::<T, 16, 8>(n, alpha, beta, c, &pan),
        (8, 16) => run_tiles::<T, 8, 16>(n, alpha, beta, c, &pan),
        (16, 16) => run_tiles::<T, 16, 16>(n, alpha, beta, c, &pan),
        (mr, nr) => run_tiles_dyn(n, mr, nr, alpha, beta, c, &pan),
    }
}

/// The two packed operands plus everything needed to slice their panels.
struct Panels<'a, T> {
    a: &'a [T],
    a_dims: PackedDims,
    layout_a: BlockLayout,
    b: &'a [T],
    b_dims: PackedDims,
    layout_b: BlockLayout,
    k: usize,
}

impl<T: Scalar> Panels<'_, T> {
    /// Accumulate `C[i0..i0+mh) × [j0..j0+nh)` over the full depth into
    /// `acc` (flattened `mh × nh`, row-major, stride `nh`). All offset
    /// arithmetic happens here, per affine depth run; the caller's inner
    /// loop sees only `base + p·stride`.
    #[inline]
    fn accumulate(
        &self,
        i0: usize,
        mh: usize,
        j0: usize,
        nh: usize,
        acc: &mut [T],
        mut fma_run: impl FnMut(&mut [T], &[usize], &[usize], usize, usize, usize, usize, usize),
    ) {
        let sa = self.layout_a.depth_stride(self.a_dims);
        let sb = self.layout_b.depth_stride(self.b_dims);
        let mut abase = [0usize; TILE_MAX];
        let mut bbase = [0usize; TILE_MAX];
        let mut p0 = 0usize;
        while p0 < self.k {
            let len = (self.k - p0)
                .min(self.layout_a.run_remaining(p0, self.a_dims))
                .min(self.layout_b.run_remaining(p0, self.b_dims));
            for (ii, slot) in abase[..mh].iter_mut().enumerate() {
                *slot = self.layout_a.offset(p0, i0 + ii, self.a_dims);
            }
            for (jj, slot) in bbase[..nh].iter_mut().enumerate() {
                *slot = self.layout_b.offset(p0, j0 + jj, self.b_dims);
            }
            fma_run(acc, &abase, &bbase, sa, sb, len, mh, nh);
            p0 += len;
        }
    }
}

/// Drive fixed `MR × NR` register tiles over `C`, row tiles in parallel.
fn run_tiles<T: Scalar, const MR: usize, const NR: usize>(
    n: usize,
    alpha: T,
    beta: T,
    c: &mut [T],
    pan: &Panels<'_, T>,
) {
    clgemm_shim::par::par_chunks_mut(c, MR * n, |t, rows| {
        let i0 = t * MR;
        let mh = rows.len() / n.max(1);
        let mut j0 = 0usize;
        while j0 < n {
            let nh = NR.min(n - j0);
            let mut acc = [T::ZERO; TILE_MAX * TILE_MAX];
            if mh == MR && nh == NR {
                pan.accumulate(
                    i0,
                    MR,
                    j0,
                    NR,
                    &mut acc,
                    |acc, ab, bb, sa, sb, len, _, _| {
                        for p in 0..len {
                            let (pa, pb) = (p * sa, p * sb);
                            let mut av = [T::ZERO; MR];
                            for ii in 0..MR {
                                av[ii] = pan.a[ab[ii] + pa];
                            }
                            let mut bv = [T::ZERO; NR];
                            for jj in 0..NR {
                                bv[jj] = pan.b[bb[jj] + pb];
                            }
                            for ii in 0..MR {
                                for jj in 0..NR {
                                    acc[ii * NR + jj] = av[ii].mul_add(bv[jj], acc[ii * NR + jj]);
                                }
                            }
                        }
                    },
                );
                merge_tile(rows, n, j0, MR, NR, NR, alpha, beta, &acc);
            } else {
                pan.accumulate(i0, mh, j0, nh, &mut acc, fma_run_dyn(pan));
                merge_tile(rows, n, j0, mh, nh, nh, alpha, beta, &acc);
            }
            j0 += NR;
        }
    });
}

/// Dynamic-shape fallback: same structure, runtime tile bounds.
#[allow(clippy::too_many_arguments)]
fn run_tiles_dyn<T: Scalar>(
    n: usize,
    mr: usize,
    nr: usize,
    alpha: T,
    beta: T,
    c: &mut [T],
    pan: &Panels<'_, T>,
) {
    clgemm_shim::par::par_chunks_mut(c, mr * n, |t, rows| {
        let i0 = t * mr;
        let mh = rows.len() / n.max(1);
        let mut j0 = 0usize;
        while j0 < n {
            let nh = nr.min(n - j0);
            let mut acc = [T::ZERO; TILE_MAX * TILE_MAX];
            pan.accumulate(i0, mh, j0, nh, &mut acc, fma_run_dyn(pan));
            merge_tile(rows, n, j0, mh, nh, nh, alpha, beta, &acc);
            j0 += nr;
        }
    });
}

/// The runtime-bounds FMA loop shared by edge tiles and the dynamic path.
#[allow(clippy::type_complexity)]
fn fma_run_dyn<'p, T: Scalar>(
    pan: &'p Panels<'p, T>,
) -> impl FnMut(&mut [T], &[usize], &[usize], usize, usize, usize, usize, usize) + 'p {
    move |acc, ab, bb, sa, sb, len, mh, nh| {
        for p in 0..len {
            let (pa, pb) = (p * sa, p * sb);
            let mut av = [T::ZERO; TILE_MAX];
            for (ii, slot) in av[..mh].iter_mut().enumerate() {
                *slot = pan.a[ab[ii] + pa];
            }
            let mut bv = [T::ZERO; TILE_MAX];
            for (jj, slot) in bv[..nh].iter_mut().enumerate() {
                *slot = pan.b[bb[jj] + pb];
            }
            for ii in 0..mh {
                for jj in 0..nh {
                    acc[ii * nh + jj] = av[ii].mul_add(bv[jj], acc[ii * nh + jj]);
                }
            }
        }
    }
}

/// Apply the generated merge `mad(alpha, acc, beta·old)` for one tile.
#[allow(clippy::too_many_arguments)]
fn merge_tile<T: Scalar>(
    rows: &mut [T],
    n: usize,
    j0: usize,
    mh: usize,
    nh: usize,
    acc_stride: usize,
    alpha: T,
    beta: T,
    acc: &[T],
) {
    for ii in 0..mh {
        let row = &mut rows[ii * n + j0..ii * n + j0 + nh];
        for (jj, cell) in row.iter_mut().enumerate() {
            *cell = alpha.mul_add(acc[ii * acc_stride + jj], beta * *cell);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clgemm_blas::gemm_ref::gemm_naive;
    use clgemm_blas::matrix::{Matrix, StorageOrder};
    use clgemm_blas::pack::{pack_operand, PackSpec};
    use clgemm_blas::{GemmType, Trans};

    #[test]
    fn matches_reference_gemm_within_tolerance() {
        let (m, n, k) = (24, 16, 32);
        // op(A) = Aᵀ where A is m x k col-major: packed operand is k x m.
        let a = Matrix::<f64>::test_pattern(m, k, StorageOrder::ColMajor, 1);
        let b = Matrix::<f64>::test_pattern(k, n, StorageOrder::ColMajor, 2);
        let c0 = Matrix::<f64>::test_pattern(m, n, StorageOrder::ColMajor, 3);

        let spec_a = PackSpec {
            trans: Trans::Yes,
            layout: BlockLayout::Cbl,
            wwg: 8,
            kwg: 8,
        };
        let spec_b = PackSpec {
            trans: Trans::No,
            layout: BlockLayout::Rbl,
            wwg: 8,
            kwg: 8,
        };
        let (pa, da) = pack_operand(&a, spec_a, k, m);
        let (pb, db) = pack_operand(&b, spec_b, k, n);

        let mut c_native: Vec<f64> = (0..m * n).map(|i| c0.at(i / n, i % n)).collect();
        run_native(
            m,
            n,
            k,
            1.5,
            &pa,
            da,
            BlockLayout::Cbl,
            &pb,
            db,
            BlockLayout::Rbl,
            -0.5,
            &mut c_native,
        );

        let mut c_ref = c0.clone();
        gemm_naive(GemmType::NN, 1.5, &a, &b, -0.5, &mut c_ref);
        for i in 0..m {
            for j in 0..n {
                let diff = (c_native[i * n + j] - c_ref.at(i, j)).abs();
                assert!(diff < 1e-10, "({i},{j}): {diff}");
            }
        }
    }

    #[test]
    fn beta_zero_ignores_initial_c() {
        let (m, n, k) = (8, 8, 8);
        let dims = PackedDims::new(8, 8, 4, 4).unwrap();
        let a = vec![1.0f32; 64];
        let b = vec![2.0f32; 64];
        let mut c = vec![f32::NAN; 64];
        run_native(
            m,
            n,
            k,
            1.0,
            &a,
            dims,
            BlockLayout::RowMajor,
            &b,
            dims,
            BlockLayout::RowMajor,
            0.0,
            &mut c,
        );
        // NaN * 0 is NaN — OpenCL mad(alpha, acc, beta*C) with beta=0 and
        // C=NaN propagates NaN, so the routine layer zero-fills staged C.
        assert!(c.iter().all(|v| v.is_nan()));
        let mut c = vec![0.0f32; 64];
        run_native(
            m,
            n,
            k,
            1.0,
            &a,
            dims,
            BlockLayout::RowMajor,
            &b,
            dims,
            BlockLayout::RowMajor,
            0.0,
            &mut c,
        );
        assert!(c.iter().all(|v| (*v - 16.0).abs() < 1e-6));
    }

    #[test]
    fn padded_region_does_not_contaminate() {
        // k = 6 with padded depth 8: padding rows are zero, so using
        // k = 6 vs k = 8 over zero padding must agree.
        let (m, n) = (4, 4);
        let dims = PackedDims::new(8, 4, 4, 4).unwrap();
        let mut a = vec![0.0f64; 32];
        let mut b = vec![0.0f64; 32];
        for p in 0..6 {
            for w in 0..4 {
                a[BlockLayout::Cbl.offset(p, w, dims)] = (p + w) as f64;
                b[BlockLayout::Cbl.offset(p, w, dims)] = (p * w + 1) as f64;
            }
        }
        let mut c6 = vec![0.0f64; 16];
        let mut c8 = vec![0.0f64; 16];
        run_native(
            m,
            n,
            6,
            1.0,
            &a,
            dims,
            BlockLayout::Cbl,
            &b,
            dims,
            BlockLayout::Cbl,
            0.0,
            &mut c6,
        );
        run_native(
            m,
            n,
            8,
            1.0,
            &a,
            dims,
            BlockLayout::Cbl,
            &b,
            dims,
            BlockLayout::Cbl,
            0.0,
            &mut c8,
        );
        assert_eq!(c6, c8);
    }

    #[test]
    #[should_panic(expected = "packed A size mismatch")]
    fn size_mismatch_panics() {
        let dims = PackedDims::new(8, 8, 4, 4).unwrap();
        let a = vec![0.0f64; 10];
        let b = vec![0.0f64; 64];
        let mut c = vec![0.0f64; 64];
        run_native(
            8,
            8,
            8,
            1.0,
            &a,
            dims,
            BlockLayout::RowMajor,
            &b,
            dims,
            BlockLayout::RowMajor,
            0.0,
            &mut c,
        );
    }

    /// Fill a packed `dims.k × dims.width` buffer with a deterministic
    /// non-trivial pattern, zeroing the depth padding beyond `k`.
    fn packed_pattern(layout: BlockLayout, dims: PackedDims, k: usize, seed: usize) -> Vec<f64> {
        let mut buf = vec![0.0f64; dims.len()];
        for p in 0..k {
            for w in 0..dims.width {
                let v = ((p * 31 + w * 7 + seed * 13) % 23) as f64 - 11.0;
                buf[layout.offset(p, w, dims)] = v * 0.37;
            }
        }
        buf
    }

    #[test]
    fn fast_is_bit_identical_to_reference_across_layouts_and_tiles() {
        // The whole point of the fast engine: same FMA chain per element,
        // so exact equality — not tolerance — across every layout pair
        // and register-tile shape, including the dynamic-dispatch sizes
        // and ones that do not divide the problem evenly.
        let (m, n, k) = (24, 16, 12);
        let da = PackedDims::new(16, 24, 8, 4).unwrap();
        let db = PackedDims::new(16, 16, 8, 4).unwrap();
        for la in BlockLayout::ALL {
            for lb in BlockLayout::ALL {
                let pa = packed_pattern(la, da, k, 1);
                let pb = packed_pattern(lb, db, k, 2);
                let c0: Vec<f64> = (0..m * n).map(|i| (i % 17) as f64 - 8.0).collect();
                let mut c_ref = c0.clone();
                run_native(m, n, k, 1.25, &pa, da, la, &pb, db, lb, -0.75, &mut c_ref);
                // (5,3) and (7,5) fall through to the dynamic kernel and
                // leave ragged edge tiles; the rest hit the monomorphised
                // fast paths, including the full 16-wide SIMD shapes.
                for (mr, nr) in [
                    (1, 1),
                    (4, 4),
                    (6, 2),
                    (8, 8),
                    (5, 3),
                    (7, 5),
                    (8, 16),
                    (16, 16),
                ] {
                    let tile = Tile::new(mr, nr).unwrap();
                    let mut c_fast = c0.clone();
                    run_native_fast(
                        m,
                        n,
                        k,
                        1.25,
                        &pa,
                        da,
                        la,
                        &pb,
                        db,
                        lb,
                        -0.75,
                        &mut c_fast,
                        tile,
                    );
                    assert_eq!(c_fast, c_ref, "{la}/{lb} tile {tile}");
                }
            }
        }
    }

    #[test]
    fn fast_handles_depth_padding_and_f32() {
        // k strictly below the padded depth, f32, tile larger than the
        // whole problem in one direction.
        let (m, n, k) = (8, 12, 5);
        let da = PackedDims::new(8, 8, 4, 4).unwrap();
        let db = PackedDims::new(8, 12, 4, 4).unwrap();
        let mut pa = vec![0.0f32; da.len()];
        let mut pb = vec![0.0f32; db.len()];
        for p in 0..k {
            for w in 0..da.width {
                pa[BlockLayout::Rbl.offset(p, w, da)] = (p * w) as f32 * 0.5 - 1.0;
            }
            for w in 0..db.width {
                pb[BlockLayout::Cbl.offset(p, w, db)] = (p + 2 * w) as f32 * 0.25;
            }
        }
        let c0: Vec<f32> = (0..m * n).map(|i| i as f32 * 0.1).collect();
        let mut c_ref = c0.clone();
        run_native(
            m,
            n,
            k,
            2.0,
            &pa,
            da,
            BlockLayout::Rbl,
            &pb,
            db,
            BlockLayout::Cbl,
            0.5,
            &mut c_ref,
        );
        let mut c_fast = c0.clone();
        run_native_fast(
            m,
            n,
            k,
            2.0,
            &pa,
            da,
            BlockLayout::Rbl,
            &pb,
            db,
            BlockLayout::Cbl,
            0.5,
            &mut c_fast,
            Tile::new(16, 3).unwrap(),
        );
        assert_eq!(c_fast, c_ref);
    }

    #[test]
    fn tile_construction_enforces_the_register_budget() {
        // The silent shrink-to-`TILE_MAX` is gone: shapes outside the
        // register budget are unrepresentable, not quietly clamped.
        assert!(Tile::new(1, 1).is_some());
        assert!(Tile::new(TILE_MAX, TILE_MAX).is_some());
        assert!(Tile::new(32, 8).is_none());
        assert!(Tile::new(8, 32).is_none());
        assert!(Tile::new(0, 4).is_none());
        assert!(Tile::new(4, 0).is_none());
        let t = Tile::new(8, 16).unwrap();
        assert_eq!((t.mr(), t.nr()), (8, 16));
        assert_eq!(t.dims(), (8, 16));
        assert_eq!(t.to_string(), "8x16");
    }
}
